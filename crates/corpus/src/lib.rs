//! Benchmark problems, per-problem error models and the synthetic
//! student-submission corpus.
//!
//! The paper evaluates on thousands of real 6.00/6.00x submissions, which
//! are not public.  This crate substitutes a **seeded synthetic corpus**
//! with the same population structure (see DESIGN.md for the substitution
//! argument): every benchmark problem ships a reference implementation,
//! algorithmically distinct correct solutions, hand-written conceptual-error
//! solutions, an EML error model, and the [`generate`] module produces
//! submissions by corrupting and mutating the correct solutions.
//!
//! # Example
//!
//! ```
//! use afg_corpus::{problems, CorpusSpec, generate_corpus};
//!
//! let problem = problems::compute_deriv();
//! let corpus = generate_corpus(&problem, &CorpusSpec::small(42));
//! assert_eq!(corpus.len(), 24);
//! ```

mod generate;
mod mutate;
mod problem;
pub mod problems;
pub mod rng;

pub use generate::{generate_corpus, CorpusSpec, Origin, Submission};
pub use mutate::{mutate_program, MutationKind};
pub use problem::Problem;
