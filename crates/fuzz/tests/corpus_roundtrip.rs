//! The committed seed corpus can never rot: every file under
//! `fuzz/corpus/` must parse-or-reject cleanly — no panic, no
//! differential divergence — across *all six* targets, not just the one
//! it was written for (the fuzzer splices corpus bytes across targets, so
//! cross-target robustness is part of the contract).  Runs as a plain
//! `cargo test`.

use std::fs;
use std::path::{Path, PathBuf};

use afg_fuzz::{builtin_seeds, run_target, TargetKind};

fn corpus_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../fuzz/corpus")
}

fn corpus_files() -> Vec<PathBuf> {
    let mut files = Vec::new();
    for target in TargetKind::ALL {
        let dir = corpus_root().join(target.name());
        let entries = fs::read_dir(&dir)
            .unwrap_or_else(|e| panic!("corpus dir {} must exist: {e}", dir.display()));
        for entry in entries {
            let path = entry.expect("readable corpus entry").path();
            if path.is_file() {
                files.push(path);
            }
        }
    }
    files.sort();
    files
}

#[test]
fn every_target_has_committed_seeds() {
    for target in TargetKind::ALL {
        let dir = corpus_root().join(target.name());
        let count = fs::read_dir(&dir)
            .map(|entries| entries.flatten().filter(|e| e.path().is_file()).count())
            .unwrap_or(0);
        assert!(
            count >= 2,
            "target {} has {count} seed files, want >= 2",
            target.name()
        );
    }
}

#[test]
fn corpus_files_are_clean_across_all_six_targets() {
    let files = corpus_files();
    assert!(!files.is_empty(), "no corpus files found");
    for path in &files {
        let data = fs::read(path).expect("corpus file is readable");
        for target in TargetKind::ALL {
            let verdict = run_target(target, &data);
            assert!(
                !verdict.is_finding(),
                "{} on target {}: {verdict:?}",
                path.display(),
                target.name()
            );
        }
    }
}

#[test]
fn own_target_seeds_are_accepted_or_structurally_rejected() {
    // Each target's own directory should exercise its happy path: at
    // least one file per target must be *accepted*, not merely rejected.
    for target in TargetKind::ALL {
        let dir = corpus_root().join(target.name());
        let mut accepted = 0;
        for entry in fs::read_dir(&dir).expect("corpus dir") {
            let path = entry.expect("entry").path();
            if !path.is_file() {
                continue;
            }
            let data = fs::read(&path).expect("readable");
            if run_target(target, &data) == afg_fuzz::Verdict::Ok {
                accepted += 1;
            }
        }
        assert!(
            accepted >= 1,
            "target {} has no accepted seed — corpus rotted",
            target.name()
        );
    }
}

#[test]
fn builtin_seeds_stay_in_sync_with_the_targets() {
    // The binary falls back to built-in seeds when no corpus is given;
    // those must stay healthy too.
    for target in TargetKind::ALL {
        for (i, seed) in builtin_seeds(target).iter().enumerate() {
            let verdict = run_target(target, seed);
            assert!(
                !verdict.is_finding(),
                "builtin seed {i} for {}: {verdict:?}",
                target.name()
            );
        }
    }
}
