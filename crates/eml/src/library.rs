//! Reusable correction rules and the error models used in the paper.
//!
//! The constructors here mirror Figure 8 (the `computeDeriv` error model:
//! `INDR`, `INITR`, `RANR`, `COMPR`, `RETR`) plus the generic rules the other
//! benchmark problems need (operand tweaks on arithmetic, off-by-one slice
//! bounds, string-literal swaps, ...).  Problem-specific models in
//! `afg-corpus` are assembled from these constructors.

use afg_ast::ops::BinOp;
use afg_ast::Expr;

use crate::rules::{CmpTemplate, ErrorModel, Pattern, Rule, Template};

/// `INDR`: `v[a] → v[{a+1, a−1, ?a}]` — fix list-access indices.
pub fn indr() -> Rule {
    Rule::expr(
        "INDR",
        Pattern::Index(
            Box::new(Pattern::AnyVar("v".into())),
            Box::new(Pattern::meta("a")),
        ),
        vec![Template::Index(
            Box::new(Template::meta("v")),
            Box::new(Template::SetOf(
                "a".into(),
                vec![
                    Template::meta_plus("a", 1),
                    Template::meta_plus("a", -1),
                    Template::AnyScopeVar,
                ],
            )),
        )],
    )
    .with_message("In the list access {original} in line {line}, change the index to {replacement}")
}

/// `INITR`: `v = n → v = {n+1, n−1, 0, 1}` — fix constant initialisations.
pub fn initr() -> Rule {
    Rule::init(
        "INITR",
        vec![
            Template::meta_plus("n", 1),
            Template::meta_plus("n", -1),
            Template::Int(0),
            Template::Int(1),
        ],
    )
    .with_message("In the initialization in line {line}, replace {original} with {replacement}")
}

/// `RANR` (two-argument form): `range(a0, a1) → range({a0, 0, 1, a0−1, a0+1}, {a1, a1+1, a1−1})`.
pub fn ranr2() -> Rule {
    Rule::expr(
        "RANR",
        Pattern::Call(
            "range".into(),
            vec![Pattern::meta("a0"), Pattern::meta("a1")],
        ),
        vec![Template::Call(
            "range".into(),
            vec![
                Template::SetOf(
                    "a0".into(),
                    vec![
                        Template::Int(0),
                        Template::Int(1),
                        Template::meta_plus("a0", -1),
                        Template::meta_plus("a0", 1),
                    ],
                ),
                Template::SetOf(
                    "a1".into(),
                    vec![Template::meta_plus("a1", 1), Template::meta_plus("a1", -1)],
                ),
            ],
        )],
    )
    .with_message(
        "In the expression {original} in line {line}, change the range bounds to {replacement}",
    )
}

/// `RANR` (one-argument form): `range(a0) → range({a0, a0+1, a0−1})`, also
/// allowing the iteration to start at 1.
pub fn ranr1() -> Rule {
    Rule::expr(
        "RANR1",
        Pattern::Call("range".into(), vec![Pattern::meta("a0")]),
        vec![
            Template::Call(
                "range".into(),
                vec![Template::SetOf(
                    "a0".into(),
                    vec![Template::meta_plus("a0", 1), Template::meta_plus("a0", -1)],
                )],
            ),
            Template::Call("range".into(), vec![Template::Int(1), Template::meta("a0")]),
        ],
    )
    .with_message(
        "In the expression {original} in line {line}, change the iteration bounds to {replacement}",
    )
}

/// `COMPR`: rewrite comparisons — change the operator, nudge either operand
/// by one, replace an operand by another variable in scope, or replace the
/// whole comparison by `True`/`False`.
pub fn compr() -> Rule {
    Rule::expr(
        "COMPR",
        Pattern::Compare(
            None,
            Box::new(Pattern::meta("a0")),
            Box::new(Pattern::meta("a1")),
        ),
        vec![
            Template::Compare(
                CmpTemplate::AnyRelational,
                Box::new(Template::SetOf(
                    "a0".into(),
                    vec![Template::meta_plus("a0", -1), Template::meta_plus("a0", 1)],
                )),
                Box::new(Template::SetOf(
                    "a1".into(),
                    vec![
                        Template::meta_plus("a1", -1),
                        Template::meta_plus("a1", 1),
                        Template::Int(0),
                        Template::Int(1),
                    ],
                )),
            ),
            Template::Bool(true),
            Template::Bool(false),
        ],
    )
    .with_message(
        "In the comparison expression {original} in line {line}, change it to {replacement}",
    )
}

/// `RETR`: rewrite return expressions with the `computeDeriv` corner cases —
/// return `[0]` for singleton inputs or drop the leading element.
pub fn retr_compute_deriv() -> Rule {
    Rule::ret(
        "RETR",
        vec![
            Template::List(vec![Template::Int(0)]),
            Template::IfExpr(
                Box::new(Template::List(vec![Template::Int(0)])),
                Box::new(Template::Compare(
                    CmpTemplate::Fixed(afg_ast::ops::CmpOp::Eq),
                    Box::new(Template::Call("len".into(), vec![Template::meta("a")])),
                    Box::new(Template::Int(1)),
                )),
                Box::new(Template::meta("a")),
            ),
            Template::Slice(Box::new(Template::meta("a")), Some(Box::new(Template::Int(1))), None),
        ],
    )
    .with_message("In the return statement return {original} in line {line}, replace {original} with {replacement}")
}

/// A generic return rule: return `0`, `1`, the empty list or a slice of the
/// returned expression instead.
pub fn retr_generic() -> Rule {
    Rule::ret(
        "RETR",
        vec![
            Template::Int(0),
            Template::Int(1),
            Template::List(vec![]),
            Template::Slice(Box::new(Template::meta("a")), Some(Box::new(Template::Int(1))), None),
        ],
    )
    .with_message("In the return statement return {original} in line {line}, replace {original} with {replacement}")
}

/// Operand tweak for arithmetic: `a0 ⊕ a1 → {a0⊕a1 ±1}` and swapped-operator
/// variants (`+`↔`-`, `*`↔`**`), covering the iterPower/recurPower mistakes.
pub fn arith_op_rule() -> Rule {
    Rule::expr(
        "ARITHR",
        Pattern::BinOp(
            None,
            Box::new(Pattern::meta("a0")),
            Box::new(Pattern::meta("a1")),
        ),
        vec![
            Template::BinOp(
                BinOp::Add,
                Box::new(Template::meta("a0")),
                Box::new(Template::meta("a1")),
            ),
            Template::BinOp(
                BinOp::Sub,
                Box::new(Template::meta("a0")),
                Box::new(Template::meta("a1")),
            ),
            Template::BinOp(
                BinOp::Mul,
                Box::new(Template::meta("a0")),
                Box::new(Template::meta("a1")),
            ),
            Template::BinOp(
                BinOp::Pow,
                Box::new(Template::meta("a0")),
                Box::new(Template::meta("a1")),
            ),
        ],
    )
    .with_message("In the expression {original} in line {line}, change it to {replacement}")
}

/// Constant tweak anywhere: an integer literal may be off by one.
/// Deliberately *not* part of most models (it explodes the search space);
/// used by the richer E4/E5 models in the Figure 14(b) experiment.
pub fn const_tweak() -> Rule {
    Rule::expr(
        "CONSTR",
        Pattern::AnyConst("n".into()),
        vec![Template::meta_plus("n", 1), Template::meta_plus("n", -1)],
    )
    .with_message("In line {line}, replace the constant {original} with {replacement}")
}

/// Variable-swap rule: any variable reference may be replaced by another
/// in-scope variable.  Expensive; only the richest models include it.
pub fn var_swap() -> Rule {
    Rule::expr(
        "VARR",
        Pattern::AnyVar("v".into()),
        vec![Template::AnyScopeVar],
    )
    .with_message("In line {line}, replace the variable {original} with {replacement}")
}

/// Return-value rule for boolean problems (hangman1): flip the returned
/// boolean or return a comparison outcome.
pub fn retr_bool() -> Rule {
    Rule::ret("RETBOOL", vec![Template::Bool(true), Template::Bool(false)])
        .with_message("In the return statement in line {line}, return {replacement} instead")
}

/// The optional "add the missing singleton base case" statement insertion
/// used by the `computeDeriv` model (Figure 2(e)).
pub fn insert_compute_deriv_base_case(param: &str) -> Rule {
    let condition = Expr::compare(
        afg_ast::ops::CmpOp::Eq,
        Expr::call("len", vec![Expr::var(param)]),
        Expr::Int(1),
    );
    let body = vec![afg_ast::Stmt::synthetic(afg_ast::StmtKind::Return(Some(
        Expr::List(vec![Expr::Int(0)]),
    )))];
    let stmt = afg_ast::Stmt::synthetic(afg_ast::StmtKind::If(condition, body, vec![]));
    Rule::insert_top("BASECASE", vec![stmt])
        .with_message("Add the base case at the top to return [0] for len({param})=1")
}

/// The simplified three-rule model used for exposition in paper §2.1.
pub fn section_2_1_model() -> ErrorModel {
    ErrorModel::new("computeDeriv-simple")
        .with_rule(
            Rule::ret("RETR", vec![Template::List(vec![Template::Int(0)])]).with_message(
                "In the return statement return {original} in line {line}, replace {original} by {replacement}",
            ),
        )
        .with_rule(
            Rule::expr(
                "RANR",
                Pattern::Call("range".into(), vec![Pattern::meta("a1"), Pattern::meta("a2")]),
                vec![Template::Call(
                    "range".into(),
                    vec![Template::meta_plus("a1", 1), Template::meta("a2")],
                )],
            )
            .with_message("In the expression {original} in line {line}, increment the lower bound by 1"),
        )
        .with_rule(
            Rule::expr(
                "EQFALSE",
                Pattern::Compare(
                    Some(afg_ast::ops::CmpOp::Eq),
                    Box::new(Pattern::meta("a0")),
                    Box::new(Pattern::meta("a1")),
                ),
                vec![Template::Bool(false)],
            )
            .with_message("In the comparison expression {original} in line {line}, change {original} to False"),
        )
}

/// The full `computeDeriv` error model of Figure 8 (`E`): `INDR`, `INITR`,
/// `RANR`, `COMPR`, `RETR`, plus the optional base-case insertion.
pub fn compute_deriv_model() -> ErrorModel {
    ErrorModel::new("computeDeriv")
        .with_rule(retr_compute_deriv())
        .with_rule(ranr2())
        .with_rule(ranr1())
        .with_rule(compr())
        .with_rule(initr())
        .with_rule(indr())
        .with_rule(insert_compute_deriv_base_case("poly"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_library_rules_are_well_formed() {
        for rule in [
            indr(),
            initr(),
            ranr2(),
            ranr1(),
            compr(),
            retr_compute_deriv(),
            retr_generic(),
            arith_op_rule(),
            const_tweak(),
            var_swap(),
            retr_bool(),
            insert_compute_deriv_base_case("poly"),
        ] {
            assert!(
                rule.is_well_formed(),
                "rule {} is not well-formed",
                rule.name
            );
        }
        assert!(section_2_1_model().is_well_formed());
        assert!(compute_deriv_model().is_well_formed());
    }

    #[test]
    fn compute_deriv_model_has_the_figure_8_rules() {
        let model = compute_deriv_model();
        let names: Vec<&str> = model.rules.iter().map(|r| r.name.as_str()).collect();
        for expected in ["INDR", "INITR", "RANR", "COMPR", "RETR"] {
            assert!(
                names.contains(&expected),
                "missing rule {expected} in {names:?}"
            );
        }
    }

    #[test]
    fn messages_are_attached_to_rules() {
        assert!(indr().message.unwrap().contains("{line}"));
        assert!(compr().message.unwrap().contains("{original}"));
    }
}
