//! Greedy reproducer shrinking: chunk removal at halving granularity,
//! then token-level simplification.  `keep` must return true while the
//! candidate still exhibits the original finding (same verdict class and
//! deduplication key), so every step preserves the bug.

/// Shrinks `data` while `keep` stays true.  Deterministic: no randomness,
/// fixed scan order, bounded passes.
pub fn minimize(data: &[u8], keep: &mut dyn FnMut(&[u8]) -> bool) -> Vec<u8> {
    let mut best = data.to_vec();
    // Phase 1: greedy chunk removal, halving the chunk size each round.
    let mut chunk = (best.len() / 2).max(1);
    while chunk >= 1 {
        let mut start = 0;
        while start < best.len() {
            let end = (start + chunk).min(best.len());
            let mut candidate = Vec::with_capacity(best.len() - (end - start));
            candidate.extend_from_slice(&best[..start]);
            candidate.extend_from_slice(&best[end..]);
            if keep(&candidate) {
                best = candidate;
                // Do not advance: the next chunk shifted into `start`.
            } else {
                start += chunk;
            }
        }
        if chunk == 1 {
            break;
        }
        chunk /= 2;
    }
    // Phase 2: token-level shrinking — canonicalize every byte we can to
    // a small alphabet so reproducers read cleanly in a test file.
    for i in 0..best.len() {
        for replacement in [b'0', b'a', b' '] {
            if best[i] == replacement {
                break;
            }
            let saved = best[i];
            best[i] = replacement;
            if keep(&best) {
                break;
            }
            best[i] = saved;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrinks_to_the_essential_substring() {
        // The "bug" fires whenever the input contains `((((`.
        let data = b"prefix garbage (((( suffix garbage".to_vec();
        let minimized = minimize(&data, &mut |candidate: &[u8]| {
            candidate.windows(4).any(|w| w == b"((((")
        });
        assert_eq!(minimized, b"((((");
    }

    #[test]
    fn canonicalizes_irrelevant_bytes() {
        // Only the length matters; bytes should all collapse to '0'.
        let data = vec![0xF7u8; 5];
        let minimized = minimize(&data, &mut |candidate: &[u8]| candidate.len() >= 3);
        assert_eq!(minimized, vec![b'0'; 3]);
    }

    #[test]
    fn keeps_input_when_nothing_can_go() {
        let data = b"xy".to_vec();
        let minimized = minimize(&data, &mut |candidate: &[u8]| candidate == b"xy");
        assert_eq!(minimized, b"xy");
    }
}
