//! Lexer and parser for MPY, the mini-Python subset used by the automated
//! feedback generator.
//!
//! The paper's tool uses CPython's `ast` module as its front end; this crate
//! plays the same role for our reproduction.  It accepts the Python subset
//! that every benchmark program in the paper's evaluation needs — function
//! definitions, assignments (plain and augmented), `if`/`elif`/`else`,
//! `while`, `for ... in ...`, `return`, `print`, integer/string/list/tuple/
//! dict literals, slicing, method calls, boolean and comparison operators,
//! and conditional expressions — and rejects everything else with a
//! [`ParseError`] carrying a line and column.
//!
//! Submissions that fail to parse are the "syntax errors" column of the
//! paper's Table 1: they are removed from the test set before grading.
//!
//! # Example
//!
//! ```
//! let source = "\
//! def computeDeriv(poly_list_int):
//!     result = []
//!     for i in range(len(poly_list_int)):
//!         result += [i * poly_list_int[i]]
//!     if len(poly_list_int) == 1:
//!         return result
//!     else:
//!         return result[1:]
//! ";
//! let program = afg_parser::parse_program(source)?;
//! assert_eq!(program.funcs.len(), 1);
//! assert_eq!(program.funcs[0].name, "computeDeriv");
//! // The `_list_int` suffix declares the parameter type (paper §2.1).
//! assert_eq!(program.funcs[0].params[0].ty, afg_ast::types::MpyType::list_int());
//! # Ok::<(), afg_parser::ParseError>(())
//! ```

pub mod lexer;
mod parser;

use std::error::Error;
use std::fmt;

pub use lexer::{tokenize, Token, TokenKind};
pub use parser::Parser;

use afg_ast::{Expr, Program};

/// A syntax error with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the error.
    pub line: u32,
    /// 1-based column of the error.
    pub col: u32,
    /// Human-readable description.
    pub message: String,
}

impl ParseError {
    /// Creates a new parse error.
    pub fn new(line: u32, col: u32, message: impl Into<String>) -> ParseError {
        ParseError {
            line,
            col,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "syntax error at line {}, column {}: {}",
            self.line, self.col, self.message
        )
    }
}

impl Error for ParseError {}

/// Parses a complete MPY program (function definitions plus optional
/// top-level statements).
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first lexical or syntactic
/// problem encountered.
pub fn parse_program(source: &str) -> Result<Program, ParseError> {
    let tokens = tokenize(source)?;
    Parser::new(tokens).parse_program()
}

/// Parses a single MPY expression (no trailing input allowed).
///
/// Used by the EML rule parser and by tests.
///
/// # Errors
///
/// Returns a [`ParseError`] if the input is not exactly one expression.
pub fn parse_expr(source: &str) -> Result<Expr, ParseError> {
    let tokens = tokenize(source)?;
    Parser::new(tokens).parse_single_expr()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_error_displays_position() {
        let err = ParseError::new(3, 7, "unexpected token");
        assert_eq!(
            err.to_string(),
            "syntax error at line 3, column 7: unexpected token"
        );
    }

    #[test]
    fn parse_expr_accepts_only_one_expression() {
        assert!(parse_expr("1 + 2").is_ok());
        assert!(parse_expr("1 + ").is_err());
        assert!(parse_expr("x = 1").is_err());
    }
}
