//! Coverage-guided mutational fuzzer for the untrusted-input surface.
//!
//! The autograder's whole job is to eat adversarial input: student
//! submissions hit `afg-parser`, error models hit `afg-eml`, service
//! payloads hit `afg-json`, and everything that parses is then executed
//! by the interpreter/VM.  This crate institutionalizes the discovery
//! loop that PR 4/5's seeded differential tests ran by hand:
//!
//! * **Targets** ([`targets`]) — the three decoders (crash-freedom: every
//!   input must parse or return a structured error) plus two differential
//!   targets (the i128-widened arithmetic oracle vs `binary_op`, and the
//!   bytecode VM vs the tree walker on value/output/error/fuel).
//! * **Coverage** ([`cover`]) — an AFL-style branch-edge map fed by the
//!   feature-gated `afg_cov::cov_hit!` hooks compiled into the parsers
//!   and interpreter.  Off by default; `--features coverage` turns it on.
//! * **Mutation** ([`mutate`]) — seeded SplitMix64 byte mutations with a
//!   cross-target dictionary; no entropy outside the `--seed`.
//! * **Minimization** ([`minimize`]) — greedy chunk removal plus
//!   token-level canonicalization, preserving the finding's dedup key.
//! * **Loop** ([`fuzzer`]) — corpus → mutate → execute → retain novelty,
//!   emitting minimized reproducers as ready-to-paste `#[test]` snippets
//!   and a JSON summary that CI asserts over (`new_crashes == 0`).
//!
//! Run locally with:
//!
//! ```text
//! cargo run --release -p afg-fuzz --features coverage --bin fuzz -- \
//!     --target parser --max-execs 50000 --seed 1 --corpus fuzz/corpus/parser
//! ```

pub mod cover;
pub mod fuzzer;
pub mod minimize;
pub mod mutate;
pub mod rng;
pub mod targets;

pub use cover::CoverageMap;
pub use fuzzer::{builtin_seeds, run, Config, Finding, Summary};
pub use minimize::minimize;
pub use rng::SplitMix64;
pub use targets::{run_target, TargetKind, Verdict};
