//! Compile-once, sweep-many verification core: a flat bytecode lowering of
//! MPY / M̃PY programs plus a loop-based VM.
//!
//! The synthesis inner loop evaluates one candidate space on thousands of
//! (assignment × input) pairs.  The tree walkers re-resolve every local
//! through a `HashMap` frame and re-discover every choice site on every
//! run; the compiler here does that work once per submission instead:
//!
//! * locals are resolved to dense frame **slots** at compile time,
//! * constants are interned into a constant pool,
//! * calls are resolved at compile time (entry / helper / builtin / print /
//!   input / `NameError`), and
//! * choice sites become **indexed dispatch** — a `ChoiceJump` through a
//!   per-site jump table, or an operator table lookup — over a dense
//!   per-candidate selection array, so no candidate AST is ever
//!   materialised and no `BTreeMap` is consulted mid-run.
//!
//! Fuel parity is by construction: a one-unit [`Instr::Charge`] is emitted
//! at exactly the points where [`crate::interp::Interpreter`] calls
//! `charge(1)` (statement entry, expression-node entry, loop iterations),
//! and choice constructs charge nothing, exactly like
//! [`crate::choice_eval`].  The `properties` integration test enforces
//! result + output + fuel agreement differentially.
//!
//! Programs using a construct the compiler does not support (currently:
//! mutating method calls whose receiver is an index expression or is
//! itself choice-bearing, where the tree walker re-evaluates the write-back
//! target) fail to compile; callers fall back to the tree walker, which
//! remains the semantic ground truth and the cold path for feedback
//! rendering.

use std::collections::HashMap;

use afg_ast::ops::{BinOp, BoolOp, CmpOp, UnaryOp};
use afg_ast::{Expr, FuncDef, Program, Stmt, StmtKind, Target};
use afg_eml::{CExpr, CStmt, CStmtKind, ChoiceAssignment, ChoiceId, ChoiceProgram, OpChoice};

use crate::builtins;
use crate::error::RuntimeError;
use crate::interp::{
    binary_op, compare_op, iterable_items, load_index, slice_value, store_index, unary_op,
    ExecLimits, Outcome,
};
use crate::value::Value;

/// One VM instruction.  Jump targets are absolute indices into the owning
/// function's code vector.
#[derive(Debug, Clone, Copy)]
enum Instr {
    /// Spend one fuel unit (mirrors `Interpreter::charge(1)`).
    Charge,
    /// Spend `n` fuel units — the peephole fusion of `n` adjacent
    /// [`Instr::Charge`]s.  On shortfall the remaining fuel is drained
    /// before erroring, so `fuel_used` matches charging one unit at a time.
    ChargeN(u32),
    /// `Charge` + `Const` fused (every literal expression).
    ChargeConst(u32),
    /// `Charge` + `LoadSlot` fused (every variable read).
    ChargeLoad(u32),
    /// Push a clone of the interned constant.
    Const(u32),
    /// Push a clone of the slot value; `NameError` if unset.
    LoadSlot(u32),
    /// Pop into the slot.
    StoreSlot(u32),
    /// `NameError` when the slot is unset; no stack effect.  Emitted where
    /// a specialised instruction reads a slot *after* evaluating other
    /// operands, to keep the tree walker's error order.
    CheckSlot(u32),
    /// `[.., index]` → `[.., slot[index]]` — indexing a variable without
    /// cloning the whole container.  The slot is checked by a preceding
    /// `CheckSlot` and cannot be mutated in between (the compiler only
    /// emits this when the index expression contains no method call).
    LoadIndexSlot(u32),
    /// Push `len(slot)` without cloning the container (`NameError` /
    /// `TypeError` exactly like `LoadSlot` + the `len` builtin).
    LenSlot(u32),
    Pop,
    PopN(u32),
    Jump(usize),
    /// Pop; jump when falsy.
    JumpIfFalsePop(usize),
    /// Peek; jump when falsy keeping the value, else pop (Python `and`).
    JumpIfFalsePeek(usize),
    /// Peek; jump when truthy keeping the value, else pop (Python `or`).
    JumpIfTruePeek(usize),
    MakeList(u32),
    MakeTuple(u32),
    /// Pop `2n` key/value pairs, deduplicate by `py_eq` like a dict literal.
    MakeDict(u32),
    /// `[.., base, index]` → `[.., base[index]]`.
    LoadIndex,
    /// `[.., value, index, base]` → `[.., base']` (mutated container).
    StoreIndex,
    /// `[.., base, lower?, upper?]` → `[.., base[lower:upper]]`.
    Slice {
        has_lower: bool,
        has_upper: bool,
    },
    /// `[.., l, r]` → `[.., l op r]`.
    BinaryOp(BinOp),
    /// `[.., rhs, current]` → `[.., current op rhs]` (augmented assign).
    BinaryOpAug(BinOp),
    /// Operator chosen from a table by the candidate selection.
    BinaryOpChoice {
        site: u32,
        table: u32,
    },
    UnaryOpI(UnaryOp),
    CompareOpI(CmpOp),
    CompareOpChoice {
        site: u32,
        table: u32,
    },
    /// `[.., l]` → `[.., l op slot]` — the right operand is read from its
    /// slot by reference (no container clone; the big win is `x in v` on a
    /// list or string).  Raises the slot's `NameError` itself, at exactly
    /// the point the tree walker would evaluate the right-hand variable.
    CompareSlot {
        op: CmpOp,
        slot: u32,
    },
    /// [`Instr::CompareSlot`] with the operator chosen from a table by the
    /// candidate selection.
    CompareChoiceSlot {
        site: u32,
        table: u32,
        slot: u32,
    },
    /// Fused `CompareOpI` + `JumpIfFalsePop` (peephole; never spans a jump
    /// target thanks to the emit fence).
    CmpJumpFalse {
        op: CmpOp,
        target: usize,
    },
    /// Fused `CompareOpChoice` + `JumpIfFalsePop`.
    CmpChoiceJumpFalse {
        site: u32,
        table: u32,
        target: usize,
    },
    /// Fused `CompareSlot` + `JumpIfFalsePop`.
    CmpSlotJumpFalse {
        op: CmpOp,
        slot: u32,
        target: usize,
    },
    /// Pop `n` values, join their display strings, append an output line.
    PrintStmt(u32),
    /// Like `PrintStmt` but pushes `None` (the `print(...)` call form).
    PrintExpr(u32),
    /// Pop the next stdin value (or `ValueError` when exhausted).
    Input {
        raw: bool,
    },
    /// Call compiled function `func` with the top `argc` stack values.
    CallFunc {
        func: u32,
        argc: u32,
    },
    CallBuiltin {
        name: u32,
        argc: u32,
    },
    /// Method call; `wb_slot` receives the mutated receiver (u32::MAX: the
    /// receiver has no assignable location and the mutation is dropped).
    CallMethod {
        name: u32,
        argc: u32,
        wb_slot: u32,
    },
    /// Method call on a variable receiver, run **in place** on the slot —
    /// no receiver clone, no write-back (`v.append(x)` goes from O(len)
    /// to O(1)).  Requires a preceding `CheckSlot` and arguments that
    /// cannot mutate the slot; errors are terminal in MPY, so a partial
    /// in-place mutation before an error is unobservable.
    CallMethodSlot {
        name: u32,
        argc: u32,
        slot: u32,
    },
    /// Pop a sequence, push its `n` items (first item on top) for tuple
    /// unpacking; `TypeError` / `ValueError` like the tree walker.
    Unpack(u32),
    /// Raise the interned error.
    Raise(u32),
    /// Pop the return value and leave the frame.
    ReturnV,
    ReturnNone,
    /// Jump through a per-site jump table indexed by the selection array.
    ChoiceJump {
        site: u32,
        table: u32,
    },
    /// Pop an iterable, push its item iterator (eager, like the walker).
    IterPrep,
    /// Pop `argc` range arguments and push a **lazy** counting iterator —
    /// the `for v in range(...)` specialisation.  Validation, errors and
    /// the `MAX_RANGE` bound replicate the eager builtin exactly; only the
    /// list materialisation (the hottest allocation in a sweep) is gone.
    RangePrep(u32),
    /// Advance the innermost iterator: exhausted → jump `end`; else charge
    /// one unit and store the item into `slot`.
    ForNext {
        slot: u32,
        end: usize,
    },
    PopIter,
}

/// A function lowered to bytecode.
#[derive(Debug, Clone)]
struct CompiledFunc {
    name: String,
    /// Slot index for each parameter position, in declaration order.
    param_slots: Vec<u32>,
    n_slots: usize,
    /// Slot index → variable name, for `NameError` messages.
    slot_names: Vec<String>,
    code: Vec<Instr>,
    jump_tables: Vec<Vec<usize>>,
    bin_tables: Vec<Vec<BinOp>>,
    cmp_tables: Vec<Vec<CmpOp>>,
}

/// A whole program (entry plus helpers) lowered to bytecode, reusable
/// across any number of (assignment × input) evaluations.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    funcs: Vec<CompiledFunc>,
    entry: usize,
    consts: Vec<Value>,
    names: Vec<String>,
    errors: Vec<RuntimeError>,
    /// Dense site index → original choice id (empty for plain programs).
    site_ids: Vec<ChoiceId>,
    /// Reverse of `site_ids`, so loading an assignment costs one lookup
    /// per *non-default* selection instead of one per site.
    site_map: HashMap<ChoiceId, u32>,
}

impl CompiledProgram {
    /// Compiles a plain MPY program around its entry function.  Returns
    /// `None` when the program has no entry or uses an unsupported
    /// construct — callers fall back to the tree walker.
    pub fn from_program(program: &Program, entry: Option<&str>) -> Option<CompiledProgram> {
        let entry_index = program
            .funcs
            .iter()
            .position(|f| Some(f) == program.entry(entry))?;
        let mut pools = Pools::default();
        let resolver = Resolver {
            choice_entry: None,
            func_names: program.funcs.iter().map(|f| f.name.clone()).collect(),
        };
        let mut funcs = Vec::with_capacity(program.funcs.len());
        for func in &program.funcs {
            funcs.push(compile_func(func, &resolver, &mut pools).ok()?);
        }
        Some(pools.finish(funcs, entry_index))
    }

    /// Compiles a choice program: the choice-bearing entry function plus
    /// the student's helpers.  Returns `None` on unsupported constructs.
    pub fn from_choice(program: &ChoiceProgram) -> Option<CompiledProgram> {
        let mut pools = Pools::default();
        let mut func_names = vec![program.func.name.clone()];
        func_names.extend(program.other_funcs.iter().map(|f| f.name.clone()));
        let resolver = Resolver {
            choice_entry: Some(program.func.name.clone()),
            func_names,
        };
        let mut funcs = vec![compile_cfunc(&program.func, &resolver, &mut pools).ok()?];
        for func in &program.other_funcs {
            funcs.push(compile_func(func, &resolver, &mut pools).ok()?);
        }
        Some(pools.finish(funcs, 0))
    }

    /// Number of distinct choice sites compiled to indexed dispatch.
    pub fn site_count(&self) -> usize {
        self.site_ids.len()
    }
}

/// A live loop iterator: materialised items, or the lazy `range` form.
#[derive(Debug, Clone)]
enum VmIter {
    /// Items of a list / tuple / string / dict, in order.
    Items(std::vec::IntoIter<Value>),
    /// Lazy `range(...)`: no list is ever built.  `RangePrep` has already
    /// walked the whole index sequence (bounding and overflow checks
    /// included), so advancing with a wrapping add reproduces exactly the
    /// items the eager builtin would have materialised.
    Range {
        next: i64,
        step: i64,
        remaining: u64,
    },
}

impl VmIter {
    fn next(&mut self) -> Option<Value> {
        match self {
            VmIter::Items(items) => items.next(),
            VmIter::Range {
                next,
                step,
                remaining,
            } => {
                if *remaining == 0 {
                    return None;
                }
                *remaining -= 1;
                let item = Value::Int(*next);
                *next = next.wrapping_add(*step);
                Some(item)
            }
        }
    }
}

/// One recorded choice-site consultation: the site, the option count at
/// the consulting instruction (`bound`), and the effective (clamped)
/// option the run took.  A run's behaviour is a pure function of its
/// input and this sequence, which is what makes sweep verdicts cacheable
/// across candidates (see `equiv::VerdictCache`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceStep {
    /// Choice-site index (into the compiled program's `site_ids`).
    pub site: u32,
    /// Option count at the consulting instruction; effective options are
    /// clamped to `bound - 1` exactly like dispatch does.
    pub bound: u32,
    /// The clamped option the run actually took.
    pub option: u32,
}

/// Reusable execution scratch: operand stack, slot arena, iterator stack
/// and the per-candidate selection array.  One `Vm` serves a whole sweep —
/// nothing is reallocated between runs.
#[derive(Debug, Clone)]
pub struct Vm {
    limits: ExecLimits,
    fuel: u64,
    depth: u32,
    /// Pooled print lines: only `output[..output_len]` belongs to the
    /// current run; the tail keeps its heap capacity for reuse.
    output: Vec<String>,
    output_len: usize,
    stack: Vec<Value>,
    slots: Vec<Option<Value>>,
    iters: Vec<VmIter>,
    selection: Vec<usize>,
    trace: Vec<TraceStep>,
    stdin: Vec<Value>,
    stdin_pos: usize,
}

impl Vm {
    /// Creates a VM with the given limits.
    pub fn new(limits: ExecLimits) -> Vm {
        Vm {
            limits,
            fuel: limits.fuel,
            depth: 0,
            output: Vec::new(),
            output_len: 0,
            stack: Vec::new(),
            slots: Vec::new(),
            iters: Vec::new(),
            selection: Vec::new(),
            trace: Vec::new(),
            stdin: Vec::new(),
            stdin_pos: 0,
        }
    }

    /// The candidate selection loaded by [`Vm::select`].
    pub fn selection(&self) -> &[usize] {
        &self.selection
    }

    /// The choice-site consultations of the last run, in execution order.
    pub fn trace(&self) -> &[TraceStep] {
        &self.trace
    }

    /// Reads the selected option for `site`, clamped to the consulting
    /// instruction's option count, and records the consultation.
    #[inline]
    fn choose(&mut self, site: u32, bound: usize) -> usize {
        let option = self.selection[site as usize].min(bound - 1);
        self.trace.push(TraceStep {
            site,
            bound: bound as u32,
            option: option as u32,
        });
        option
    }

    /// Loads the candidate selection for `program`'s choice sites.  Must be
    /// called before running a choice program; option indices are clamped
    /// per use site exactly like `concretize`.
    pub fn select(&mut self, program: &CompiledProgram, assignment: &ChoiceAssignment) {
        // Candidates differ from the default in at most a handful of
        // sites (the repair cost), so zero-fill plus the non-default
        // entries beats a per-site assignment lookup.
        self.selection.clear();
        self.selection.resize(program.site_ids.len(), 0);
        for (id, option) in assignment.non_default() {
            if let Some(&site) = program.site_map.get(&id) {
                self.selection[site as usize] = option;
            }
        }
    }

    /// Runs the program's entry function on `args`.
    ///
    /// # Errors
    ///
    /// Any [`RuntimeError`], with message and fuel parity with the tree
    /// walker.
    pub fn run(
        &mut self,
        program: &CompiledProgram,
        args: &[Value],
    ) -> Result<Outcome, RuntimeError> {
        self.run_for_check(program, args)?;
        let value = self.stack.pop().unwrap_or(Value::None);
        let mut output = std::mem::take(&mut self.output);
        output.truncate(self.output_len);
        Ok(Outcome { value, output })
    }

    /// Like [`Vm::run`] but leaves the outcome inside the VM — return
    /// value on the stack, printed lines in the output buffer — so sweep
    /// checks can compare by reference instead of moving the output
    /// vector (and its heap capacity) out of the scratch on every run.
    pub fn run_for_check(
        &mut self,
        program: &CompiledProgram,
        args: &[Value],
    ) -> Result<(), RuntimeError> {
        self.fuel = self.limits.fuel;
        self.depth = 0;
        self.output_len = 0;
        self.trace.clear();
        self.stack.clear();
        self.slots.clear();
        self.iters.clear();
        self.stdin_pos = 0;
        self.stack.extend(args.iter().cloned());
        self.call(program, program.entry, args.len())
    }

    /// Compares the outcome left by [`Vm::run_for_check`] against an
    /// expected one, with [`Outcome`]-matching semantics (`py_eq` on the
    /// value, line-exact output when `compare_output` is set).
    pub fn outcome_matches(&self, expected: &Outcome, compare_output: bool) -> bool {
        let value = self.stack.last().unwrap_or(&Value::None);
        value.py_eq(&expected.value)
            && (!compare_output || self.output[..self.output_len] == expected.output[..])
    }

    /// Fuel consumed by the last [`Vm::run`] (complete or not).
    pub fn fuel_used(&self) -> u64 {
        self.limits.fuel - self.fuel
    }

    fn call(
        &mut self,
        program: &CompiledProgram,
        func_idx: usize,
        argc: usize,
    ) -> Result<(), RuntimeError> {
        let func = &program.funcs[func_idx];
        // Depth before arity, like `call_func` / `call_choice_func`.
        if self.depth >= self.limits.max_recursion {
            return Err(RuntimeError::RecursionLimit);
        }
        if func.param_slots.len() != argc {
            return Err(RuntimeError::Type(format!(
                "{}() takes {} arguments ({} given)",
                func.name,
                func.param_slots.len(),
                argc
            )));
        }
        let slot_base = self.slots.len();
        self.slots.resize(slot_base + func.n_slots, None);
        let args_start = self.stack.len() - argc;
        for (i, value) in self.stack.drain(args_start..).enumerate() {
            self.slots[slot_base + func.param_slots[i] as usize] = Some(value);
        }
        self.depth += 1;
        let result = self.exec(program, func, slot_base);
        self.depth -= 1;
        self.slots.truncate(slot_base);
        result.map(|value| self.stack.push(value))
    }

    fn exec(
        &mut self,
        program: &CompiledProgram,
        func: &CompiledFunc,
        slot_base: usize,
    ) -> Result<Value, RuntimeError> {
        let stack_base = self.stack.len();
        let iter_base = self.iters.len();
        let result = self.exec_inner(program, func, slot_base);
        self.stack.truncate(stack_base);
        self.iters.truncate(iter_base);
        result
    }

    #[allow(clippy::too_many_lines)]
    fn exec_inner(
        &mut self,
        program: &CompiledProgram,
        func: &CompiledFunc,
        slot_base: usize,
    ) -> Result<Value, RuntimeError> {
        let code = &func.code;
        let mut pc = 0usize;
        loop {
            let instr = code[pc];
            pc += 1;
            match instr {
                Instr::Charge => {
                    if self.fuel < 1 {
                        return Err(RuntimeError::FuelExhausted);
                    }
                    self.fuel -= 1;
                }
                Instr::ChargeN(n) => {
                    let n = u64::from(n);
                    if self.fuel < n {
                        // Sequential one-unit charges would drain the tank
                        // before erroring; match their `fuel_used`.
                        self.fuel = 0;
                        return Err(RuntimeError::FuelExhausted);
                    }
                    self.fuel -= n;
                }
                Instr::ChargeConst(i) => {
                    if self.fuel < 1 {
                        return Err(RuntimeError::FuelExhausted);
                    }
                    self.fuel -= 1;
                    self.stack.push(program.consts[i as usize].clone());
                }
                Instr::ChargeLoad(s) => {
                    if self.fuel < 1 {
                        return Err(RuntimeError::FuelExhausted);
                    }
                    self.fuel -= 1;
                    match &self.slots[slot_base + s as usize] {
                        Some(value) => {
                            let value = value.clone();
                            self.stack.push(value);
                        }
                        None => {
                            return Err(RuntimeError::Name(format!(
                                "name '{}' is not defined",
                                func.slot_names[s as usize]
                            )))
                        }
                    }
                }
                Instr::Const(i) => self.stack.push(program.consts[i as usize].clone()),
                Instr::LoadSlot(s) => match &self.slots[slot_base + s as usize] {
                    Some(value) => {
                        let value = value.clone();
                        self.stack.push(value);
                    }
                    None => {
                        return Err(RuntimeError::Name(format!(
                            "name '{}' is not defined",
                            func.slot_names[s as usize]
                        )))
                    }
                },
                Instr::StoreSlot(s) => {
                    let value = self.stack.pop().expect("store operand");
                    self.slots[slot_base + s as usize] = Some(value);
                }
                Instr::CheckSlot(s) => {
                    if self.slots[slot_base + s as usize].is_none() {
                        return Err(RuntimeError::Name(format!(
                            "name '{}' is not defined",
                            func.slot_names[s as usize]
                        )));
                    }
                }
                Instr::LoadIndexSlot(s) => {
                    let index = self.stack.pop().expect("index operand");
                    let base = self.slots[slot_base + s as usize]
                        .as_ref()
                        .expect("slot checked before indexing");
                    let value = load_index(base, &index)?;
                    self.stack.push(value);
                }
                Instr::LenSlot(s) => match &self.slots[slot_base + s as usize] {
                    Some(value) => {
                        let len = match value {
                            Value::Str(s) => s.chars().count() as i64,
                            Value::List(items) | Value::Tuple(items) => items.len() as i64,
                            Value::Dict(items) => items.len() as i64,
                            other => {
                                return Err(RuntimeError::Type(format!(
                                    "object of type '{}' has no len()",
                                    other.type_name()
                                )))
                            }
                        };
                        self.stack.push(Value::Int(len));
                    }
                    None => {
                        return Err(RuntimeError::Name(format!(
                            "name '{}' is not defined",
                            func.slot_names[s as usize]
                        )))
                    }
                },
                Instr::Pop => {
                    self.stack.pop();
                }
                Instr::PopN(n) => {
                    let keep = self.stack.len() - n as usize;
                    self.stack.truncate(keep);
                }
                Instr::Jump(t) => pc = t,
                Instr::JumpIfFalsePop(t) => {
                    let value = self.stack.pop().expect("condition");
                    if !value.is_truthy() {
                        pc = t;
                    }
                }
                Instr::JumpIfFalsePeek(t) => {
                    let truthy = self.stack.last().expect("operand").is_truthy();
                    if truthy {
                        self.stack.pop();
                    } else {
                        pc = t;
                    }
                }
                Instr::JumpIfTruePeek(t) => {
                    let truthy = self.stack.last().expect("operand").is_truthy();
                    if truthy {
                        pc = t;
                    } else {
                        self.stack.pop();
                    }
                }
                Instr::MakeList(n) => {
                    let start = self.stack.len() - n as usize;
                    let items: Vec<Value> = self.stack.drain(start..).collect();
                    self.stack.push(Value::List(items));
                }
                Instr::MakeTuple(n) => {
                    let start = self.stack.len() - n as usize;
                    let items: Vec<Value> = self.stack.drain(start..).collect();
                    self.stack.push(Value::Tuple(items));
                }
                Instr::MakeDict(n) => {
                    let start = self.stack.len() - 2 * n as usize;
                    let flat: Vec<Value> = self.stack.drain(start..).collect();
                    let mut entries: Vec<(Value, Value)> = Vec::with_capacity(n as usize);
                    let mut it = flat.into_iter();
                    while let (Some(key), Some(value)) = (it.next(), it.next()) {
                        if let Some(existing) = entries.iter_mut().find(|(k, _)| k.py_eq(&key)) {
                            existing.1 = value;
                        } else {
                            entries.push((key, value));
                        }
                    }
                    self.stack.push(Value::Dict(entries));
                }
                Instr::LoadIndex => {
                    let index = self.stack.pop().expect("index");
                    let base = self.stack.pop().expect("base");
                    self.stack.push(load_index(&base, &index)?);
                }
                Instr::StoreIndex => {
                    let mut base = self.stack.pop().expect("base");
                    let index = self.stack.pop().expect("index");
                    let value = self.stack.pop().expect("value");
                    store_index(&mut base, &index, value)?;
                    self.stack.push(base);
                }
                Instr::Slice {
                    has_lower,
                    has_upper,
                } => {
                    let upper = if has_upper { self.stack.pop() } else { None };
                    let lower = if has_lower { self.stack.pop() } else { None };
                    let base = self.stack.pop().expect("base");
                    self.stack
                        .push(slice_value(&base, lower.as_ref(), upper.as_ref())?);
                }
                Instr::BinaryOp(op) => {
                    let r = self.stack.pop().expect("rhs");
                    let l = self.stack.pop().expect("lhs");
                    self.stack.push(binary_op(op, &l, &r)?);
                }
                Instr::BinaryOpAug(op) => {
                    let current = self.stack.pop().expect("current");
                    let rhs = self.stack.pop().expect("rhs");
                    self.stack.push(binary_op(op, &current, &rhs)?);
                }
                Instr::BinaryOpChoice { site, table } => {
                    let ops = &func.bin_tables[table as usize];
                    let op = ops[self.choose(site, ops.len())];
                    let r = self.stack.pop().expect("rhs");
                    let l = self.stack.pop().expect("lhs");
                    self.stack.push(binary_op(op, &l, &r)?);
                }
                Instr::UnaryOpI(op) => {
                    let v = self.stack.pop().expect("operand");
                    self.stack.push(unary_op(op, &v)?);
                }
                Instr::CompareOpI(op) => {
                    let r = self.stack.pop().expect("rhs");
                    let l = self.stack.pop().expect("lhs");
                    self.stack.push(compare_op(op, &l, &r)?);
                }
                Instr::CompareOpChoice { site, table } => {
                    let ops = &func.cmp_tables[table as usize];
                    let op = ops[self.choose(site, ops.len())];
                    let r = self.stack.pop().expect("rhs");
                    let l = self.stack.pop().expect("lhs");
                    self.stack.push(compare_op(op, &l, &r)?);
                }
                Instr::CompareSlot { op, slot } => {
                    let l = self.stack.pop().expect("lhs");
                    let r = match &self.slots[slot_base + slot as usize] {
                        Some(v) => v,
                        None => {
                            return Err(RuntimeError::Name(format!(
                                "name '{}' is not defined",
                                func.slot_names[slot as usize]
                            )))
                        }
                    };
                    self.stack.push(compare_op(op, &l, r)?);
                }
                Instr::CompareChoiceSlot { site, table, slot } => {
                    let ops = &func.cmp_tables[table as usize];
                    let op = ops[self.choose(site, ops.len())];
                    let l = self.stack.pop().expect("lhs");
                    let r = match &self.slots[slot_base + slot as usize] {
                        Some(v) => v,
                        None => {
                            return Err(RuntimeError::Name(format!(
                                "name '{}' is not defined",
                                func.slot_names[slot as usize]
                            )))
                        }
                    };
                    self.stack.push(compare_op(op, &l, r)?);
                }
                Instr::CmpJumpFalse { op, target } => {
                    let r = self.stack.pop().expect("rhs");
                    let l = self.stack.pop().expect("lhs");
                    if !compare_op(op, &l, &r)?.is_truthy() {
                        pc = target;
                    }
                }
                Instr::CmpChoiceJumpFalse {
                    site,
                    table,
                    target,
                } => {
                    let ops = &func.cmp_tables[table as usize];
                    let op = ops[self.choose(site, ops.len())];
                    let r = self.stack.pop().expect("rhs");
                    let l = self.stack.pop().expect("lhs");
                    if !compare_op(op, &l, &r)?.is_truthy() {
                        pc = target;
                    }
                }
                Instr::CmpSlotJumpFalse { op, slot, target } => {
                    let l = self.stack.pop().expect("lhs");
                    let r = match &self.slots[slot_base + slot as usize] {
                        Some(v) => v,
                        None => {
                            return Err(RuntimeError::Name(format!(
                                "name '{}' is not defined",
                                func.slot_names[slot as usize]
                            )))
                        }
                    };
                    if !compare_op(op, &l, r)?.is_truthy() {
                        pc = target;
                    }
                }
                Instr::PrintStmt(n) | Instr::PrintExpr(n) => {
                    let start = self.stack.len() - n as usize;
                    if self.output_len == self.output.len() {
                        self.output.push(String::new());
                    }
                    let line = &mut self.output[self.output_len];
                    line.clear();
                    for (i, value) in self.stack[start..].iter().enumerate() {
                        if i > 0 {
                            line.push(' ');
                        }
                        value.display_into(line);
                    }
                    self.output_len += 1;
                    self.stack.truncate(start);
                    if matches!(instr, Instr::PrintExpr(_)) {
                        self.stack.push(Value::None);
                    }
                }
                Instr::Input { raw } => {
                    let value = self.stdin.get(self.stdin_pos).cloned().ok_or_else(|| {
                        RuntimeError::Value("input(): no more stdin values".to_string())
                    })?;
                    self.stdin_pos += 1;
                    self.stack.push(if raw {
                        Value::Str(value.display_str())
                    } else {
                        value
                    });
                }
                Instr::CallFunc { func, argc } => {
                    self.call(program, func as usize, argc as usize)?;
                }
                Instr::CallBuiltin { name, argc } => {
                    let start = self.stack.len() - argc as usize;
                    let name = &program.names[name as usize];
                    match builtins::call_builtin(name, &self.stack[start..]) {
                        Some(result) => {
                            let result = result?;
                            self.stack.truncate(start);
                            self.stack.push(result);
                        }
                        None => {
                            return Err(RuntimeError::Name(format!("name '{name}' is not defined")))
                        }
                    }
                }
                Instr::CallMethod {
                    name,
                    argc,
                    wb_slot,
                } => {
                    let start = self.stack.len() - argc as usize;
                    let args: Vec<Value> = self.stack.drain(start..).collect();
                    let mut receiver = self.stack.pop().expect("receiver");
                    let (result, mutated) =
                        builtins::call_method(&mut receiver, &program.names[name as usize], &args)?;
                    if mutated && wb_slot != u32::MAX {
                        self.slots[slot_base + wb_slot as usize] = Some(receiver);
                    }
                    self.stack.push(result);
                }
                Instr::CallMethodSlot { name, argc, slot } => {
                    let start = self.stack.len() - argc as usize;
                    let receiver = self.slots[slot_base + slot as usize]
                        .as_mut()
                        .expect("slot checked before method call");
                    let (result, _mutated) = builtins::call_method(
                        receiver,
                        &program.names[name as usize],
                        &self.stack[start..],
                    )?;
                    self.stack.truncate(start);
                    self.stack.push(result);
                }
                Instr::Unpack(n) => {
                    let value = self.stack.pop().expect("unpack operand");
                    let items = match value {
                        Value::List(items) | Value::Tuple(items) => items,
                        other => {
                            return Err(RuntimeError::Type(format!(
                                "cannot unpack non-sequence {}",
                                other.type_name()
                            )))
                        }
                    };
                    if items.len() != n as usize {
                        return Err(RuntimeError::Value(format!(
                            "too {} values to unpack",
                            if items.len() > n as usize {
                                "many"
                            } else {
                                "few"
                            }
                        )));
                    }
                    for item in items.into_iter().rev() {
                        self.stack.push(item);
                    }
                }
                Instr::Raise(e) => return Err(program.errors[e as usize].clone()),
                Instr::ReturnV => return Ok(self.stack.pop().expect("return value")),
                Instr::ReturnNone => return Ok(Value::None),
                Instr::ChoiceJump { site, table } => {
                    let targets = &func.jump_tables[table as usize];
                    pc = targets[self.choose(site, targets.len())];
                }
                Instr::IterPrep => {
                    let value = self.stack.pop().expect("iterable");
                    // The popped value is this loop's snapshot, so lists and
                    // tuples can give up their backing vector instead of
                    // cloning every element like the by-reference helper.
                    let items = match value {
                        Value::List(items) | Value::Tuple(items) => items,
                        other => iterable_items(&other)?,
                    };
                    self.iters.push(VmIter::Items(items.into_iter()));
                }
                Instr::RangePrep(argc) => {
                    let base = self.stack.len() - argc as usize;
                    let iter = range_iter(&self.stack[base..]);
                    self.stack.truncate(base);
                    self.iters.push(iter?);
                }
                Instr::ForNext { slot, end } => {
                    match self.iters.last_mut().expect("iterator").next() {
                        None => pc = end,
                        Some(item) => {
                            if self.fuel < 1 {
                                return Err(RuntimeError::FuelExhausted);
                            }
                            self.fuel -= 1;
                            self.slots[slot_base + slot as usize] = Some(item);
                        }
                    }
                }
                Instr::PopIter => {
                    self.iters.pop();
                }
            }
        }
    }
}

/// Builds the lazy iterator for `RangePrep` — a faithful replica of
/// `builtins::call_builtin("range", ...)`: same argument validation, same
/// error messages in the same order, same `MAX_RANGE` bound, and the same
/// index arithmetic (the count pass below walks every increment the eager
/// builtin would perform, so even overflow behaviour lines up).
fn range_iter(args: &[Value]) -> Result<VmIter, RuntimeError> {
    let as_int = |v: &Value| {
        v.as_int().ok_or_else(|| {
            RuntimeError::Type(format!(
                "range() integer argument expected, got {}",
                v.type_name()
            ))
        })
    };
    let (start, stop, step) = match args.len() {
        1 => (0, as_int(&args[0])?, 1),
        2 => (as_int(&args[0])?, as_int(&args[1])?, 1),
        3 => (as_int(&args[0])?, as_int(&args[1])?, as_int(&args[2])?),
        n => {
            return Err(RuntimeError::Type(format!(
                "range expected at most 3 arguments, got {n}"
            )))
        }
    };
    if step == 0 {
        return Err(RuntimeError::Value(
            "range() arg 3 must not be zero".to_string(),
        ));
    }
    const MAX_RANGE: u64 = 100_000;
    let mut remaining = 0u64;
    let mut i = start;
    while (step > 0 && i < stop) || (step < 0 && i > stop) {
        remaining += 1;
        if remaining > MAX_RANGE {
            return Err(RuntimeError::FuelExhausted);
        }
        i += step;
    }
    Ok(VmIter::Range {
        next: start,
        step,
        remaining,
    })
}

// ---------------------------------------------------------------------------
// Compiler
// ---------------------------------------------------------------------------

/// Marker: the program uses a construct the compiler does not lower.
struct Unsupported;

type Compiled<T = ()> = Result<T, Unsupported>;

#[derive(Default)]
struct Pools {
    consts: Vec<Value>,
    names: Vec<String>,
    errors: Vec<RuntimeError>,
    site_ids: Vec<ChoiceId>,
    site_map: HashMap<ChoiceId, u32>,
}

impl Pools {
    fn const_idx(&mut self, value: Value) -> u32 {
        if let Some(i) = self.consts.iter().position(|c| *c == value) {
            return i as u32;
        }
        self.consts.push(value);
        (self.consts.len() - 1) as u32
    }

    fn name_idx(&mut self, name: &str) -> u32 {
        if let Some(i) = self.names.iter().position(|n| n == name) {
            return i as u32;
        }
        self.names.push(name.to_string());
        (self.names.len() - 1) as u32
    }

    fn error_idx(&mut self, error: RuntimeError) -> u32 {
        self.errors.push(error);
        (self.errors.len() - 1) as u32
    }

    fn site(&mut self, id: ChoiceId) -> u32 {
        if let Some(&i) = self.site_map.get(&id) {
            return i;
        }
        let i = self.site_ids.len() as u32;
        self.site_ids.push(id);
        self.site_map.insert(id, i);
        i
    }

    fn finish(self, funcs: Vec<CompiledFunc>, entry: usize) -> CompiledProgram {
        CompiledProgram {
            funcs,
            entry,
            consts: self.consts,
            names: self.names,
            errors: self.errors,
            site_ids: self.site_ids,
            site_map: self.site_map,
        }
    }
}

/// Compile-time call resolution, mirroring `Interpreter::call_named`'s
/// name-only lookup order.
struct Resolver {
    /// For choice programs: the entry name, which shadows helpers and
    /// builtins (funcs\[0\] in the compiled function table).
    choice_entry: Option<String>,
    /// Compiled function names in table order.
    func_names: Vec<String>,
}

enum Callee {
    Func(usize),
    Print,
    Input { raw: bool },
    Builtin,
    Undefined,
}

impl Resolver {
    fn resolve(&self, name: &str) -> Callee {
        if let Some(entry) = &self.choice_entry {
            if entry == name {
                return Callee::Func(0);
            }
            // Helpers are funcs[1..]; first match wins like `Program::func`.
            if let Some(i) = self.func_names[1..].iter().position(|n| n == name) {
                return Callee::Func(1 + i);
            }
        } else if let Some(i) = self.func_names.iter().position(|n| n == name) {
            return Callee::Func(i);
        }
        if name == "print" {
            return Callee::Print;
        }
        if name == "input" || name == "raw_input" {
            return Callee::Input {
                raw: name == "raw_input",
            };
        }
        // Builtin membership depends only on the name.
        if builtins::call_builtin(name, &[]).is_some() {
            return Callee::Builtin;
        }
        Callee::Undefined
    }
}

struct LoopCtx {
    continue_target: usize,
    break_patches: Vec<usize>,
}

struct FnCompiler<'a> {
    pools: &'a mut Pools,
    resolver: &'a Resolver,
    code: Vec<Instr>,
    slot_names: Vec<String>,
    slot_map: HashMap<String, u32>,
    jump_tables: Vec<Vec<usize>>,
    bin_tables: Vec<Vec<BinOp>>,
    cmp_tables: Vec<Vec<CmpOp>>,
    loops: Vec<LoopCtx>,
    /// Code positions `< fence` may be jump targets; `emit` never fuses
    /// into them.
    fence: usize,
}

fn compile_func(func: &FuncDef, resolver: &Resolver, pools: &mut Pools) -> Compiled<CompiledFunc> {
    let mut c = FnCompiler::new(pools, resolver);
    let param_slots: Vec<u32> = func.params.iter().map(|p| c.slot(&p.name)).collect();
    c.block(&func.body)?;
    c.emit(Instr::ReturnNone);
    Ok(c.finish(func.name.clone(), param_slots))
}

fn compile_cfunc(
    func: &afg_eml::CFuncDef,
    resolver: &Resolver,
    pools: &mut Pools,
) -> Compiled<CompiledFunc> {
    let mut c = FnCompiler::new(pools, resolver);
    let param_slots: Vec<u32> = func.params.iter().map(|p| c.slot(&p.name)).collect();
    c.cblock(&func.body)?;
    c.emit(Instr::ReturnNone);
    Ok(c.finish(func.name.clone(), param_slots))
}

impl<'a> FnCompiler<'a> {
    fn new(pools: &'a mut Pools, resolver: &'a Resolver) -> FnCompiler<'a> {
        FnCompiler {
            pools,
            resolver,
            code: Vec::new(),
            slot_names: Vec::new(),
            slot_map: HashMap::new(),
            jump_tables: Vec::new(),
            bin_tables: Vec::new(),
            cmp_tables: Vec::new(),
            loops: Vec::new(),
            fence: 0,
        }
    }

    fn finish(self, name: String, param_slots: Vec<u32>) -> CompiledFunc {
        CompiledFunc {
            name,
            param_slots,
            n_slots: self.slot_names.len(),
            slot_names: self.slot_names,
            code: self.code,
            jump_tables: self.jump_tables,
            bin_tables: self.bin_tables,
            cmp_tables: self.cmp_tables,
        }
    }

    /// Appends an instruction, fusing the ubiquitous `Charge` prefix into
    /// its successor (`ChargeN` / `ChargeConst` / `ChargeLoad`) when the
    /// previous slot cannot be a jump target — `fence` marks the last
    /// position handed out as a label, and fusing across it would make the
    /// landing pad skip (or double-spend) a fuel charge.
    fn emit(&mut self, instr: Instr) -> usize {
        if self.code.len() > self.fence {
            let last = self.code.len() - 1;
            match (self.code[last], instr) {
                (Instr::Charge, Instr::Charge) => {
                    self.code[last] = Instr::ChargeN(2);
                    return last;
                }
                (Instr::ChargeN(n), Instr::Charge) => {
                    self.code[last] = Instr::ChargeN(n + 1);
                    return last;
                }
                (Instr::Charge, Instr::Const(c)) => {
                    self.code[last] = Instr::ChargeConst(c);
                    return last;
                }
                (Instr::Charge, Instr::LoadSlot(s)) => {
                    self.code[last] = Instr::ChargeLoad(s);
                    return last;
                }
                (Instr::CompareOpI(op), Instr::JumpIfFalsePop(target)) => {
                    self.code[last] = Instr::CmpJumpFalse { op, target };
                    return last;
                }
                (Instr::CompareOpChoice { site, table }, Instr::JumpIfFalsePop(target)) => {
                    self.code[last] = Instr::CmpChoiceJumpFalse {
                        site,
                        table,
                        target,
                    };
                    return last;
                }
                (Instr::CompareSlot { op, slot }, Instr::JumpIfFalsePop(target)) => {
                    self.code[last] = Instr::CmpSlotJumpFalse { op, slot, target };
                    return last;
                }
                _ => {}
            }
        }
        self.code.push(instr);
        self.code.len() - 1
    }

    fn here(&mut self) -> usize {
        self.fence = self.code.len();
        self.code.len()
    }

    fn patch(&mut self, at: usize) {
        let target = self.here();
        match &mut self.code[at] {
            Instr::Jump(t)
            | Instr::JumpIfFalsePop(t)
            | Instr::JumpIfFalsePeek(t)
            | Instr::JumpIfTruePeek(t)
            | Instr::CmpJumpFalse { target: t, .. }
            | Instr::CmpChoiceJumpFalse { target: t, .. }
            | Instr::CmpSlotJumpFalse { target: t, .. }
            | Instr::ForNext { end: t, .. } => *t = target,
            other => unreachable!("patching non-jump {other:?}"),
        }
    }

    fn slot(&mut self, name: &str) -> u32 {
        if let Some(&s) = self.slot_map.get(name) {
            return s;
        }
        let s = self.slot_names.len() as u32;
        self.slot_names.push(name.to_string());
        self.slot_map.insert(name.to_string(), s);
        s
    }

    // -- plain MPY ---------------------------------------------------------

    fn block(&mut self, stmts: &[Stmt]) -> Compiled {
        for stmt in stmts {
            self.stmt(stmt)?;
        }
        Ok(())
    }

    fn stmt(&mut self, stmt: &Stmt) -> Compiled {
        self.emit(Instr::Charge);
        match &stmt.kind {
            StmtKind::Assign(target, value) => {
                self.expr(value)?;
                self.assign_target(target)
            }
            StmtKind::AugAssign(target, op, value) => {
                self.expr(value)?;
                self.read_target(target)?;
                self.emit(Instr::BinaryOpAug(*op));
                self.assign_target(target)
            }
            StmtKind::ExprStmt(expr) => {
                self.expr(expr)?;
                self.emit(Instr::Pop);
                Ok(())
            }
            StmtKind::If(cond, then_body, else_body) => {
                self.expr(cond)?;
                let jf = self.emit(Instr::JumpIfFalsePop(0));
                self.block(then_body)?;
                let jend = self.emit(Instr::Jump(0));
                self.patch(jf);
                self.block(else_body)?;
                self.patch(jend);
                Ok(())
            }
            StmtKind::While(cond, body) => {
                let l_cond = self.here();
                self.expr(cond)?;
                let jf = self.emit(Instr::JumpIfFalsePop(0));
                // Per-iteration charge after the condition is truthy.
                self.emit(Instr::Charge);
                self.loops.push(LoopCtx {
                    continue_target: l_cond,
                    break_patches: Vec::new(),
                });
                self.block(body)?;
                self.emit(Instr::Jump(l_cond));
                let ctx = self.loops.pop().expect("loop ctx");
                self.patch(jf);
                for b in ctx.break_patches {
                    self.patch(b);
                }
                Ok(())
            }
            StmtKind::For(var, iter, body) => {
                self.iter_prep(iter)?;
                let slot = self.slot(var);
                let l_next = self.here();
                let fornext = self.emit(Instr::ForNext { slot, end: 0 });
                self.loops.push(LoopCtx {
                    continue_target: l_next,
                    break_patches: Vec::new(),
                });
                self.block(body)?;
                self.emit(Instr::Jump(l_next));
                let ctx = self.loops.pop().expect("loop ctx");
                self.patch(fornext);
                for b in ctx.break_patches {
                    self.patch(b);
                }
                self.emit(Instr::PopIter);
                Ok(())
            }
            StmtKind::Return(expr) => {
                match expr {
                    Some(e) => {
                        self.expr(e)?;
                        self.emit(Instr::ReturnV);
                    }
                    None => {
                        self.emit(Instr::ReturnNone);
                    }
                }
                Ok(())
            }
            StmtKind::Print(args) => {
                for arg in args {
                    self.expr(arg)?;
                }
                self.emit(Instr::PrintStmt(args.len() as u32));
                Ok(())
            }
            StmtKind::Pass => Ok(()),
            StmtKind::Break => {
                // `Flow::Break` outside a loop propagates to the function
                // boundary, which returns `None`.
                match self.loops.last_mut() {
                    Some(_) => {
                        let j = self.emit(Instr::Jump(0));
                        self.loops
                            .last_mut()
                            .expect("loop ctx")
                            .break_patches
                            .push(j);
                    }
                    None => {
                        self.emit(Instr::ReturnNone);
                    }
                }
                Ok(())
            }
            StmtKind::Continue => {
                match self.loops.last() {
                    Some(ctx) => {
                        let target = ctx.continue_target;
                        self.emit(Instr::Jump(target));
                    }
                    None => {
                        self.emit(Instr::ReturnNone);
                    }
                }
                Ok(())
            }
        }
    }

    /// Compiles an assignment to `target`, consuming the value on top of
    /// the stack.  Mirrors `Interpreter::assign` exactly, including the
    /// index-then-base evaluation order and the re-evaluating write-back
    /// chain for nested index targets.
    fn assign_target(&mut self, target: &Target) -> Compiled {
        match target {
            Target::Var(name) => {
                let slot = self.slot(name);
                self.emit(Instr::StoreSlot(slot));
                Ok(())
            }
            Target::Index(base, index) => {
                self.expr(index)?;
                self.expr(base)?;
                self.emit(Instr::StoreIndex);
                self.assign_base(base)
            }
            Target::Tuple(targets) => {
                self.emit(Instr::Unpack(targets.len() as u32));
                for t in targets {
                    self.assign_target(t)?;
                }
                Ok(())
            }
        }
    }

    /// Writes the mutated container on top of the stack back to `base`'s
    /// own location (`expr_as_target` semantics: variables and index
    /// chains are assignable, anything else silently drops the value).
    fn assign_base(&mut self, base: &Expr) -> Compiled {
        match base {
            Expr::Var(name) => {
                let slot = self.slot(name);
                self.emit(Instr::StoreSlot(slot));
                Ok(())
            }
            Expr::Index(inner, index) => {
                self.expr(index)?;
                self.expr(inner)?;
                self.emit(Instr::StoreIndex);
                self.assign_base(inner)
            }
            _ => {
                self.emit(Instr::Pop);
                Ok(())
            }
        }
    }

    /// Mirrors `Interpreter::read_target` (note: base before index, the
    /// opposite of the assignment order).
    fn read_target(&mut self, target: &Target) -> Compiled {
        match target {
            Target::Var(name) => {
                let slot = self.slot(name);
                self.emit(Instr::LoadSlot(slot));
                Ok(())
            }
            Target::Index(base, index) => {
                self.expr(base)?;
                self.expr(index)?;
                self.emit(Instr::LoadIndex);
                Ok(())
            }
            Target::Tuple(_) => {
                let e = self.pools.error_idx(RuntimeError::Type(
                    "augmented assignment to a tuple target is not allowed".to_string(),
                ));
                self.emit(Instr::Raise(e));
                Ok(())
            }
        }
    }

    /// `true` when evaluating the expression may write a local slot.
    /// Method calls are the only expression form with a slot write-back
    /// (user-function calls run in their own frame), so this is the guard
    /// for slot-direct specialisations: a `CheckSlot`ed slot must stay
    /// set — and un-swapped — until the specialised read.
    fn mutates_slots(expr: &Expr) -> bool {
        match expr {
            Expr::Int(_) | Expr::Bool(_) | Expr::Str(_) | Expr::None | Expr::Var(_) => false,
            Expr::List(items) | Expr::Tuple(items) => items.iter().any(Self::mutates_slots),
            Expr::Dict(items) => items
                .iter()
                .any(|(k, v)| Self::mutates_slots(k) || Self::mutates_slots(v)),
            Expr::Index(base, index) => Self::mutates_slots(base) || Self::mutates_slots(index),
            Expr::Slice(base, lower, upper) => {
                Self::mutates_slots(base)
                    || lower.as_deref().is_some_and(Self::mutates_slots)
                    || upper.as_deref().is_some_and(Self::mutates_slots)
            }
            Expr::BinOp(_, l, r) | Expr::Compare(_, l, r) | Expr::BoolExpr(_, l, r) => {
                Self::mutates_slots(l) || Self::mutates_slots(r)
            }
            Expr::UnaryOp(_, e) => Self::mutates_slots(e),
            Expr::Call(_, args) => args.iter().any(Self::mutates_slots),
            Expr::MethodCall(..) => true,
            Expr::IfExpr(a, b, c) => {
                Self::mutates_slots(a) || Self::mutates_slots(b) || Self::mutates_slots(c)
            }
        }
    }

    /// Choice-bearing counterpart of [`FnCompiler::mutates_slots`].
    fn cmutates_slots(expr: &CExpr) -> bool {
        match expr {
            CExpr::Plain(e) => Self::mutates_slots(e),
            CExpr::Choice(_, options) | CExpr::List(options) | CExpr::Tuple(options) => {
                options.iter().any(Self::cmutates_slots)
            }
            CExpr::Index(base, index) => Self::cmutates_slots(base) || Self::cmutates_slots(index),
            CExpr::Slice(base, lower, upper) => {
                Self::cmutates_slots(base)
                    || lower.as_deref().is_some_and(Self::cmutates_slots)
                    || upper.as_deref().is_some_and(Self::cmutates_slots)
            }
            CExpr::BinOp(_, l, r) | CExpr::Compare(_, l, r) => {
                Self::cmutates_slots(l) || Self::cmutates_slots(r)
            }
            CExpr::BoolExpr(_, l, r) => Self::cmutates_slots(l) || Self::cmutates_slots(r),
            CExpr::UnaryOp(_, e) => Self::cmutates_slots(e),
            CExpr::Call(_, args) => args.iter().any(Self::cmutates_slots),
            CExpr::MethodCall(..) => true,
            CExpr::IfExpr(a, b, c) => {
                Self::cmutates_slots(a) || Self::cmutates_slots(b) || Self::cmutates_slots(c)
            }
        }
    }

    fn expr(&mut self, expr: &Expr) -> Compiled {
        self.emit(Instr::Charge);
        match expr {
            Expr::Int(v) => {
                let c = self.pools.const_idx(Value::Int(*v));
                self.emit(Instr::Const(c));
            }
            Expr::Bool(b) => {
                let c = self.pools.const_idx(Value::Bool(*b));
                self.emit(Instr::Const(c));
            }
            Expr::Str(s) => {
                let c = self.pools.const_idx(Value::Str(s.clone()));
                self.emit(Instr::Const(c));
            }
            Expr::None => {
                let c = self.pools.const_idx(Value::None);
                self.emit(Instr::Const(c));
            }
            Expr::Var(name) => {
                let slot = self.slot(name);
                self.emit(Instr::LoadSlot(slot));
            }
            Expr::List(items) => {
                for item in items {
                    self.expr(item)?;
                }
                self.emit(Instr::MakeList(items.len() as u32));
            }
            Expr::Tuple(items) => {
                for item in items {
                    self.expr(item)?;
                }
                self.emit(Instr::MakeTuple(items.len() as u32));
            }
            Expr::Dict(items) => {
                for (k, v) in items {
                    self.expr(k)?;
                    self.expr(v)?;
                }
                self.emit(Instr::MakeDict(items.len() as u32));
            }
            Expr::Index(base, index) => {
                // `v[i]` with a mutation-free index reads the element
                // straight out of the slot instead of cloning the whole
                // container.  `CheckSlot` fires the base's `NameError`
                // before the index runs, matching tree-walker order; the
                // charges (entry + base var) fuse.
                if let Expr::Var(name) = &**base {
                    if !Self::mutates_slots(index) {
                        let slot = self.slot(name);
                        self.emit(Instr::Charge);
                        self.emit(Instr::CheckSlot(slot));
                        self.expr(index)?;
                        self.emit(Instr::LoadIndexSlot(slot));
                        return Ok(());
                    }
                }
                self.expr(base)?;
                self.expr(index)?;
                self.emit(Instr::LoadIndex);
            }
            Expr::Slice(base, lower, upper) => {
                self.expr(base)?;
                if let Some(e) = lower {
                    self.expr(e)?;
                }
                if let Some(e) = upper {
                    self.expr(e)?;
                }
                self.emit(Instr::Slice {
                    has_lower: lower.is_some(),
                    has_upper: upper.is_some(),
                });
            }
            Expr::BinOp(op, left, right) => {
                self.expr(left)?;
                self.expr(right)?;
                self.emit(Instr::BinaryOp(*op));
            }
            Expr::UnaryOp(op, operand) => {
                self.expr(operand)?;
                self.emit(Instr::UnaryOpI(*op));
            }
            Expr::Compare(op, left, right) => {
                // A variable on the right is compared straight out of its
                // slot — the slot read sits exactly where the tree walker
                // evaluates the right operand, so error order and any
                // left-side mutation are observed identically.
                if let Expr::Var(name) = &**right {
                    let slot = self.slot(name);
                    self.expr(left)?;
                    self.emit(Instr::Charge);
                    self.emit(Instr::CompareSlot { op: *op, slot });
                    return Ok(());
                }
                self.expr(left)?;
                self.expr(right)?;
                self.emit(Instr::CompareOpI(*op));
            }
            Expr::BoolExpr(op, left, right) => {
                self.expr(left)?;
                let j = match op {
                    BoolOp::And => self.emit(Instr::JumpIfFalsePeek(0)),
                    BoolOp::Or => self.emit(Instr::JumpIfTruePeek(0)),
                };
                self.expr(right)?;
                self.patch(j);
            }
            Expr::Call(name, args) => {
                // `len(v)` on a variable measures the slot in place —
                // only when `len` really is the builtin.  One fused
                // charge pair (call + argument), same as the generic
                // path; `LenSlot` raises the variable's `NameError`
                // before the builtin's `TypeError`, like the walker.
                if name == "len" {
                    if let [Expr::Var(var)] = args.as_slice() {
                        if matches!(self.resolver.resolve(name), Callee::Builtin) {
                            let slot = self.slot(var);
                            self.emit(Instr::Charge);
                            self.emit(Instr::LenSlot(slot));
                            return Ok(());
                        }
                    }
                }
                for arg in args {
                    self.expr(arg)?;
                }
                self.call_named(name, args.len());
            }
            Expr::MethodCall(recv, method, args) => {
                // `v.m(...)` runs on the slot in place when no argument
                // can swap the slot out from under it; `CheckSlot` keeps
                // the receiver's `NameError` ahead of argument errors.
                if let Expr::Var(name) = &**recv {
                    if !args.iter().any(Self::mutates_slots) {
                        let slot = self.slot(name);
                        self.emit(Instr::Charge);
                        self.emit(Instr::CheckSlot(slot));
                        for arg in args {
                            self.expr(arg)?;
                        }
                        let name = self.pools.name_idx(method);
                        self.emit(Instr::CallMethodSlot {
                            name,
                            argc: args.len() as u32,
                            slot,
                        });
                        return Ok(());
                    }
                }
                let wb_slot = self.method_writeback(recv)?;
                self.expr(recv)?;
                for arg in args {
                    self.expr(arg)?;
                }
                let name = self.pools.name_idx(method);
                self.emit(Instr::CallMethod {
                    name,
                    argc: args.len() as u32,
                    wb_slot,
                });
            }
            Expr::IfExpr(body, cond, orelse) => {
                self.expr(cond)?;
                let jf = self.emit(Instr::JumpIfFalsePop(0));
                self.expr(body)?;
                let jend = self.emit(Instr::Jump(0));
                self.patch(jf);
                self.expr(orelse)?;
                self.patch(jend);
            }
        }
        Ok(())
    }

    /// Write-back slot for a method-call receiver.  Index-expression
    /// receivers would need the tree walker's re-evaluating assignment
    /// chain on mutation — those programs fall back to the tree walker.
    fn method_writeback(&mut self, recv: &Expr) -> Compiled<u32> {
        match recv {
            Expr::Var(name) => Ok(self.slot(name)),
            Expr::Index(..) => Err(Unsupported),
            _ => Ok(u32::MAX),
        }
    }

    /// Compiles a `for` statement's iterable, leaving an iterator on the
    /// iterator stack.  `for v in range(...)` — the dominant loop form in
    /// the benchmarks — gets the lazy `RangePrep` when `range` really is
    /// the builtin (a user function of that name shadows it); fuel parity
    /// holds because the call expression charges exactly as before and
    /// neither `CallBuiltin` nor `IterPrep` ever charged.
    fn iter_prep(&mut self, iter: &Expr) -> Compiled {
        if let Expr::Call(name, args) = iter {
            if name == "range" && matches!(self.resolver.resolve(name), Callee::Builtin) {
                self.emit(Instr::Charge);
                for arg in args {
                    self.expr(arg)?;
                }
                self.emit(Instr::RangePrep(args.len() as u32));
                return Ok(());
            }
        }
        self.expr(iter)?;
        self.emit(Instr::IterPrep);
        Ok(())
    }

    /// Choice-program counterpart of [`FnCompiler::iter_prep`].  A choice
    /// over iterables dispatches into per-option preps, so a `range` under
    /// an error-model choice site still gets the lazy form.
    fn citer_prep(&mut self, iter: &CExpr) -> Compiled {
        match iter {
            CExpr::Plain(e) => self.iter_prep(e),
            CExpr::Choice(id, options) => {
                self.choice_dispatch(*id, options.len(), |c, i| c.citer_prep(&options[i]))
            }
            CExpr::Call(name, args)
                if name == "range" && matches!(self.resolver.resolve(name), Callee::Builtin) =>
            {
                self.emit(Instr::Charge);
                for arg in args {
                    self.cexpr(arg)?;
                }
                self.emit(Instr::RangePrep(args.len() as u32));
                Ok(())
            }
            other => {
                self.cexpr(other)?;
                self.emit(Instr::IterPrep);
                Ok(())
            }
        }
    }

    fn call_named(&mut self, name: &str, argc: usize) {
        match self.resolver.resolve(name) {
            Callee::Func(i) => {
                self.emit(Instr::CallFunc {
                    func: i as u32,
                    argc: argc as u32,
                });
            }
            Callee::Print => {
                self.emit(Instr::PrintExpr(argc as u32));
            }
            Callee::Input { raw } => {
                // Arguments are evaluated, then ignored.
                if argc > 0 {
                    self.emit(Instr::PopN(argc as u32));
                }
                self.emit(Instr::Input { raw });
            }
            Callee::Builtin => {
                let n = self.pools.name_idx(name);
                self.emit(Instr::CallBuiltin {
                    name: n,
                    argc: argc as u32,
                });
            }
            Callee::Undefined => {
                let e = self
                    .pools
                    .error_idx(RuntimeError::Name(format!("name '{name}' is not defined")));
                self.emit(Instr::Raise(e));
            }
        }
    }

    // -- choice-bearing M̃PY -----------------------------------------------

    fn cblock(&mut self, stmts: &[CStmt]) -> Compiled {
        for stmt in stmts {
            self.cstmt(stmt)?;
        }
        Ok(())
    }

    fn cstmt(&mut self, stmt: &CStmt) -> Compiled {
        // Statement-level choices splice the selected block without
        // charging, exactly like `exec_cstmt`.
        if let CStmtKind::ChoiceBlock(id, options) = &stmt.kind {
            return self.choice_dispatch(*id, options.len(), |c, i| c.cblock(&options[i]));
        }
        self.emit(Instr::Charge);
        match &stmt.kind {
            CStmtKind::Assign(target, value) => {
                self.cexpr(value)?;
                self.assign_target(target)
            }
            CStmtKind::AugAssign(target, op, value) => {
                self.cexpr(value)?;
                self.read_target(target)?;
                self.emit(Instr::BinaryOpAug(*op));
                self.assign_target(target)
            }
            CStmtKind::ExprStmt(expr) => {
                self.cexpr(expr)?;
                self.emit(Instr::Pop);
                Ok(())
            }
            CStmtKind::If(cond, then_body, else_body) => {
                self.cexpr(cond)?;
                let jf = self.emit(Instr::JumpIfFalsePop(0));
                self.cblock(then_body)?;
                let jend = self.emit(Instr::Jump(0));
                self.patch(jf);
                self.cblock(else_body)?;
                self.patch(jend);
                Ok(())
            }
            CStmtKind::While(cond, body) => {
                let l_cond = self.here();
                self.cexpr(cond)?;
                let jf = self.emit(Instr::JumpIfFalsePop(0));
                self.emit(Instr::Charge);
                self.loops.push(LoopCtx {
                    continue_target: l_cond,
                    break_patches: Vec::new(),
                });
                self.cblock(body)?;
                self.emit(Instr::Jump(l_cond));
                let ctx = self.loops.pop().expect("loop ctx");
                self.patch(jf);
                for b in ctx.break_patches {
                    self.patch(b);
                }
                Ok(())
            }
            CStmtKind::For(var, iter, body) => {
                self.citer_prep(iter)?;
                let slot = self.slot(var);
                let l_next = self.here();
                let fornext = self.emit(Instr::ForNext { slot, end: 0 });
                self.loops.push(LoopCtx {
                    continue_target: l_next,
                    break_patches: Vec::new(),
                });
                self.cblock(body)?;
                self.emit(Instr::Jump(l_next));
                let ctx = self.loops.pop().expect("loop ctx");
                self.patch(fornext);
                for b in ctx.break_patches {
                    self.patch(b);
                }
                self.emit(Instr::PopIter);
                Ok(())
            }
            CStmtKind::Return(expr) => {
                match expr {
                    Some(e) => {
                        self.cexpr(e)?;
                        self.emit(Instr::ReturnV);
                    }
                    None => {
                        self.emit(Instr::ReturnNone);
                    }
                }
                Ok(())
            }
            CStmtKind::Print(args) => {
                for arg in args {
                    self.cexpr(arg)?;
                }
                self.emit(Instr::PrintStmt(args.len() as u32));
                Ok(())
            }
            CStmtKind::Pass => Ok(()),
            CStmtKind::Break => {
                match self.loops.last_mut() {
                    Some(_) => {
                        let j = self.emit(Instr::Jump(0));
                        self.loops
                            .last_mut()
                            .expect("loop ctx")
                            .break_patches
                            .push(j);
                    }
                    None => {
                        self.emit(Instr::ReturnNone);
                    }
                }
                Ok(())
            }
            CStmtKind::Continue => {
                match self.loops.last() {
                    Some(ctx) => {
                        let target = ctx.continue_target;
                        self.emit(Instr::Jump(target));
                    }
                    None => {
                        self.emit(Instr::ReturnNone);
                    }
                }
                Ok(())
            }
            CStmtKind::ChoiceBlock(..) => unreachable!("handled before charging"),
        }
    }

    /// Emits a `ChoiceJump` dispatch over `count` alternatives, each
    /// compiled by `body`, all joining at the end.  Charges nothing — the
    /// choice node has no concrete counterpart.
    fn choice_dispatch(
        &mut self,
        id: ChoiceId,
        count: usize,
        mut body: impl FnMut(&mut Self, usize) -> Compiled,
    ) -> Compiled {
        let site = self.pools.site(id);
        let dispatch = self.emit(Instr::ChoiceJump { site, table: 0 });
        let mut targets = Vec::with_capacity(count);
        let mut joins = Vec::with_capacity(count);
        for i in 0..count {
            targets.push(self.here());
            body(self, i)?;
            joins.push(self.emit(Instr::Jump(0)));
        }
        for j in joins {
            self.patch(j);
        }
        let table = self.jump_tables.len() as u32;
        self.jump_tables.push(targets);
        if let Instr::ChoiceJump { table: t, .. } = &mut self.code[dispatch] {
            *t = table;
        }
        Ok(())
    }

    fn cexpr(&mut self, expr: &CExpr) -> Compiled {
        match expr {
            CExpr::Plain(e) => return self.expr(e),
            CExpr::Choice(id, options) => {
                return self.choice_dispatch(*id, options.len(), |c, i| c.cexpr(&options[i]));
            }
            _ => {}
        }
        self.emit(Instr::Charge);
        match expr {
            CExpr::Plain(_) | CExpr::Choice(..) => unreachable!("handled before charging"),
            CExpr::List(items) => {
                for item in items {
                    self.cexpr(item)?;
                }
                self.emit(Instr::MakeList(items.len() as u32));
            }
            CExpr::Tuple(items) => {
                for item in items {
                    self.cexpr(item)?;
                }
                self.emit(Instr::MakeTuple(items.len() as u32));
            }
            CExpr::Index(base, index) => {
                // Same slot-direct read as the plain compiler; a choice
                // site anywhere in the index is fine (dispatch never
                // writes slots), a method call is not.
                if let CExpr::Plain(Expr::Var(name)) = &**base {
                    if !Self::cmutates_slots(index) {
                        let slot = self.slot(name);
                        self.emit(Instr::Charge);
                        self.emit(Instr::CheckSlot(slot));
                        self.cexpr(index)?;
                        self.emit(Instr::LoadIndexSlot(slot));
                        return Ok(());
                    }
                }
                self.cexpr(base)?;
                self.cexpr(index)?;
                self.emit(Instr::LoadIndex);
            }
            CExpr::Slice(base, lower, upper) => {
                self.cexpr(base)?;
                if let Some(e) = lower {
                    self.cexpr(e)?;
                }
                if let Some(e) = upper {
                    self.cexpr(e)?;
                }
                self.emit(Instr::Slice {
                    has_lower: lower.is_some(),
                    has_upper: upper.is_some(),
                });
            }
            CExpr::BinOp(op, left, right) => {
                self.cexpr(left)?;
                self.cexpr(right)?;
                match op {
                    OpChoice::Fixed(op) => {
                        self.emit(Instr::BinaryOp(*op));
                    }
                    OpChoice::Choice(id, ops) => {
                        let site = self.pools.site(*id);
                        let table = self.bin_tables.len() as u32;
                        self.bin_tables.push(ops.clone());
                        self.emit(Instr::BinaryOpChoice { site, table });
                    }
                }
            }
            CExpr::UnaryOp(op, operand) => {
                self.cexpr(operand)?;
                self.emit(Instr::UnaryOpI(*op));
            }
            CExpr::Compare(op, left, right) => {
                if let CExpr::Plain(Expr::Var(name)) = &**right {
                    let slot = self.slot(name);
                    self.cexpr(left)?;
                    self.emit(Instr::Charge);
                    match op {
                        OpChoice::Fixed(op) => {
                            self.emit(Instr::CompareSlot { op: *op, slot });
                        }
                        OpChoice::Choice(id, ops) => {
                            let site = self.pools.site(*id);
                            let table = self.cmp_tables.len() as u32;
                            self.cmp_tables.push(ops.clone());
                            self.emit(Instr::CompareChoiceSlot { site, table, slot });
                        }
                    }
                    return Ok(());
                }
                self.cexpr(left)?;
                self.cexpr(right)?;
                match op {
                    OpChoice::Fixed(op) => {
                        self.emit(Instr::CompareOpI(*op));
                    }
                    OpChoice::Choice(id, ops) => {
                        let site = self.pools.site(*id);
                        let table = self.cmp_tables.len() as u32;
                        self.cmp_tables.push(ops.clone());
                        self.emit(Instr::CompareOpChoice { site, table });
                    }
                }
            }
            CExpr::BoolExpr(op, left, right) => {
                self.cexpr(left)?;
                let j = match op {
                    BoolOp::And => self.emit(Instr::JumpIfFalsePeek(0)),
                    BoolOp::Or => self.emit(Instr::JumpIfTruePeek(0)),
                };
                self.cexpr(right)?;
                self.patch(j);
            }
            CExpr::Call(name, args) => {
                if name == "len" {
                    if let [CExpr::Plain(Expr::Var(var))] = args.as_slice() {
                        if matches!(self.resolver.resolve(name), Callee::Builtin) {
                            let slot = self.slot(var);
                            self.emit(Instr::Charge);
                            self.emit(Instr::LenSlot(slot));
                            return Ok(());
                        }
                    }
                }
                for arg in args {
                    self.cexpr(arg)?;
                }
                self.call_named(name, args.len());
            }
            CExpr::MethodCall(recv, method, args) => {
                // Choice-bearing receivers would need concretisation for
                // the write-back target — fall back to the tree walker.
                let plain = match &**recv {
                    CExpr::Plain(e) => e,
                    _ => return Err(Unsupported),
                };
                if let Expr::Var(name) = plain {
                    if !args.iter().any(Self::cmutates_slots) {
                        let slot = self.slot(name);
                        self.emit(Instr::Charge);
                        self.emit(Instr::CheckSlot(slot));
                        for arg in args {
                            self.cexpr(arg)?;
                        }
                        let name = self.pools.name_idx(method);
                        self.emit(Instr::CallMethodSlot {
                            name,
                            argc: args.len() as u32,
                            slot,
                        });
                        return Ok(());
                    }
                }
                let wb_slot = self.method_writeback(plain)?;
                self.expr(plain)?;
                for arg in args {
                    self.cexpr(arg)?;
                }
                let name = self.pools.name_idx(method);
                self.emit(Instr::CallMethod {
                    name,
                    argc: args.len() as u32,
                    wb_slot,
                });
            }
            CExpr::IfExpr(body, cond, orelse) => {
                self.cexpr(cond)?;
                let jf = self.emit(Instr::JumpIfFalsePop(0));
                self.cexpr(body)?;
                let jend = self.emit(Instr::Jump(0));
                self.patch(jf);
                self.cexpr(orelse)?;
                self.patch(jend);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::run_function;
    use afg_parser::parse_program;

    fn assert_same(source: &str, entry: &str, args: &[Value]) {
        let program = parse_program(source).unwrap();
        let compiled = CompiledProgram::from_program(&program, Some(entry)).expect("compiles");
        let mut vm = Vm::new(ExecLimits::default());
        let vm_result = vm.run(&compiled, args);
        let tree = run_function(&program, Some(entry), args, ExecLimits::default());
        match (&vm_result, &tree) {
            (Ok(a), Ok(b)) => assert_eq!(a, b),
            (Err(a), Err(b)) => assert_eq!(a, b),
            _ => panic!("VM and tree walker disagree: {vm_result:?} vs {tree:?}"),
        }
    }

    #[test]
    fn straight_line_arithmetic() {
        assert_same(
            "def f(x):\n    y = x * 2 + 1\n    return y - 3\n",
            "f",
            &[Value::Int(10)],
        );
    }

    #[test]
    fn loops_recursion_and_builtins() {
        let source = "\
def recurPower(base, exp):
    if exp == 0:
        return 1
    return base * recurPower(base, exp - 1)
";
        assert_same(source, "recurPower", &[Value::Int(3), Value::Int(4)]);
        let source = "\
def computeDeriv(poly):
    result = []
    for i in range(len(poly)):
        result += [i * poly[i]]
    if len(poly) == 1:
        return result
    else:
        return result[1:]
";
        assert_same(source, "computeDeriv", &[Value::int_list([2, -3, 1, 4])]);
        assert_same(source, "computeDeriv", &[Value::int_list([7])]);
        assert_same(source, "computeDeriv", &[Value::List(vec![])]);
    }

    #[test]
    fn errors_match_the_tree_walker() {
        assert_same(
            "def f(xs):\n    return xs[10]\n",
            "f",
            &[Value::int_list([1, 2])],
        );
        assert_same("def f(x):\n    return x + missing\n", "f", &[Value::Int(1)]);
        assert_same("def f(x):\n    return x / 0\n", "f", &[Value::Int(1)]);
        assert_same("def f(x, y):\n    return x\n", "f", &[Value::Int(1)]);
    }

    #[test]
    fn mutating_methods_write_back() {
        assert_same(
            "def f(poly):\n    poly.pop(0)\n    return poly\n",
            "f",
            &[Value::int_list([1, 2, 3])],
        );
        assert_same(
            "def f(xs):\n    ys = xs\n    ys.append(9)\n    return xs + ys\n",
            "f",
            &[Value::int_list([1])],
        );
    }

    #[test]
    fn index_receiver_method_calls_fall_back() {
        let program = parse_program("def f(xs):\n    xs[0].append(1)\n    return xs\n").unwrap();
        assert!(CompiledProgram::from_program(&program, Some("f")).is_none());
    }

    #[test]
    fn fuel_parity_across_budgets() {
        let source = "\
def f(n):
    total = 0
    i = 0
    while i < n:
        total += i * i
        i = i + 1
    return total
";
        let program = parse_program(source).unwrap();
        let compiled = CompiledProgram::from_program(&program, Some("f")).unwrap();
        for fuel in 1..160 {
            let limits = ExecLimits {
                fuel,
                max_recursion: 32,
            };
            let mut vm = Vm::new(limits);
            let vm_result = vm.run(&compiled, &[Value::Int(5)]);
            let mut interp = crate::interp::Interpreter::with_limits(&program, limits);
            let tree = interp
                .call_entry(Some("f"), &[Value::Int(5)])
                .map(|o| o.value);
            match (&vm_result, &tree) {
                (Ok(a), Ok(b)) => assert_eq!(&a.value, b, "fuel {fuel}"),
                (Err(a), Err(b)) => assert_eq!(a, b, "fuel {fuel}"),
                _ => panic!("fuel {fuel}: {vm_result:?} vs {tree:?}"),
            }
            assert_eq!(vm.fuel_used(), interp.fuel_used(), "fuel used at {fuel}");
        }
    }

    #[test]
    fn tuple_unpacking_and_nested_assignment() {
        assert_same(
            "def f(p):\n    a, b = p\n    return a - b\n",
            "f",
            &[Value::Tuple(vec![Value::Int(9), Value::Int(4)])],
        );
        assert_same(
            "def f(m):\n    m[0][1] = 7\n    return m\n",
            "f",
            &[Value::List(vec![
                Value::int_list([1, 2]),
                Value::int_list([3, 4]),
            ])],
        );
        assert_same(
            "def f(p):\n    a, b = p\n    return a\n",
            "f",
            &[Value::int_list([1, 2, 3])],
        );
    }

    #[test]
    fn short_circuit_and_conditional_expressions() {
        let source = "\
def f(x):
    y = 1 if x > 0 else -1
    return y * x or 99
";
        assert_same(source, "f", &[Value::Int(5)]);
        assert_same(source, "f", &[Value::Int(0)]);
    }

    #[test]
    fn compiled_choice_program_dispatches_on_selection() {
        use afg_eml::{apply_error_model, library, ErrorModel};
        let student = parse_program(
            "def iterPower(base, exp):\n    result = 0\n    for i in range(exp):\n        result *= base\n    return result\n",
        )
        .unwrap();
        let model = ErrorModel::new("m")
            .with_rule(library::initr())
            .with_rule(library::ranr1());
        let cp = apply_error_model(&student, Some("iterPower"), &model).unwrap();
        let compiled = CompiledProgram::from_choice(&cp).expect("compiles");
        assert!(compiled.site_count() > 0);
        let mut vm = Vm::new(ExecLimits::fast());
        let evaluator = crate::choice_eval::ChoiceEvaluator::new(&cp, ExecLimits::fast());
        let args = [Value::Int(3), Value::Int(2)];
        // Sweep every single-site selection and compare with the tree
        // walker on result and output.
        let mut assignments = vec![ChoiceAssignment::default_choices()];
        for info in &cp.choices {
            for option in 0..info.options.len() + 1 {
                assignments.push(ChoiceAssignment::from_pairs([(info.id, option)]));
            }
        }
        for assignment in &assignments {
            vm.select(&compiled, assignment);
            let direct = vm.run(&compiled, &args);
            let tree = evaluator.run(assignment, &args);
            match (&direct, &tree) {
                (Ok(a), Ok(b)) => assert_eq!(a, b, "{assignment:?}"),
                (Err(a), Err(b)) => assert_eq!(a, b, "{assignment:?}"),
                _ => panic!("{assignment:?}: {direct:?} vs {tree:?}"),
            }
        }
    }
}
