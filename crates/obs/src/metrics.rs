//! The global metrics registry: counters, gauges and log-linear
//! histograms, all recordable lock-free from any thread.

use std::collections::hash_map::RandomState;
use std::collections::HashMap;
use std::hash::BuildHasher;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down (or be set outright).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if `v` is larger (high-water mark).
    pub fn max(&self, v: i64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Sub-bucket resolution: 2^4 = 16 linear sub-buckets per power-of-two
/// octave, bounding the relative quantization error at 1/16 ≈ 6% of the
/// bucket's lower edge (≈3% of its midpoint) across the full u64 range.
const SUB_BITS: u32 = 4;
const SUB: u64 = 1 << SUB_BITS;
/// Bucket count for the full u64 range (see `bucket_index(u64::MAX)`).
pub(crate) const NBUCKETS: usize = (60 * SUB + SUB) as usize;

#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let shift = msb - SUB_BITS;
    let offset = (v >> shift) - SUB;
    ((u64::from(shift) + 1) * SUB + offset) as usize
}

/// Inclusive upper edge of bucket `i` — every value recorded into bucket
/// `i` is `<=` this, making it a valid Prometheus `le` bound.
pub(crate) fn bucket_bound(i: usize) -> u64 {
    let i = i as u64;
    if i < SUB {
        return i;
    }
    let shift = (i / SUB - 1) as u32;
    let offset = i % SUB;
    let low = (SUB + offset) << shift;
    low + ((1u64 << shift) - 1)
}

/// An HDR-style log-linear histogram over `u64` values.
///
/// Recording is one relaxed `fetch_add` into the value's bucket plus one
/// into the running sum — lock-free and wait-free. `scale` converts raw
/// recorded integers into the exposition unit (record microseconds,
/// expose seconds with `scale = 1e-6`); it never affects recording.
pub struct Histogram {
    buckets: Box<[AtomicU64; NBUCKETS]>,
    sum: AtomicU64,
    scale: f64,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .field("scale", &self.scale)
            .finish()
    }
}

impl Histogram {
    pub fn new(scale: f64) -> Self {
        let buckets: Vec<AtomicU64> = (0..NBUCKETS).map(|_| AtomicU64::new(0)).collect();
        let buckets: Box<[AtomicU64; NBUCKETS]> = buckets
            .into_boxed_slice()
            .try_into()
            .expect("NBUCKETS-sized allocation");
        Self {
            buckets,
            sum: AtomicU64::new(0),
            scale,
        }
    }

    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Records a duration at microsecond resolution (the convention for
    /// every latency histogram in the stack; pair with `scale = 1e-6`).
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Exposition multiplier from raw recorded units to reported units.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all recorded values, in raw (unscaled) units.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Nearest-rank quantile (`q` in `[0, 1]`), reported as the upper
    /// edge of the bucket holding that rank — an overestimate by at most
    /// one sub-bucket width. Returns 0 on an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cum = 0u64;
        for (i, c) in counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return bucket_bound(i);
            }
        }
        bucket_bound(NBUCKETS - 1)
    }

    /// Non-empty buckets as `(inclusive upper edge, cumulative count)`,
    /// in ascending bound order. The final entry's cumulative count
    /// equals `count()`.
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c > 0 {
                cum += c;
                out.push((bucket_bound(i), cum));
            }
        }
        out
    }
}

/// What a registry slot holds.
#[derive(Debug, Clone)]
pub(crate) enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct MetricKey {
    pub name: String,
    pub labels: Vec<(String, String)>,
}

#[derive(Debug, Clone)]
pub(crate) struct MetricEntry {
    pub key: MetricKey,
    pub help: &'static str,
    pub metric: Metric,
}

const SHARDS: usize = 8;

/// A name-sharded metric store. Registration takes one shard mutex;
/// recording through a returned handle takes none. Call sites cache
/// handles (see the `counter!` family), so the mutex is off every hot
/// path.
pub struct Registry {
    shards: [Mutex<HashMap<MetricKey, MetricEntry>>; SHARDS],
    hasher: RandomState,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    pub fn new() -> Self {
        Self {
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
            hasher: RandomState::new(),
        }
    }

    fn shard(&self, name: &str) -> &Mutex<HashMap<MetricKey, MetricEntry>> {
        &self.shards[(self.hasher.hash_one(name) as usize) % SHARDS]
    }

    fn get_or_insert(
        &self,
        name: &str,
        help: &'static str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Metric,
    ) -> Metric {
        let key = MetricKey {
            name: name.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        };
        let mut shard = self.shard(name).lock().unwrap();
        let entry = shard.entry(key.clone()).or_insert_with(|| MetricEntry {
            key,
            help,
            metric: make(),
        });
        entry.metric.clone()
    }

    /// Registers (or retrieves) a counter. Panics if `name`+`labels` is
    /// already registered as a different metric type — a wiring bug that
    /// should fail loudly at first use, not corrupt a scrape.
    pub fn counter(&self, name: &str, help: &'static str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.get_or_insert(name, help, labels, || {
            Metric::Counter(Arc::new(Counter::new()))
        }) {
            Metric::Counter(c) => c,
            other => panic!("metric '{name}' already registered as a {}", other.kind()),
        }
    }

    /// Registers (or retrieves) a gauge.
    pub fn gauge(&self, name: &str, help: &'static str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        match self.get_or_insert(name, help, labels, || Metric::Gauge(Arc::new(Gauge::new()))) {
            Metric::Gauge(g) => g,
            other => panic!("metric '{name}' already registered as a {}", other.kind()),
        }
    }

    /// Registers (or retrieves) a histogram with the given exposition
    /// scale (see [`Histogram::new`]).
    pub fn histogram(
        &self,
        name: &str,
        help: &'static str,
        scale: f64,
        labels: &[(&str, &str)],
    ) -> Arc<Histogram> {
        match self.get_or_insert(name, help, labels, || {
            Metric::Histogram(Arc::new(Histogram::new(scale)))
        }) {
            Metric::Histogram(h) => h,
            other => panic!("metric '{name}' already registered as a {}", other.kind()),
        }
    }

    /// All registered entries, sorted by name then labels so exposition
    /// is deterministic.
    pub(crate) fn entries(&self) -> Vec<MetricEntry> {
        let mut out: Vec<MetricEntry> = Vec::new();
        for shard in &self.shards {
            out.extend(shard.lock().unwrap().values().cloned());
        }
        out.sort_by(|a, b| {
            a.key
                .name
                .cmp(&b.key.name)
                .then_with(|| a.key.labels.cmp(&b.key.labels))
        });
        out
    }
}

/// The process-wide registry every `counter!`/`histogram!` call site and
/// the `/metrics` endpoint share.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_contiguous() {
        // Walk every bucket's lower edge in increasing value order: the
        // indices must count up by exactly one with no gaps.
        let mut expected = 0usize;
        for v in 0..SUB {
            assert_eq!(bucket_index(v), expected);
            expected += 1;
        }
        for shift in 0..60u32 {
            for offset in 0..SUB {
                let v = (SUB + offset) << shift;
                assert_eq!(bucket_index(v), expected, "at v={v}");
                expected += 1;
            }
        }
        assert_eq!(expected, NBUCKETS);
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(u64::MAX), NBUCKETS - 1);
    }

    #[test]
    fn bucket_bound_is_a_true_upper_edge() {
        for v in [
            0u64,
            1,
            15,
            16,
            17,
            100,
            1_000,
            65_535,
            1 << 20,
            (1 << 33) + 7,
            u64::MAX,
        ] {
            let i = bucket_index(v);
            assert!(bucket_bound(i) >= v, "bound below value for v={v}");
            if i > 0 {
                assert!(
                    bucket_bound(i - 1) < v,
                    "value fits an earlier bucket: v={v}"
                );
            }
        }
        // Bounds are strictly increasing across all buckets.
        for i in 1..NBUCKETS {
            assert!(bucket_bound(i) > bucket_bound(i - 1));
        }
    }

    #[test]
    fn histogram_quantiles_are_close() {
        let h = Histogram::new(1.0);
        for v in 1..=10_000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 10_000);
        assert_eq!(h.sum(), 10_000 * 10_001 / 2);
        let p50 = h.quantile(0.50);
        let p99 = h.quantile(0.99);
        // Log-linear error bound: within one sub-bucket (1/16) of exact.
        assert!((4_700..=5_400).contains(&p50), "p50={p50}");
        assert!((9_700..=10_700).contains(&p99), "p99={p99}");
        assert!(h.quantile(0.0) >= 1);
        assert!(h.quantile(1.0) >= 10_000);
    }

    #[test]
    fn cumulative_buckets_are_monotone_and_total() {
        let h = Histogram::new(1.0);
        for v in [3u64, 3, 17, 900, 900, 900, 1 << 30] {
            h.record(v);
        }
        let buckets = h.cumulative_buckets();
        assert!(!buckets.is_empty());
        let mut last_bound = None;
        let mut last_cum = 0;
        for &(bound, cum) in &buckets {
            if let Some(prev) = last_bound {
                assert!(bound > prev);
            }
            assert!(cum >= last_cum);
            last_bound = Some(bound);
            last_cum = cum;
        }
        assert_eq!(last_cum, h.count());
    }

    #[test]
    fn registry_dedupes_by_name_and_labels() {
        let r = Registry::new();
        let a = r.counter("x_total", "help", &[]);
        let b = r.counter("x_total", "help", &[]);
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        let labeled = r.counter("x_total", "help", &[("mode", "tree")]);
        labeled.inc();
        assert_eq!(labeled.get(), 1);
        assert_eq!(a.get(), 3);
        assert_eq!(r.entries().len(), 2);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn registry_rejects_type_confusion() {
        let r = Registry::new();
        r.counter("y_total", "help", &[]);
        r.gauge("y_total", "help", &[]);
    }
}
