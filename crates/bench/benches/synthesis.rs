//! Micro-benchmarks for the feedback-generation pipeline.
//!
//! The workspace carries no external dependencies (criterion is
//! unavailable), so this is a plain `harness = false` benchmark that times
//! each case manually and prints mean/min per-iteration wall-clock times.
//!
//! * `grade/<problem>` — end-to-end grading time of one representative
//!   incorrect submission per benchmark problem (the per-submission seconds
//!   of Table 1).
//! * `backend/{cegis,enumerative}` — ablation of the SAT-backed CEGISMIN
//!   search against cost-ordered enumeration (paper §7.4).
//! * `substrate/*` — micro-benchmarks of the substrates: the interpreter,
//!   the error-model transformation and the SAT solver.
//!
//! ```text
//! cargo bench -p afg-bench
//! ```

use std::time::{Duration, Instant};

use afg_core::GraderConfig;
use afg_corpus::{generate_corpus, problems, CorpusSpec, Origin};
use afg_eml::{apply_error_model, library};
use afg_interp::{run_function, EquivalenceConfig, EquivalenceOracle, ExecLimits, Value};
use afg_parser::parse_program;
use afg_sat::Solver;
use afg_synth::{Backend, SynthesisConfig};

/// Times `f` repeatedly (a warmup pass plus `iters` measured passes) and
/// prints mean and minimum per-iteration time.
fn bench(name: &str, iters: usize, mut f: impl FnMut()) {
    f(); // warmup
    let mut times = Vec::with_capacity(iters);
    for _ in 0..iters {
        let start = Instant::now();
        f();
        times.push(start.elapsed());
    }
    let total: Duration = times.iter().sum();
    let mean = total / iters as u32;
    let min = times.iter().min().copied().unwrap_or_default();
    println!(
        "{name:<40} mean {:>10.3?}   min {:>10.3?}   ({iters} iters)",
        mean, min
    );
}

/// A representative incorrect submission for a problem: the first mutated
/// submission of its seeded corpus.
fn incorrect_submission(problem: &afg_corpus::Problem) -> String {
    let corpus = generate_corpus(problem, &CorpusSpec::table1_like(40, 1));
    corpus
        .into_iter()
        .find(|s| matches!(s.origin, Origin::Mutated(_)))
        .map(|s| s.source)
        .expect("corpus contains mutated submissions")
}

fn bench_grading() {
    for id in [
        "compDeriv",
        "iterPower",
        "recurPower",
        "oddTuples",
        "evalPoly",
    ] {
        let problem = problems::problem(id).expect("known benchmark");
        let grader = problem.autograder(GraderConfig::fast());
        let submission = incorrect_submission(&problem);
        bench(&format!("grade/{id}"), 10, || {
            std::hint::black_box(grader.grade_source(&submission));
        });
    }
}

fn bench_backends() {
    let problem = problems::compute_deriv();
    let reference = parse_program(problem.reference).unwrap();
    let oracle = EquivalenceOracle::from_reference(
        &reference,
        EquivalenceConfig {
            entry: Some(problem.entry.to_string()),
            ..EquivalenceConfig::default()
        },
    );
    let student = parse_program(
        "def computeDeriv(poly):\n    if len(poly) == 1:\n        return [0]\n    d = []\n    for i in range(0, len(poly)):\n        d.append(i * poly[i])\n    return d\n",
    )
    .unwrap();
    let choices = apply_error_model(&student, Some(problem.entry), &problem.model).unwrap();

    for (name, backend) in [
        ("cegis", Backend::Cegis),
        ("enumerative", Backend::Enumerative),
    ] {
        bench(&format!("backend/{name}"), 10, || {
            std::hint::black_box(backend.synthesize(&choices, &oracle, &SynthesisConfig::fast()));
        });
    }
}

fn bench_substrates() {
    // Interpreter: one run of the reference computeDeriv on a 4-element list.
    let reference = parse_program(problems::compute_deriv().reference).unwrap();
    let input = vec![Value::int_list([2, -3, 1, 4])];
    bench("substrate/interpreter_computeDeriv", 200, || {
        std::hint::black_box(
            run_function(&reference, Some("computeDeriv"), &input, ExecLimits::fast()).unwrap(),
        );
    });

    // Error-model transformation of the Figure 2(a) submission.
    let student = parse_program(
        "def computeDeriv(poly):\n    deriv = []\n    zero = 0\n    if (len(poly) == 1):\n        return deriv\n    for e in range(0, len(poly)):\n        if (poly[e] == 0):\n            zero += 1\n        else:\n            deriv.append(poly[e]*e)\n    return deriv\n",
    )
    .unwrap();
    let model = library::compute_deriv_model();
    bench("substrate/transform_figure2a", 200, || {
        std::hint::black_box(apply_error_model(&student, Some("computeDeriv"), &model).unwrap());
    });

    // SAT solver: pigeonhole 5 pigeons / 4 holes (unsatisfiable).
    bench("substrate/sat_pigeonhole_5_4", 50, || {
        let mut solver = Solver::new();
        let pigeons: Vec<Vec<_>> = (0..5).map(|_| solver.new_vars(4)).collect();
        for row in &pigeons {
            let lits: Vec<_> = row.iter().map(|v| v.positive()).collect();
            solver.add_clause(&lits);
        }
        #[allow(clippy::needless_range_loop)]
        for hole in 0..4usize {
            for i in 0..5 {
                for j in (i + 1)..5 {
                    solver.add_clause(&[pigeons[i][hole].negative(), pigeons[j][hole].negative()]);
                }
            }
        }
        std::hint::black_box(solver.solve());
    });
}

fn main() {
    bench_grading();
    bench_backends();
    bench_substrates();
}
