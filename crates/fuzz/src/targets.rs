//! The six fuzz targets: four attacker-facing decoders run for
//! crash-freedom (the `http` target additionally checks that parsing is
//! invariant under how the bytes are chunked), and two differential
//! targets run against an independent oracle.  Every target maps a raw
//! byte string to a [`Verdict`]; panics are caught with `catch_unwind` so
//! the loop survives them and can minimize the input that triggered one.

use std::panic::{catch_unwind, AssertUnwindSafe};

use afg_ast::ops::BinOp;
use afg_interp::{binary_op, CompiledProgram, ExecLimits, Interpreter, RuntimeError, Value, Vm};

/// Which decoder/differential pair an input is fed to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TargetKind {
    /// EML error-model text → `afg_eml::parse_error_model`.
    Eml,
    /// MPY submission source → `afg_parser::parse_program`.
    Parser,
    /// JSON document → `afg_json::parse_json`.
    Json,
    /// Raw HTTP/1.1 request bytes → `afg_service::RequestParser`, fed
    /// under three different chunkings that must agree.
    Http,
    /// 17-byte `(op, a, b)` chunks → `binary_op` vs the i128-widened oracle.
    Arith,
    /// MPY source → bytecode VM vs tree walker (value + output + fuel).
    Vm,
}

impl TargetKind {
    pub const ALL: [TargetKind; 6] = [
        TargetKind::Eml,
        TargetKind::Parser,
        TargetKind::Json,
        TargetKind::Http,
        TargetKind::Arith,
        TargetKind::Vm,
    ];

    #[must_use]
    pub fn from_name(name: &str) -> Option<TargetKind> {
        match name {
            "eml" => Some(TargetKind::Eml),
            "parser" => Some(TargetKind::Parser),
            "json" => Some(TargetKind::Json),
            "http" => Some(TargetKind::Http),
            "arith" => Some(TargetKind::Arith),
            "vm" => Some(TargetKind::Vm),
            _ => None,
        }
    }

    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TargetKind::Eml => "eml",
            TargetKind::Parser => "parser",
            TargetKind::Json => "json",
            TargetKind::Http => "http",
            TargetKind::Arith => "arith",
            TargetKind::Vm => "vm",
        }
    }
}

/// Outcome of feeding one input to one target.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// The input was accepted (or, for differential targets, all probed
    /// operations agreed).
    Ok,
    /// The input was rejected with a structured error — the healthy path
    /// for malformed input.
    Rejected(String),
    /// The target panicked; the payload is the panic message.
    Crash(String),
    /// A differential target disagreed with its oracle.
    Divergence(String),
}

impl Verdict {
    /// Crashes and divergences are findings; Ok/Rejected are not.
    #[must_use]
    pub fn is_finding(&self) -> bool {
        matches!(self, Verdict::Crash(_) | Verdict::Divergence(_))
    }
}

/// Runs `data` through `kind`, converting panics into [`Verdict::Crash`].
#[must_use]
pub fn run_target(kind: TargetKind, data: &[u8]) -> Verdict {
    let result = catch_unwind(AssertUnwindSafe(|| run_target_inner(kind, data)));
    match result {
        Ok(verdict) => verdict,
        Err(payload) => {
            let message = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_string()
            };
            Verdict::Crash(message)
        }
    }
}

fn run_target_inner(kind: TargetKind, data: &[u8]) -> Verdict {
    match kind {
        TargetKind::Eml => {
            let text = String::from_utf8_lossy(data);
            match afg_eml::parse_error_model("fuzz", &text) {
                Ok(_) => Verdict::Ok,
                Err(err) => Verdict::Rejected(err.to_string()),
            }
        }
        TargetKind::Parser => {
            let text = String::from_utf8_lossy(data);
            match afg_parser::parse_program(&text) {
                Ok(_) => Verdict::Ok,
                Err(err) => Verdict::Rejected(err.to_string()),
            }
        }
        TargetKind::Json => {
            let text = String::from_utf8_lossy(data);
            match afg_json::parse_json(&text) {
                Ok(_) => Verdict::Ok,
                Err(err) => Verdict::Rejected(err.to_string()),
            }
        }
        TargetKind::Http => run_http(data),
        TargetKind::Arith => run_arith(data),
        TargetKind::Vm => run_vm(data),
    }
}

// ---------------------------------------------------------------------------
// Chunking-invariance target: the incremental HTTP request parser
// ---------------------------------------------------------------------------

/// Cap on recorded parse events per run so a pathological input (say,
/// thousands of tiny pipelined requests) stays bounded.  The cap is a
/// pure function of the byte stream, so it cannot itself introduce a
/// spurious divergence between chunkings.
const HTTP_MAX_EVENTS: usize = 64;

fn fnv1a(data: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in data {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Feeds `data` to a fresh parser in chunks drawn from `next_chunk`,
/// recording every parse event (completed requests, errors, the EOF
/// outcome) as strings.  Two runs over the same bytes must produce the
/// same trace regardless of chunking — that is the property under test.
fn http_trace(data: &[u8], next_chunk: &mut dyn FnMut() -> usize) -> Vec<String> {
    let mut parser = afg_service::RequestParser::new();
    let mut events = Vec::new();
    let mut at = 0;
    'stream: while at < data.len() {
        let step = next_chunk().clamp(1, data.len() - at);
        let mut slice = &data[at..at + step];
        at += step;
        loop {
            match parser.feed(slice) {
                afg_service::Parse::Complete(request) => {
                    events.push(format!("req {request:?}"));
                    if events.len() >= HTTP_MAX_EVENTS {
                        break 'stream;
                    }
                    // Drain any pipelined request already buffered.
                    slice = &[];
                }
                afg_service::Parse::Partial => break,
                afg_service::Parse::Error(err) => {
                    events.push(format!("err {err:?}"));
                    break 'stream;
                }
            }
        }
    }
    if events.len() < HTTP_MAX_EVENTS {
        let eof = match parser.eof() {
            afg_service::EofOutcome::Closed => "eof closed".to_string(),
            afg_service::EofOutcome::Complete(request) => format!("eof req {request:?}"),
            afg_service::EofOutcome::Error(err) => format!("eof err {err:?}"),
            afg_service::EofOutcome::Drop => "eof drop".to_string(),
        };
        events.push(eof);
    }
    events
}

/// Parses `data` three ways — one whole feed, byte-at-a-time, and
/// randomly sized chunks seeded from the input's own hash — and demands
/// identical event traces.  Any panic is caught upstream as a crash; any
/// trace mismatch is a [`Verdict::Divergence`].
fn run_http(data: &[u8]) -> Verdict {
    let whole = http_trace(data, &mut || data.len().max(1));
    let bytewise = http_trace(data, &mut || 1);
    if whole != bytewise {
        return Verdict::Divergence(format!(
            "byte-at-a-time parse diverged: whole {whole:?} vs bytewise {bytewise:?}"
        ));
    }
    // Chunk sizes seeded from the input's own hash: reproducible per
    // input, yet a fresh boundary pattern for every mutant.
    let mut rng = crate::rng::SplitMix64::new(fnv1a(data));
    let seeded = http_trace(data, &mut || rng.below(17) + 1);
    if whole != seeded {
        return Verdict::Divergence(format!(
            "seeded chunking parse diverged: whole {whole:?} vs chunked {seeded:?}"
        ));
    }
    match whole.first().map(String::as_str) {
        Some(event) if event.starts_with("req ") || event.starts_with("eof req ") => Verdict::Ok,
        Some(event) => Verdict::Rejected(event.to_string()),
        None => Verdict::Rejected("empty trace".to_string()),
    }
}

// ---------------------------------------------------------------------------
// Differential target: binary_op vs i128 oracle
// ---------------------------------------------------------------------------

/// What the i128-widened mathematical semantics say an operation does.
/// Written independently of `afg-interp` (same contract as the seeded
/// sweep in `crates/interp/tests/arith_differential.rs`).
#[derive(Debug, PartialEq, Eq)]
enum Oracle {
    Int(i64),
    Overflow,
    ZeroDivision,
    Unsupported,
}

fn fits(wide: i128) -> Oracle {
    match i64::try_from(wide) {
        Ok(narrow) => Oracle::Int(narrow),
        Err(_) => Oracle::Overflow,
    }
}

/// Floor of `a / b` in i128 (`b != 0`); `div_euclid` floors only for
/// positive divisors, and `a / b == (-a) / (-b)` maps the rest onto it.
fn floor_div_i128(a: i128, b: i128) -> i128 {
    if b > 0 {
        a.div_euclid(b)
    } else {
        (-a).div_euclid(-b)
    }
}

fn oracle_binary(op: BinOp, a: i64, b: i64) -> Oracle {
    let (wa, wb) = (i128::from(a), i128::from(b));
    match op {
        BinOp::Add => fits(wa + wb),
        BinOp::Sub => fits(wa - wb),
        BinOp::Mul => fits(wa * wb),
        BinOp::Div | BinOp::FloorDiv => {
            if b == 0 {
                Oracle::ZeroDivision
            } else {
                fits(floor_div_i128(wa, wb))
            }
        }
        BinOp::Mod => {
            if b == 0 {
                Oracle::ZeroDivision
            } else {
                fits(wa - wb * floor_div_i128(wa, wb))
            }
        }
        BinOp::Pow => {
            if b < 0 {
                return Oracle::Unsupported;
            }
            match a {
                0 => return Oracle::Int(if b == 0 { 1 } else { 0 }),
                1 => return Oracle::Int(1),
                -1 => return Oracle::Int(if b % 2 == 0 { 1 } else { -1 }),
                _ => {}
            }
            let mut acc: i128 = 1;
            for _ in 0..b {
                acc *= wa;
                if i64::try_from(acc).is_err() {
                    return Oracle::Overflow;
                }
            }
            fits(acc)
        }
    }
}

const OPS: [BinOp; 6] = [
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::FloorDiv,
    BinOp::Mod,
    BinOp::Pow,
];

/// Decodes the input as a sequence of 17-byte `(op, a, b)` chunks and
/// checks `binary_op` against the oracle on each.  A trailing partial
/// chunk is ignored; an empty input is trivially Ok.
fn run_arith(data: &[u8]) -> Verdict {
    for chunk in data.chunks_exact(17) {
        let op = OPS[(chunk[0] % 6) as usize];
        let a = i64::from_le_bytes(chunk[1..9].try_into().expect("8 bytes"));
        let b = i64::from_le_bytes(chunk[9..17].try_into().expect("8 bytes"));
        let expected = oracle_binary(op, a, b);
        let observed = match binary_op(op, &Value::Int(a), &Value::Int(b)) {
            Ok(Value::Int(v)) => Oracle::Int(v),
            Ok(other) => {
                return Verdict::Divergence(format!("int {op:?} produced a non-int: {other:?}"))
            }
            Err(RuntimeError::Overflow) => Oracle::Overflow,
            Err(RuntimeError::ZeroDivision) => Oracle::ZeroDivision,
            Err(RuntimeError::Unsupported(_)) => Oracle::Unsupported,
            Err(other) => return Verdict::Divergence(format!("int {op:?} raised {other:?}")),
        };
        if observed != expected {
            return Verdict::Divergence(format!(
                "{op:?}({a}, {b}): interp {observed:?} vs oracle {expected:?}"
            ));
        }
    }
    Verdict::Ok
}

// ---------------------------------------------------------------------------
// Differential target: bytecode VM vs tree walker
// ---------------------------------------------------------------------------

/// Cap on the number of argument tuples probed per program so a single
/// exec stays bounded regardless of arity.
const VM_MAX_ARG_TUPLES: usize = 12;

fn run_vm(data: &[u8]) -> Verdict {
    let text = String::from_utf8_lossy(data);
    let program = match afg_parser::parse_program(&text) {
        Ok(program) => program,
        Err(err) => return Verdict::Rejected(err.to_string()),
    };
    let Some(func) = program.funcs.first() else {
        return Verdict::Rejected("no function definition".to_string());
    };
    let entry = func.name.clone();
    let Some(compiled) = CompiledProgram::from_program(&program, Some(&entry)) else {
        // Programs the compiler cannot lower fall back to the tree walker
        // in production, so there is nothing to compare.
        return Verdict::Rejected("not compilable to bytecode".to_string());
    };
    let params: Vec<_> = func.params.iter().map(|p| p.ty.clone()).collect();
    let limits = ExecLimits::fast();
    let arg_tuples = afg_interp::InputSpace::tiny().enumerate_args(&params);
    for args in arg_tuples.into_iter().take(VM_MAX_ARG_TUPLES) {
        let mut vm = Vm::new(limits);
        let vm_result = vm.run(&compiled, &args);
        let mut interp = Interpreter::with_limits(&program, limits);
        let tree_result = interp.call_entry(Some(&entry), &args);
        let agree = match (&vm_result, &tree_result) {
            (Ok(v), Ok(t)) => v.value == t.value && v.output == t.output,
            (Err(v), Err(t)) => v == t,
            _ => false,
        };
        if !agree {
            return Verdict::Divergence(format!(
                "args {args:?}: vm {vm_result:?} vs tree {tree_result:?}"
            ));
        }
        if vm.fuel_used() != interp.fuel_used() {
            return Verdict::Divergence(format!(
                "args {args:?}: fuel vm {} vs tree {}",
                vm.fuel_used(),
                interp.fuel_used()
            ));
        }
    }
    Verdict::Ok
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_names_round_trip() {
        for kind in TargetKind::ALL {
            assert_eq!(TargetKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(TargetKind::from_name("bogus"), None);
    }

    #[test]
    fn decoders_accept_and_reject_without_crashing() {
        assert_eq!(run_target(TargetKind::Json, b"[1, 2, 3]"), Verdict::Ok);
        assert!(matches!(
            run_target(TargetKind::Json, b"[1, 2,"),
            Verdict::Rejected(_)
        ));
        assert_eq!(
            run_target(TargetKind::Parser, b"def f_int(x):\n    return x\n"),
            Verdict::Ok
        );
        assert!(matches!(
            run_target(TargetKind::Parser, b"def ("),
            Verdict::Rejected(_)
        ));
        assert!(matches!(
            run_target(TargetKind::Eml, b"not a rule"),
            Verdict::Rejected(_)
        ));
    }

    #[test]
    fn http_target_is_chunking_invariant_on_healthy_and_hostile_input() {
        // A well-formed pipelined pair parses (first event is a request).
        assert_eq!(
            run_target(
                TargetKind::Http,
                b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\nPOST /p HTTP/1.1\r\nContent-Length: 2\r\n\r\nok"
            ),
            Verdict::Ok
        );
        // Garbage is rejected, not a finding.
        assert!(matches!(
            run_target(TargetKind::Http, b"\x00\xffnot http at all"),
            Verdict::Rejected(_)
        ));
        // Over-limit declared body is structurally rejected.
        assert!(matches!(
            run_target(
                TargetKind::Http,
                b"POST / HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n"
            ),
            Verdict::Rejected(_)
        ));
    }

    #[test]
    fn arith_target_agrees_on_edge_chunks() {
        // i64::MIN // -1 — the historical overflow, now pinned.
        let mut chunk = vec![3u8]; // FloorDiv
        chunk.extend_from_slice(&i64::MIN.to_le_bytes());
        chunk.extend_from_slice(&(-1i64).to_le_bytes());
        assert_eq!(run_target(TargetKind::Arith, &chunk), Verdict::Ok);
    }

    #[test]
    fn vm_target_agrees_on_simple_program() {
        let verdict = run_target(
            TargetKind::Vm,
            b"def f_int(x):\n    if x > 0:\n        return x\n    return 0 - x\n",
        );
        assert_eq!(verdict, Verdict::Ok);
    }
}
