//! Deterministic byte-level mutations.  Nothing here is clever — the
//! coverage loop supplies the feedback; this just needs to be cheap,
//! seeded, and biased toward the tokens the six targets actually parse.

use crate::rng::SplitMix64;

/// Boundary values that historically break integer decoders.
const INTERESTING_BYTES: [u8; 12] = [
    0x00, 0x01, 0x7F, 0x80, 0xFF, b'0', b'9', b'(', b')', b':', b'\n', b' ',
];

/// Grammar fragments across all six targets: MPY keywords, JSON
/// scaffolding, EML arrows, HTTP request framing, and the i64 boundary
/// literals the arithmetic oracle cares about.
const DICTIONARY: [&str; 28] = [
    "def f_int(x):\n",
    "    return ",
    "if ",
    "else:\n",
    "elif ",
    "while ",
    "for x in ",
    "print ",
    "not ",
    " == ",
    " // ",
    " ** ",
    "((((",
    "[[[[",
    "{\"a\": ",
    "\\u0041",
    "null",
    "true",
    "1e999",
    "9223372036854775807",
    "-9223372036854775808",
    " -> ",
    "?x",
    "range(",
    " HTTP/1.1\r\n",
    "Content-Length: ",
    "Connection: close\r\n",
    "\r\n\r\n",
];

/// Produces one seeded mutant of `data`, capped at `max_len` bytes.
#[must_use]
pub fn mutate(data: &[u8], rng: &mut SplitMix64, max_len: usize) -> Vec<u8> {
    let mut out = data.to_vec();
    // Stack 1–4 mutations so the fuzzer can jump more than one edit away
    // from the corpus.
    let rounds = 1 + rng.below(4);
    for _ in 0..rounds {
        apply_one(&mut out, rng);
    }
    out.truncate(max_len);
    out
}

fn apply_one(out: &mut Vec<u8>, rng: &mut SplitMix64) {
    match rng.below(8) {
        // Bit flip.
        0 if !out.is_empty() => {
            let i = rng.below(out.len());
            out[i] ^= 1 << rng.below(8);
        }
        // Replace with a random byte.
        1 if !out.is_empty() => {
            let i = rng.below(out.len());
            out[i] = rng.byte();
        }
        // Replace with an interesting byte.
        2 if !out.is_empty() => {
            let i = rng.below(out.len());
            out[i] = INTERESTING_BYTES[rng.below(INTERESTING_BYTES.len())];
        }
        // Insert a random byte.
        3 => {
            let i = rng.below(out.len() + 1);
            out.insert(i, rng.byte());
        }
        // Delete a chunk.
        4 if !out.is_empty() => {
            let start = rng.below(out.len());
            let len = 1 + rng.below((out.len() - start).min(8));
            out.drain(start..start + len);
        }
        // Duplicate a chunk (drives loop/nesting count classes).
        5 if !out.is_empty() => {
            let start = rng.below(out.len());
            let len = 1 + rng.below((out.len() - start).min(16));
            let chunk: Vec<u8> = out[start..start + len].to_vec();
            let at = rng.below(out.len() + 1);
            out.splice(at..at, chunk);
        }
        // Splice in a dictionary token.
        6 => {
            let token = DICTIONARY[rng.below(DICTIONARY.len())];
            let at = rng.below(out.len() + 1);
            out.splice(at..at, token.bytes());
        }
        // Overwrite a run with one repeated byte (long literals, deep
        // indentation).
        7 if out.len() > 1 => {
            let start = rng.below(out.len());
            let len = 1 + rng.below((out.len() - start).min(12));
            let b = INTERESTING_BYTES[rng.below(INTERESTING_BYTES.len())];
            for slot in &mut out[start..start + len] {
                *slot = b;
            }
        }
        // Guarded arms fall through to insertion when the input is empty.
        _ => {
            let at = rng.below(out.len() + 1);
            out.insert(at, rng.byte());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutation_is_deterministic_and_bounded() {
        let seedling = b"def f_int(x):\n    return x\n";
        let mut a = SplitMix64::new(99);
        let mut b = SplitMix64::new(99);
        for _ in 0..200 {
            let ma = mutate(seedling, &mut a, 64);
            let mb = mutate(seedling, &mut b, 64);
            assert_eq!(ma, mb);
            assert!(ma.len() <= 64);
        }
    }

    #[test]
    fn empty_input_grows() {
        let mut rng = SplitMix64::new(1);
        let mut grew = false;
        for _ in 0..50 {
            if !mutate(b"", &mut rng, 64).is_empty() {
                grew = true;
            }
        }
        assert!(grew);
    }
}
