//! Bounded input-space enumeration.
//!
//! The paper checks equivalence of the student and reference implementations
//! "on all inputs of a bounded size" — 4-bit integers and input lists of
//! length at most 4 in the experiments (§5.3).  This module enumerates that
//! space from the instructor-declared parameter types so the verification
//! oracle can iterate over it.
//!
//! Inputs are ordered from small to large (short lists first, integers by
//! increasing magnitude) so that counterexamples found early are small and
//! readable, and so that a single pass finds mismatches quickly.

use afg_ast::types::MpyType;

use crate::value::Value;

/// Description of the bounded input space used for equivalence checking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InputSpace {
    /// Width of input integers in bits; values range over
    /// `[-2^(bits-1), 2^(bits-1) - 1]`.
    pub int_bits: u32,
    /// Maximum length of input lists and tuples.
    pub max_seq_len: usize,
    /// Alphabet for input strings.
    pub alphabet: Vec<char>,
    /// Maximum length of input strings.
    pub max_str_len: usize,
    /// Cap on the total number of argument tuples; larger cross products are
    /// deterministically down-sampled.
    pub max_inputs: usize,
}

impl Default for InputSpace {
    fn default() -> InputSpace {
        // A compact space that keeps the enumerative oracle fast while still
        // distinguishing every benchmark mutation we ship.
        InputSpace {
            int_bits: 3,
            max_seq_len: 3,
            alphabet: vec!['a', 'b'],
            max_str_len: 3,
            max_inputs: 2_000,
        }
    }
}

impl InputSpace {
    /// The bounds used in the paper's experiments: 4-bit integers and
    /// sequences up to length 4.
    pub fn paper() -> InputSpace {
        InputSpace {
            int_bits: 4,
            max_seq_len: 4,
            alphabet: vec!['a', 'b', 'c'],
            max_str_len: 4,
            max_inputs: 20_000,
        }
    }

    /// A very small space for unit tests.
    pub fn tiny() -> InputSpace {
        InputSpace {
            int_bits: 2,
            max_seq_len: 2,
            alphabet: vec!['a'],
            max_str_len: 2,
            max_inputs: 200,
        }
    }

    /// The integer values of the space, ordered by increasing magnitude
    /// (`0, 1, -1, 2, -2, ...`).
    pub fn int_values(&self) -> Vec<i64> {
        let half = 1i64 << (self.int_bits.saturating_sub(1));
        let mut values = vec![0];
        for magnitude in 1..=half {
            if magnitude < half {
                values.push(magnitude);
            }
            values.push(-magnitude);
        }
        values
    }

    /// Enumerates all values of a declared type within the space, smallest
    /// first.
    pub fn enumerate_type(&self, ty: &MpyType) -> Vec<Value> {
        match ty {
            MpyType::Int => self.int_values().into_iter().map(Value::Int).collect(),
            MpyType::Bool => vec![Value::Bool(false), Value::Bool(true)],
            MpyType::Str => self
                .enumerate_strings()
                .into_iter()
                .map(Value::Str)
                .collect(),
            MpyType::List(elem) => self
                .enumerate_sequences(elem)
                .into_iter()
                .map(Value::List)
                .collect(),
            MpyType::Tuple(elem) => self
                .enumerate_sequences(elem)
                .into_iter()
                .map(Value::Tuple)
                .collect(),
            MpyType::Dict(value_ty) => {
                // Dictionaries only appear as intermediate values in the
                // benchmarks; a handful of small inputs is enough.
                let values = self.enumerate_type(value_ty);
                let mut dicts = vec![Value::Dict(vec![])];
                for (i, v) in values.iter().take(3).enumerate() {
                    dicts.push(Value::Dict(vec![(Value::Int(i as i64), v.clone())]));
                }
                dicts
            }
            MpyType::Dynamic => {
                let mut values: Vec<Value> =
                    self.int_values().into_iter().map(Value::Int).collect();
                values.extend(
                    self.enumerate_sequences(&MpyType::Int)
                        .into_iter()
                        .take(8)
                        .map(Value::List),
                );
                values
            }
        }
    }

    fn enumerate_strings(&self) -> Vec<String> {
        let mut all = vec![String::new()];
        let mut current = vec![String::new()];
        for _ in 0..self.max_str_len {
            let mut next = Vec::new();
            for prefix in &current {
                for &c in &self.alphabet {
                    let mut s = prefix.clone();
                    s.push(c);
                    next.push(s);
                }
            }
            all.extend(next.iter().cloned());
            current = next;
        }
        all
    }

    fn enumerate_sequences(&self, elem: &MpyType) -> Vec<Vec<Value>> {
        let elem_values = self.enumerate_type(elem);
        let mut all: Vec<Vec<Value>> = vec![vec![]];
        let mut current: Vec<Vec<Value>> = vec![vec![]];
        for _ in 0..self.max_seq_len {
            let mut next = Vec::new();
            for prefix in &current {
                for v in &elem_values {
                    let mut seq = prefix.clone();
                    seq.push(v.clone());
                    next.push(seq);
                }
            }
            all.extend(next.iter().cloned());
            current = next;
        }
        all
    }

    /// Enumerates argument tuples for a parameter list, as the cross product
    /// of the per-parameter value sets, capped at [`InputSpace::max_inputs`]
    /// by deterministic stride sampling.
    pub fn enumerate_args(&self, params: &[MpyType]) -> Vec<Vec<Value>> {
        if params.is_empty() {
            return vec![vec![]];
        }
        let per_param: Vec<Vec<Value>> = params.iter().map(|ty| self.enumerate_type(ty)).collect();
        let total: usize = per_param.iter().map(Vec::len).product();
        let mut inputs = Vec::with_capacity(total.min(self.max_inputs));
        // Stride sampling keeps the enumeration deterministic while bounding
        // its size; stride 1 means the full cross product is used.
        let stride = total.div_ceil(self.max_inputs).max(1);
        let mut index = 0usize;
        while index < total {
            let mut remainder = index;
            let mut args = Vec::with_capacity(per_param.len());
            for values in &per_param {
                args.push(values[remainder % values.len()].clone());
                remainder /= values.len();
            }
            inputs.push(args);
            index += stride;
        }
        inputs
    }

    /// The size of the full (uncapped) input space for the parameter list.
    pub fn space_size(&self, params: &[MpyType]) -> usize {
        params
            .iter()
            .map(|ty| self.enumerate_type(ty).len())
            .product()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_values_are_ordered_by_magnitude_and_bounded() {
        let space = InputSpace {
            int_bits: 3,
            ..InputSpace::default()
        };
        let values = space.int_values();
        assert_eq!(values[0], 0);
        assert!(values.contains(&3));
        assert!(values.contains(&-4));
        assert!(!values.contains(&4));
        assert_eq!(values.len(), 8);
    }

    #[test]
    fn paper_space_uses_four_bit_integers() {
        let values = InputSpace::paper().int_values();
        assert_eq!(values.len(), 16);
        assert!(values.contains(&7));
        assert!(values.contains(&-8));
    }

    #[test]
    fn list_enumeration_starts_with_short_lists() {
        let space = InputSpace::tiny();
        let lists = space.enumerate_type(&MpyType::list_int());
        assert_eq!(lists[0], Value::List(vec![]));
        // lengths are non-decreasing
        let lengths: Vec<usize> = lists
            .iter()
            .map(|v| match v {
                Value::List(items) => items.len(),
                _ => unreachable!(),
            })
            .collect();
        let mut sorted = lengths.clone();
        sorted.sort_unstable();
        assert_eq!(lengths, sorted);
        // 1 + 4 + 16 lists for 2-bit ints and max length 2
        assert_eq!(lists.len(), 21);
    }

    #[test]
    fn string_enumeration_respects_alphabet_and_length() {
        let space = InputSpace {
            alphabet: vec!['a', 'b'],
            max_str_len: 2,
            ..InputSpace::tiny()
        };
        let strings = space.enumerate_type(&MpyType::Str);
        assert!(strings.contains(&Value::Str(String::new())));
        assert!(strings.contains(&Value::Str("ab".into())));
        assert_eq!(strings.len(), 1 + 2 + 4);
    }

    #[test]
    fn cross_product_and_cap() {
        let space = InputSpace::tiny();
        let args = space.enumerate_args(&[MpyType::Int, MpyType::Int]);
        assert_eq!(args.len(), 16);
        assert!(args.iter().all(|a| a.len() == 2));

        let capped = InputSpace {
            max_inputs: 10,
            ..InputSpace::tiny()
        };
        let args = capped.enumerate_args(&[MpyType::Int, MpyType::Int]);
        assert!(args.len() <= 10);
        assert!(!args.is_empty());
    }

    #[test]
    fn no_params_yields_single_empty_input() {
        let space = InputSpace::default();
        assert_eq!(space.enumerate_args(&[]), vec![Vec::<Value>::new()]);
    }

    #[test]
    fn space_size_reports_uncapped_product() {
        let space = InputSpace::tiny();
        assert_eq!(space.space_size(&[MpyType::Int, MpyType::Int]), 16);
        assert_eq!(space.space_size(&[MpyType::list_int()]), 21);
    }

    #[test]
    fn dynamic_type_mixes_ints_and_lists() {
        let space = InputSpace::tiny();
        let values = space.enumerate_type(&MpyType::Dynamic);
        assert!(values.iter().any(|v| matches!(v, Value::Int(_))));
        assert!(values.iter().any(|v| matches!(v, Value::List(_))));
    }
}
