//! A strict, recursive-descent JSON parser (RFC 8259).
//!
//! Strictness matters for a network-facing service: trailing garbage,
//! unquoted keys, single quotes, comments and control characters inside
//! strings are all rejected with a byte offset, so a malformed grading
//! request fails loudly instead of being half-understood.

use std::error::Error;
use std::fmt;

use crate::Json;

/// Nesting deeper than this is rejected — a hostile request must not be able
/// to overflow the parser's stack.
const MAX_DEPTH: usize = 128;

/// A parse or decode failure, with the byte offset for parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    message: String,
    /// Byte offset of the failure in the input (`None` for decode errors
    /// raised by [`crate::FromJson`] implementations).
    offset: Option<usize>,
}

impl JsonError {
    pub(crate) fn at(offset: usize, message: impl Into<String>) -> JsonError {
        JsonError {
            message: message.into(),
            offset: Some(offset),
        }
    }

    /// A decode error for [`crate::FromJson`] implementations: the document
    /// parsed, but does not have the expected shape.
    pub fn decode(message: impl Into<String>) -> JsonError {
        JsonError {
            message: message.into(),
            offset: None,
        }
    }

    /// The convenience decode error for a missing or mistyped field.
    pub fn missing_field(context: &str, field: &str) -> JsonError {
        JsonError::decode(format!("{context}: missing or mistyped field '{field}'"))
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(offset) => write!(f, "invalid JSON at byte {offset}: {}", self.message),
            None => write!(f, "invalid JSON document: {}", self.message),
        }
    }
}

impl Error for JsonError {}

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse_json(input: &str) -> Result<Json, JsonError> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value(0)?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(JsonError::at(parser.pos, "trailing characters"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::at(
                self.pos,
                format!("expected '{}'", byte as char),
            ))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            afg_cov::cov_hit!();
            return Err(JsonError::at(self.pos, "nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => {
                afg_cov::cov_hit!();
                self.parse_object(depth)
            }
            Some(b'[') => {
                afg_cov::cov_hit!();
                self.parse_array(depth)
            }
            Some(b'"') => {
                afg_cov::cov_hit!();
                Ok(Json::Str(self.parse_string()?))
            }
            Some(b't') => self.parse_keyword("true", Json::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Json::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => {
                afg_cov::cov_hit!();
                self.parse_number()
            }
            Some(other) => {
                afg_cov::cov_hit!();
                Err(JsonError::at(
                    self.pos,
                    format!("unexpected character '{}'", other as char),
                ))
            }
            None => {
                afg_cov::cov_hit!();
                Err(JsonError::at(self.pos, "unexpected end of input"))
            }
        }
    }

    fn parse_keyword(&mut self, keyword: &str, value: Json) -> Result<Json, JsonError> {
        afg_cov::cov_hit!();
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            Ok(value)
        } else {
            Err(JsonError::at(self.pos, format!("expected '{keyword}'")))
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            afg_cov::cov_hit!();
            self.pos += 1;
            return Ok(Json::Object(pairs));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.parse_value(depth + 1)?;
            pairs.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    afg_cov::cov_hit!();
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(pairs));
                }
                _ => {
                    afg_cov::cov_hit!();
                    return Err(JsonError::at(self.pos, "expected ',' or '}'"));
                }
            }
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            afg_cov::cov_hit!();
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value(depth + 1)?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    afg_cov::cov_hit!();
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => {
                    afg_cov::cov_hit!();
                    return Err(JsonError::at(self.pos, "expected ',' or ']'"));
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            match self.peek() {
                None => return Err(JsonError::at(self.pos, "unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    afg_cov::cov_hit!();
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            afg_cov::cov_hit!();
                            self.pos += 1;
                            out.push(self.parse_unicode_escape()?);
                            continue;
                        }
                        _ => return Err(JsonError::at(start, "invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    afg_cov::cov_hit!();
                    return Err(JsonError::at(start, "control character in string"));
                }
                Some(_) => {
                    // Consume one complete UTF-8 scalar (the input is a
                    // `&str`, so boundaries are trustworthy).
                    let rest = &self.bytes[self.pos..];
                    let len = utf8_len(rest[0]);
                    let chunk = std::str::from_utf8(&rest[..len])
                        .map_err(|_| JsonError::at(start, "invalid UTF-8"))?;
                    out.push_str(chunk);
                    self.pos += len;
                }
            }
        }
    }

    /// Parses the 4 hex digits after `\u`, combining surrogate pairs.
    fn parse_unicode_escape(&mut self) -> Result<char, JsonError> {
        let first = self.parse_hex4()?;
        if (0xD800..0xDC00).contains(&first) {
            afg_cov::cov_hit!();
            // High surrogate: a `\uXXXX` low surrogate must follow.
            if self.peek() == Some(b'\\') && self.bytes.get(self.pos + 1) == Some(&b'u') {
                self.pos += 2;
                let second = self.parse_hex4()?;
                if (0xDC00..0xE000).contains(&second) {
                    let combined = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                    return char::from_u32(combined)
                        .ok_or_else(|| JsonError::at(self.pos, "invalid surrogate pair"));
                }
            }
            return Err(JsonError::at(self.pos, "unpaired surrogate"));
        }
        char::from_u32(first).ok_or_else(|| JsonError::at(self.pos, "invalid unicode escape"))
    }

    fn parse_hex4(&mut self) -> Result<u32, JsonError> {
        let mut value = 0u32;
        for _ in 0..4 {
            let digit = match self.peek() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(JsonError::at(self.pos, "expected 4 hex digits")),
            };
            value = value * 16 + digit;
            self.pos += 1;
        }
        Ok(value)
    }

    fn parse_number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => self.consume_digits(),
            _ => return Err(JsonError::at(self.pos, "expected a digit")),
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            afg_cov::cov_hit!();
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(JsonError::at(self.pos, "expected a fractional digit"));
            }
            self.consume_digits();
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            afg_cov::cov_hit!();
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(JsonError::at(self.pos, "expected an exponent digit"));
            }
            self.consume_digits();
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number");
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::Int(v));
            }
            // Integer literal outside i64: fall through to f64, like
            // every dynamic-language JSON reader.
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| JsonError::at(start, "invalid number"))
    }

    fn consume_digits(&mut self) {
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
    }
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(text: &str) -> String {
        parse_json(text).unwrap().to_string()
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(parse_json("null").unwrap(), Json::Null);
        assert_eq!(parse_json(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse_json("-42").unwrap(), Json::Int(-42));
        assert_eq!(parse_json("2.5e2").unwrap(), Json::Float(250.0));
        assert_eq!(parse_json(r#""hi""#).unwrap(), Json::str("hi"));
    }

    #[test]
    fn parses_nested_structures() {
        let doc = parse_json(r#"{"a": [1, {"b": null}], "c": ""}"#).unwrap();
        assert_eq!(doc.to_string(), r#"{"a":[1,{"b":null}],"c":""}"#);
        assert_eq!(roundtrip("[]"), "[]");
        assert_eq!(roundtrip("{}"), "{}");
    }

    #[test]
    fn string_escapes_round_trip() {
        assert_eq!(
            parse_json(r#""a\"b\\c\ndA\/""#).unwrap(),
            Json::str("a\"b\\c\ndA/")
        );
        // Surrogate pair for 🚀 (U+1F680).
        assert_eq!(
            parse_json(r#""\ud83d\ude80""#).unwrap(),
            Json::str("\u{1F680}")
        );
        // Raw multi-byte UTF-8 passes through.
        assert_eq!(parse_json("\"é🚀\"").unwrap(), Json::str("é🚀"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "tru",
            "[1,]",
            "{\"a\" 1}",
            "{a: 1}",
            "'x'",
            "1 2",
            "{\"a\": 01}",
            "1.",
            "--1",
            "\"unterminated",
            "\"bad \\q escape\"",
            "\"\u{01}\"",
            "[1, 2",
            r#""\ud800""#,
        ] {
            assert!(parse_json(bad).is_err(), "accepted {bad:?}");
        }
        let err = parse_json("[1, x]").unwrap_err();
        assert!(err.to_string().contains("byte 4"), "{err}");
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        let err = parse_json(&deep).unwrap_err();
        assert!(err.to_string().contains("nesting too deep"));
        let ok = "[".repeat(50) + &"]".repeat(50);
        assert!(parse_json(&ok).is_ok());
    }

    #[test]
    fn huge_integers_degrade_to_floats() {
        assert_eq!(
            parse_json("9223372036854775807").unwrap(),
            Json::Int(i64::MAX)
        );
        assert!(matches!(
            parse_json("92233720368547758080").unwrap(),
            Json::Float(_)
        ));
    }

    #[test]
    fn decode_errors_render_without_offset() {
        let err = JsonError::missing_field("grade request", "source");
        assert_eq!(
            err.to_string(),
            "invalid JSON document: grade request: missing or mistyped field 'source'"
        );
    }
}
