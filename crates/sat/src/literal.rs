//! Boolean variables, literals and models.

use std::fmt;

/// A propositional variable, identified by a dense index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub(crate) u32);

impl Var {
    /// The variable's dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The positive literal of this variable.
    pub fn positive(self) -> Lit {
        Lit::positive(self)
    }

    /// The negative literal of this variable.
    pub fn negative(self) -> Lit {
        Lit::negative(self)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A literal: a variable or its negation, encoded as `2 * var + sign`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(pub(crate) u32);

impl Lit {
    /// The positive literal of `var`.
    pub fn positive(var: Var) -> Lit {
        Lit(var.0 << 1)
    }

    /// The negative literal of `var`.
    pub fn negative(var: Var) -> Lit {
        Lit((var.0 << 1) | 1)
    }

    /// The literal's variable.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Whether this is the positive literal.
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// The opposite literal.
    #[must_use]
    pub fn negated(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    /// Dense index usable for watch lists (`2 * var + sign`).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_positive() {
            write!(f, "{}", self.var())
        } else {
            write!(f, "!{}", self.var())
        }
    }
}

/// A satisfying assignment returned by the solver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Model {
    pub(crate) values: Vec<bool>,
}

impl Model {
    /// The truth value assigned to `var`.
    pub fn value(&self, var: Var) -> bool {
        self.values[var.index()]
    }

    /// Whether the literal is true under this model.
    pub fn lit_is_true(&self, lit: Lit) -> bool {
        self.value(lit.var()) == lit.is_positive()
    }

    /// Number of variables in the model.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the model has no variables at all.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_encoding_round_trips() {
        let v = Var(7);
        assert_eq!(v.positive().var(), v);
        assert_eq!(v.negative().var(), v);
        assert!(v.positive().is_positive());
        assert!(!v.negative().is_positive());
        assert_eq!(v.positive().negated(), v.negative());
        assert_eq!(v.negative().negated(), v.positive());
        assert_eq!(v.positive().index(), 14);
        assert_eq!(v.negative().index(), 15);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Var(3).to_string(), "x3");
        assert_eq!(Var(3).positive().to_string(), "x3");
        assert_eq!(Var(3).negative().to_string(), "!x3");
    }

    #[test]
    fn model_lookup() {
        let model = Model {
            values: vec![true, false],
        };
        assert!(model.value(Var(0)));
        assert!(!model.value(Var(1)));
        assert!(model.lit_is_true(Var(0).positive()));
        assert!(model.lit_is_true(Var(1).negative()));
        assert_eq!(model.len(), 2);
        assert!(!model.is_empty());
    }
}
