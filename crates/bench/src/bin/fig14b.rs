//! Regenerates **Figure 14(b)**: the number of incorrect attempts corrected
//! as rules are added to each problem's error model (models E0 ⊂ E1 ⊂ … ⊂ E5).
//!
//! ```text
//! cargo run --release -p afg-bench --bin fig14b -- [--attempts N] [--seed S] [--workers N]
//! ```

use afg_bench::{run_problem_on, CliOptions};
use afg_corpus::{problems, CorpusSpec};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = CliOptions::parse_or_exit(&args, 30);
    let engine = options.engine();
    let (attempts, seed) = (options.attempts, options.seed);

    let ids = [
        "compDeriv",
        "evalPoly",
        "iterGCD",
        "oddTuples",
        "recurPower",
        "iterPower",
    ];
    let steps = 5usize;

    println!("Figure 14(b): incorrect attempts corrected vs. error-model size");
    println!("(synthetic corpus: {attempts} attempts per benchmark, seed {seed})");
    println!();
    print!("{:<14}", "Benchmark");
    for k in 0..=steps {
        print!(" {:>6}", format!("E{k}"));
    }
    println!();

    for id in ids {
        let problem = problems::problem(id).expect("known benchmark id");
        let spec = CorpusSpec::table1_like(attempts, seed ^ id.len() as u64);
        print!("{:<14}", id);
        for k in 0..=steps {
            let model = problem.model.truncated(k);
            let (row, _records, _report) = run_problem_on(
                &problem,
                Some(model),
                &spec,
                afg_bench::experiment_config(),
                &engine,
            );
            print!(" {:>6}", row.generated_feedback);
        }
        println!();
    }
    println!();
    println!("Expected shape (paper): corrections increase monotonically with model size, and a");
    println!("single added rule can repair a large batch of attempts at once.");
}
