//! A tour of EML: write an error model textually, inspect the candidate
//! space it induces on a submission, and see how the transformation's
//! choices map back to corrected programs.
//!
//! ```text
//! cargo run --example error_model_tour
//! ```

use autofeedback::eml::{apply_error_model, library, parse_error_model, ChoiceAssignment};
use autofeedback::parser::parse_program;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let student = parse_program(
        "\
def computeDeriv(poly):
    deriv = []
    zero = 0
    if (len(poly) == 1):
        return deriv
    for e in range(0, len(poly)):
        if (poly[e] == 0):
            zero += 1
        else:
            deriv.append(poly[e]*e)
    return deriv
",
    )?;

    // 1. The simplified three-rule model of paper §2.1, written in EML text.
    let simple = parse_error_model(
        "simple",
        "\
RETR:  return a       ->  [0]
RANR:  range(a0, a1)  ->  range(a0 + 1, a1)
EQF:   a0 == a1       ->  False
",
    )?;
    let choices = apply_error_model(&student, Some("computeDeriv"), &simple)?;
    println!(
        "simple model: {} choice sites, {} candidate programs",
        choices.num_choices(),
        choices.candidate_space_size()
    );
    for info in &choices.choices {
        println!(
            "  line {:>2} [{}] {} -> {:?}",
            info.line,
            info.rule,
            info.original,
            &info.options[1..]
        );
    }

    // 2. The full Figure 8 model induces a much larger space.
    let full = library::compute_deriv_model();
    let rich = apply_error_model(&student, Some("computeDeriv"), &full)?;
    println!(
        "\nfigure-8 model: {} choice sites, {:.0} candidate programs",
        rich.num_choices(),
        rich.candidate_space_size()
    );

    // 3. Concretising a hand-picked assignment shows the repaired program.
    let mut assignment = ChoiceAssignment::default_choices();
    for info in &choices.choices {
        if info.line == 5 && info.options.iter().any(|o| o == "[0]") {
            assignment.select(
                info.id,
                info.options.iter().position(|o| o == "[0]").unwrap(),
            );
        }
    }
    let repaired = choices.concretize(&assignment);
    println!("\nafter selecting the RETR correction on line 5:\n");
    println!(
        "{}",
        autofeedback::ast::pretty::program_to_string(&repaired)
    );
    Ok(())
}
