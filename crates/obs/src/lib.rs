//! Zero-dependency observability for the grading stack.
//!
//! Three layers, all allocation-free on the hot path:
//!
//! - **Metrics** ([`Counter`], [`Gauge`], [`Histogram`]) live in a global
//!   sharded [`Registry`]. Handles are `Arc`s cached per call site by the
//!   [`counter!`] / [`gauge!`] / [`histogram!`] macros, so a hot-path
//!   increment is one relaxed atomic op. Histograms use HDR-style
//!   log-linear buckets: lock-free record, ~3% worst-case relative error.
//! - **Traces** ([`Trace`], [`Span`]) record a per-request span tree.
//!   A trace is installed into thread-local context at the service
//!   boundary; [`span`] is a no-op (one TLS read) when no trace is
//!   installed, so instrumentation observes without steering and costs
//!   nearly nothing when disabled. [`TraceHandle`] carries the context
//!   across thread spawns (batch workers, portfolio racers).
//! - **Exposition**: [`Registry::render_prometheus`] serves the classic
//!   Prometheus text format; [`TraceRing`] keeps the most recent N traces
//!   for a `/debug/traces`-style endpoint.

mod expo;
mod metrics;
mod trace;

pub use expo::CONTENT_TYPE;
pub use metrics::{global, Counter, Gauge, Histogram, Registry};
pub use trace::{
    current_handle, record_span, span, span_with_histogram, Span, SpanRecord, Trace, TraceGuard,
    TraceHandle, TraceId, TraceRing,
};

/// Registers (once per call site) and returns a counter handle.
///
/// ```
/// afg_obs::counter!("afg_demo_total", "Things that happened").inc();
/// ```
#[macro_export]
macro_rules! counter {
    ($name:expr, $help:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Counter>> =
            ::std::sync::OnceLock::new();
        ::std::sync::Arc::clone(HANDLE.get_or_init(|| $crate::global().counter($name, $help, &[])))
    }};
    ($name:expr, $help:expr, $labels:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Counter>> =
            ::std::sync::OnceLock::new();
        ::std::sync::Arc::clone(
            HANDLE.get_or_init(|| $crate::global().counter($name, $help, $labels)),
        )
    }};
}

/// Registers (once per call site) and returns a gauge handle.
#[macro_export]
macro_rules! gauge {
    ($name:expr, $help:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Gauge>> =
            ::std::sync::OnceLock::new();
        ::std::sync::Arc::clone(HANDLE.get_or_init(|| $crate::global().gauge($name, $help, &[])))
    }};
    ($name:expr, $help:expr, $labels:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Gauge>> =
            ::std::sync::OnceLock::new();
        ::std::sync::Arc::clone(
            HANDLE.get_or_init(|| $crate::global().gauge($name, $help, $labels)),
        )
    }};
}

/// Registers (once per call site) and returns a histogram handle.
/// `$scale` multiplies raw recorded integers into the exposition unit
/// (e.g. record microseconds, expose seconds with `1e-6`).
#[macro_export]
macro_rules! histogram {
    ($name:expr, $help:expr, $scale:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Histogram>> =
            ::std::sync::OnceLock::new();
        ::std::sync::Arc::clone(
            HANDLE.get_or_init(|| $crate::global().histogram($name, $help, $scale, &[])),
        )
    }};
    ($name:expr, $help:expr, $scale:expr, $labels:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Histogram>> =
            ::std::sync::OnceLock::new();
        ::std::sync::Arc::clone(
            HANDLE.get_or_init(|| $crate::global().histogram($name, $help, $scale, $labels)),
        )
    }};
}

/// Opens a pipeline-stage span: attaches to the current trace (if one is
/// installed) *and* records the stage's wall-clock into the shared
/// `afg_stage_seconds{stage=...}` histogram either way. The stage name
/// must be a literal so the histogram handle can be cached per call site.
#[macro_export]
macro_rules! stage_span {
    ($stage:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Histogram>> =
            ::std::sync::OnceLock::new();
        let hist = HANDLE.get_or_init(|| {
            $crate::global().histogram(
                "afg_stage_seconds",
                "Wall-clock per pipeline stage",
                1e-6,
                &[("stage", $stage)],
            )
        });
        $crate::span_with_histogram($stage, ::std::sync::Arc::clone(hist))
    }};
}
