//! Bounded equivalence checking between a student program and the reference
//! implementation.
//!
//! The paper's SKETCH harness "compares the outputs of the translated student
//! and reference implementations on all inputs of a bounded size" (§2.3).
//! [`EquivalenceOracle`] is the enumerative analogue: it precomputes the
//! reference outcome on every bounded input once, then answers
//! counterexample queries for candidate programs.

use std::cell::RefCell;

use afg_ast::types::MpyType;
use afg_ast::Program;
use afg_eml::{ChoiceAssignment, ChoiceProgram};

use crate::bytecode::{CompiledProgram, TraceStep, Vm};
use crate::choice_eval::ChoiceEvaluator;
use crate::error::RuntimeError;
use crate::inputs::InputSpace;
use crate::interp::{run_function, ExecLimits, Outcome};
use crate::value::Value;

/// The observable behaviour of one program run: either a value plus output,
/// or the kind of error it raised.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecResult {
    /// Execution finished normally.
    Ok(Outcome),
    /// Execution raised an error of the given kind (`"IndexError"`, ...).
    Err(&'static str),
}

impl ExecResult {
    /// Runs `program` on `args` and captures the result.
    pub fn observe(
        program: &Program,
        entry: Option<&str>,
        args: &[Value],
        limits: ExecLimits,
    ) -> ExecResult {
        match run_function(program, entry, args, limits) {
            Ok(outcome) => ExecResult::Ok(outcome),
            Err(err) => ExecResult::Err(err.kind()),
        }
    }

    /// Whether this result is a successful execution.
    pub fn is_ok(&self) -> bool {
        matches!(self, ExecResult::Ok(_))
    }

    /// Whether a student result matches a reference result.
    ///
    /// Behavioural match means: the student run succeeds, returns a value
    /// that is Python-equal to the reference value and, when
    /// `compare_output` is set, prints the same lines.
    pub fn matches(&self, reference: &ExecResult, compare_output: bool) -> bool {
        match (self, reference) {
            (ExecResult::Ok(student), ExecResult::Ok(reference)) => {
                student.value.py_eq(&reference.value)
                    && (!compare_output || student.output == reference.output)
            }
            // A reference error means the input is outside the reference's
            // domain; such inputs never count against the student.
            (_, ExecResult::Err(_)) => true,
            (ExecResult::Err(_), ExecResult::Ok(_)) => false,
        }
    }
}

/// How candidate programs are executed during verification sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SweepMode {
    /// Walk the shared (choice) AST per input — the original evaluator and
    /// the semantic ground truth.
    Tree,
    /// Lower the candidate space to bytecode once and run the deck through
    /// the [`Vm`] (behaviour- and fuel-identical; programs the compiler
    /// cannot lower silently fall back to the tree walker).
    #[default]
    Compiled,
}

impl SweepMode {
    /// Parses `"tree"` / `"compiled"` (CLI A/B flags).
    pub fn parse(text: &str) -> Option<SweepMode> {
        match text {
            "tree" => Some(SweepMode::Tree),
            "compiled" => Some(SweepMode::Compiled),
            _ => None,
        }
    }

    /// Stable lowercase name (`"tree"` / `"compiled"`).
    pub fn name(self) -> &'static str {
        match self {
            SweepMode::Tree => "tree",
            SweepMode::Compiled => "compiled",
        }
    }
}

/// Configuration of the equivalence check.
#[derive(Debug, Clone)]
pub struct EquivalenceConfig {
    /// Bounded input space.
    pub space: InputSpace,
    /// Per-run resource limits.
    pub limits: ExecLimits,
    /// Name of the graded function (entry point).
    pub entry: Option<String>,
    /// Whether printed output is part of the observable behaviour
    /// (only the stdin/print style problems set this).
    pub compare_output: bool,
    /// Execution back end for verification sweeps.
    pub sweep: SweepMode,
    /// Whether compiled sweeps may memoize check verdicts on the choice
    /// sites a run actually consults (sound observational-equivalence
    /// caching over consultation traces).  On by default; benchmarks that
    /// want to time raw execution turn it off.
    pub sweep_cache: bool,
}

impl Default for EquivalenceConfig {
    fn default() -> EquivalenceConfig {
        EquivalenceConfig {
            space: InputSpace::default(),
            limits: ExecLimits::fast(),
            entry: None,
            compare_output: false,
            sweep: SweepMode::default(),
            sweep_cache: true,
        }
    }
}

/// A reusable oracle answering "does this candidate behave like the
/// reference on every bounded input?".
#[derive(Debug, Clone)]
pub struct EquivalenceOracle {
    inputs: Vec<Vec<Value>>,
    reference_results: Vec<ExecResult>,
    config: EquivalenceConfig,
}

impl EquivalenceOracle {
    /// Builds an oracle for a reference implementation whose parameters have
    /// the given declared types.
    ///
    /// The reference is run once on every input of the bounded space and the
    /// results are cached.
    pub fn new(
        reference: &Program,
        param_types: &[MpyType],
        config: EquivalenceConfig,
    ) -> EquivalenceOracle {
        let inputs = config.space.enumerate_args(param_types);
        // Reference pre-pass: compile once and run the whole deck through
        // the VM when the sweep mode allows it (behaviour-identical to the
        // tree walker; the differential suite enforces this).
        let compiled = match config.sweep {
            SweepMode::Compiled => {
                CompiledProgram::from_program(reference, config.entry.as_deref())
            }
            SweepMode::Tree => None,
        };
        let reference_results = match &compiled {
            Some(compiled) => {
                let mut vm = Vm::new(config.limits);
                inputs
                    .iter()
                    .map(|args| match vm.run(compiled, args) {
                        Ok(outcome) => ExecResult::Ok(outcome),
                        Err(err) => ExecResult::Err(err.kind()),
                    })
                    .collect()
            }
            None => inputs
                .iter()
                .map(|args| {
                    ExecResult::observe(reference, config.entry.as_deref(), args, config.limits)
                })
                .collect(),
        };
        EquivalenceOracle {
            inputs,
            reference_results,
            config,
        }
    }

    /// Builds an oracle, reading the parameter types from the reference
    /// program's entry function (the paper's name-suffix convention).
    pub fn from_reference(reference: &Program, config: EquivalenceConfig) -> EquivalenceOracle {
        let param_types: Vec<MpyType> = reference
            .entry(config.entry.as_deref())
            .map(|f| f.params.iter().map(|p| p.ty.clone()).collect())
            .unwrap_or_default();
        EquivalenceOracle::new(reference, &param_types, config)
    }

    /// The bounded inputs the oracle checks, in order.
    pub fn inputs(&self) -> &[Vec<Value>] {
        &self.inputs
    }

    /// The cached reference result for input `index`.
    pub fn reference_result(&self, index: usize) -> &ExecResult {
        &self.reference_results[index]
    }

    /// Number of inputs on which the reference executes successfully.
    pub fn valid_input_count(&self) -> usize {
        self.reference_results.iter().filter(|r| r.is_ok()).count()
    }

    /// Checks the candidate on a single input, by index.
    pub fn check_input(&self, candidate: &Program, index: usize) -> bool {
        let result = ExecResult::observe(
            candidate,
            self.config.entry.as_deref(),
            &self.inputs[index],
            self.config.limits,
        );
        result.matches(&self.reference_results[index], self.config.compare_output)
    }

    /// Finds the first input on which the candidate disagrees with the
    /// reference, or `None` if the candidate is equivalent on the whole
    /// bounded space.
    pub fn find_counterexample(&self, candidate: &Program) -> Option<usize> {
        (0..self.inputs.len()).find(|&i| !self.check_input(candidate, i))
    }

    /// Whether the candidate is equivalent to the reference on the bounded
    /// space.
    pub fn is_equivalent(&self, candidate: &Program) -> bool {
        self.find_counterexample(candidate).is_none()
    }

    /// Runs the candidate on an explicit list of input indices (the CEGIS
    /// counterexample set) and reports whether it agrees on all of them.
    pub fn agrees_on(&self, candidate: &Program, indices: &[usize]) -> bool {
        indices.iter().all(|&i| self.check_input(candidate, i))
    }

    /// Opens a choice-aware verification session for one candidate space.
    ///
    /// The session evaluates candidates by walking the shared choice AST
    /// under a [`ChoiceAssignment`] — no per-candidate program is ever
    /// materialised.  This is the oracle API the synthesis back ends use in
    /// their hot loop; [`ChoiceProgram::concretize`] remains the cold path
    /// for rendering the final repaired program.
    pub fn choice_session<'a>(&'a self, program: &'a ChoiceProgram) -> ChoiceSession<'a> {
        let compiled = match self.config.sweep {
            SweepMode::Compiled => CompiledProgram::from_choice(program),
            SweepMode::Tree => None,
        };
        ChoiceSession {
            oracle: self,
            evaluator: ChoiceEvaluator::new(program, self.config.limits),
            compiled,
            scratch: RefCell::new(SweepScratch::new(self.config.limits)),
        }
    }

    /// The configured sweep mode.
    pub fn sweep_mode(&self) -> SweepMode {
        self.config.sweep
    }
}

/// Counters describing the verification work one session performed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Full-deck sweeps answered (`find_counterexample` / `sweep` calls).
    pub sweeps: u64,
    /// Candidate checks answered (one per (assignment, input) pair),
    /// whether executed or answered from the verdict cache.
    pub inputs_run: u64,
    /// Checks answered from the verdict cache without executing (always 0
    /// on the tree path or with `sweep_cache` off).
    pub cache_hits: u64,
    /// Whether the session ran candidates on the bytecode VM (false when
    /// the mode is [`SweepMode::Tree`] or the program failed to compile).
    pub compiled: bool,
    /// Nodes currently held by the session's verdict-cache trie (0 on the
    /// tree path or with `sweep_cache` off).
    pub cache_nodes: u64,
}

/// Sound memoization of check verdicts across candidates, keyed on the
/// choice sites a run *actually consults*.
///
/// A compiled run is a deterministic function of its input and the
/// sequence of (site, clamped option) consultations the VM records as its
/// [`TraceStep`] trace — two candidates that agree on every consulted
/// site behave identically on that input, whatever they do elsewhere.
/// The cache stores, per input, a decision trie over consultations:
/// branches ask "which option does the current selection take at site
/// `s`?", leaves hold the check verdict.  Lookups walk the trie against
/// the loaded selection without executing anything; misses run the
/// candidate and insert the recorded path.  This is the observational-
/// equivalence reduction that makes CEGIS sweeps cheap: solver proposals
/// differ from already-checked candidates in a handful of sites, and a
/// given counterexample input rarely executes the changed site.
#[derive(Debug, Clone, Default)]
struct VerdictCache {
    /// Per-input root node, `u32::MAX` ⇔ nothing cached yet.
    roots: Vec<u32>,
    nodes: Vec<CacheNode>,
}

#[derive(Debug, Clone)]
enum CacheNode {
    /// Check verdict for the consultation path leading here.
    Leaf(bool),
    /// The run consults `site` next (with `bound` options at the
    /// consulting instruction); children are (clamped option, node),
    /// linear-scanned — option counts are tiny.
    Branch {
        site: u32,
        bound: u32,
        children: Vec<(u32, u32)>,
    },
}

/// Arena-growth backstop: stop inserting (lookups keep working) once the
/// trie holds this many nodes, so adversarial programs with thousands of
/// hot choice sites cannot balloon a session's memory.
const CACHE_NODE_CAP: usize = 1 << 20;

const NO_NODE: u32 = u32::MAX;

impl VerdictCache {
    /// Answers the check for `input` under `selection` if some previously
    /// executed candidate agreed with it on every consulted site.
    fn lookup(&self, input: usize, selection: &[usize]) -> Option<bool> {
        let mut node = *self.roots.get(input)?;
        loop {
            match self.nodes.get(node as usize)? {
                CacheNode::Leaf(verdict) => return Some(*verdict),
                CacheNode::Branch {
                    site,
                    bound,
                    children,
                } => {
                    let option = selection
                        .get(*site as usize)
                        .copied()
                        .unwrap_or(0)
                        .min(*bound as usize - 1) as u32;
                    node = children.iter().find(|(o, _)| *o == option)?.1;
                }
            }
        }
    }

    /// Records a run's consultation trace and its check verdict.
    fn insert(&mut self, input: usize, trace: &[TraceStep], verdict: bool) {
        if self.nodes.len() >= CACHE_NODE_CAP {
            return;
        }
        if input >= self.roots.len() {
            self.roots.resize(input + 1, NO_NODE);
        }
        // Walk the already-cached prefix.  `link` is where the next node
        // pointer lives: the input's root slot, or a missing child edge.
        let mut link = Link::Root(input);
        let mut depth = 0usize;
        while let Some(node) = self.get(link) {
            match &self.nodes[node as usize] {
                // Full path already cached (determinism guarantees the
                // stored verdict equals ours).
                CacheNode::Leaf(_) => return,
                CacheNode::Branch {
                    site,
                    bound,
                    children,
                } => {
                    // A trace shorter than the stored path, or consulting
                    // a different site, would mean the VM is not
                    // deterministic; bail out rather than corrupt the trie.
                    let Some(step) = trace.get(depth) else { return };
                    if *site != step.site || *bound != step.bound {
                        debug_assert!(false, "non-deterministic consultation order");
                        return;
                    }
                    match children.iter().find(|(o, _)| *o == step.option) {
                        Some(&(_, child)) => {
                            link = Link::Child(node as usize, step.option);
                            debug_assert!(self.get(link) == Some(child));
                        }
                        None => link = Link::Child(node as usize, step.option),
                    }
                    depth += 1;
                }
            }
        }
        // Append the uncached suffix, one single-child branch per step.
        for step in &trace[depth..] {
            if self.nodes.len() >= CACHE_NODE_CAP {
                return;
            }
            let fresh = self.nodes.len() as u32;
            self.nodes.push(CacheNode::Branch {
                site: step.site,
                bound: step.bound,
                children: Vec::new(),
            });
            self.set(link, fresh);
            link = Link::Child(fresh as usize, step.option);
        }
        if self.nodes.len() >= CACHE_NODE_CAP {
            return;
        }
        let leaf = self.nodes.len() as u32;
        self.nodes.push(CacheNode::Leaf(verdict));
        self.set(link, leaf);
    }

    fn get(&self, link: Link) -> Option<u32> {
        let node = match link {
            Link::Root(input) => self.roots[input],
            Link::Child(node, option) => match &self.nodes[node] {
                CacheNode::Branch { children, .. } => children
                    .iter()
                    .find(|(o, _)| *o == option)
                    .map_or(NO_NODE, |(_, n)| *n),
                CacheNode::Leaf(_) => NO_NODE,
            },
        };
        (node != NO_NODE).then_some(node)
    }

    fn set(&mut self, link: Link, node: u32) {
        match link {
            Link::Root(input) => self.roots[input] = node,
            Link::Child(parent, option) => {
                if let CacheNode::Branch { children, .. } = &mut self.nodes[parent] {
                    children.push((option, node));
                }
            }
        }
    }
}

/// A position in the [`VerdictCache`] trie where a node pointer lives.
#[derive(Debug, Clone, Copy)]
enum Link {
    Root(usize),
    Child(usize, u32),
}

/// Reusable per-session scratch: the bytecode VM (operand stack, slot
/// arena, selection array), a generation-stamped visited set (so a sweep
/// allocates nothing — replacing the former per-sweep `vec![false;
/// total]`), and the cross-candidate verdict cache.
#[derive(Debug, Clone)]
struct SweepScratch {
    vm: Vm,
    /// `marks[i] == generation` ⇔ input `i` was already checked during the
    /// current sweep.  Bumping the generation invalidates every mark at
    /// once, so the buffer never needs clearing.
    marks: Vec<u32>,
    generation: u32,
    cache: VerdictCache,
    sweeps: u64,
    inputs_run: u64,
    cache_hits: u64,
    /// Wall-clock accumulated inside `find_counterexample`, for the
    /// sweep-throughput metrics flushed when the session drops.
    sweep_ns: u64,
}

impl SweepScratch {
    fn new(limits: ExecLimits) -> SweepScratch {
        SweepScratch {
            vm: Vm::new(limits),
            marks: Vec::new(),
            generation: 0,
            cache: VerdictCache::default(),
            sweeps: 0,
            inputs_run: 0,
            cache_hits: 0,
            sweep_ns: 0,
        }
    }

    /// Starts a fresh visited set covering `total` inputs.
    fn begin_marks(&mut self, total: usize) {
        if self.marks.len() < total {
            self.marks.resize(total, 0);
        }
        // On wrap-around, stale marks could alias the new generation; reset
        // the buffer (once every 2^32 sweeps) to keep the trick sound.
        self.generation = match self.generation.checked_add(1) {
            Some(g) => g,
            None => {
                self.marks.fill(0);
                1
            }
        };
    }

    fn mark(&mut self, index: usize) {
        self.marks[index] = self.generation;
    }

    fn is_marked(&self, index: usize) -> bool {
        self.marks[index] == self.generation
    }
}

/// A verification session over one candidate space (one transformed
/// submission), bound to the oracle's cached reference results.
///
/// Under [`SweepMode::Compiled`] the choice program is lowered to bytecode
/// once at session open; every candidate evaluation afterwards loads the
/// assignment into the VM's selection array and sweeps the input deck
/// through one reusable scratch arena.  The tree-walking
/// [`ChoiceEvaluator`] remains both the fallback (for programs the
/// compiler cannot lower) and the A/B baseline.
#[derive(Debug)]
pub struct ChoiceSession<'a> {
    oracle: &'a EquivalenceOracle,
    evaluator: ChoiceEvaluator<'a>,
    compiled: Option<CompiledProgram>,
    scratch: RefCell<SweepScratch>,
}

impl<'a> ChoiceSession<'a> {
    /// The underlying oracle.
    pub fn oracle(&self) -> &'a EquivalenceOracle {
        self.oracle
    }

    /// Whether candidates run on the bytecode VM (as opposed to the
    /// tree-walking fallback).
    pub fn is_compiled(&self) -> bool {
        self.compiled.is_some()
    }

    /// The verification-work counters accumulated so far.
    pub fn sweep_stats(&self) -> SweepStats {
        let scratch = self.scratch.borrow();
        SweepStats {
            sweeps: scratch.sweeps,
            inputs_run: scratch.inputs_run,
            cache_hits: scratch.cache_hits,
            compiled: self.compiled.is_some(),
            cache_nodes: scratch.cache.nodes.len() as u64,
        }
    }

    /// Loads `assignment` into the VM selection array (no-op on the tree
    /// path, where the evaluator consults the assignment directly).
    fn prepare(&self, scratch: &mut SweepScratch, assignment: &ChoiceAssignment) {
        if let Some(compiled) = &self.compiled {
            scratch.vm.select(compiled, assignment);
        }
    }

    /// Runs the prepared candidate on one input.  `prepare` must have been
    /// called with the same assignment first.
    fn run_prepared(
        &self,
        scratch: &mut SweepScratch,
        assignment: &ChoiceAssignment,
        index: usize,
    ) -> ExecResult {
        scratch.inputs_run += 1;
        let result = match &self.compiled {
            Some(compiled) => scratch.vm.run(compiled, &self.oracle.inputs[index]),
            None => self.evaluator.run(assignment, &self.oracle.inputs[index]),
        };
        match result {
            Ok(outcome) => ExecResult::Ok(outcome),
            Err(err) => ExecResult::Err(err.kind()),
        }
    }

    fn check_prepared(
        &self,
        scratch: &mut SweepScratch,
        assignment: &ChoiceAssignment,
        index: usize,
    ) -> bool {
        // The compiled path checks in place: the outcome stays inside the
        // VM scratch (no output-vector move, no `ExecResult` built), which
        // matters in the CEGIS mix where most sweeps die after a handful
        // of runs.  Matching semantics are identical to `matches`.
        if let Some(compiled) = &self.compiled {
            scratch.inputs_run += 1;
            let cached = self.oracle.config.sweep_cache;
            if cached {
                if let Some(verdict) = scratch.cache.lookup(index, scratch.vm.selection()) {
                    scratch.cache_hits += 1;
                    return verdict;
                }
            }
            let run = scratch
                .vm
                .run_for_check(compiled, &self.oracle.inputs[index]);
            let verdict = match (&run, &self.oracle.reference_results[index]) {
                // Reference errors put the input outside the reference's
                // domain; it never counts against the student.
                (_, ExecResult::Err(_)) => true,
                (Ok(()), ExecResult::Ok(reference)) => scratch
                    .vm
                    .outcome_matches(reference, self.oracle.config.compare_output),
                (Err(_), ExecResult::Ok(_)) => false,
            };
            if cached {
                scratch.cache.insert(index, scratch.vm.trace(), verdict);
            }
            return verdict;
        }
        self.run_prepared(scratch, assignment, index).matches(
            &self.oracle.reference_results[index],
            self.oracle.config.compare_output,
        )
    }

    /// Runs the candidate selected by `assignment` on one input and captures
    /// the result.
    pub fn observe(&self, assignment: &ChoiceAssignment, index: usize) -> ExecResult {
        let scratch = &mut *self.scratch.borrow_mut();
        self.prepare(scratch, assignment);
        self.run_prepared(scratch, assignment, index)
    }

    /// Checks the candidate on a single input, by index.
    pub fn check_input(&self, assignment: &ChoiceAssignment, index: usize) -> bool {
        let scratch = &mut *self.scratch.borrow_mut();
        self.prepare(scratch, assignment);
        self.check_prepared(scratch, assignment, index)
    }

    /// Runs the candidate on an explicit list of input indices (the CEGIS
    /// counterexample set) and reports whether it agrees on all of them.
    pub fn agrees_on(&self, assignment: &ChoiceAssignment, indices: &[usize]) -> bool {
        let scratch = &mut *self.scratch.borrow_mut();
        self.prepare(scratch, assignment);
        indices
            .iter()
            .all(|&i| self.check_prepared(scratch, assignment, i))
    }

    /// Finds the first input on which the candidate disagrees with the
    /// reference, checking `priority` indices (the accumulated CEGIS
    /// counterexamples) *first*.
    ///
    /// Counterexample-first ordering pays off twice: almost every candidate
    /// the solver proposes fails on an input that already killed an earlier
    /// candidate, so the common case rejects after a handful of runs instead
    /// of a sweep — and when the candidate survives the priority set, the
    /// remaining sweep skips the indices it already checked.
    pub fn find_counterexample(
        &self,
        assignment: &ChoiceAssignment,
        priority: &[usize],
    ) -> Option<usize> {
        // One clock pair per sweep (not per input): the throughput
        // metrics cost tens of nanoseconds against sweeps that run
        // hundreds of inputs.
        let sweep_start = std::time::Instant::now();
        let result = self.find_counterexample_untimed(assignment, priority);
        self.scratch.borrow_mut().sweep_ns += sweep_start.elapsed().as_nanos() as u64;
        result
    }

    fn find_counterexample_untimed(
        &self,
        assignment: &ChoiceAssignment,
        priority: &[usize],
    ) -> Option<usize> {
        let scratch = &mut *self.scratch.borrow_mut();
        scratch.sweeps += 1;
        self.prepare(scratch, assignment);
        for &index in priority {
            if !self.check_prepared(scratch, assignment, index) {
                return Some(index);
            }
        }
        let total = self.oracle.inputs.len();
        if priority.is_empty() {
            return (0..total).find(|&i| !self.check_prepared(scratch, assignment, i));
        }
        // Mark the already-checked indices once instead of scanning the
        // priority list per input — with warm starts pre-seeding whole
        // counterexample sets, that scan would make every surviving
        // sweep O(|inputs| · |priority|).  The generation-stamped mark
        // buffer persists across sweeps, so this allocates nothing.
        scratch.begin_marks(total);
        for &index in priority {
            if index < total {
                scratch.mark(index);
            }
        }
        (0..total).find(|&i| !scratch.is_marked(i) && !self.check_prepared(scratch, assignment, i))
    }

    /// Deck-batched sweep: evaluates the candidate across the entire
    /// precomputed input deck in one pass and returns the first failing
    /// input index (`None` ⇔ equivalent on the bounded space).
    pub fn sweep(&self, assignment: &ChoiceAssignment) -> Option<usize> {
        self.find_counterexample(assignment, &[])
    }

    /// Whether the candidate is equivalent to the reference on the whole
    /// bounded space.
    pub fn is_equivalent(&self, assignment: &ChoiceAssignment) -> bool {
        self.sweep(assignment).is_none()
    }
}

/// Sessions flush their verification-work counters into the global
/// metrics registry when they close: one batch of relaxed atomic adds
/// per session, zero cost inside the sweep loop, and the grading outcome
/// cannot observe any of it.
impl Drop for ChoiceSession<'_> {
    fn drop(&mut self) {
        let scratch = self.scratch.borrow();
        if scratch.sweeps == 0 && scratch.inputs_run == 0 {
            return;
        }
        afg_obs::counter!("afg_sweeps_total", "Full-deck verification sweeps").add(scratch.sweeps);
        afg_obs::counter!(
            "afg_sweep_inputs_total",
            "Candidate checks answered (executed or from the verdict cache)"
        )
        .add(scratch.inputs_run);
        afg_obs::counter!(
            "afg_sweep_cache_hits_total",
            "Checks answered from the verdict cache without executing"
        )
        .add(scratch.cache_hits);
        afg_obs::counter!(
            "afg_sweep_ns_total",
            "Wall-clock nanoseconds spent inside verification sweeps"
        )
        .add(scratch.sweep_ns);
        afg_obs::gauge!(
            "afg_verdict_cache_nodes",
            "High-water mark of verdict-cache trie nodes in one session"
        )
        .max(scratch.cache.nodes.len() as i64);
    }
}

/// Classification of a submission against the reference, used when building
/// the experiment corpus (Table 1's Correct / Incorrect split).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Verdict {
    /// Behaviourally equivalent to the reference on the bounded space.
    Correct,
    /// Differs from the reference on at least one bounded input.
    Incorrect,
}

/// Classifies a parsed submission as correct or incorrect.
pub fn classify(oracle: &EquivalenceOracle, submission: &Program) -> Verdict {
    if oracle.is_equivalent(submission) {
        Verdict::Correct
    } else {
        Verdict::Incorrect
    }
}

/// Convenience helper: runs both programs on one input and reports whether
/// the student matches the reference there.
pub fn agree_on_input(
    reference: &Program,
    student: &Program,
    entry: Option<&str>,
    args: &[Value],
    limits: ExecLimits,
    compare_output: bool,
) -> Result<bool, RuntimeError> {
    let reference_result = ExecResult::observe(reference, entry, args, limits);
    let student_result = ExecResult::observe(student, entry, args, limits);
    Ok(student_result.matches(&reference_result, compare_output))
}

#[cfg(test)]
mod tests {
    use super::*;
    use afg_parser::parse_program;

    const REFERENCE: &str = "\
def computeDeriv(poly_list_int):
    result = []
    for i in range(len(poly_list_int)):
        result += [i * poly_list_int[i]]
    if len(poly_list_int) == 1:
        return result
    else:
        return result[1:]
";

    // Correct alternative algorithm (builds the result with append).
    const CORRECT_VARIANT: &str = "\
def computeDeriv(poly):
    if len(poly) == 1:
        return [0]
    deriv = []
    for i in range(1, len(poly)):
        deriv.append(i * poly[i])
    return deriv
";

    // Figure 2(a): misses the [0] base case and iterates from 0.
    const INCORRECT: &str = "\
def computeDeriv(poly):
    deriv = []
    zero = 0
    if (len(poly) == 1):
        return deriv
    for e in range(0, len(poly)):
        if (poly[e] == 0):
            zero += 1
        else:
            deriv.append(poly[e]*e)
    return deriv
";

    fn oracle() -> EquivalenceOracle {
        let reference = parse_program(REFERENCE).unwrap();
        let config = EquivalenceConfig {
            entry: Some("computeDeriv".to_string()),
            ..EquivalenceConfig::default()
        };
        EquivalenceOracle::from_reference(&reference, config)
    }

    #[test]
    fn reference_is_equivalent_to_itself() {
        let oracle = oracle();
        let reference = parse_program(REFERENCE).unwrap();
        assert!(oracle.is_equivalent(&reference));
        assert!(oracle.valid_input_count() > 10);
    }

    #[test]
    fn note_single_element_semantics_of_reference() {
        // The paper's reference returns `result` (which is [0 * poly[0]]) for
        // singleton lists, i.e. [0] — the variant must agree.
        let oracle = oracle();
        let variant = parse_program(CORRECT_VARIANT).unwrap();
        assert!(oracle.is_equivalent(&variant));
    }

    #[test]
    fn incorrect_submission_yields_small_counterexample() {
        let oracle = oracle();
        let student = parse_program(INCORRECT).unwrap();
        let cex = oracle.find_counterexample(&student).expect("should differ");
        // The first differing input should be small — a list of length <= 2.
        match &oracle.inputs()[cex][0] {
            Value::List(items) => assert!(items.len() <= 2),
            other => panic!("unexpected input {other:?}"),
        }
        assert_eq!(classify(&oracle, &student), Verdict::Incorrect);
    }

    #[test]
    fn exec_results_match_semantics() {
        let ok = ExecResult::Ok(Outcome {
            value: Value::Int(1),
            output: vec![],
        });
        let ok_same = ExecResult::Ok(Outcome {
            value: Value::Int(1),
            output: vec!["x".into()],
        });
        let err = ExecResult::Err("IndexError");
        assert!(ok_same.matches(&ok, false));
        assert!(!ok_same.matches(&ok, true));
        assert!(!err.matches(&ok, false));
        // Inputs where the reference errors never count against the student.
        assert!(ok.matches(&err, false));
        assert!(err.matches(&err, false));
    }

    #[test]
    fn agrees_on_subset_of_inputs() {
        let oracle = oracle();
        let student = parse_program(INCORRECT).unwrap();
        let cex = oracle.find_counterexample(&student).unwrap();
        assert!(!oracle.agrees_on(&student, &[cex]));
        // The empty counterexample set is vacuously satisfied.
        assert!(oracle.agrees_on(&student, &[]));
    }

    #[test]
    fn agree_on_single_input_helper() {
        let reference = parse_program(REFERENCE).unwrap();
        let student = parse_program(INCORRECT).unwrap();
        let args = vec![Value::int_list([7])];
        let same = agree_on_input(
            &reference,
            &student,
            Some("computeDeriv"),
            &args,
            ExecLimits::fast(),
            false,
        )
        .unwrap();
        // Reference returns [0], the student returns [] — they disagree.
        assert!(!same);
    }
}
