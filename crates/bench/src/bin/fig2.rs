//! Reproduces the worked example of **Figure 2**: three very different
//! student submissions for `computeDeriv` and the feedback the tool
//! generates for each one.
//!
//! ```text
//! cargo run --release -p afg-bench --bin fig2
//! ```

use afg_core::{GradeOutcome, GraderConfig};
use afg_corpus::problems;

/// Figure 2(a): misses the `[0]` base case, iterates from 0, and skips zero
/// coefficients.
const STUDENT_A: &str = "\
def computeDeriv(poly):
    deriv = []
    zero = 0
    if (len(poly) == 1):
        return deriv
    for e in range(0, len(poly)):
        if (poly[e] == 0):
            zero += 1
        else:
            deriv.append(poly[e]*e)
    return deriv
";

/// Figure 2(b): consumes the list with `pop` inside a while loop and misses
/// the base case.
const STUDENT_B: &str = "\
def computeDeriv(poly):
    idx = 1
    deriv = list([])
    plen = len(poly)
    while idx <= plen:
        coeff = poly.pop(1)
        deriv += [coeff * idx]
        idx = idx + 1
    if len(poly) < 2:
        return deriv
";

/// Figure 2(c): builds the result with `range(1, length)` and a backwards
/// while loop.
const STUDENT_C: &str = "\
def computeDeriv(poly):
    length = int(len(poly)-1)
    i = length
    deriv = range(1,length)
    if len(poly) == 1:
        deriv = [0]
    else:
        while i >= 0:
            new = poly[i] * i
            i -= 1
            deriv[i] = new
    return deriv
";

fn main() {
    let problem = problems::compute_deriv();
    let grader = problem.autograder(GraderConfig::default());

    for (label, source) in [
        ("Figure 2(a)", STUDENT_A),
        ("Figure 2(b)", STUDENT_B),
        ("Figure 2(c)", STUDENT_C),
    ] {
        println!("=== {label} ===");
        println!("{source}");
        match grader.grade_source(source) {
            GradeOutcome::Feedback(feedback) => {
                println!("{feedback}");
                println!("(graded in {:.2}s)", feedback.elapsed.as_secs_f64());
            }
            GradeOutcome::Correct => println!("The submission is already correct.\n"),
            GradeOutcome::CannotFix => {
                println!("The error model cannot repair this submission with local corrections.\n");
            }
            GradeOutcome::Timeout => println!("The synthesis budget was exhausted.\n"),
            GradeOutcome::SyntaxError(err) => println!("Syntax error: {err}\n"),
        }
        println!();
    }
}
