//! `autofeedback` — a Rust reproduction of *Automated Feedback Generation
//! for Introductory Programming Assignments* (Singh, Gulwani, Solar-Lezama,
//! PLDI 2013).
//!
//! This facade crate re-exports the public API of the workspace so that
//! examples, integration tests and downstream users need a single
//! dependency:
//!
//! * [`core`] (`afg-core`) — the [`core::Autograder`] end-to-end pipeline,
//! * [`eml`] (`afg-eml`) — the EML error-model language,
//! * [`synth`] (`afg-synth`) — CEGIS/CEGISMIN synthesis of minimal
//!   corrections,
//! * [`interp`] (`afg-interp`) — the MPY runtime and bounded equivalence
//!   oracle,
//! * [`parser`] (`afg-parser`) / [`ast`] (`afg-ast`) — the MPY front end,
//! * [`sat`] (`afg-sat`) — the CDCL SAT solver substrate,
//! * [`corpus`] (`afg-corpus`) — benchmark problems and the synthetic
//!   student-submission generator,
//! * [`baseline`] (`afg-baseline`) — the test-case feedback baseline,
//! * [`json`] (`afg-json`) — the in-tree JSON parser/serializer and the
//!   `ToJson`/`FromJson` trait layer,
//! * [`cov`] (`afg-cov`) — the feature-gated branch-edge coverage map the
//!   in-tree fuzzer (`afg-fuzz`) drives; inert in default builds,
//! * [`service`] (`afg-service`) — the HTTP grading daemon (problem
//!   registry, grade/batch endpoints, fingerprint-cache stats).
//!
//! See the crate-level examples (`examples/quickstart.rs` and friends) and
//! the experiment binaries in `afg-bench` for end-to-end usage.

pub use afg_ast as ast;
pub use afg_baseline as baseline;
pub use afg_core as core;
pub use afg_corpus as corpus;
pub use afg_cov as cov;
pub use afg_eml as eml;
pub use afg_interp as interp;
pub use afg_json as json;
pub use afg_parser as parser;
pub use afg_sat as sat;
pub use afg_service as service;
pub use afg_synth as synth;

pub use afg_core::{
    Autograder, CacheStats, Correction, ErrorModel, Feedback, FeedbackLevel, FingerprintCache,
    GradeOutcome, GraderConfig, GraderError,
};
