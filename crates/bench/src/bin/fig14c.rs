//! Regenerates **Figure 14(c)**: how well the `computeDeriv` error model
//! generalises to the other benchmark problems, compared with each problem's
//! own specialised model.
//!
//! ```text
//! cargo run --release -p afg-bench --bin fig14c -- [--attempts N] [--seed S] [--workers N]
//! ```

use afg_bench::{run_problem_on, CliOptions};
use afg_corpus::{problems, CorpusSpec};
use afg_eml::library;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = CliOptions::parse_or_exit(&args, 30);
    let engine = options.engine();
    let (attempts, seed) = (options.attempts, options.seed);

    let ids = [
        "evalPoly",
        "iterGCD",
        "oddTuples",
        "recurPower",
        "iterPower",
    ];

    println!("Figure 14(c): generalisation of the computeDeriv error model");
    println!("(synthetic corpus: {attempts} attempts per benchmark, seed {seed})");
    println!();
    println!(
        "{:<14} {:>18} {:>18} {:>10}",
        "Benchmark", "E-comp-deriv fixed", "own model fixed", "incorrect"
    );

    for id in ids {
        let problem = problems::problem(id).expect("known benchmark id");
        let spec = CorpusSpec::table1_like(attempts, seed ^ id.len() as u64);
        let generic_model = library::compute_deriv_model();
        let (generic_row, _, _) = run_problem_on(
            &problem,
            Some(generic_model),
            &spec,
            afg_bench::experiment_config(),
            &engine,
        );
        let (own_row, _, _) = run_problem_on(
            &problem,
            None,
            &spec,
            afg_bench::experiment_config(),
            &engine,
        );
        println!(
            "{:<14} {:>18} {:>18} {:>10}",
            id, generic_row.generated_feedback, own_row.generated_feedback, own_row.incorrect
        );
    }
    println!();
    println!(
        "Expected shape (paper): the borrowed computeDeriv model fixes a useful fraction of the"
    );
    println!("attempts but fewer than each problem's specialised model.");
}
