//! EML — the error model language of the automated feedback generator
//! (paper §3).
//!
//! An error model is a set of correction rules `L → R` describing the local
//! mistakes students typically make on an assignment.  Applying a model to a
//! student submission ([`apply_error_model`]) yields a [`ChoiceProgram`]: an
//! M̃PY program-with-choices that concisely represents every candidate
//! correction, where option 0 of each choice is the original fragment and the
//! *cost* of a candidate is the number of non-default choices it takes
//! (the "number of corrections").
//!
//! The crate provides
//!
//! * [`rules`] — patterns, templates, rules and error models (with the
//!   paper's well-formedness checks, Definitions 1 and 2),
//! * [`choice`] — the M̃PY choice AST, assignments and concretisation,
//! * [`transform`] — the `T_E` transformation (paper §3.3),
//! * [`library`] — the Figure 8 rules (`INDR`, `INITR`, `RANR`, `COMPR`,
//!   `RETR`, ...) and the `computeDeriv` models, and
//! * [`text`] — a textual front end for writing models as `L -> R1 | R2`.
//!
//! # Example
//!
//! ```
//! use afg_eml::{apply_error_model, library};
//!
//! let student = afg_parser::parse_program(
//!     "def computeDeriv(poly):\n    deriv = []\n    for e in range(0, len(poly)):\n        deriv.append(poly[e] * e)\n    return deriv\n",
//! )?;
//! let model = library::section_2_1_model();
//! let choices = apply_error_model(&student, Some("computeDeriv"), &model)?;
//! assert!(choices.num_choices() > 0);
//! // All-default selections reproduce the original submission.
//! assert_eq!(choices.original_program().funcs[0].name, "computeDeriv");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod choice;
pub mod library;
pub mod rules;
pub mod text;
pub mod transform;

pub use choice::{
    concretize_expr, instrument, CExpr, CFuncDef, CStmt, CStmtKind, ChoiceAssignment, ChoiceId,
    ChoiceInfo, ChoiceProgram, OpChoice,
};
pub use rules::{Bindings, CmpTemplate, ErrorModel, Pattern, Rule, RuleKind, Template};
pub use text::{parse_error_model, EmlParseError};
pub use transform::{apply_error_model, TransformError};
