//! The submission fingerprint cache.
//!
//! A class (or a MOOC) produces thousands of submissions against the same
//! assignment, and the mix is heavily skewed: identical and near-identical
//! programs recur constantly — the same copied skeleton, the same canonical
//! wrong answer, the same resubmission with renamed variables.  Grading is
//! dominated by the CEGIS search, so re-running it on a program the grader
//! has effectively already seen is pure waste.
//!
//! The cache keys grading results on the **canonical form** of the parsed
//! submission ([`afg_ast::canon`]): alpha-renamed variables plus normalized
//! formatting, so two submissions that differ only in naming, whitespace or
//! layout share one entry.  Correctness is preserved exactly:
//!
//! * `Correct` / `CannotFix` verdicts depend only on program *semantics*,
//!   which canonical equality guarantees, so they are returned as-is;
//!   `Timeout` verdicts are cached only when the search exhausted its
//!   candidate budget (deterministic on any machine) — a wall-clock
//!   timeout reflects transient load and is never cached;
//! * a `Feedback` verdict mentions line numbers and the student's own
//!   variable names, so the cached entry stores the minimal **choice
//!   assignment** instead of the rendered feedback, and a hit *replays*
//!   that assignment against the choice program of the submission actually
//!   being graded — the expensive search is skipped, the replayed repair is
//!   **re-verified** on the bounded input space (error models may embed
//!   teacher-written fragments with hardcoded names, so alpha-equivalent
//!   submissions need not agree on every candidate), and the feedback is
//!   rendered from the submission's own source.  Byte-for-byte resubmission
//!   of the same source replays to byte-identical feedback; an
//!   alpha-renamed variant receives an equally minimal (verified) repair
//!   that may pick a different correction when several tie;
//! * the full canonical source is the map key prefixed by the grader's
//!   [`Autograder::config_fingerprint`] (the 64-bit source fingerprint is
//!   only a convenience for logging), so hash collisions are impossible,
//!   configuration changes cannot cross-contaminate, and the replay path
//!   re-validates the choice-program structure, falling back to a fresh
//!   grading run on any mismatch.
//!
//! A second, raw-text-keyed map short-circuits submissions that do not
//! parse: byte-identical broken files (another classroom staple) skip even
//! the parse.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};

use afg_ast::canon::{canonical_source, fnv1a64, skeleton_source};
use afg_ast::Program;
use afg_eml::{apply_error_model, ChoiceAssignment, ChoiceProgram};
use afg_parser::{parse_program, ParseError};
use afg_synth::SynthesisStats;

use crate::cluster::{ClusterIndex, ClusterRepair};
use crate::feedback::{corrections_from_assignment, Feedback};
use crate::grader::{Autograder, GradeOutcome};

/// How one clustered-grading call was answered (see
/// [`Autograder::grade_source_clustered`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GradeDisposition {
    /// Whether the fingerprint cache answered.
    pub cache_hit: bool,
    /// Whether a cluster repair transfer was tried, and if so whether the
    /// hypothesis verified (`None` = no transfer was attempted — no
    /// cluster index, no representative yet, structural mismatch, or the
    /// lookup was answered upstream).
    pub transfer: Option<bool>,
}

/// One cached grading verdict (see the module docs for why `Fixed` stores
/// an assignment rather than the feedback).
#[derive(Debug, Clone)]
enum CachedGrade {
    Correct,
    CannotFix {
        /// Structural precondition (`None` = structure-independent, e.g. a
        /// missing entry function).  A search-produced no-repair verdict
        /// only transfers to a submission whose choice program has the
        /// same shape — hardcoded teacher names in a model can make the
        /// shapes diverge across alpha-renamings.
        guard: Option<crate::grader::ReplayGuard>,
    },
    Timeout {
        /// As for `CannotFix`.
        guard: Option<crate::grader::ReplayGuard>,
    },
    Fixed {
        assignment: ChoiceAssignment,
        cost: usize,
        /// Boxed to keep `Fixed` from dwarfing the unit-like variants.
        stats: Box<SynthesisStats>,
        signature: u64,
        /// The escalation tier that produced the repair; replay rebuilds
        /// the choice program with the same tier model.
        tier: usize,
    },
}

/// Counters describing how the cache has performed so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to a full grading run.
    pub misses: u64,
    /// Distinct canonical forms currently stored.
    pub entries: usize,
    /// Distinct non-parsing sources currently stored.
    pub syntax_entries: usize,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]` (0 when the cache is untouched).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A concurrent map from canonical submission form to grading verdict.
///
/// Shared by reference across grading workers; lookups take a read lock,
/// inserts a write lock.  Concurrent misses on the *same* canonical form
/// are **single-flighted**: the first worker runs the search while the
/// rest block until the entry lands, then replay it as a hit — without
/// this, a hot submission arriving on N connections at once (the very
/// skew the cache exists for) would run N identical CEGIS searches.
#[derive(Debug, Default)]
pub struct FingerprintCache {
    entries: RwLock<HashMap<String, CachedGrade>>,
    syntax: RwLock<HashMap<String, ParseError>>,
    /// Canonical forms currently being graded by some worker.
    inflight: Mutex<HashSet<String>>,
    /// Signalled whenever an in-flight grading completes (or aborts).
    inflight_done: Condvar,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Hard bound on stored entries per map.  A long-running daemon must not
/// grow without limit under a stream of distinct submissions; once a map is
/// full, new verdicts are simply not stored (the resident entries are the
/// oldest, which in classroom traffic are also the hottest).  At typical
/// submission sizes this bounds each map to low hundreds of MB.
const MAX_ENTRIES: usize = 65_536;

/// How many learned killer inputs a cluster contributes to a warm start's
/// priority counterexamples.  Small on purpose: each hint costs one
/// candidate execution per surviving sweep, and the head of the lethality
/// ranking carries nearly all of the rejection power.
const KILLER_HINT_LIMIT: usize = 8;

impl FingerprintCache {
    /// Creates an empty cache.
    pub fn new() -> FingerprintCache {
        FingerprintCache::default()
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.entries.read().expect("cache lock").len(),
            syntax_entries: self.syntax.read().expect("cache lock").len(),
        }
    }

    fn record(&self, hit: bool) {
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
            afg_obs::counter!("afg_cache_hits_total", "Fingerprint-cache hits").inc();
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            afg_obs::counter!("afg_cache_misses_total", "Fingerprint-cache misses").inc();
        }
    }

    /// Claims the right to grade `key`, or waits for the worker already
    /// grading it.  Returns a guard when this caller should grade; `None`
    /// after another worker has published the entry (the caller re-reads
    /// the map).
    fn claim_or_wait<'cache, 'key>(
        &'cache self,
        key: &'key str,
    ) -> Option<InflightGuard<'cache, 'key>> {
        let mut inflight = self.inflight.lock().expect("inflight lock");
        loop {
            if !inflight.contains(key) {
                inflight.insert(key.to_string());
                return Some(InflightGuard { cache: self, key });
            }
            // Bounded waits so an aborted grading (panicked worker whose
            // guard already cleaned up, spurious wakeups, …) can never
            // wedge a waiter; each wakeup re-checks the published map.
            let (guard, _) = self
                .inflight_done
                .wait_timeout(inflight, Duration::from_millis(50))
                .expect("inflight lock");
            inflight = guard;
            if self.entries.read().expect("cache lock").contains_key(key) {
                return None;
            }
        }
    }
}

/// Removes the in-flight marker on drop — including on unwind, so a
/// panicking grading run cannot leave waiters stranded.
struct InflightGuard<'cache, 'key> {
    cache: &'cache FingerprintCache,
    key: &'key str,
}

impl Drop for InflightGuard<'_, '_> {
    fn drop(&mut self) {
        self.cache
            .inflight
            .lock()
            .expect("inflight lock")
            .remove(self.key);
        self.cache.inflight_done.notify_all();
    }
}

/// The structural signature of a choice program: rule names and option
/// counts per site, in site order.  Deliberately **alpha-invariant** (the
/// rendered option *texts* contain variable names and are excluded) so the
/// signature agrees across alpha-equivalent submissions, yet any structural
/// drift — a rule matching differently than it did for the cached
/// representative — is caught before a stale assignment is replayed.
pub(crate) fn choice_signature(choice_program: &ChoiceProgram) -> u64 {
    let mut description = String::new();
    for info in &choice_program.choices {
        description.push_str(&info.rule);
        description.push('/');
        description.push_str(&info.options.len().to_string());
        description.push(';');
    }
    fnv1a64(description.as_bytes())
}

impl Autograder {
    /// Grades a submission through the fingerprint cache.
    ///
    /// Returns the outcome and whether it was served from the cache.  The
    /// outcome is identical to what [`Autograder::grade_source`] would
    /// produce (for `Feedback`, byte-identical rendered text; only the
    /// `elapsed` timing differs, honestly reporting the hit's cost).
    pub fn grade_source_cached(
        &self,
        source: &str,
        cache: &FingerprintCache,
    ) -> (GradeOutcome, bool) {
        let (outcome, disposition) = self.grade_source_clustered(source, cache, None);
        (outcome, disposition.cache_hit)
    }

    /// Grades a submission through the fingerprint cache *and* the cluster
    /// index: exact canonical matches replay the cached verdict as before;
    /// on a miss, the submission's structural skeleton is looked up in
    /// `clusters` and the cluster representative's verified repair (if
    /// any) warm-starts the search (see [`ClusterIndex`]).  Outcomes stay
    /// cost-identical to [`Autograder::grade_source`]; only the search
    /// effort changes.
    pub fn grade_source_clustered(
        &self,
        source: &str,
        cache: &FingerprintCache,
        clusters: Option<&ClusterIndex>,
    ) -> (GradeOutcome, GradeDisposition) {
        let hit = |outcome| {
            (
                outcome,
                GradeDisposition {
                    cache_hit: true,
                    transfer: None,
                },
            )
        };
        // Level 1: byte-identical sources that failed to parse before.
        // Keyed by the full source text — a hash collision must never turn
        // a parsable program into someone else's syntax error.
        if let Some(err) = cache.syntax.read().expect("cache lock").get(source) {
            cache.record(true);
            return hit(GradeOutcome::SyntaxError(err.clone()));
        }

        let parse_span = afg_obs::stage_span!("parse");
        let program = match parse_program(source) {
            Ok(program) => program,
            Err(err) => {
                let mut syntax = cache.syntax.write().expect("cache lock");
                if syntax.len() < MAX_ENTRIES {
                    syntax.insert(source.to_string(), err.clone());
                }
                drop(syntax);
                cache.record(false);
                return (GradeOutcome::SyntaxError(err), GradeDisposition::default());
            }
        };
        drop(parse_span);

        // Level 2: canonical-form lookup.  The key mixes in the grader's
        // configuration fingerprint (backend, budgets, escalation ladder,
        // model identity) so graders with different configurations can
        // share one cache without cross-contaminating verdicts.
        let canon_span = afg_obs::stage_span!("canon");
        let key = format!(
            "{:016x}\n{}",
            self.config_fingerprint(),
            canonical_source(&program)
        );
        drop(canon_span);
        let lookup_span = afg_obs::stage_span!("cache_lookup");
        let cached = cache.entries.read().expect("cache lock").get(&key).cloned();
        if let Some(entry) = cached {
            if let Some(outcome) = self.replay(&program, &entry) {
                cache.record(true);
                return hit(outcome);
            }
            // Structural mismatch (possible only if rule matching is not
            // alpha-invariant for this model): fall through and re-grade.
        }
        drop(lookup_span);

        // Single-flight: either claim the grading of this canonical form,
        // or wait for the worker already grading it and replay its result.
        // The span covers the (possibly long) wait on the in-flight
        // worker plus the replay of its published entry.
        let wait_span = afg_obs::stage_span!("cache_wait");
        let guard = cache.claim_or_wait(&key);
        if guard.is_none() {
            let cached = cache.entries.read().expect("cache lock").get(&key).cloned();
            if let Some(entry) = cached {
                if let Some(outcome) = self.replay(&program, &entry) {
                    cache.record(true);
                    return hit(outcome);
                }
            }
            // The published entry did not replay (or vanished): grade it
            // ourselves, un-deduplicated.
        }
        drop(wait_span);

        // Level 3: the cluster index.  A distinct canonical form is about
        // to be searched — record its skeleton's cluster membership and
        // fetch the representative's repair as a warm-start candidate.
        let cluster_span = afg_obs::stage_span!("cluster_lookup");
        let cluster = clusters.map(|index| {
            let cluster_key = format!(
                "{:016x}\n{}",
                self.config_fingerprint(),
                skeleton_source(&program)
            );
            let repair = index.observe(&cluster_key);
            (index, cluster_key, repair)
        });
        // Learned input ordering: extend the transferred repair's priority
        // counterexamples with the cluster's historically lethal deck
        // indices, so the warm search probes likely killers before sweeping.
        // Appending preserves the donor's own counterexamples; the search
        // dedups and bounds-checks priority indices, so stale hints are
        // harmless.
        let warm = cluster.as_ref().and_then(|(index, cluster_key, repair)| {
            repair.as_ref().map(|repair| {
                let mut hinted = repair.clone();
                for cex in index.killer_ordering(cluster_key, KILLER_HINT_LIMIT) {
                    if !hinted.counterexamples.contains(&cex) {
                        hinted.counterexamples.push(cex);
                    }
                }
                hinted
            })
        });
        drop(cluster_span);

        let traced = self.grade_program_traced_warm(&program, warm.as_ref());

        // Transfer accounting: an attempt is a hypothesis the search
        // actually spent a verification sweep on; the conflicts-saved
        // estimate compares the warm run's SAT work against the donor's
        // recorded cold search.
        let mut transfer = None;
        if let Some((index, _, Some(repair))) = &cluster {
            if traced.transfer.attempted {
                let saved = if traced.transfer.verified {
                    let spent = match &traced.outcome {
                        GradeOutcome::Feedback(feedback) => feedback.stats.sat_conflicts,
                        _ => 0,
                    };
                    repair.sat_conflicts.saturating_sub(spent)
                } else {
                    0
                };
                index.record_transfer(traced.transfer.verified, saved);
                transfer = Some(traced.transfer.verified);
            }
        }

        // A deterministic repair earned without (or despite) a transfer
        // becomes the cluster representative for future skeleton-mates.
        if let Some((index, cluster_key, None)) = &cluster {
            if traced.cacheable {
                if let (GradeOutcome::Feedback(_), Some(trace)) = (&traced.outcome, &traced.repair)
                {
                    index.publish(
                        cluster_key,
                        ClusterRepair {
                            assignment: trace.assignment.clone(),
                            counterexamples: trace.counterexamples.clone(),
                            signature: trace.signature,
                            tier: trace.tier,
                            sat_conflicts: trace.stats.sat_conflicts,
                        },
                    );
                }
            }
        }

        // Killer-input statistics: remember which deck indices actually
        // falsified this skeleton's candidates, so future cluster-mates
        // sweep those inputs counterexample-first.
        if let Some((index, cluster_key, _)) = &cluster {
            if let Some(trace) = &traced.repair {
                index.record_killers(cluster_key, &trace.counterexamples);
            }
        }
        let entry = match (&traced.outcome, traced.repair, traced.cacheable) {
            (_, _, false) => None,
            (GradeOutcome::Correct, _, _) => Some(CachedGrade::Correct),
            (GradeOutcome::CannotFix, _, _) => Some(CachedGrade::CannotFix {
                guard: traced.guard,
            }),
            (GradeOutcome::Timeout, _, _) => Some(CachedGrade::Timeout {
                guard: traced.guard,
            }),
            (GradeOutcome::Feedback(feedback), Some(trace), _) => Some(CachedGrade::Fixed {
                assignment: trace.assignment,
                cost: feedback.cost,
                stats: Box::new(trace.stats),
                signature: trace.signature,
                tier: trace.tier,
            }),
            _ => None,
        };
        if let Some(entry) = entry {
            let mut entries = cache.entries.write().expect("cache lock");
            if entries.len() < MAX_ENTRIES {
                entries.insert(key.clone(), entry);
            }
        }
        drop(guard); // release the in-flight claim only after publishing
        cache.record(false);
        (
            traced.outcome,
            GradeDisposition {
                cache_hit: false,
                transfer,
            },
        )
    }

    /// Replays a cached verdict against the submission actually being
    /// graded.  Returns `None` when the cached assignment does not fit this
    /// submission's choice program — the caller then grades afresh.
    fn replay(&self, program: &Program, entry: &CachedGrade) -> Option<GradeOutcome> {
        let (assignment, cost, stats, signature, tier) = match entry {
            // Correctness depends only on program semantics, which
            // canonical equality guarantees.
            CachedGrade::Correct => return Some(GradeOutcome::Correct),
            // Search-dependent verdicts transfer only when this
            // submission's choice program has the same structure the
            // search actually explored.
            CachedGrade::CannotFix { guard } => {
                return self
                    .guard_holds(program, *guard)
                    .then_some(GradeOutcome::CannotFix)
            }
            CachedGrade::Timeout { guard } => {
                return self
                    .guard_holds(program, *guard)
                    .then_some(GradeOutcome::Timeout)
            }
            CachedGrade::Fixed {
                assignment,
                cost,
                stats,
                signature,
                tier,
            } => (assignment, *cost, stats.as_ref(), *signature, *tier),
        };
        let start = Instant::now();
        // Rebuild with the model of the tier that found the repair — under
        // an escalation ladder the full model would produce a different
        // choice program than the (truncated) tier model did.
        let model = self.tier_model(tier)?;
        let choice_program = apply_error_model(program, Some(self.entry()), &model).ok()?;
        if choice_signature(&choice_program) != signature {
            return None;
        }
        for (id, option) in assignment.non_default() {
            let info = choice_program.choice_info(id)?;
            if option >= info.options.len() {
                return None;
            }
        }
        // Re-verify: the replayed assignment must actually repair *this*
        // submission.  Error models may embed teacher-supplied fragments
        // with hardcoded names (e.g. a BASECASE insertion mentioning the
        // reference's parameter), so two alpha-equivalent submissions are
        // not guaranteed to agree on every candidate — one bounded sweep
        // (the cost of checking a correct submission, far below a search)
        // turns that hazard into a fresh-grade fallback.
        let session = self.oracle().choice_session(&choice_program);
        if !session.is_equivalent(assignment) {
            return None;
        }
        let corrections = corrections_from_assignment(&choice_program, assignment);
        Some(GradeOutcome::Feedback(Feedback {
            corrections,
            cost,
            elapsed: start.elapsed(),
            stats: stats.clone(),
        }))
    }

    /// Whether a cached search-dependent verdict's structural guard holds
    /// for `program`: every attempted tier's model produces a choice
    /// program with the signature the original searches explored (all of
    /// them — an earlier tier's model need not be a subset of the final
    /// one, so any tier's structure diverging invalidates the verdict).
    /// `None` guards (verdicts independent of the choice structure) always
    /// hold.
    fn guard_holds(&self, program: &Program, guard: Option<crate::grader::ReplayGuard>) -> bool {
        let Some(guard) = guard else {
            return true;
        };
        let mut signatures = Vec::with_capacity(guard.tiers_attempted);
        for tier in 0..guard.tiers_attempted {
            let Some(model) = self.tier_model(tier) else {
                return false;
            };
            match apply_error_model(program, Some(self.entry()), &model) {
                Ok(choice_program) => signatures.push(choice_signature(&choice_program)),
                Err(_) => return false,
            }
        }
        crate::grader::combine_signatures(&signatures) == guard.combined_signature
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grader::GraderConfig;
    use afg_eml::library;

    const REFERENCE: &str = "\
def computeDeriv(poly_list_int):
    result = []
    for i in range(len(poly_list_int)):
        result += [i * poly_list_int[i]]
    if len(poly_list_int) == 1:
        return result
    else:
        return result[1:]
";

    /// The paper's off-by-one submission, and an alpha-renamed,
    /// reformatted variant of the same program.
    const BUGGY: &str = "def computeDeriv(poly):\n    if len(poly) == 1:\n        return [0]\n    d = []\n    for i in range(0, len(poly)):\n        d.append(i * poly[i])\n    return d\n";
    const BUGGY_RENAMED: &str = "def computeDeriv(coeffs):\n    if len(coeffs) == 1:\n        return [0]\n    out = []\n    for k in range(0, len(coeffs)):\n        out.append(k * coeffs[k])\n    return out\n";
    const CORRECT: &str = "def computeDeriv(poly):\n    if len(poly) == 1:\n        return [0]\n    d = []\n    for i in range(1, len(poly)):\n        d.append(i * poly[i])\n    return d\n";

    fn grader() -> Autograder {
        // Candidate-bounded budget: deterministic outcomes regardless of
        // machine load, as the cache-equivalence assertions require.
        let config = GraderConfig {
            synthesis: afg_synth::SynthesisConfig {
                max_cost: 3,
                max_candidates: 2_000,
                time_budget: std::time::Duration::from_secs(600),
            },
            ..GraderConfig::fast()
        };
        Autograder::new(
            REFERENCE,
            "computeDeriv",
            library::compute_deriv_model(),
            config,
        )
        .unwrap()
    }

    #[test]
    fn identical_resubmission_hits_and_feedback_is_byte_identical() {
        let grader = grader();
        let cache = FingerprintCache::new();
        let fresh = grader.grade_source(BUGGY);
        let (first, hit1) = grader.grade_source_cached(BUGGY, &cache);
        let (second, hit2) = grader.grade_source_cached(BUGGY, &cache);
        assert!(!hit1);
        assert!(hit2);
        let rendered: Vec<String> = [&fresh, &first, &second]
            .iter()
            .map(|o| o.feedback().expect("feedback").to_string())
            .collect();
        assert_eq!(rendered[0], rendered[1]);
        assert_eq!(rendered[1], rendered[2]);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn alpha_renamed_submission_hits_with_a_verified_repair_of_its_own() {
        let grader = grader();
        let cache = FingerprintCache::new();
        let (_, hit1) = grader.grade_source_cached(BUGGY, &cache);
        assert!(!hit1);
        let (outcome, hit2) = grader.grade_source_cached(BUGGY_RENAMED, &cache);
        assert!(hit2, "alpha-equivalent submission must hit");
        // Replay re-verifies the cached assignment against the renamed
        // submission, so the feedback is a true repair of *it*: same
        // minimal cost as a fresh grade (several cost-1 repairs tie; replay
        // may legitimately pick a different one than a fresh search would).
        let fresh = grader.grade_source(BUGGY_RENAMED);
        let replayed = outcome.feedback().expect("feedback");
        assert_eq!(replayed.cost, fresh.feedback().expect("feedback").cost);
        // The replayed repair really fixes the renamed submission.
        let renamed = afg_parser::parse_program(BUGGY_RENAMED).unwrap();
        let choice_program =
            apply_error_model(&renamed, Some(grader.entry()), grader.model()).unwrap();
        let session = grader.oracle().choice_session(&choice_program);
        // Reconstruct the assignment from the cache entry to check it.
        let key = format!(
            "{:016x}\n{}",
            grader.config_fingerprint(),
            afg_ast::canon::canonical_source(&renamed)
        );
        let entries = cache.entries.read().unwrap();
        let assignment = match entries.get(&key).expect("cached entry") {
            CachedGrade::Fixed {
                assignment: cached, ..
            } => cached.clone(),
            other => panic!("expected a Fixed entry, got {other:?}"),
        };
        drop(entries);
        assert!(session.is_equivalent(&assignment));
        // And it must not leak text from the cached representative: any
        // variable the message mentions is the renamed submission's own.
        assert!(!replayed.to_string().contains("poly"));
    }

    #[test]
    fn correct_and_unfixable_verdicts_cache_too() {
        let grader = grader();
        let cache = FingerprintCache::new();
        assert_eq!(
            grader.grade_source_cached(CORRECT, &cache).0,
            GradeOutcome::Correct
        );
        let (outcome, hit) = grader.grade_source_cached(CORRECT, &cache);
        assert_eq!(outcome, GradeOutcome::Correct);
        assert!(hit);

        let hopeless = "def computeDeriv(poly):\n    return 42\n";
        let (first, _) = grader.grade_source_cached(hopeless, &cache);
        let (second, hit) = grader.grade_source_cached(hopeless, &cache);
        assert_eq!(first, second);
        assert!(hit);
    }

    #[test]
    fn portfolio_cannot_fix_verdicts_are_cacheable() {
        // The portfolio's winning path cancels the losers, which then
        // report wall-clock-limited timeouts; the loser's flag must not
        // poison the winner's deterministic NoRepairFound proof, or every
        // CannotFix would re-run the search on each resubmission.
        let config = GraderConfig {
            synthesis: afg_synth::SynthesisConfig {
                max_cost: 2,
                max_candidates: 200_000,
                time_budget: std::time::Duration::from_secs(600),
            },
            backend: afg_synth::Backend::Portfolio,
            ..GraderConfig::fast()
        };
        let grader = Autograder::new(
            REFERENCE,
            "computeDeriv",
            library::compute_deriv_model(),
            config,
        )
        .unwrap();
        let cache = FingerprintCache::new();
        let hopeless = "def computeDeriv(poly):\n    return 42\n";
        let (first, hit1) = grader.grade_source_cached(hopeless, &cache);
        let (second, hit2) = grader.grade_source_cached(hopeless, &cache);
        assert_eq!(first, GradeOutcome::CannotFix);
        assert_eq!(second, GradeOutcome::CannotFix);
        assert!(!hit1);
        assert!(hit2, "a proven CannotFix under the portfolio must cache");
    }

    /// A cohort member: the paper's off-by-one bug plus an unused
    /// assignment whose constant varies per student — distinct canonical
    /// forms (so the exact cache misses) sharing one skeleton.
    fn cohort_member(constant: i64) -> String {
        format!(
            "def computeDeriv(poly):\n    scratch = {constant}\n    if len(poly) == 1:\n        return [0]\n    d = []\n    for i in range(0, len(poly)):\n        d.append(i * poly[i])\n    return d\n"
        )
    }

    #[test]
    fn skeleton_mates_transfer_the_repair_and_stay_cost_identical() {
        let grader = grader();
        let cache = FingerprintCache::new();
        let clusters = crate::ClusterIndex::new();
        let cohort: Vec<String> = [7, 21, 99].into_iter().map(cohort_member).collect();

        let mut dispositions = Vec::new();
        let mut outcomes = Vec::new();
        for source in &cohort {
            let (outcome, disposition) =
                grader.grade_source_clustered(source, &cache, Some(&clusters));
            outcomes.push(outcome);
            dispositions.push(disposition);
        }

        // The first member grades cold and becomes the representative; the
        // mates' searches try its repair and it verifies.
        assert!(!dispositions[0].cache_hit);
        assert_eq!(dispositions[0].transfer, None);
        for disposition in &dispositions[1..] {
            assert!(!disposition.cache_hit, "distinct canonical forms");
            assert_eq!(disposition.transfer, Some(true), "{dispositions:?}");
        }

        // Cost identity with plain cold grading, member by member.
        let donor_stats = outcomes[0].feedback().expect("fixable").stats.clone();
        for (source, outcome) in cohort.iter().zip(&outcomes) {
            let cold = grader.grade_source(source);
            assert_eq!(
                cold.feedback().expect("fixable").cost,
                outcome.feedback().expect("fixable").cost
            );
        }
        // And the warm-started mates did strictly less search work.
        for outcome in &outcomes[1..] {
            let stats = &outcome.feedback().expect("fixable").stats;
            assert!(stats.warm_start_verified);
            assert!(
                stats.candidates_checked < donor_stats.candidates_checked,
                "warm {} vs donor {}",
                stats.candidates_checked,
                donor_stats.candidates_checked
            );
        }

        let stats = clusters.stats();
        assert_eq!(stats.clusters, 1);
        assert_eq!(stats.members, 3);
        assert_eq!(stats.repairs, 1);
        assert_eq!(stats.transfer_attempts, 2);
        assert_eq!(stats.transfer_hits, 2);
    }

    #[test]
    fn correct_skeleton_mates_do_not_count_as_transfer_attempts() {
        // `range(0, …)` and `range(1, …)` share a skeleton (constants are
        // erased), so the correct variant lands in the buggy cluster — but
        // its grade short-circuits at the already-correct check and no
        // hypothesis is ever tried.
        let grader = grader();
        let cache = FingerprintCache::new();
        let clusters = crate::ClusterIndex::new();
        let (_, first) = grader.grade_source_clustered(&cohort_member(7), &cache, Some(&clusters));
        assert_eq!(first.transfer, None);
        let correct = "def computeDeriv(poly):\n    scratch = 5\n    if len(poly) == 1:\n        return [0]\n    d = []\n    for i in range(1, len(poly)):\n        d.append(i * poly[i])\n    return d\n";
        let (outcome, disposition) =
            grader.grade_source_clustered(correct, &cache, Some(&clusters));
        assert_eq!(outcome, GradeOutcome::Correct);
        assert_eq!(disposition.transfer, None);
        let stats = clusters.stats();
        assert_eq!(stats.clusters, 1, "same skeleton, one cluster");
        assert_eq!(stats.members, 2);
        assert_eq!(stats.transfer_attempts, 0);
    }

    #[test]
    fn refuted_transfers_fall_back_to_the_cold_verdict() {
        // A mate whose *material* constant differs: the donor's repair
        // (increment the range start) does not fix `range(2, …)`, so the
        // hypothesis is refuted and grading falls back to the cold path —
        // whose verdict must be exactly what plain grading produces.
        let grader = grader();
        let cache = FingerprintCache::new();
        let clusters = crate::ClusterIndex::new();
        let (_, first) = grader.grade_source_clustered(&cohort_member(7), &cache, Some(&clusters));
        assert_eq!(first.transfer, None);

        let drifted = "def computeDeriv(poly):\n    scratch = 7\n    if len(poly) == 1:\n        return [0]\n    d = []\n    for i in range(2, len(poly)):\n        d.append(i * poly[i])\n    return d\n";
        let (outcome, disposition) =
            grader.grade_source_clustered(drifted, &cache, Some(&clusters));
        let cold = grader.grade_source(drifted);
        match (&outcome, &cold) {
            (GradeOutcome::Feedback(warm), GradeOutcome::Feedback(cold)) => {
                assert_eq!(warm.cost, cold.cost)
            }
            (warm, cold) => assert_eq!(warm, cold),
        }
        if let Some(verified) = disposition.transfer {
            assert!(!verified, "the drifted mate's hypothesis must be refuted");
        }
        assert_eq!(clusters.stats().transfer_hits, 0);
    }

    #[test]
    fn syntax_errors_cache_by_raw_source() {
        let grader = grader();
        let cache = FingerprintCache::new();
        let broken = "def computeDeriv(poly)\n    return poly\n";
        let (first, hit1) = grader.grade_source_cached(broken, &cache);
        let (second, hit2) = grader.grade_source_cached(broken, &cache);
        assert!(!hit1);
        assert!(hit2);
        assert_eq!(first, second);
        assert!(matches!(first, GradeOutcome::SyntaxError(_)));
        assert_eq!(cache.stats().syntax_entries, 1);
    }

    #[test]
    fn wall_clock_timeouts_are_never_cached() {
        // A zero wall-clock budget times every incorrect submission out
        // before the candidate budget is touched — a load-dependent
        // verdict the cache must not pin onto future submissions.  The
        // portfolio backend is the tricky case: its merged stats sum the
        // racers' candidate counters, so cacheability must come from the
        // explicit wall-clock flag, not from comparing counters to the
        // budget.
        for backend in [afg_synth::Backend::Cegis, afg_synth::Backend::Portfolio] {
            let config = GraderConfig {
                synthesis: afg_synth::SynthesisConfig {
                    max_cost: 3,
                    max_candidates: 1_000_000,
                    time_budget: std::time::Duration::ZERO,
                },
                backend,
                ..GraderConfig::fast()
            };
            let grader = Autograder::new(
                REFERENCE,
                "computeDeriv",
                library::compute_deriv_model(),
                config,
            )
            .unwrap();
            let cache = FingerprintCache::new();
            let (first, hit1) = grader.grade_source_cached(BUGGY, &cache);
            let (second, hit2) = grader.grade_source_cached(BUGGY, &cache);
            assert_eq!(first, GradeOutcome::Timeout, "{backend:?}");
            assert_eq!(second, GradeOutcome::Timeout, "{backend:?}");
            assert!(!hit1, "{backend:?}");
            assert!(
                !hit2,
                "{backend:?}: a wall-clock timeout must not be served from cache"
            );
            assert_eq!(cache.stats().entries, 0, "{backend:?}");
        }

        // The flip side: a candidate-budget timeout is deterministic and
        // IS cacheable.
        let config = GraderConfig {
            synthesis: afg_synth::SynthesisConfig {
                max_cost: 3,
                max_candidates: 3,
                time_budget: std::time::Duration::from_secs(600),
            },
            ..GraderConfig::fast()
        };
        let grader = Autograder::new(
            REFERENCE,
            "computeDeriv",
            library::compute_deriv_model(),
            config,
        )
        .unwrap();
        let cache = FingerprintCache::new();
        let (first, hit1) = grader.grade_source_cached(BUGGY, &cache);
        let (second, hit2) = grader.grade_source_cached(BUGGY, &cache);
        assert_eq!(first, GradeOutcome::Timeout);
        assert_eq!(second, GradeOutcome::Timeout);
        assert!(!hit1);
        assert!(hit2, "a candidate-budget timeout replays identically");
    }

    #[test]
    fn concurrent_misses_on_one_submission_are_single_flighted() {
        let grader = grader();
        let cache = FingerprintCache::new();
        let outcomes: Vec<(GradeOutcome, bool)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| scope.spawn(|| grader.grade_source_cached(BUGGY, &cache)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // Exactly one thread ran the search; the rest waited and replayed.
        let stats = cache.stats();
        assert_eq!(stats.misses, 1, "{stats:?}");
        assert_eq!(stats.hits, 3, "{stats:?}");
        assert_eq!(outcomes.iter().filter(|(_, hit)| !hit).count(), 1);
        let rendered: Vec<String> = outcomes
            .iter()
            .map(|(o, _)| o.feedback().expect("feedback").to_string())
            .collect();
        assert!(rendered.iter().all(|r| r == &rendered[0]));
    }

    #[test]
    fn hit_rate_tracks_counters() {
        let stats = CacheStats {
            hits: 3,
            misses: 1,
            entries: 1,
            syntax_entries: 0,
        };
        assert!((stats.hit_rate() - 0.75).abs() < 1e-9);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }
}
