//! The submission cluster index: near-duplicate detection and repair
//! transfer.
//!
//! The fingerprint cache (`crate::cache`) only collapses *exact* canonical
//! matches — same program up to naming and layout.  Real cohorts are
//! redundant one level up as well: most submissions share a structural
//! *skeleton* (the same copied scaffold, the same tutorial shape) while
//! differing in the constants they filled in — a different loop bound, a
//! different initialiser, a different debug string.  Their canonical forms
//! differ, so the cache misses; but their search problems are nearly
//! identical, so re-running a full CEGISMIN descent from the top of the
//! cost scale is mostly wasted work.
//!
//! The cluster index keys submissions on their **skeleton source**
//! ([`afg_ast::canon::skeleton_source`]: alpha-renamed *and*
//! constant-erased).  The first member of a cluster to earn a
//! deterministic repair becomes the cluster *representative*; its minimal
//! [`ChoiceAssignment`], counterexample set and producing tier are stored.
//! Every later cluster-mate gets that repair offered to the synthesizer as
//! a [`afg_synth::WarmStart`]:
//!
//! * the hypothesis is **re-verified** against the mate with one bounded
//!   sweep (skeleton equality implies nothing about behaviour — that is
//!   the whole point of the coarser key);
//! * on success, the CEGISMIN minimisation descent opens at the hypothesis
//!   cost instead of `max_cost` and the counterexample bitset is
//!   pre-seeded — typically one verification sweep plus one Unsat proof
//!   instead of a full descent;
//! * on failure, the hypothesis becomes an ordinary blocked candidate and
//!   the search proceeds cold.
//!
//! Either way the descent still runs to Unsat, so **outcomes are
//! cost-identical to cold grading** (asserted by `afg-bench`'s
//! differential test and the classroom CI smoke step).  Two guard rails
//! keep that true even when a search budget truncates the descent: a
//! warm-started search that ends *without* a proof (best-so-far repair or
//! timeout) is thrown away and the tier re-grades cold — a truncated warm
//! trajectory could otherwise make verdicts depend on cluster arrival
//! order — while a warm run that ends *with* a proof is kept, since a
//! proven verdict is deterministic (at worst it strengthens a cold
//! budget-timeout into a real answer, never the reverse).  The index tracks
//! cluster sizes, transfer attempts/hits, and an estimate of the SAT
//! conflicts saved (the representative's recorded search cost minus the
//! warm run's — cluster-mates are near-identical, so the donor's cold cost
//! is a faithful stand-in for the mate's).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

use afg_eml::ChoiceAssignment;

/// The verified minimal repair of a cluster representative, in the form a
/// cluster-mate's warm start needs.
#[derive(Debug, Clone)]
pub(crate) struct ClusterRepair {
    /// The representative's minimal choice assignment (its cost is
    /// `assignment.cost()`).
    pub assignment: ChoiceAssignment,
    /// The oracle input indices its search accumulated as counterexamples.
    pub counterexamples: Vec<usize>,
    /// Structural signature of the choice program the assignment indexes
    /// into (`crate::cache::choice_signature`); transfer is only offered
    /// when the mate's choice program has the same signature.
    pub signature: u64,
    /// The escalation tier that produced the repair — the mate's warm
    /// start applies to the same tier's choice program.
    pub tier: usize,
    /// SAT conflicts the representative's cold search spent, the baseline
    /// for the conflicts-saved estimate.
    pub sat_conflicts: u64,
}

#[derive(Debug, Default)]
struct Cluster {
    /// Submissions observed with this skeleton (distinct canonical forms
    /// only — exact duplicates are absorbed upstream by the fingerprint
    /// cache and never reach the index).
    members: u64,
    /// The representative's repair, once one member earned a
    /// deterministic `Fixed` verdict.
    repair: Option<ClusterRepair>,
    /// Killer-input statistics: oracle input index → how many times that
    /// input surfaced as a counterexample while grading this cohort.  Used
    /// to order future cluster-mates' verification sweeps
    /// counterexample-first beyond the CEGIS-local priority list.
    killer_counts: HashMap<usize, u64>,
}

/// Counters describing the index and how repair transfer has performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClusterStats {
    /// Distinct skeletons observed.
    pub clusters: usize,
    /// Total members across all clusters.
    pub members: u64,
    /// Size of the largest cluster.
    pub largest: u64,
    /// Clusters that currently hold a transferable repair.
    pub repairs: usize,
    /// Warm starts actually tried by a search (hypothesis fit the mate's
    /// choice program and the mate was incorrect).
    pub transfer_attempts: u64,
    /// Tried hypotheses that verified, short-circuiting the descent.
    pub transfer_hits: u64,
    /// Estimated SAT conflicts saved by hits: Σ max(0, donor conflicts −
    /// warm-run conflicts).
    pub conflicts_saved: u64,
    /// Killer-input observations recorded across all clusters (one per
    /// counterexample discovered while grading a cluster member).
    pub killer_observations: u64,
}

impl ClusterStats {
    /// Hit fraction of attempted transfers in `[0, 1]` (0 when untried).
    pub fn hit_rate(&self) -> f64 {
        if self.transfer_attempts == 0 {
            0.0
        } else {
            self.transfer_hits as f64 / self.transfer_attempts as f64
        }
    }
}

/// Hard bound on stored clusters, for the same reason the fingerprint
/// cache bounds its maps: a long-running daemon must not grow without
/// limit.  Skeletons are far fewer than canonical forms, so this is
/// generous; past it, new skeletons are simply not tracked.
const MAX_CLUSTERS: usize = 65_536;

/// A concurrent map from skeleton source to cluster state.  Shared by
/// reference across grading workers, exactly like the fingerprint cache it
/// sits beside.
#[derive(Debug, Default)]
pub struct ClusterIndex {
    clusters: RwLock<HashMap<String, Cluster>>,
    attempts: AtomicU64,
    hits: AtomicU64,
    conflicts_saved: AtomicU64,
}

impl ClusterIndex {
    /// Creates an empty index.
    pub fn new() -> ClusterIndex {
        ClusterIndex::default()
    }

    /// Current counters.
    pub fn stats(&self) -> ClusterStats {
        let clusters = self.clusters.read().expect("cluster lock");
        ClusterStats {
            clusters: clusters.len(),
            members: clusters.values().map(|c| c.members).sum(),
            largest: clusters.values().map(|c| c.members).max().unwrap_or(0),
            repairs: clusters.values().filter(|c| c.repair.is_some()).count(),
            transfer_attempts: self.attempts.load(Ordering::Relaxed),
            transfer_hits: self.hits.load(Ordering::Relaxed),
            conflicts_saved: self.conflicts_saved.load(Ordering::Relaxed),
            killer_observations: clusters
                .values()
                .map(|c| c.killer_counts.values().sum::<u64>())
                .sum(),
        }
    }

    /// Records one submission with skeleton `key` and returns the cluster
    /// representative's repair, if one exists, for use as a warm start.
    pub(crate) fn observe(&self, key: &str) -> Option<ClusterRepair> {
        let mut clusters = self.clusters.write().expect("cluster lock");
        if let Some(cluster) = clusters.get_mut(key) {
            cluster.members += 1;
            return cluster.repair.clone();
        }
        if clusters.len() < MAX_CLUSTERS {
            clusters.insert(
                key.to_string(),
                Cluster {
                    members: 1,
                    ..Cluster::default()
                },
            );
        }
        None
    }

    /// Records the counterexample input indices that refuted candidates
    /// while grading a member of cluster `key` — the cohort's "killer
    /// inputs".  Called post-grade with a search's accumulated
    /// counterexample set.
    pub(crate) fn record_killers(&self, key: &str, indices: &[usize]) {
        if indices.is_empty() {
            return;
        }
        let mut clusters = self.clusters.write().expect("cluster lock");
        if let Some(cluster) = clusters.get_mut(key) {
            for &index in indices {
                *cluster.killer_counts.entry(index).or_insert(0) += 1;
            }
        }
    }

    /// The cohort's killer inputs for cluster `key`, most lethal first
    /// (count descending, index ascending on ties — deterministic).  A
    /// cluster-mate's verification sweep checks these before the plain
    /// deck order; stale or out-of-range indices are harmless, each is
    /// just a bounded-space input checked early (or skipped).
    pub(crate) fn killer_ordering(&self, key: &str, limit: usize) -> Vec<usize> {
        let clusters = self.clusters.read().expect("cluster lock");
        let Some(cluster) = clusters.get(key) else {
            return Vec::new();
        };
        let mut ranked: Vec<(usize, u64)> = cluster
            .killer_counts
            .iter()
            .map(|(&index, &count)| (index, count))
            .collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.truncate(limit);
        ranked.into_iter().map(|(index, _)| index).collect()
    }

    /// Installs `repair` as cluster `key`'s representative unless one is
    /// already installed (first deterministic repair wins; later members
    /// replaying through it keeps the estimate baseline stable).
    pub(crate) fn publish(&self, key: &str, repair: ClusterRepair) {
        let mut clusters = self.clusters.write().expect("cluster lock");
        if let Some(cluster) = clusters.get_mut(key) {
            if cluster.repair.is_none() {
                cluster.repair = Some(repair);
            }
        }
    }

    /// Records the outcome of one offered transfer; `saved` is the
    /// conflicts-saved estimate for a hit (0 for a miss).
    pub(crate) fn record_transfer(&self, verified: bool, saved: u64) {
        self.attempts.fetch_add(1, Ordering::Relaxed);
        afg_obs::counter!(
            "afg_transfer_attempts_total",
            "Cluster repair-transfer hypotheses tried"
        )
        .inc();
        if verified {
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.conflicts_saved.fetch_add(saved, Ordering::Relaxed);
            afg_obs::counter!(
                "afg_transfer_hits_total",
                "Cluster repair transfers that verified"
            )
            .inc();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn repair(signature: u64) -> ClusterRepair {
        ClusterRepair {
            assignment: ChoiceAssignment::default_choices(),
            counterexamples: vec![0, 3],
            signature,
            tier: 0,
            sat_conflicts: 100,
        }
    }

    #[test]
    fn observe_counts_members_and_returns_the_representative() {
        let index = ClusterIndex::new();
        assert!(index.observe("sk-a").is_none());
        assert!(index.observe("sk-a").is_none(), "no repair published yet");
        index.publish("sk-a", repair(1));
        let transferred = index.observe("sk-a").expect("repair installed");
        assert_eq!(transferred.signature, 1);
        assert_eq!(transferred.counterexamples, vec![0, 3]);

        // First publish wins.
        index.publish("sk-a", repair(2));
        assert_eq!(index.observe("sk-a").unwrap().signature, 1);

        // Publishing onto an unobserved key is a no-op, not a phantom
        // cluster.
        index.publish("sk-ghost", repair(1));
        let stats = index.stats();
        assert_eq!(stats.clusters, 1);
        assert_eq!(stats.members, 4);
        assert_eq!(stats.largest, 4);
        assert_eq!(stats.repairs, 1);
    }

    #[test]
    fn killer_ordering_ranks_by_lethality_then_index() {
        let index = ClusterIndex::new();
        index.observe("sk");
        index.record_killers("sk", &[4, 2, 4]);
        index.record_killers("sk", &[4, 7, 2]);
        index.record_killers("sk", &[9]);
        // Counts: 4→3, 2→2, 7→1, 9→1 ⇒ ties broken by ascending index.
        assert_eq!(index.killer_ordering("sk", 16), vec![4, 2, 7, 9]);
        assert_eq!(index.killer_ordering("sk", 2), vec![4, 2]);
        assert!(index.killer_ordering("unknown", 16).is_empty());
        // Recording against an untracked key is a no-op.
        index.record_killers("unknown", &[1]);
        assert!(index.killer_ordering("unknown", 16).is_empty());
        assert_eq!(index.stats().killer_observations, 7);
    }

    #[test]
    fn transfer_counters_accumulate() {
        let index = ClusterIndex::new();
        index.record_transfer(true, 90);
        index.record_transfer(false, 0);
        index.record_transfer(true, 10);
        let stats = index.stats();
        assert_eq!(stats.transfer_attempts, 3);
        assert_eq!(stats.transfer_hits, 2);
        assert_eq!(stats.conflicts_saved, 100);
        assert!((stats.hit_rate() - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(ClusterStats::default().hit_rate(), 0.0);
    }
}
