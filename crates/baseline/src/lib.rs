//! Test-case-based feedback — the baseline the paper compares against.
//!
//! MITx's 6.00x graded Python exercises by running each submission on a
//! fixed handful of test cases and reporting the failing ones back to the
//! student (paper §1).  This crate implements that baseline so the
//! experiment harness can contrast its input coverage and feedback quality
//! with the synthesis-based grader (paper §6: "our tool typically performs
//! the equivalence check over more than 10^6 inputs" versus "a few dozens of
//! test-cases").

use afg_ast::Program;
use afg_interp::{ExecLimits, ExecResult, Value};
use afg_parser::{parse_program, ParseError};

/// One failing test case, as the student would see it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailingTest {
    /// The inputs the submission was run on.
    pub inputs: Vec<Value>,
    /// What the reference implementation produces.
    pub expected: String,
    /// What the submission produced (a value or an error kind).
    pub actual: String,
}

/// The baseline's verdict for one submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseOutcome {
    /// The submission does not parse.
    SyntaxError(ParseError),
    /// All test cases pass.
    AllPassed {
        /// Number of test cases run.
        total: usize,
    },
    /// Some test cases fail; they are reported back verbatim.
    Failed {
        /// Number of test cases run.
        total: usize,
        /// The failing cases.
        failures: Vec<FailingTest>,
    },
}

impl TestCaseOutcome {
    /// Whether the submission passed every test case.
    pub fn passed(&self) -> bool {
        matches!(self, TestCaseOutcome::AllPassed { .. })
    }
}

/// A test-case-based grader for one assignment.
pub struct TestCaseGrader {
    reference: Program,
    entry: String,
    tests: Vec<Vec<Value>>,
    limits: ExecLimits,
}

impl TestCaseGrader {
    /// Builds a baseline grader from the reference source and a fixed list
    /// of test inputs (each entry is one argument tuple).
    ///
    /// # Errors
    ///
    /// Returns the parse error if the reference implementation is invalid.
    pub fn new(
        reference_source: &str,
        entry: &str,
        tests: Vec<Vec<Value>>,
    ) -> Result<TestCaseGrader, ParseError> {
        let reference = parse_program(reference_source)?;
        Ok(TestCaseGrader {
            reference,
            entry: entry.to_string(),
            tests,
            limits: ExecLimits::fast(),
        })
    }

    /// Number of test cases this grader covers — compare with
    /// `EquivalenceOracle::valid_input_count()` for the coverage argument of
    /// paper §6.
    pub fn num_tests(&self) -> usize {
        self.tests.len()
    }

    /// Grades a submission.
    pub fn grade_source(&self, student_source: &str) -> TestCaseOutcome {
        let student = match parse_program(student_source) {
            Ok(program) => program,
            Err(err) => return TestCaseOutcome::SyntaxError(err),
        };
        self.grade_program(&student)
    }

    /// Grades an already-parsed submission.
    pub fn grade_program(&self, student: &Program) -> TestCaseOutcome {
        let mut failures = Vec::new();
        for inputs in &self.tests {
            let expected =
                ExecResult::observe(&self.reference, Some(&self.entry), inputs, self.limits);
            let actual = ExecResult::observe(student, Some(&self.entry), inputs, self.limits);
            if !actual.matches(&expected, false) {
                failures.push(FailingTest {
                    inputs: inputs.clone(),
                    expected: describe(&expected),
                    actual: describe(&actual),
                });
            }
        }
        if failures.is_empty() {
            TestCaseOutcome::AllPassed {
                total: self.tests.len(),
            }
        } else {
            TestCaseOutcome::Failed {
                total: self.tests.len(),
                failures,
            }
        }
    }
}

fn describe(result: &ExecResult) -> String {
    match result {
        ExecResult::Ok(outcome) => outcome.value.repr(),
        ExecResult::Err(kind) => format!("error: {kind}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const REFERENCE: &str = "\
def computeDeriv(poly_list_int):
    result = []
    for i in range(len(poly_list_int)):
        result += [i * poly_list_int[i]]
    if len(poly_list_int) == 1:
        return result
    else:
        return result[1:]
";

    fn grader() -> TestCaseGrader {
        TestCaseGrader::new(
            REFERENCE,
            "computeDeriv",
            vec![
                vec![Value::int_list([2, -3, 1, 4])],
                vec![Value::int_list([7])],
                vec![Value::int_list([0, 0])],
            ],
        )
        .unwrap()
    }

    #[test]
    fn passes_correct_submissions() {
        let outcome = grader().grade_source(
            "def computeDeriv(poly):\n    if len(poly) == 1:\n        return [0]\n    d = []\n    for i in range(1, len(poly)):\n        d.append(i * poly[i])\n    return d\n",
        );
        assert!(outcome.passed());
    }

    #[test]
    fn reports_failing_cases_with_expected_and_actual() {
        let outcome = grader().grade_source(
            "def computeDeriv(poly):\n    d = []\n    for i in range(1, len(poly)):\n        d.append(i * poly[i])\n    return d\n",
        );
        match outcome {
            TestCaseOutcome::Failed { total, failures } => {
                assert_eq!(total, 3);
                // The missing [0] base case fails exactly the singleton test.
                assert_eq!(failures.len(), 1);
                assert_eq!(failures[0].expected, "[0]");
                assert_eq!(failures[0].actual, "[]");
            }
            other => panic!("expected failures, got {other:?}"),
        }
    }

    #[test]
    fn a_sparse_test_suite_can_miss_bugs() {
        // Only length >= 2 tests: the missing base case goes unnoticed —
        // exactly the weakness of test-case feedback the paper motivates.
        let sparse = TestCaseGrader::new(
            REFERENCE,
            "computeDeriv",
            vec![
                vec![Value::int_list([2, -3, 1, 4])],
                vec![Value::int_list([0, 0])],
            ],
        )
        .unwrap();
        let outcome = sparse.grade_source(
            "def computeDeriv(poly):\n    d = []\n    for i in range(1, len(poly)):\n        d.append(i * poly[i])\n    return d\n",
        );
        assert!(
            outcome.passed(),
            "the sparse suite cannot distinguish the buggy submission"
        );
    }

    #[test]
    fn syntax_errors_are_reported() {
        let outcome = grader().grade_source("def computeDeriv(poly)\n    return poly\n");
        assert!(matches!(outcome, TestCaseOutcome::SyntaxError(_)));
    }

    #[test]
    fn crashes_count_as_failures() {
        let outcome = grader().grade_source("def computeDeriv(poly):\n    return poly[10]\n");
        match outcome {
            TestCaseOutcome::Failed { failures, .. } => {
                assert!(failures.iter().all(|f| f.actual.starts_with("error:")));
            }
            other => panic!("expected failures, got {other:?}"),
        }
    }
}
