//! CLI for the coverage-guided fuzzer.
//!
//! ```text
//! fuzz --target {eml,parser,json,http,arith,vm} [--max-execs N] [--seed S]
//!      [--corpus DIR] [--findings DIR] [--max-len N]
//! ```
//!
//! Prints the run summary as JSON on stdout.  Exit code 0 even when
//! findings exist — CI asserts over the summary with `jq` so the log
//! always carries the full report.

use std::path::PathBuf;
use std::process::ExitCode;

use afg_fuzz::{Config, TargetKind};

const USAGE: &str = "usage: fuzz --target {eml|parser|json|http|arith|vm} \
[--max-execs N] [--seed S] [--corpus DIR] [--findings DIR] [--max-len N]";

fn parse_args(args: &[String]) -> Result<Config, String> {
    let mut target: Option<TargetKind> = None;
    let mut max_execs: u64 = 10_000;
    let mut seed: u64 = 1;
    let mut corpus_dir: Option<PathBuf> = None;
    let mut findings_dir: Option<PathBuf> = Some(PathBuf::from("fuzz/findings"));
    let mut max_len: usize = 4096;

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--target" => {
                let name = value("--target")?;
                target = Some(
                    TargetKind::from_name(&name)
                        .ok_or_else(|| format!("unknown target '{name}'"))?,
                );
            }
            "--max-execs" => {
                max_execs = value("--max-execs")?
                    .parse()
                    .map_err(|_| "--max-execs expects an integer".to_string())?;
            }
            "--seed" => {
                seed = value("--seed")?
                    .parse()
                    .map_err(|_| "--seed expects an integer".to_string())?;
            }
            "--corpus" => corpus_dir = Some(PathBuf::from(value("--corpus")?)),
            "--findings" => {
                let dir = value("--findings")?;
                findings_dir = if dir == "none" {
                    None
                } else {
                    Some(PathBuf::from(dir))
                };
            }
            "--max-len" => {
                max_len = value("--max-len")?
                    .parse()
                    .map_err(|_| "--max-len expects an integer".to_string())?;
            }
            other => return Err(format!("unknown option '{other}'")),
        }
    }

    let target = target.ok_or_else(|| "--target is required".to_string())?;
    let mut config = Config::new(target, max_execs, seed);
    config.corpus_dir = corpus_dir;
    config.findings_dir = findings_dir;
    config.max_len = max_len;
    Ok(config)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = match parse_args(&args) {
        Ok(config) => config,
        Err(message) => {
            eprintln!("fuzz: {message}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    if !afg_cov::ENABLED {
        eprintln!(
            "fuzz: warning: coverage recording is compiled out; corpus retention \
             is blind.  Re-run with `--features coverage`."
        );
    }
    let summary = afg_fuzz::run(&config);
    println!("{}", summary.to_json().to_pretty());
    ExitCode::SUCCESS
}
