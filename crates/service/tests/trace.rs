//! Trace-propagation and exposition tests for the observability layer.
//!
//! Boots daemons in-process (ephemeral ports, real TCP) and asserts the
//! three contracts the layer makes: every grade response names a trace
//! retrievable from `/debug/traces` whose span tree covers the pipeline
//! (parse → canonicalize → search → verify); `/metrics` serves Prometheus
//! text with the grade latency series populated; and tracing on vs off
//! changes *observability only* — grade response bodies stay
//! byte-identical.
//!
//! The metrics registry is process-global (tests in this binary share
//! it), so counter assertions are monotone (`>=`) rather than exact.

use afg_json::{parse_json, Json};
use afg_service::client::Client;
use afg_service::{start, ServerHandle, ServiceConfig};

/// The paper's worked example: iteration starts at 0 instead of 1 —
/// incorrect, repairable with one correction.
const BUGGY: &str = "def computeDeriv(poly):\n    if len(poly) == 1:\n        return [0]\n    d = []\n    for i in range(0, len(poly)):\n        d.append(i * poly[i])\n    return d\n";

fn boot(config: ServiceConfig) -> (ServerHandle, Client) {
    let handle = start(ServiceConfig {
        threads: 4,
        ..config
    })
    .expect("bind an ephemeral port");
    let client = Client::connect(handle.addr()).expect("connect");
    (handle, client)
}

/// Registers `computeDeriv` with the deterministic (candidate-bounded)
/// budget the smoke test uses, so grading never depends on machine load.
fn register(client: &mut Client) {
    let (status, response) = client
        .post(
            "/problems",
            &Json::object([
                ("problem", Json::str("compDeriv")),
                ("max_candidates", Json::Int(2000)),
                ("time_budget_ms", Json::Int(600_000)),
            ]),
        )
        .unwrap();
    assert_eq!(status, 201, "{response}");
}

fn header<'h>(headers: &'h [(String, String)], name: &str) -> Option<&'h str> {
    headers
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.as_str())
}

#[test]
fn grade_trace_id_resolves_to_a_full_span_tree() {
    let (_handle, mut client) = boot(ServiceConfig::default());
    register(&mut client);

    let body = Json::object([("source", Json::str(BUGGY))]);
    let (status, headers, graded) = client
        .request_full("POST", "/problems/compDeriv/grade", Some(&body))
        .unwrap();
    assert_eq!(status, 200, "{graded}");
    let trace_id = header(&headers, "x-afg-trace-id")
        .expect("grade responses carry X-Afg-Trace-Id")
        .to_string();
    assert_eq!(trace_id.len(), 32, "{trace_id:?}");
    assert!(trace_id.chars().all(|c| c.is_ascii_hexdigit()));

    let (status, traces) = client.get("/debug/traces").unwrap();
    assert_eq!(status, 200);
    let traces = traces.get("traces").and_then(Json::as_array).unwrap();
    let trace = traces
        .iter()
        .find(|t| t.get("id").and_then(Json::as_str) == Some(trace_id.as_str()))
        .expect("the graded request's trace is in the ring");

    let spans = trace.get("spans").and_then(Json::as_array).unwrap();
    let names: Vec<&str> = spans
        .iter()
        .filter_map(|s| s.get("name").and_then(Json::as_str))
        .collect();
    // The root request span plus the Figure-3 pipeline stages.  This was
    // a cache miss, so the search actually ran and verified candidates.
    assert_eq!(names.first(), Some(&"grade"));
    assert!(spans[0].get("parent").unwrap().is_null());
    for stage in ["parse", "canon", "cache_lookup", "search", "verify"] {
        assert!(
            names.contains(&stage),
            "missing span {stage:?} in {names:?}"
        );
    }
    // Every non-root span points at an earlier span — a well-formed tree.
    for (i, span) in spans.iter().enumerate().skip(1) {
        let parent = span.get("parent").and_then(Json::as_i64).unwrap();
        assert!((parent as usize) < i, "span {i} has parent {parent}");
    }
    // The root span is annotated with the request disposition.
    let attrs = spans[0].get("attrs").unwrap();
    assert_eq!(attrs.get("cache").and_then(Json::as_str), Some("miss"));
    assert_eq!(attrs.get("outcome").and_then(Json::as_str), Some("fixed"));
}

#[test]
fn metrics_endpoint_serves_prometheus_text_with_grade_latency() {
    let (_handle, mut client) = boot(ServiceConfig::default());
    register(&mut client);
    let body = Json::object([("source", Json::str(BUGGY))]);
    let (status, graded) = client.post("/problems/compDeriv/grade", &body).unwrap();
    assert_eq!(status, 200, "{graded}");

    let (status, headers, text) = client.request_raw("GET", "/metrics", None).unwrap();
    assert_eq!(status, 200);
    assert!(
        header(&headers, "content-type")
            .unwrap()
            .starts_with("text/plain"),
        "Prometheus exposition is text, not JSON"
    );

    assert!(text.contains("# TYPE afg_grades_total counter"), "{text}");
    assert!(
        text.contains("# TYPE afg_grade_seconds histogram"),
        "{text}"
    );
    let grades: u64 = text
        .lines()
        .find_map(|l| l.strip_prefix("afg_grades_total "))
        .expect("afg_grades_total sample")
        .parse()
        .unwrap();
    assert!(grades >= 1);
    let count: u64 = text
        .lines()
        .find_map(|l| l.strip_prefix("afg_grade_seconds_count "))
        .expect("latency histogram count")
        .parse()
        .unwrap();
    assert!(count >= 1, "grade latency histogram must not be empty");
    assert!(
        text.contains("afg_grade_seconds_bucket{le=\"+Inf\"}"),
        "{text}"
    );
    // Per-stage latency histograms fire even without a trace installed.
    assert!(
        text.contains("afg_stage_seconds_bucket{stage=\"parse\","),
        "{text}"
    );
}

#[test]
fn tracing_off_and_on_grade_byte_identically() {
    let (_on_handle, mut on) = boot(ServiceConfig::default());
    let (_off_handle, mut off) = boot(ServiceConfig {
        tracing: false,
        ..ServiceConfig::default()
    });
    register(&mut on);
    register(&mut off);

    let body = Json::object([("source", Json::str(BUGGY))]);
    let (on_status, on_headers, on_text) = on
        .request_raw("POST", "/problems/compDeriv/grade", Some(&body))
        .unwrap();
    let (off_status, off_headers, off_text) = off
        .request_raw("POST", "/problems/compDeriv/grade", Some(&body))
        .unwrap();
    assert_eq!(on_status, 200);
    assert_eq!(off_status, 200);
    assert!(header(&on_headers, "x-afg-trace-id").is_some());
    assert!(
        header(&off_headers, "x-afg-trace-id").is_none(),
        "tracing off must not mint trace IDs"
    );

    // Tracing must be byte-invisible to grading: after stripping the
    // genuinely run-dependent fields — wall-clock `elapsed_ms` at every
    // nesting level (the response, the feedback, its search stats) — the
    // serialized response bodies are identical.
    fn strip_elapsed(json: Json) -> Json {
        match json {
            Json::Object(pairs) => Json::Object(
                pairs
                    .into_iter()
                    .filter(|(key, _)| key != "elapsed_ms")
                    .map(|(key, value)| (key, strip_elapsed(value)))
                    .collect(),
            ),
            Json::Array(items) => Json::Array(items.into_iter().map(strip_elapsed).collect()),
            other => other,
        }
    }
    assert_eq!(
        strip_elapsed(parse_json(&on_text).unwrap()).to_string(),
        strip_elapsed(parse_json(&off_text).unwrap()).to_string()
    );

    // And the untraced daemon's ring stays empty.
    let (_, traces) = off.get("/debug/traces").unwrap();
    assert_eq!(
        traces
            .get("traces")
            .and_then(Json::as_array)
            .map(|t| t.len()),
        Some(0)
    );
}
