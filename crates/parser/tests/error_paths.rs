//! Table-driven contract for the parser's error paths: malformed
//! submissions — truncated tokens, unbalanced delimiters, huge literals,
//! edge bytes — must come back as structured [`ParseError`]s with
//! *stable* messages (the feedback service surfaces them verbatim to
//! students, and the fuzzer dedups crashes by message), never as panics.

use afg_parser::parse_program;

/// `(case, source, expected full error display)`.
const REJECTED: &[(&str, &str, &str)] = &[
    (
        "truncated_def",
        "def ",
        "syntax error at line 1, column 1: expected function name after 'def'",
    ),
    (
        "truncated_params",
        "def f(",
        "syntax error at line 1, column 1: unexpected end of input inside brackets",
    ),
    (
        "def_missing_colon",
        "def f_int(x)\n    return x\n",
        "syntax error at line 1, column 13: expected ':'",
    ),
    (
        "unbalanced_paren",
        "def f_int(x):\n    return (x\n",
        "syntax error at line 2, column 1: unexpected end of input inside brackets",
    ),
    (
        "unbalanced_bracket",
        "def f_int(x):\n    return [1, 2\n",
        "syntax error at line 2, column 1: unexpected end of input inside brackets",
    ),
    (
        "stray_close_paren",
        "def f_int(x):\n    return x)\n",
        "syntax error at line 2, column 13: expected end of line",
    ),
    (
        "huge_int_literal",
        "def f_int(x):\n    return 99999999999999999999999999\n",
        "syntax error at line 2, column 12: integer literal out of range",
    ),
    (
        "float_literal",
        "def f_int(x):\n    return 1.5\n",
        "syntax error at line 2, column 12: floating point literals are not supported in MPY",
    ),
    (
        "unterminated_string",
        "def f_str(s):\n    return \"abc\n",
        "syntax error at line 2, column 12: unterminated string literal",
    ),
    (
        "inconsistent_indent",
        "def f_int(x):\n  return x\n    return x\n",
        "syntax error at line 3, column 1: unexpected token Indent",
    ),
    (
        "elif_without_if",
        "def f_int(x):\n    elif x:\n        return x\n",
        "syntax error at line 2, column 5: unexpected token Keyword(Elif)",
    ),
    (
        "assign_to_literal",
        "def f_int(x):\n    3 = x\n",
        "syntax error at line 2, column 1: invalid assignment target",
    ),
    (
        "unknown_operator_char",
        "def f_int(x):\n    return x @ 2\n",
        "syntax error at line 2, column 14: unexpected character '@'",
    ),
    (
        "non_ascii_identifier_byte",
        "def f_int(x):\n    return x\u{e9}\n",
        "syntax error at line 2, column 13: unexpected character '\u{e9}'",
    ),
];

#[test]
fn malformed_submissions_return_stable_structured_errors() {
    for (case, source, expected) in REJECTED {
        let err = parse_program(source)
            .err()
            .unwrap_or_else(|| panic!("{case}: expected a parse error"));
        assert_eq!(&err.to_string(), expected, "case {case}");
        // Structured fields stay populated — the service keys on them.
        assert!(err.line >= 1, "case {case}: line is 1-based");
    }
}

#[test]
fn edge_bytes_never_panic() {
    // NUL bytes, lone control characters, BOMs, and replacement
    // characters (what `from_utf8_lossy` turns invalid UTF-8 into) must
    // all be parse-or-reject, never a panic.
    let probes = [
        "\u{0}",
        "def f_int(x):\n    return x\u{0}\n",
        "\u{feff}def f_int(x):\n    return x\n",
        "def f_int(x):\n    return \u{fffd}\n",
        "\r\n\r\n",
        "def f_int(x):\r\n    return x\r\n",
    ];
    for probe in probes {
        let _ = parse_program(probe);
    }
}

#[test]
fn accepted_edge_cases_stay_accepted() {
    // Inputs that look suspicious but are valid MPY — pinning these keeps
    // the rejection table honest.
    for source in [
        "",
        "# only a comment\n",
        "def f_int(x):\n\treturn x\n", // tabs are legal indentation
    ] {
        assert!(
            parse_program(source).is_ok(),
            "expected acceptance: {source:?}"
        );
    }
}
