//! Classroom simulation: generate a synthetic batch of student submissions
//! for one assignment, grade all of them, and compare the feedback coverage
//! with the test-case baseline the paper argues against.
//!
//! ```text
//! cargo run --release --example classroom_simulation
//! ```

use autofeedback::baseline::TestCaseGrader;
use autofeedback::corpus::{generate_corpus, problems, CorpusSpec, Origin};
use autofeedback::{GradeOutcome, GraderConfig};

fn main() {
    let problem = problems::iter_power();
    let grader = problem.autograder(GraderConfig::fast());
    let baseline = TestCaseGrader::new(
        problem.reference,
        problem.entry,
        problem.test_inputs.clone(),
    )
    .expect("reference parses");

    let corpus = generate_corpus(&problem, &CorpusSpec::table1_like(30, 2024));
    println!(
        "Generated {} submissions for {}",
        corpus.len(),
        problem.name
    );
    println!(
        "Bounded equivalence oracle covers {} inputs; the baseline runs {} test cases.\n",
        grader.oracle().valid_input_count(),
        baseline.num_tests()
    );

    let mut syntax = 0;
    let mut correct = 0;
    let mut fixed = 0;
    let mut unfixed = 0;
    let mut baseline_passed_but_wrong = 0;

    for submission in &corpus {
        match grader.grade_source(&submission.source) {
            GradeOutcome::SyntaxError(_) => syntax += 1,
            GradeOutcome::Correct => correct += 1,
            GradeOutcome::Feedback(feedback) => {
                fixed += 1;
                if fixed <= 3 {
                    println!(
                        "--- feedback for a {} submission ---\n{}",
                        origin_name(submission.origin),
                        feedback
                    );
                }
                // Does the sparse test suite even notice the bug?
                if baseline.grade_source(&submission.source).passed() {
                    baseline_passed_but_wrong += 1;
                }
            }
            GradeOutcome::CannotFix | GradeOutcome::Timeout => unfixed += 1,
        }
    }

    println!("Results: {syntax} syntax errors, {correct} correct, {fixed} repaired, {unfixed} not repairable");
    println!(
        "{baseline_passed_but_wrong} incorrect submissions pass every baseline test case — they would have \
         received no feedback at all from test-case grading."
    );
}

fn origin_name(origin: Origin) -> &'static str {
    match origin {
        Origin::Correct => "correct",
        Origin::Mutated(_) => "mutated",
        Origin::Conceptual => "conceptual-error",
        Origin::Trivial => "trivial",
        Origin::SyntaxError => "syntax-error",
    }
}
