//! Experiment harness shared by the Table 1 / Figure 14 binaries and the
//! benches.
//!
//! The entry point is [`run_problem`]: generate a seeded corpus for one
//! benchmark problem, grade every submission through the parallel
//! [`BatchGrader`] engine, and aggregate the counters the paper reports
//! (total attempts, syntax errors, test set, correct, incorrect, feedback
//! generated, average and median grading time).  Results come back in
//! submission order regardless of worker count; with a deterministic
//! (candidate-count-bounded) search budget the aggregates are identical
//! between serial and parallel runs, while wall-clock time budgets (as in
//! [`experiment_config`]) can flip a borderline submission to `Timeout`
//! under contention.

pub mod classroom;

use std::fmt;
use std::time::Duration;

use afg_core::{BatchGrader, BatchReport, GradeOutcome, GraderConfig, SweepMode};
use afg_corpus::{generate_corpus, CorpusSpec, Problem};
use afg_eml::ErrorModel;
use afg_synth::{Backend, SynthesisStats};

/// How one submission was graded, with timing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GradeRecord {
    /// Which bucket the submission landed in.
    pub kind: GradeKind,
    /// Number of corrections, when feedback was generated.
    pub corrections: Option<usize>,
    /// Wall-clock grading time (includes the parse for syntax errors).
    pub elapsed: Duration,
    /// The synthesizer's counters (present for `Fixed` submissions, whose
    /// outcome carries them; includes the winning strategy name under the
    /// portfolio backend).
    pub stats: Option<SynthesisStats>,
}

/// The buckets of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GradeKind {
    /// Fails to parse; excluded from the test set.
    SyntaxError,
    /// Equivalent to the reference.
    Correct,
    /// Incorrect and repaired by the error model (feedback generated).
    Fixed,
    /// Incorrect and not repairable with the error model.
    NotFixed,
    /// The synthesis budget was exhausted.
    Timeout,
}

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Benchmark name (e.g. `compDeriv-6.00x`).
    pub name: String,
    /// Statement count of the reference implementation (stand-in for the
    /// paper's median student LOC, which needs the real submissions).
    pub median_loc: usize,
    /// Total generated attempts.
    pub total_attempts: usize,
    /// Attempts with syntax errors.
    pub syntax_errors: usize,
    /// Attempts that parse (the graded test set).
    pub test_set: usize,
    /// Correct attempts.
    pub correct: usize,
    /// Incorrect attempts.
    pub incorrect: usize,
    /// Incorrect attempts for which feedback was generated.
    pub generated_feedback: usize,
    /// Attempts whose search budget ran out.
    pub timeouts: usize,
    /// SAT conflicts summed over the fixed attempts.
    pub sat_conflicts: u64,
    /// SAT propagations summed over the fixed attempts.
    pub sat_propagations: u64,
    /// SAT learnt clauses summed over the fixed attempts.
    pub sat_learnts: u64,
    /// SAT restarts summed over the fixed attempts.
    pub restarts: u64,
    /// Verification sweeps summed over the fixed attempts.
    pub sweeps: u64,
    /// Candidate executions across those sweeps (one per
    /// (assignment, input) pair) — the denominator of ns-per-input.
    pub sweep_inputs: u64,
    /// Wall-clock spent inside verification sweeps over the fixed
    /// attempts — the numerator of ns-per-input.
    pub verify_elapsed: Duration,
    /// Winning-strategy histogram over the fixed attempts (strategy name →
    /// count), sorted by name.  Under single-strategy backends this has one
    /// entry; under the portfolio it shows who actually won the races.
    pub winners: Vec<(String, usize)>,
    /// Mean grading time over the incorrect attempts.
    pub average_time: Duration,
    /// Median grading time over the incorrect attempts.
    pub median_time: Duration,
}

impl Table1Row {
    /// Verification-sweep throughput: nanoseconds of verification wall
    /// per candidate execution (0.0 when the row ran no sweeps).
    pub fn sweep_ns_per_input(&self) -> f64 {
        if self.sweep_inputs == 0 {
            0.0
        } else {
            self.verify_elapsed.as_nanos() as f64 / self.sweep_inputs as f64
        }
    }

    /// Percentage of incorrect attempts with generated feedback.
    pub fn feedback_percent(&self) -> f64 {
        if self.incorrect == 0 {
            0.0
        } else {
            100.0 * self.generated_feedback as f64 / self.incorrect as f64
        }
    }

    /// Formats the row the way the paper's Table 1 lays it out.
    pub fn format_row(&self) -> String {
        format!(
            "{:<22} {:>4} {:>6} {:>7} {:>8} {:>8} {:>9} {:>14} {:>9.2}s {:>9.2}s",
            self.name,
            self.median_loc,
            self.total_attempts,
            self.syntax_errors,
            self.test_set,
            self.correct,
            self.incorrect,
            format!(
                "{} ({:.1}%)",
                self.generated_feedback,
                self.feedback_percent()
            ),
            self.average_time.as_secs_f64(),
            self.median_time.as_secs_f64(),
        )
    }

    /// The header matching [`Table1Row::format_row`].
    pub fn header() -> String {
        format!(
            "{:<22} {:>4} {:>6} {:>7} {:>8} {:>8} {:>9} {:>14} {:>10} {:>10}",
            "Benchmark",
            "LOC",
            "Total",
            "Syntax",
            "TestSet",
            "Correct",
            "Incorrect",
            "Feedback",
            "AvgTime",
            "MedTime"
        )
    }

    /// The counter fields (everything except the timing columns).  Serial
    /// and parallel runs of the same corpus must agree on these exactly.
    pub fn counters(&self) -> (usize, usize, usize, usize, usize, usize, usize) {
        (
            self.total_attempts,
            self.syntax_errors,
            self.test_set,
            self.correct,
            self.incorrect,
            self.generated_feedback,
            self.timeouts,
        )
    }
}

impl afg_json::ToJson for Table1Row {
    fn to_json(&self) -> afg_json::Json {
        use afg_json::Json;
        let winners = Json::Object(
            self.winners
                .iter()
                .map(|(name, count)| (name.clone(), count.to_json()))
                .collect(),
        );
        Json::object([
            ("name", Json::str(&self.name)),
            ("median_loc", self.median_loc.to_json()),
            ("total_attempts", self.total_attempts.to_json()),
            ("syntax_errors", self.syntax_errors.to_json()),
            ("test_set", self.test_set.to_json()),
            ("correct", self.correct.to_json()),
            ("incorrect", self.incorrect.to_json()),
            ("generated_feedback", self.generated_feedback.to_json()),
            ("feedback_percent", self.feedback_percent().to_json()),
            ("timeouts", self.timeouts.to_json()),
            ("sat_conflicts", self.sat_conflicts.to_json()),
            ("sat_propagations", self.sat_propagations.to_json()),
            ("sat_learnts", self.sat_learnts.to_json()),
            ("restarts", self.restarts.to_json()),
            ("sweeps", self.sweeps.to_json()),
            ("sweep_inputs", self.sweep_inputs.to_json()),
            ("verify_ms", self.verify_elapsed.to_json()),
            ("sweep_ns_per_input", self.sweep_ns_per_input().to_json()),
            ("winners", winners),
            ("average_time_ms", self.average_time.to_json()),
            ("median_time_ms", self.median_time.to_json()),
        ])
    }
}

impl afg_json::FromJson for Table1Row {
    fn from_json(json: &afg_json::Json) -> Result<Table1Row, afg_json::JsonError> {
        use afg_json::{Json, JsonError};

        let count = |name: &str| {
            json.get(name)
                .and_then(Json::as_i64)
                .and_then(|v| usize::try_from(v).ok())
                .ok_or_else(|| JsonError::missing_field("table1 row", name))
        };
        let duration = |name: &str| {
            json.get(name)
                .and_then(Json::as_f64)
                .map(|ms| Duration::from_secs_f64(ms.max(0.0) / 1e3))
                .ok_or_else(|| JsonError::missing_field("table1 row", name))
        };
        let wide = |name: &str| {
            json.get(name)
                .and_then(Json::as_i64)
                .and_then(|v| u64::try_from(v).ok())
                .ok_or_else(|| JsonError::missing_field("table1 row", name))
        };
        let mut winners: Vec<(String, usize)> = match json.get("winners") {
            Some(Json::Object(pairs)) => pairs
                .iter()
                .filter_map(|(name, value)| {
                    value
                        .as_i64()
                        .and_then(|v| usize::try_from(v).ok())
                        .map(|count| (name.clone(), count))
                })
                .collect(),
            _ => Vec::new(),
        };
        winners.sort();
        Ok(Table1Row {
            name: json
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| JsonError::missing_field("table1 row", "name"))?
                .to_string(),
            median_loc: count("median_loc")?,
            total_attempts: count("total_attempts")?,
            syntax_errors: count("syntax_errors")?,
            test_set: count("test_set")?,
            correct: count("correct")?,
            incorrect: count("incorrect")?,
            generated_feedback: count("generated_feedback")?,
            timeouts: count("timeouts")?,
            sat_conflicts: wide("sat_conflicts")?,
            sat_propagations: wide("sat_propagations")?,
            sat_learnts: wide("sat_learnts")?,
            restarts: wide("restarts")?,
            // Absent in pre-sweep documents: read as 0.
            sweeps: wide("sweeps").unwrap_or(0),
            sweep_inputs: wide("sweep_inputs").unwrap_or(0),
            verify_elapsed: duration("verify_ms").unwrap_or(Duration::ZERO),
            winners,
            average_time: duration("average_time_ms")?,
            median_time: duration("median_time_ms")?,
        })
    }
}

/// The grading budget used by the experiment binaries: up to four coordinated
/// corrections (the paper's Figure 14(a) tail) with a two-second per-submission
/// budget.
pub fn experiment_config() -> GraderConfig {
    GraderConfig {
        synthesis: afg_synth::SynthesisConfig {
            max_cost: 4,
            max_candidates: 20_000,
            time_budget: std::time::Duration::from_secs(2),
        },
        ..GraderConfig::fast()
    }
}

fn record_from_outcome(outcome: GradeOutcome, elapsed: Duration) -> GradeRecord {
    let (kind, corrections, stats) = match outcome {
        GradeOutcome::SyntaxError(_) => (GradeKind::SyntaxError, None, None),
        GradeOutcome::Correct => (GradeKind::Correct, None, None),
        GradeOutcome::Feedback(feedback) => {
            (GradeKind::Fixed, Some(feedback.cost), Some(feedback.stats))
        }
        GradeOutcome::CannotFix => (GradeKind::NotFixed, None, None),
        GradeOutcome::Timeout => (GradeKind::Timeout, None, None),
    };
    GradeRecord {
        kind,
        corrections,
        elapsed,
        stats,
    }
}

/// Grades a whole corpus for one problem on an explicit engine, optionally
/// overriding the error model (used by the Figure 14(b)/(c) sweeps).
/// Returns the aggregated Table 1 row, the per-submission records (in
/// corpus order) and the engine's batch report.
pub fn run_problem_on(
    problem: &Problem,
    model: Option<ErrorModel>,
    spec: &CorpusSpec,
    config: GraderConfig,
    engine: &BatchGrader,
) -> (Table1Row, Vec<GradeRecord>, BatchReport) {
    let mut grader = problem.autograder(config);
    if let Some(model) = model {
        grader.set_model(model);
    }
    let corpus = generate_corpus(problem, spec);
    let sources: Vec<&str> = corpus.iter().map(|s| s.source.as_str()).collect();
    let report = engine.grade_sources(&grader, &sources);
    let records: Vec<GradeRecord> = report
        .items
        .iter()
        .map(|item| record_from_outcome(item.outcome.clone(), item.elapsed))
        .collect();
    (aggregate(problem, &records), records, report)
}

/// Grades a whole corpus with an optional model override on the default
/// (machine-sized) worker pool.
pub fn run_problem_with_model(
    problem: &Problem,
    model: Option<ErrorModel>,
    spec: &CorpusSpec,
    config: GraderConfig,
) -> (Table1Row, Vec<GradeRecord>) {
    let (row, records, _) = run_problem_on(problem, model, spec, config, &BatchGrader::default());
    (row, records)
}

/// Grades a whole corpus for one problem with its own error model.
pub fn run_problem(
    problem: &Problem,
    spec: &CorpusSpec,
    config: GraderConfig,
) -> (Table1Row, Vec<GradeRecord>) {
    run_problem_with_model(problem, None, spec, config)
}

fn aggregate(problem: &Problem, records: &[GradeRecord]) -> Table1Row {
    let syntax_errors = records
        .iter()
        .filter(|r| r.kind == GradeKind::SyntaxError)
        .count();
    let correct = records
        .iter()
        .filter(|r| r.kind == GradeKind::Correct)
        .count();
    let fixed = records
        .iter()
        .filter(|r| r.kind == GradeKind::Fixed)
        .count();
    let timeouts = records
        .iter()
        .filter(|r| r.kind == GradeKind::Timeout)
        .count();
    let test_set = records.len() - syntax_errors;
    let incorrect = test_set - correct;

    // Solver work and winning strategies over the fixed submissions.
    let mut sat_conflicts = 0u64;
    let mut sat_propagations = 0u64;
    let mut sat_learnts = 0u64;
    let mut restarts = 0u64;
    let mut sweeps = 0u64;
    let mut sweep_inputs = 0u64;
    let mut verify_elapsed = Duration::ZERO;
    let mut winner_counts: std::collections::BTreeMap<String, usize> =
        std::collections::BTreeMap::new();
    for stats in records.iter().filter_map(|r| r.stats.as_ref()) {
        sat_conflicts += stats.sat_conflicts;
        sat_propagations += stats.sat_propagations;
        sat_learnts += stats.sat_learnts;
        restarts += stats.restarts;
        sweeps += stats.sweeps;
        sweep_inputs += stats.sweep_inputs;
        verify_elapsed += stats.verify_elapsed;
        if !stats.strategy.is_empty() {
            *winner_counts.entry(stats.strategy.to_string()).or_default() += 1;
        }
    }
    let winners: Vec<(String, usize)> = winner_counts.into_iter().collect();

    let mut incorrect_times: Vec<Duration> = records
        .iter()
        .filter(|r| {
            matches!(
                r.kind,
                GradeKind::Fixed | GradeKind::NotFixed | GradeKind::Timeout
            )
        })
        .map(|r| r.elapsed)
        .collect();
    incorrect_times.sort_unstable();
    let average_time = if incorrect_times.is_empty() {
        Duration::ZERO
    } else {
        incorrect_times.iter().sum::<Duration>() / incorrect_times.len() as u32
    };
    let median_time = incorrect_times
        .get(incorrect_times.len() / 2)
        .copied()
        .unwrap_or(Duration::ZERO);

    Table1Row {
        name: problem.name.to_string(),
        median_loc: problem.reference_loc(),
        total_attempts: records.len(),
        syntax_errors,
        test_set,
        correct,
        incorrect,
        generated_feedback: fixed,
        timeouts,
        sat_conflicts,
        sat_propagations,
        sat_learnts,
        restarts,
        sweeps,
        sweep_inputs,
        verify_elapsed,
        winners,
        average_time,
        median_time,
    }
}

/// A seeded, Zipf-like request schedule over `population` items: item at
/// rank `r` (0-based) is drawn with weight `1 / (r + 1)` — the skew of real
/// classroom traffic, where a handful of canonical solutions and canonical
/// mistakes dominate the stream.  Used by the `loadgen` driver.
pub fn zipf_schedule(population: usize, requests: usize, seed: u64) -> Vec<usize> {
    assert!(population > 0, "empty population");
    let mut rng = afg_corpus::rng::StdRng::seed_from_u64(seed);
    let cumulative: Vec<f64> = (0..population)
        .scan(0.0f64, |acc, rank| {
            *acc += 1.0 / (rank as f64 + 1.0);
            Some(*acc)
        })
        .collect();
    let total = *cumulative.last().expect("non-empty");
    (0..requests)
        .map(|_| {
            let u = ((rng.next_u64() >> 11) as f64) / ((1u64 << 53) as f64) * total;
            cumulative.partition_point(|&c| c <= u).min(population - 1)
        })
        .collect()
}

/// Histogram of the number of corrections over the fixed submissions
/// (Figure 14(a)).
pub fn corrections_histogram(records: &[GradeRecord], max_bucket: usize) -> Vec<usize> {
    let mut histogram = vec![0usize; max_bucket + 1];
    for record in records {
        if let Some(cost) = record.corrections {
            let bucket = cost.min(max_bucket);
            histogram[bucket] += 1;
        }
    }
    histogram
}

/// Options shared by the experiment binaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliOptions {
    /// Number of generated attempts per benchmark.
    pub attempts: usize,
    /// Corpus RNG seed.
    pub seed: u64,
    /// Worker-pool size; 0 selects the machine's available parallelism.
    pub workers: usize,
    /// Emit machine-readable JSON instead of the human table (`table1`).
    pub json: bool,
    /// Which synthesis back end grades the corpus.
    pub backend: Backend,
    /// How verification sweeps run candidates: on the compiled bytecode VM
    /// (default) or the tree-walking interpreter (the A/B baseline).
    pub sweep: SweepMode,
    /// Candidate-budget override (`None` = the binary's default config).
    pub max_candidates: Option<usize>,
    /// Wall-clock budget override in milliseconds.
    pub time_budget_ms: Option<u64>,
}

impl CliOptions {
    /// Parses the shared experiment options, printing usage and exiting the
    /// process on `--help` (exit 0) or a malformed command line (exit 2).
    /// The single entry point used by the experiment binaries.
    pub fn parse_or_exit(args: &[String], default_attempts: usize) -> CliOptions {
        match parse_cli_options(args, default_attempts) {
            Ok(options) => options,
            Err(err) if err.is_help() => {
                println!("{}", usage());
                std::process::exit(0);
            }
            Err(err) => {
                eprintln!("{err}");
                std::process::exit(2);
            }
        }
    }

    /// Applies the backend, sweep mode and any budget overrides to `config`.
    pub fn apply_to(&self, config: &mut GraderConfig) {
        config.backend = self.backend;
        config.equivalence.sweep = self.sweep;
        if let Some(max_candidates) = self.max_candidates {
            config.synthesis.max_candidates = max_candidates;
        }
        if let Some(ms) = self.time_budget_ms {
            config.synthesis.time_budget = Duration::from_millis(ms);
        }
    }

    /// Builds the grading engine the options describe.
    pub fn engine(&self) -> BatchGrader {
        if self.workers == 0 {
            BatchGrader::default()
        } else {
            BatchGrader::new(self.workers)
        }
    }
}

/// A command-line parsing failure: the offending argument and why — or an
/// explicit `--help` request, which binaries print to stdout and exit 0.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError {
    message: String,
    help: bool,
}

impl CliError {
    fn new(message: String) -> CliError {
        CliError {
            message,
            help: false,
        }
    }

    /// Whether the user explicitly asked for usage (`--help` / `-h`).
    pub fn is_help(&self) -> bool {
        self.help
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}\n\n{}", self.message, usage())
    }
}

impl std::error::Error for CliError {}

/// The usage string shared by the experiment binaries.
pub fn usage() -> String {
    "usage: <binary> [--attempts N] [--seed N] [--workers N] [--json]\n\
     \x20              [--backend cegis|enum|portfolio] [--sweep compiled|tree]\n\
     \x20              [--max-candidates N] [--time-budget-ms N]\n\
     \n\
     --attempts N   submissions generated per benchmark\n\
     --seed N       corpus RNG seed (corpora are reproducible)\n\
     --workers N    grading worker threads (default: all cores)\n\
     --json         emit machine-readable JSON (table1)\n\
     --backend B    synthesis back end: cegis (default), enum, or portfolio\n\
     \x20              (portfolio races the other two and keeps the first proof)\n\
     --sweep M      verification sweeps: compiled (default, bytecode VM) or\n\
     \x20              tree (interpreter baseline; outcomes are identical)\n\
     --max-candidates N   per-submission candidate budget override\n\
     --time-budget-ms N   per-submission wall-clock budget override"
        .to_string()
}

/// Parses the standard harness command-line options.
///
/// Unlike a lenient parser, this rejects unknown flags and flags with a
/// missing or unparsable value — silently ignoring a typo like
/// `--atempts 500` would run a 40-attempt experiment and report it as a
/// 500-attempt one.
///
/// # Errors
///
/// Returns a [`CliError`] naming the offending argument; binaries print it
/// (which includes the usage text) and exit non-zero.
pub fn parse_cli_options(args: &[String], default_attempts: usize) -> Result<CliOptions, CliError> {
    let mut options = CliOptions {
        attempts: default_attempts,
        seed: 20130616, // PLDI 2013's first day.
        workers: 0,
        json: false,
        backend: Backend::Cegis,
        sweep: SweepMode::default(),
        max_candidates: None,
        time_budget_ms: None,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let parse_value = |flag: &str, value: Option<&String>| -> Result<u64, CliError> {
            let value =
                value.ok_or_else(|| CliError::new(format!("option '{flag}' requires a value")))?;
            value.parse().map_err(|_| {
                CliError::new(format!(
                    "option '{flag}' expects a non-negative integer, got '{value}'"
                ))
            })
        };
        match arg.as_str() {
            "--attempts" => options.attempts = parse_value(arg, iter.next())? as usize,
            "--seed" => options.seed = parse_value(arg, iter.next())?,
            "--workers" => options.workers = parse_value(arg, iter.next())? as usize,
            "--json" => options.json = true,
            "--max-candidates" => {
                options.max_candidates = Some(parse_value(arg, iter.next())? as usize)
            }
            "--time-budget-ms" => options.time_budget_ms = Some(parse_value(arg, iter.next())?),
            "--backend" => {
                let value = iter
                    .next()
                    .ok_or_else(|| CliError::new("option '--backend' requires a value".into()))?;
                options.backend = Backend::parse(value).ok_or_else(|| {
                    CliError::new(format!(
                        "option '--backend' expects cegis, enum or portfolio, got '{value}'"
                    ))
                })?;
            }
            "--sweep" => {
                let value = iter
                    .next()
                    .ok_or_else(|| CliError::new("option '--sweep' requires a value".into()))?;
                options.sweep = SweepMode::parse(value).ok_or_else(|| {
                    CliError::new(format!(
                        "option '--sweep' expects compiled or tree, got '{value}'"
                    ))
                })?;
            }
            "--help" | "-h" => {
                return Err(CliError {
                    message: "help requested".to_string(),
                    help: true,
                });
            }
            other => {
                return Err(CliError::new(format!("unknown option '{other}'")));
            }
        }
    }
    Ok(options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use afg_corpus::problems;

    #[test]
    fn grades_a_small_corpus_end_to_end() {
        let problem = problems::iter_power();
        let spec = CorpusSpec::table1_like(16, 5);
        let (row, records) = run_problem(&problem, &spec, GraderConfig::fast());
        assert_eq!(row.total_attempts, 16);
        assert_eq!(row.syntax_errors + row.test_set, 16);
        assert_eq!(row.correct + row.incorrect, row.test_set);
        assert!(row.generated_feedback <= row.incorrect);
        assert_eq!(records.len(), 16);
        // Correct submissions exist in the mix, and some incorrect ones are fixed.
        assert!(row.correct > 0);
        assert!(row.generated_feedback > 0, "row: {row:?}");
    }

    /// The acceptance test of the parallel engine: grading the 64-submission
    /// `iterPower` corpus with a worker pool produces byte-identical
    /// aggregates to the serial path, and on a multi-core machine the pool
    /// is measurably faster.
    #[test]
    fn parallel_and_serial_grading_agree_on_the_iter_power_corpus() {
        let problem = problems::iter_power();
        let spec = CorpusSpec::table1_like(64, 7);
        // Deterministic search budget: bound by candidate count, not wall
        // clock, so CPU contention between the two runs cannot flip a
        // submission between Fixed and Timeout.
        let config = GraderConfig {
            synthesis: afg_synth::SynthesisConfig {
                max_cost: 3,
                max_candidates: 600,
                time_budget: Duration::from_secs(600),
            },
            ..GraderConfig::fast()
        };

        let serial_engine = BatchGrader::new(1);
        let parallel_engine = BatchGrader::new(4);

        // Timing comparisons on shared CI runners are noisy (sibling tests
        // contend for the same cores), so the speedup check gets a few
        // attempts; the aggregate-identity checks are deterministic and are
        // asserted on every attempt.
        // The hard speedup assertion is part of this refactor's acceptance
        // criteria, but it needs the pool to actually out-muscle the serial
        // baseline, which on shared CI runners (other test binaries
        // contending for 2 cores) is not guaranteed; require a machine with
        // at least as many cores as pool workers and give it 3 attempts.
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let attempts = if cores >= 4 { 3 } else { 1 };
        let mut timings = Vec::new();
        let mut parallel_won = false;
        for _ in 0..attempts {
            let (serial_row, serial_records, serial_report) =
                run_problem_on(&problem, None, &spec, config.clone(), &serial_engine);
            let (parallel_row, parallel_records, parallel_report) =
                run_problem_on(&problem, None, &spec, config.clone(), &parallel_engine);

            // Identical aggregates (modulo timing columns) and identical
            // per-submission buckets, in order.
            assert_eq!(serial_row.counters(), parallel_row.counters());
            assert_eq!(serial_records.len(), parallel_records.len());
            for (s, p) in serial_records.iter().zip(&parallel_records) {
                assert_eq!(s.kind, p.kind);
                assert_eq!(s.corrections, p.corrections);
            }
            assert_eq!(serial_report.worker_stats.len(), 1);
            assert!(parallel_report.worker_stats.len() > 1);
            assert_eq!(parallel_report.totals().graded, 64);

            timings.push((serial_report.wall_time, parallel_report.wall_time));
            if parallel_report.wall_time < serial_report.wall_time {
                parallel_won = true;
                break;
            }
        }

        // Speedup is only observable with real cores underneath; on a
        // constrained machine the parallel pool degenerates gracefully.
        if cores >= 4 {
            assert!(
                parallel_won,
                "with {cores} cores, 4 workers must beat serial in one of \
                 {attempts} attempts (serial, parallel): {timings:?}",
            );
        } else {
            eprintln!("fewer than 4 cores: skipping the speedup assertion ({timings:?})");
        }
    }

    #[test]
    fn histogram_buckets_by_cost() {
        let records = vec![
            GradeRecord {
                kind: GradeKind::Fixed,
                corrections: Some(1),
                elapsed: Duration::ZERO,
                stats: None,
            },
            GradeRecord {
                kind: GradeKind::Fixed,
                corrections: Some(2),
                elapsed: Duration::ZERO,
                stats: None,
            },
            GradeRecord {
                kind: GradeKind::Fixed,
                corrections: Some(1),
                elapsed: Duration::ZERO,
                stats: None,
            },
            GradeRecord {
                kind: GradeKind::NotFixed,
                corrections: None,
                elapsed: Duration::ZERO,
                stats: None,
            },
            GradeRecord {
                kind: GradeKind::Fixed,
                corrections: Some(7),
                elapsed: Duration::ZERO,
                stats: None,
            },
        ];
        let histogram = corrections_histogram(&records, 4);
        assert_eq!(histogram, vec![0, 2, 1, 0, 1]);
    }

    #[test]
    fn table_row_formatting_and_percentages() {
        let row = Table1Row {
            name: "compDeriv-6.00x".into(),
            median_loc: 8,
            total_attempts: 100,
            syntax_errors: 25,
            test_set: 75,
            correct: 30,
            incorrect: 45,
            generated_feedback: 30,
            timeouts: 2,
            sat_conflicts: 0,
            sat_propagations: 0,
            sat_learnts: 0,
            restarts: 0,
            sweeps: 0,
            sweep_inputs: 0,
            verify_elapsed: Duration::ZERO,
            winners: Vec::new(),
            average_time: Duration::from_millis(120),
            median_time: Duration::from_millis(80),
        };
        assert!((row.feedback_percent() - 66.666).abs() < 0.1);
        let formatted = row.format_row();
        assert!(formatted.contains("compDeriv-6.00x"));
        assert!(formatted.contains("66.7%"));
        assert!(Table1Row::header().contains("Feedback"));
    }

    #[test]
    fn table1_rows_round_trip_through_json() {
        use afg_json::{FromJson, Json, ToJson};
        let row = Table1Row {
            name: "iterPower-6.00x".into(),
            median_loc: 4,
            total_attempts: 64,
            syntax_errors: 16,
            test_set: 48,
            correct: 20,
            incorrect: 28,
            generated_feedback: 21,
            timeouts: 1,
            sat_conflicts: 420,
            sat_propagations: 99_000,
            sat_learnts: 77,
            restarts: 3,
            sweeps: 1_200,
            sweep_inputs: 48_000,
            verify_elapsed: Duration::from_millis(36),
            winners: vec![("cegis".to_string(), 18), ("enum".to_string(), 3)],
            average_time: Duration::from_millis(150),
            median_time: Duration::from_millis(90),
        };
        let doc = afg_json::parse_json(&row.to_json().to_string()).unwrap();
        assert_eq!(Table1Row::from_json(&doc).unwrap(), row);
        assert_eq!(
            doc.get("feedback_percent").and_then(Json::as_f64),
            Some(75.0)
        );
    }

    #[test]
    fn zipf_schedule_is_seeded_skewed_and_in_range() {
        let schedule = zipf_schedule(16, 4000, 9);
        assert_eq!(schedule.len(), 4000);
        assert!(schedule.iter().all(|&i| i < 16));
        assert_eq!(schedule, zipf_schedule(16, 4000, 9));
        assert_ne!(schedule, zipf_schedule(16, 4000, 10));
        // Rank 0 dominates rank 15 heavily (weights 1 vs 1/16).
        let count = |rank: usize| schedule.iter().filter(|&&i| i == rank).count();
        assert!(count(0) > 5 * count(15), "{} vs {}", count(0), count(15));
        // Even the tail is hit in 4000 draws.
        assert!(count(15) > 0);
    }

    #[test]
    fn cli_parsing_defaults_and_overrides() {
        let options = parse_cli_options(&[], 40).unwrap();
        assert_eq!(options.attempts, 40);
        assert_eq!(options.seed, 20130616);
        assert_eq!(options.workers, 0);
        assert!(!options.json);
        let json: Vec<String> = vec!["--json".into()];
        assert!(parse_cli_options(&json, 40).unwrap().json);
        let args: Vec<String> = ["--attempts", "12", "--seed", "99", "--workers", "2"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let options = parse_cli_options(&args, 40).unwrap();
        assert_eq!(options.attempts, 12);
        assert_eq!(options.seed, 99);
        assert_eq!(options.workers, 2);
        assert_eq!(options.engine().workers(), 2);
        assert_eq!(options.backend, Backend::Cegis);

        let backend: Vec<String> = vec!["--backend".into(), "portfolio".into()];
        assert_eq!(
            parse_cli_options(&backend, 40).unwrap().backend,
            Backend::Portfolio
        );

        // Sweep mode: compiled by default, tree as the A/B baseline, typos
        // rejected.
        assert_eq!(
            parse_cli_options(&[], 40).unwrap().sweep,
            SweepMode::Compiled
        );
        let tree: Vec<String> = vec!["--sweep".into(), "tree".into()];
        let options = parse_cli_options(&tree, 40).unwrap();
        assert_eq!(options.sweep, SweepMode::Tree);
        let mut config = experiment_config();
        options.apply_to(&mut config);
        assert_eq!(config.equivalence.sweep, SweepMode::Tree);
        let bad_sweep: Vec<String> = vec!["--sweep".into(), "jit".into()];
        let err = parse_cli_options(&bad_sweep, 40).unwrap_err();
        assert!(err.to_string().contains("compiled or tree"));
        let bad: Vec<String> = vec!["--backend".into(), "sketch".into()];
        let err = parse_cli_options(&bad, 40).unwrap_err();
        assert!(err.to_string().contains("cegis, enum or portfolio"));
        let missing: Vec<String> = vec!["--backend".into()];
        assert!(parse_cli_options(&missing, 40).is_err());

        // Budget overrides land in the grader config; absent flags leave
        // the binary's defaults untouched.
        let budget: Vec<String> = ["--max-candidates", "300000", "--time-budget-ms", "600000"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let options = parse_cli_options(&budget, 40).unwrap();
        let mut config = experiment_config();
        options.apply_to(&mut config);
        assert_eq!(config.synthesis.max_candidates, 300_000);
        assert_eq!(config.synthesis.time_budget, Duration::from_secs(600));
        let mut untouched = experiment_config();
        parse_cli_options(&[], 40).unwrap().apply_to(&mut untouched);
        assert_eq!(
            untouched.synthesis.max_candidates,
            experiment_config().synthesis.max_candidates
        );
    }

    #[test]
    fn cli_parsing_rejects_unknown_flags_and_missing_values() {
        let unknown: Vec<String> = vec!["--atempts".into(), "12".into()];
        let err = parse_cli_options(&unknown, 40).unwrap_err();
        assert!(err.to_string().contains("unknown option '--atempts'"));
        assert!(
            err.to_string().contains("usage:"),
            "error must carry usage text"
        );

        let missing: Vec<String> = vec!["--seed".into()];
        let err = parse_cli_options(&missing, 40).unwrap_err();
        assert!(err.to_string().contains("'--seed' requires a value"));
        assert!(!err.is_help());

        let help: Vec<String> = vec!["-h".into()];
        assert!(parse_cli_options(&help, 40).unwrap_err().is_help());

        let garbage: Vec<String> = vec!["--attempts".into(), "many".into()];
        let err = parse_cli_options(&garbage, 40).unwrap_err();
        assert!(err.to_string().contains("expects a non-negative integer"));

        // Positional junk is rejected too, not silently dropped.
        let positional: Vec<String> = vec!["12".into()];
        assert!(parse_cli_options(&positional, 40).is_err());
    }
}
