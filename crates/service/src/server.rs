//! The daemon: listener setup, I/O-mode dispatch and lifecycle.
//!
//! Two interchangeable I/O cores sit behind [`start`]:
//!
//! * **`IoMode::Epoll`** (default on Linux) — one reactor thread
//!   multiplexes every connection with `epoll` and nonblocking sockets
//!   ([`crate::reactor`]); `threads` CPU workers execute requests.  Many
//!   idle keep-alive sockets cost no threads.
//! * **`IoMode::Threads`** — the legacy thread-per-connection pool, kept
//!   for A/B comparison and non-Linux builds.
//!
//! Both modes share the incremental parser ([`crate::http`]), the router
//! ([`crate::router`]) and the wire encoder, so their responses are
//! byte-identical.

use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use afg_obs::TraceRing;

#[cfg(target_os = "linux")]
use crate::reactor;

use crate::http::{read_request, write_response, write_response_with, ReadOutcome, RequestParser};
use crate::registry::Registry;
use crate::router::{error_json, handle};

/// Which I/O core serves connections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoMode {
    /// Epoll reactor + CPU worker pool (Linux; falls back to `Threads`
    /// elsewhere).
    Epoll,
    /// Legacy blocking thread-per-connection pool.
    Threads,
}

impl IoMode {
    /// Parses `"epoll"` / `"threads"` (the `--io` flag values).
    pub fn parse(name: &str) -> Option<IoMode> {
        match name {
            "epoll" => Some(IoMode::Epoll),
            "threads" => Some(IoMode::Threads),
            _ => None,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            IoMode::Epoll => "epoll",
            IoMode::Threads => "threads",
        }
    }
}

impl Default for IoMode {
    fn default() -> IoMode {
        if cfg!(target_os = "linux") {
            IoMode::Epoll
        } else {
            IoMode::Threads
        }
    }
}

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Which I/O core serves connections (`--io`).
    pub io: IoMode,
    /// Worker threads.  Under `IoMode::Epoll` these are pure CPU workers
    /// executing parsed requests — connection count is independent of
    /// them.  Under `IoMode::Threads` each worker owns one connection at
    /// a time (keep-alive included), so this bounds concurrently served
    /// connections; excess connections queue.
    pub threads: usize,
    /// How long an idle keep-alive connection is held before it is closed
    /// (`--idle-timeout-ms`).  Both modes enforce it: the reactor via its
    /// timer wheel, the thread pool via the socket read timeout.
    pub keep_alive_timeout: Duration,
    /// Epoll mode only: how long a connection may take from its first
    /// request byte to the complete head + body before it is closed — the
    /// slow-loris guard (`--header-timeout-ms`).
    pub header_timeout: Duration,
    /// Epoll mode only: bounded depth of the parsed-request queue feeding
    /// the CPU workers; beyond it requests are shed with a 503
    /// (`--queue-depth`).
    pub queue_depth: usize,
    /// Epoll mode only: open-connection cap; accepts beyond it are shed
    /// with a 503 (`--max-connections`).
    pub max_connections: usize,
    /// Record a span tree per grade request (served at `/debug/traces`,
    /// echoed back as `X-Afg-Trace-Id`).  Tracing observes, it never
    /// steers: grade responses are byte-identical either way.
    pub tracing: bool,
    /// Grades at or above this wall-clock log their span tree to stderr;
    /// `None` disables the slow-grade log.
    pub slow_grade: Option<Duration>,
    /// How many recent traces `/debug/traces` retains.
    pub trace_ring: usize,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            addr: "127.0.0.1:0".to_string(),
            io: IoMode::default(),
            threads: 16,
            keep_alive_timeout: Duration::from_secs(5),
            header_timeout: Duration::from_secs(10),
            queue_depth: 1024,
            max_connections: 16384,
            tracing: true,
            slow_grade: Some(Duration::from_secs(1)),
            trace_ring: 64,
        }
    }
}

/// Everything the request handlers share: the problem registry plus the
/// observability knobs and the recent-trace ring.
pub(crate) struct ServiceState {
    pub(crate) registry: Registry,
    pub(crate) traces: TraceRing,
    pub(crate) tracing: bool,
    pub(crate) slow_grade: Option<Duration>,
}

/// A running daemon.  Dropping the handle shuts the server down.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    backend: Backend,
}

enum Backend {
    Threads {
        queue: Arc<ConnectionQueue>,
        accept: Option<JoinHandle<()>>,
        workers: Vec<JoinHandle<()>>,
    },
    #[cfg(target_os = "linux")]
    Epoll {
        reactor: Option<JoinHandle<()>>,
        workers: Vec<JoinHandle<()>>,
        jobs: Arc<reactor::JobQueue>,
        completions: Arc<reactor::Completions>,
    },
}

/// Most accepted-but-unserved connections held at once (threads mode).
/// Beyond this the daemon sheds load with an immediate 503 instead of
/// hoarding file descriptors while every worker is busy grading.
const MAX_PENDING_CONNECTIONS: usize = 1024;

struct ConnectionQueue {
    pending: Mutex<VecDeque<TcpStream>>,
    available: Condvar,
}

impl ConnectionQueue {
    /// Enqueues a connection, or sheds it with a best-effort 503 when the
    /// backlog is full.
    fn push(&self, mut stream: TcpStream) {
        let mut pending = self.pending.lock().expect("queue lock");
        if pending.len() >= MAX_PENDING_CONNECTIONS {
            drop(pending);
            afg_obs::global()
                .counter(
                    "afg_overload_rejections_total",
                    "Requests shed under overload, by reason",
                    &[("reason", "queue")],
                )
                .inc();
            let _ = write_response(&mut stream, 503, r#"{"error":"server overloaded"}"#, false);
            return;
        }
        pending.push_back(stream);
        drop(pending);
        self.available.notify_one();
    }

    /// Blocks until a connection is available or shutdown is signalled.
    fn pop(&self, shutdown: &AtomicBool) -> Option<TcpStream> {
        let mut pending = self.pending.lock().expect("queue lock");
        loop {
            if let Some(stream) = pending.pop_front() {
                return Some(stream);
            }
            if shutdown.load(Ordering::SeqCst) {
                return None;
            }
            let (guard, _) = self
                .available
                .wait_timeout(pending, Duration::from_millis(100))
                .expect("queue lock");
            pending = guard;
        }
    }
}

fn new_state(config: &ServiceConfig) -> Arc<ServiceState> {
    Arc::new(ServiceState {
        registry: Registry::new(),
        traces: TraceRing::new(config.trace_ring),
        tracing: config.tracing,
        slow_grade: config.slow_grade,
    })
}

/// Starts the daemon on `config.addr` with a fresh, empty problem registry.
pub fn start(config: ServiceConfig) -> io::Result<ServerHandle> {
    match config.io {
        #[cfg(target_os = "linux")]
        IoMode::Epoll => start_epoll(config),
        // No epoll off Linux: quietly serve with the portable core.
        #[cfg(not(target_os = "linux"))]
        IoMode::Epoll => start_threads(config),
        IoMode::Threads => start_threads(config),
    }
}

#[cfg(target_os = "linux")]
fn start_epoll(config: ServiceConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let state = new_state(&config);
    let shutdown = Arc::new(AtomicBool::new(false));
    let jobs = Arc::new(reactor::JobQueue::new(config.queue_depth));
    let completions = Arc::new(reactor::Completions::new()?);

    let mut workers = Vec::with_capacity(config.threads.max(1));
    for _ in 0..config.threads.max(1) {
        let state = Arc::clone(&state);
        let jobs = Arc::clone(&jobs);
        let completions = Arc::clone(&completions);
        workers.push(std::thread::spawn(move || {
            reactor::worker_loop(state, jobs, completions);
        }));
    }

    let reactor_thread = {
        let jobs = Arc::clone(&jobs);
        let completions = Arc::clone(&completions);
        let shutdown = Arc::clone(&shutdown);
        let opts = reactor::ReactorOptions {
            idle_timeout: config.keep_alive_timeout,
            header_timeout: config.header_timeout,
            max_connections: config.max_connections,
        };
        std::thread::spawn(move || {
            reactor::run(listener, jobs, completions, shutdown, opts);
        })
    };

    Ok(ServerHandle {
        addr,
        shutdown,
        backend: Backend::Epoll {
            reactor: Some(reactor_thread),
            workers,
            jobs,
            completions,
        },
    })
}

fn start_threads(config: ServiceConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let state = new_state(&config);
    let shutdown = Arc::new(AtomicBool::new(false));
    let queue = Arc::new(ConnectionQueue {
        pending: Mutex::new(VecDeque::new()),
        available: Condvar::new(),
    });

    let mut workers = Vec::with_capacity(config.threads.max(1));
    for _ in 0..config.threads.max(1) {
        let state = Arc::clone(&state);
        let shutdown = Arc::clone(&shutdown);
        let queue = Arc::clone(&queue);
        let keep_alive_timeout = config.keep_alive_timeout;
        workers.push(std::thread::spawn(move || {
            while let Some(stream) = queue.pop(&shutdown) {
                // A panic while serving one connection must not shrink the
                // pool — swallow it and move on to the next connection.
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    serve_connection(stream, &state, &shutdown, keep_alive_timeout);
                }));
            }
        }));
    }

    let accept = {
        let shutdown = Arc::clone(&shutdown);
        let queue = Arc::clone(&queue);
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                match stream {
                    Ok(stream) => {
                        afg_obs::counter!("afg_accepts_total", "Accepted TCP connections").inc();
                        queue.push(stream);
                    }
                    Err(_) => continue,
                }
            }
        })
    };

    Ok(ServerHandle {
        addr,
        shutdown,
        backend: Backend::Threads {
            queue,
            accept: Some(accept),
            workers,
        },
    })
}

impl ServerHandle {
    /// The bound address (resolves port 0 to the real ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until the server shuts down (for the daemon binary).
    pub fn wait(mut self) {
        match &mut self.backend {
            Backend::Threads { accept, .. } => {
                if let Some(accept) = accept.take() {
                    let _ = accept.join();
                }
            }
            #[cfg(target_os = "linux")]
            Backend::Epoll { reactor, .. } => {
                if let Some(reactor) = reactor.take() {
                    let _ = reactor.join();
                }
            }
        }
    }

    /// Stops accepting, drains workers and joins every thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        match &mut self.backend {
            Backend::Threads {
                queue,
                accept,
                workers,
            } => {
                // Unblock the accept loop with a throwaway connection.
                let _ = TcpStream::connect(self.addr);
                queue.available.notify_all();
                if let Some(accept) = accept.take() {
                    let _ = accept.join();
                }
                for worker in workers.drain(..) {
                    let _ = worker.join();
                }
            }
            #[cfg(target_os = "linux")]
            Backend::Epoll {
                reactor,
                workers,
                jobs,
                completions,
            } => {
                // The eventfd write unblocks epoll_wait; closing the job
                // queue unblocks the workers.
                completions.waker.wake();
                jobs.close();
                if let Some(reactor) = reactor.take() {
                    let _ = reactor.join();
                }
                for worker in workers.drain(..) {
                    let _ = worker.join();
                }
            }
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Decrements the open-connection gauge even when a handler panics
/// (the worker's `catch_unwind` unwinds through `serve_connection`).
struct OpenConnGuard;

impl OpenConnGuard {
    fn new() -> OpenConnGuard {
        afg_obs::gauge!("afg_open_connections", "Currently open client connections").add(1);
        OpenConnGuard
    }
}

impl Drop for OpenConnGuard {
    fn drop(&mut self) {
        afg_obs::gauge!("afg_open_connections", "Currently open client connections").add(-1);
    }
}

/// Serves one connection until it closes, errors, idles out or the server
/// shuts down (threads mode).  Uses the same incremental parser as the
/// reactor — one [`RequestParser`] per connection, pipelined leftovers
/// carried between requests.
fn serve_connection(
    stream: TcpStream,
    state: &ServiceState,
    shutdown: &AtomicBool,
    keep_alive_timeout: Duration,
) {
    let _open = OpenConnGuard::new();
    let _ = stream.set_read_timeout(Some(keep_alive_timeout));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(writer) => writer,
        Err(_) => return,
    };
    let mut reader = stream;
    let mut parser = RequestParser::new();
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        let request = match read_request(&mut reader, &mut parser) {
            ReadOutcome::Request(request) => request,
            ReadOutcome::Closed | ReadOutcome::Io(_) => return,
            ReadOutcome::Malformed(message) => {
                let body = error_json(&message).to_string();
                let _ = write_response(&mut writer, 400, &body, false);
                return;
            }
            ReadOutcome::TooLarge => {
                let body = error_json("request too large").to_string();
                let _ = write_response(&mut writer, 413, &body, false);
                return;
            }
        };
        let keep_alive = request.keep_alive();
        let reply = handle(&request, state);
        if write_response_with(
            &mut writer,
            reply.status,
            reply.content_type,
            &reply.headers,
            &reply.body,
            keep_alive,
        )
        .is_err()
        {
            return;
        }
        if !keep_alive {
            return;
        }
    }
}
