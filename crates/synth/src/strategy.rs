//! The [`SearchStrategy`] abstraction and cooperative cancellation.
//!
//! Every synthesis back end — SAT-backed CEGIS, enumerative
//! branch-and-bound, and the portfolio that races them — implements one
//! trait, so the grading pipeline, the service and the experiment harness
//! select a search engine by value instead of hard-coding entry points.
//! Cancellation is cooperative: long-running strategies poll a shared
//! [`CancelToken`] between candidates and stand down with their best result
//! so far, which is how the portfolio stops the losers the moment one
//! strategy proves a minimal repair.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use afg_eml::ChoiceProgram;
use afg_interp::EquivalenceOracle;

use crate::config::{SynthesisConfig, SynthesisOutcome, WarmStart};

/// A shareable, hierarchical cancellation flag.
///
/// Clones observe the same flag.  A token created with
/// [`CancelToken::child`] is additionally cancelled whenever any ancestor
/// is — the portfolio hands each racer a child of the caller's token, so an
/// outer cancellation (e.g. a grading request torn down by the service)
/// propagates into the race while the race's own "we have a winner" signal
/// stays local.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Arc<TokenInner>,
}

#[derive(Debug, Default)]
struct TokenInner {
    cancelled: AtomicBool,
    parent: Option<CancelToken>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// A token that is cancelled when either it or `self` (or any of
    /// `self`'s ancestors) is cancelled.
    pub fn child(&self) -> CancelToken {
        CancelToken {
            inner: Arc::new(TokenInner {
                cancelled: AtomicBool::new(false),
                parent: Some(self.clone()),
            }),
        }
    }

    /// Requests cancellation.  Irrevocable; already-cancelled is a no-op.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether this token or any ancestor has been cancelled.
    pub fn is_cancelled(&self) -> bool {
        if self.inner.cancelled.load(Ordering::Relaxed) {
            return true;
        }
        match &self.inner.parent {
            Some(parent) => parent.is_cancelled(),
            None => false,
        }
    }
}

/// A synthesis back end: searches the choice space of `program` for a
/// minimal-cost assignment accepted by the equivalence oracle.
///
/// Implementations must be cheap to share across threads (`Send + Sync`):
/// the portfolio runs several strategies concurrently against the same
/// borrowed program and oracle.
pub trait SearchStrategy: Send + Sync {
    /// Short stable identifier (`"cegis"`, `"enum"`, `"portfolio"`),
    /// reported in [`crate::SynthesisStats::strategy`].
    fn name(&self) -> &'static str;

    /// Runs the search, polling `cancel` cooperatively.  A cancelled
    /// strategy returns its best result so far ([`SynthesisOutcome::Fixed`]
    /// with `minimal == false`, or [`SynthesisOutcome::Timeout`]).
    fn synthesize_with(
        &self,
        program: &ChoiceProgram,
        oracle: &EquivalenceOracle,
        config: &SynthesisConfig,
        cancel: &CancelToken,
    ) -> SynthesisOutcome;

    /// Runs the search with an optional transferred [`WarmStart`]
    /// hypothesis from a cluster representative.  The default
    /// implementation ignores the hint — strategies that can exploit it
    /// (CEGIS starts its minimisation descent at the verified hypothesis
    /// cost) override this; either way the outcome must stay
    /// cost-identical to the hint-free search.
    fn synthesize_with_hint(
        &self,
        program: &ChoiceProgram,
        oracle: &EquivalenceOracle,
        config: &SynthesisConfig,
        _warm: Option<&WarmStart>,
        cancel: &CancelToken,
    ) -> SynthesisOutcome {
        self.synthesize_with(program, oracle, config, cancel)
    }

    /// Runs the search to completion (no external cancellation).
    fn synthesize(
        &self,
        program: &ChoiceProgram,
        oracle: &EquivalenceOracle,
        config: &SynthesisConfig,
    ) -> SynthesisOutcome {
        self.synthesize_with(program, oracle, config, &CancelToken::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_cancellation() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!clone.is_cancelled());
        token.cancel();
        assert!(clone.is_cancelled());
    }

    #[test]
    fn children_observe_ancestors_but_not_vice_versa() {
        let root = CancelToken::new();
        let child = root.child();
        let grandchild = child.child();

        child.cancel();
        assert!(child.is_cancelled());
        assert!(grandchild.is_cancelled());
        assert!(!root.is_cancelled(), "cancellation must not flow upward");

        let other_child = root.child();
        assert!(!other_child.is_cancelled());
        root.cancel();
        assert!(other_child.is_cancelled());
    }
}
