//! Minimized regressions for the recursion-depth bug the fuzzer work
//! surfaced: the recursive-descent parser used to recurse once per
//! nesting level with no bound, so a submission like `((((…))))` with a
//! hundred thousand parens aborted the whole grading process with a stack
//! overflow (uncatchable — not even `catch_unwind` sees it).  Every
//! self-recursive production is now guarded by `MAX_NESTING_DEPTH` and
//! returns a structured "nesting too deep" error instead.

use afg_parser::parse_program;

fn assert_depth_rejected(source: &str, case: &str) {
    let err = parse_program(source)
        .err()
        .unwrap_or_else(|| panic!("{case}: expected rejection"));
    assert!(
        err.message.contains("nesting too deep"),
        "{case}: got {err}"
    );
}

#[test]
fn deep_parenthesis_nesting_is_rejected_not_fatal() {
    let source = format!(
        "def f_int(x):\n    return {}x{}\n",
        "(".repeat(100_000),
        ")".repeat(100_000)
    );
    assert_depth_rejected(&source, "parens");
}

#[test]
fn deep_unary_minus_chain_is_rejected_not_fatal() {
    let source = format!("def f_int(x):\n    return {}x\n", "-".repeat(100_000));
    assert_depth_rejected(&source, "unary minus");
}

#[test]
fn deep_not_chain_is_rejected_not_fatal() {
    let source = format!("def f_int(x):\n    return {}x\n", "not ".repeat(100_000));
    assert_depth_rejected(&source, "not chain");
}

#[test]
fn deep_list_nesting_is_rejected_not_fatal() {
    let source = format!(
        "def f_int(x):\n    return {}x{}\n",
        "[".repeat(100_000),
        "]".repeat(100_000)
    );
    assert_depth_rejected(&source, "lists");
}

#[test]
fn long_elif_chain_is_rejected_not_fatal() {
    // `elif` desugars by self-recursion in `parse_if`, one frame per arm.
    let mut source = String::from("def f_int(x):\n    if x == 0:\n        return 0\n");
    for i in 1..50_000 {
        source.push_str(&format!("    elif x == {i}:\n        return {i}\n"));
    }
    assert_depth_rejected(&source, "elif chain");
}

#[test]
fn reasonable_nesting_still_parses() {
    // The guard must not reject real student code: 50 levels is far past
    // anything an introductory submission contains.
    let source = format!(
        "def f_int(x):\n    return {}x{}\n",
        "(".repeat(50),
        ")".repeat(50)
    );
    assert!(parse_program(&source).is_ok());
    let mut chained = String::from("def g_int(x):\n    if x == 0:\n        return 0\n");
    for i in 1..50 {
        chained.push_str(&format!("    elif x == {i}:\n        return {i}\n"));
    }
    assert!(parse_program(&chained).is_ok());
}
