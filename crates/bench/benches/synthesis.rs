//! Criterion benchmarks for the feedback-generation pipeline.
//!
//! * `grade/<problem>` — end-to-end grading time of one representative
//!   incorrect submission per benchmark problem (the per-submission seconds
//!   of Table 1).
//! * `backend/{cegis,enumerative}` — ablation of the SAT-backed CEGISMIN
//!   search against cost-ordered enumeration (paper §7.4).
//! * `substrate/*` — micro-benchmarks of the substrates: the interpreter,
//!   the error-model transformation and the SAT solver.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use afg_core::GraderConfig;
use afg_corpus::{generate_corpus, problems, CorpusSpec, Origin};
use afg_eml::{apply_error_model, library};
use afg_interp::{run_function, EquivalenceConfig, EquivalenceOracle, ExecLimits, Value};
use afg_parser::parse_program;
use afg_sat::Solver;
use afg_synth::{Backend, SynthesisConfig};

/// A representative incorrect submission for a problem: the first mutated
/// submission of its seeded corpus.
fn incorrect_submission(problem: &afg_corpus::Problem) -> String {
    let corpus = generate_corpus(problem, &CorpusSpec::table1_like(40, 1));
    corpus
        .into_iter()
        .find(|s| matches!(s.origin, Origin::Mutated(_)))
        .map(|s| s.source)
        .expect("corpus contains mutated submissions")
}

fn bench_grading(c: &mut Criterion) {
    let mut group = c.benchmark_group("grade");
    group.sample_size(10).measurement_time(Duration::from_secs(8));
    for id in ["compDeriv", "iterPower", "recurPower", "oddTuples", "evalPoly"] {
        let problem = problems::problem(id).expect("known benchmark");
        let grader = problem.autograder(GraderConfig::fast());
        let submission = incorrect_submission(&problem);
        group.bench_function(id, |b| {
            b.iter(|| std::hint::black_box(grader.grade_source(&submission)));
        });
    }
    group.finish();
}

fn bench_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("backend");
    group.sample_size(10).measurement_time(Duration::from_secs(8));

    let problem = problems::compute_deriv();
    let reference = parse_program(problem.reference).unwrap();
    let oracle = EquivalenceOracle::from_reference(
        &reference,
        EquivalenceConfig { entry: Some(problem.entry.to_string()), ..EquivalenceConfig::default() },
    );
    let student = parse_program(
        "def computeDeriv(poly):\n    if len(poly) == 1:\n        return [0]\n    d = []\n    for i in range(0, len(poly)):\n        d.append(i * poly[i])\n    return d\n",
    )
    .unwrap();
    let choices = apply_error_model(&student, Some(problem.entry), &problem.model).unwrap();

    for (name, backend) in [("cegis", Backend::Cegis), ("enumerative", Backend::Enumerative)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                std::hint::black_box(backend.synthesize(&choices, &oracle, &SynthesisConfig::fast()))
            });
        });
    }
    group.finish();
}

fn bench_substrates(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate");
    group.sample_size(20);

    // Interpreter: one run of the reference computeDeriv on a 4-element list.
    let reference = parse_program(problems::compute_deriv().reference).unwrap();
    let input = vec![Value::int_list([2, -3, 1, 4])];
    group.bench_function("interpreter_computeDeriv", |b| {
        b.iter(|| {
            std::hint::black_box(
                run_function(&reference, Some("computeDeriv"), &input, ExecLimits::fast()).unwrap(),
            )
        });
    });

    // Error-model transformation of the Figure 2(a) submission.
    let student = parse_program(
        "def computeDeriv(poly):\n    deriv = []\n    zero = 0\n    if (len(poly) == 1):\n        return deriv\n    for e in range(0, len(poly)):\n        if (poly[e] == 0):\n            zero += 1\n        else:\n            deriv.append(poly[e]*e)\n    return deriv\n",
    )
    .unwrap();
    let model = library::compute_deriv_model();
    group.bench_function("transform_figure2a", |b| {
        b.iter(|| std::hint::black_box(apply_error_model(&student, Some("computeDeriv"), &model).unwrap()));
    });

    // SAT solver: pigeonhole 5 pigeons / 4 holes (unsatisfiable).
    group.bench_function("sat_pigeonhole_5_4", |b| {
        b.iter(|| {
            let mut solver = Solver::new();
            let pigeons: Vec<Vec<_>> = (0..5).map(|_| solver.new_vars(4)).collect();
            for row in &pigeons {
                let lits: Vec<_> = row.iter().map(|v| v.positive()).collect();
                solver.add_clause(&lits);
            }
            for hole in 0..4 {
                for i in 0..5 {
                    for j in (i + 1)..5 {
                        solver.add_clause(&[pigeons[i][hole].negative(), pigeons[j][hole].negative()]);
                    }
                }
            }
            std::hint::black_box(solver.solve())
        });
    });

    group.finish();
}

criterion_group!(benches, bench_grading, bench_backends, bench_substrates);
criterion_main!(benches);
