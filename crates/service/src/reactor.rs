//! The epoll reactor: a zero-dependency event loop that multiplexes
//! thousands of keep-alive connections onto one thread and hands complete
//! requests to a small CPU worker pool.
//!
//! Layout of the event-driven I/O core:
//!
//! ```text
//!             ┌──────────────────────────────────────────────┐
//!   sockets ──┤ reactor thread: epoll_wait → per-connection  │
//!             │ state machine (Idle → ReadingHead →          │
//!             │ ReadingBody → Executing → Writing → Idle)    │
//!             └───────┬──────────────────────────▲───────────┘
//!                     │ bounded job queue        │ eventfd wakeup
//!             ┌───────▼──────────────────────────┴───────────┐
//!             │ N CPU workers: router::handle → encoded bytes │
//!             └──────────────────────────────────────────────┘
//! ```
//!
//! The syscall surface is tiny and declared directly against the libc the
//! Rust standard library already links (`epoll_create1`, `epoll_ctl`,
//! `epoll_wait`, `eventfd`) — no external crate.  Sockets themselves are
//! plain `std::net` types in nonblocking mode, so reads and writes go
//! through the ordinary safe `Read`/`Write` impls.
//!
//! Per connection the reactor keeps one [`RequestParser`] (incremental
//! HTTP parsing, pipelined leftovers carried across requests), a write
//! buffer with partial-write resumption, and a deadline on a hashed timer
//! wheel: **idle** keep-alive connections and **mid-request** (slow-loris)
//! connections time out separately.  Requests are executed strictly one
//! at a time per connection, preserving pipeline response order and the
//! blocking path's semantics; responses are encoded by the workers through
//! the same [`crate::http::encode_response`] as `--io threads`, so the two
//! modes answer byte-identically.

use std::collections::VecDeque;
use std::ffi::{c_int, c_uint};
use std::fs::File;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::http::{encode_response, EofOutcome, Parse, ParseError, Request, RequestParser, Stage};
use crate::router::{error_json, handle, Reply};
use crate::server::ServiceState;

// ---------------------------------------------------------------------------
// Raw epoll / eventfd bindings
// ---------------------------------------------------------------------------

const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;
const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;
const EPOLL_CLOEXEC: c_int = 0o2000000;
const EFD_NONBLOCK: c_int = 0o4000;
const EFD_CLOEXEC: c_int = 0o2000000;

/// The kernel's `struct epoll_event`.  On x86-64 it is packed (the kernel
/// ABI predates natural alignment there); fields are only ever read from
/// by-value copies, never by reference.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
}

struct Epoll {
    fd: OwnedFd,
}

impl Epoll {
    fn new() -> io::Result<Epoll> {
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll {
            fd: unsafe { OwnedFd::from_raw_fd(fd) },
        })
    }

    fn ctl(&self, op: c_int, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut event = EpollEvent {
            events,
            data: token,
        };
        let rc = unsafe { epoll_ctl(self.fd.as_raw_fd(), op, fd, &mut event) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    fn add(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, token)
    }

    fn modify(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events, token)
    }

    fn del(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    fn wait(&self, events: &mut [EpollEvent], timeout_ms: c_int) -> io::Result<usize> {
        loop {
            let rc = unsafe {
                epoll_wait(
                    self.fd.as_raw_fd(),
                    events.as_mut_ptr(),
                    events.len() as c_int,
                    timeout_ms,
                )
            };
            if rc < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    continue;
                }
                return Err(err);
            }
            return Ok(rc as usize);
        }
    }
}

/// An `eventfd`-backed wakeup: workers (and the shutdown path) write a
/// counter increment, the reactor's epoll set reports it readable.
pub(crate) struct Waker {
    file: File,
}

impl Waker {
    fn new() -> io::Result<Waker> {
        let fd = unsafe { eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Waker {
            file: unsafe { File::from_raw_fd(fd) },
        })
    }

    pub(crate) fn wake(&self) {
        let _ = (&self.file).write(&1u64.to_ne_bytes());
    }

    fn drain(&self) {
        let mut buf = [0u8; 8];
        while (&self.file).read(&mut buf).is_ok() {}
    }
}

// ---------------------------------------------------------------------------
// Worker-pool plumbing: bounded job queue in, completion queue out
// ---------------------------------------------------------------------------

/// One complete request bound for a CPU worker.
pub(crate) struct Job {
    token: u64,
    gen: u64,
    request: Request,
    keep_alive: bool,
    enqueued: Instant,
}

/// Bounded MPSC queue between the reactor and the worker pool.  `push`
/// fails (rather than blocks) when full — the reactor must never block —
/// and the caller sheds the request with a 503.
pub(crate) struct JobQueue {
    inner: Mutex<JobQueueInner>,
    available: Condvar,
    depth: usize,
}

struct JobQueueInner {
    jobs: VecDeque<Job>,
    closed: bool,
}

impl JobQueue {
    pub(crate) fn new(depth: usize) -> JobQueue {
        JobQueue {
            inner: Mutex::new(JobQueueInner {
                jobs: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
            depth: depth.max(1),
        }
    }

    fn push(&self, job: Job) -> bool {
        let mut inner = self.inner.lock().expect("job queue lock");
        if inner.jobs.len() >= self.depth {
            return false;
        }
        inner.jobs.push_back(job);
        drop(inner);
        self.available.notify_one();
        true
    }

    fn pop(&self) -> Option<Job> {
        let mut inner = self.inner.lock().expect("job queue lock");
        loop {
            if let Some(job) = inner.jobs.pop_front() {
                return Some(job);
            }
            if inner.closed {
                return None;
            }
            inner = self.available.wait(inner).expect("job queue lock");
        }
    }

    pub(crate) fn close(&self) {
        self.inner.lock().expect("job queue lock").closed = true;
        self.available.notify_all();
    }
}

struct Done {
    token: u64,
    gen: u64,
    bytes: Vec<u8>,
    keep_alive: bool,
}

/// Finished responses travelling back from workers to the reactor, paired
/// with the eventfd that re-arms the event loop.
pub(crate) struct Completions {
    done: Mutex<Vec<Done>>,
    pub(crate) waker: Waker,
}

impl Completions {
    pub(crate) fn new() -> io::Result<Completions> {
        Ok(Completions {
            done: Mutex::new(Vec::new()),
            waker: Waker::new()?,
        })
    }

    fn push(&self, done: Done) {
        self.done.lock().expect("completion lock").push(done);
        self.waker.wake();
    }

    fn take(&self) -> Vec<Done> {
        std::mem::take(&mut *self.done.lock().expect("completion lock"))
    }
}

/// One CPU worker: pop a job, run the router, push the encoded bytes back
/// and wake the reactor.  Panics inside a handler become a 500 on that one
/// connection, never a dead worker.
pub(crate) fn worker_loop(
    state: Arc<ServiceState>,
    jobs: Arc<JobQueue>,
    completions: Arc<Completions>,
) {
    while let Some(job) = jobs.pop() {
        afg_obs::histogram!(
            "afg_queue_wait_seconds",
            "Time a parsed request waits for a CPU worker",
            1e-6
        )
        .record_duration(job.enqueued.elapsed());
        let reply = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _stage = afg_obs::stage_span!("execute");
            handle(&job.request, &state)
        }))
        .unwrap_or_else(|_| Reply::json(500, error_json("internal error")));
        let bytes = reply.encode(job.keep_alive);
        completions.push(Done {
            token: job.token,
            gen: job.gen,
            bytes,
            keep_alive: job.keep_alive,
        });
    }
}

// ---------------------------------------------------------------------------
// Timer wheel
// ---------------------------------------------------------------------------

const WHEEL_SLOTS: u64 = 256;
const TICK_MS: u64 = 25;

/// Hashed timer wheel, 256 slots × 25 ms.  Entries are `(token, gen)`
/// hints with **lazy cancellation**: firing re-checks the connection's
/// actual deadline and re-inserts if it moved, so rescheduling a
/// keep-alive deadline is O(1) with no deletion.
struct TimerWheel {
    slots: Vec<Vec<(u64, u64)>>,
    origin: Instant,
    /// Next tick to process.
    cursor: u64,
    len: usize,
}

impl TimerWheel {
    fn new(origin: Instant) -> TimerWheel {
        TimerWheel {
            slots: vec![Vec::new(); WHEEL_SLOTS as usize],
            origin,
            cursor: 0,
            len: 0,
        }
    }

    fn tick_of(&self, at: Instant) -> u64 {
        at.saturating_duration_since(self.origin).as_millis() as u64 / TICK_MS
    }

    fn insert(&mut self, deadline: Instant, token: u64, gen: u64) {
        let tick = self.tick_of(deadline).max(self.cursor + 1);
        self.slots[(tick % WHEEL_SLOTS) as usize].push((token, gen));
        self.len += 1;
    }

    /// Drains every slot whose tick has passed.  Entries may fire early
    /// (slot collision a revolution out) — the caller re-checks deadlines.
    fn advance(&mut self, now: Instant) -> Vec<(u64, u64)> {
        let current = self.tick_of(now);
        if self.len == 0 {
            self.cursor = current + 1;
            return Vec::new();
        }
        let mut due = Vec::new();
        while self.cursor <= current {
            let slot = (self.cursor % WHEEL_SLOTS) as usize;
            due.append(&mut self.slots[slot]);
            self.cursor += 1;
        }
        self.len -= due.len();
        due
    }

    /// How long `epoll_wait` may block before the nearest armed slot.
    fn next_timeout(&self, now: Instant) -> Option<Duration> {
        if self.len == 0 {
            return None;
        }
        for k in 0..WHEEL_SLOTS {
            let slot = ((self.cursor + k) % WHEEL_SLOTS) as usize;
            if !self.slots[slot].is_empty() {
                let fire_at = self.origin + Duration::from_millis((self.cursor + k) * TICK_MS);
                return Some(fire_at.saturating_duration_since(now));
            }
        }
        None
    }
}

// ---------------------------------------------------------------------------
// The reactor proper
// ---------------------------------------------------------------------------

const LISTENER_TOKEN: u64 = u64::MAX;
const WAKER_TOKEN: u64 = u64::MAX - 1;

/// Reactor tuning, carved out of [`crate::ServiceConfig`].
pub(crate) struct ReactorOptions {
    /// Idle keep-alive limit (between requests).
    pub(crate) idle_timeout: Duration,
    /// Mid-request limit: first request byte → complete head+body
    /// (the slow-loris guard).
    pub(crate) header_timeout: Duration,
    /// Open-connection cap; beyond it accepts are shed with a 503.
    pub(crate) max_connections: usize,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum ConnState {
    /// Keep-alive, between requests.
    Idle,
    /// Mid request line / headers.
    ReadingHead,
    /// Mid `Content-Length` body.
    ReadingBody,
    /// A worker owns the request; socket interest is parked.
    Executing,
    /// Flushing the response (partial writes resume on `EPOLLOUT`).
    Writing,
}

struct Conn {
    stream: TcpStream,
    parser: RequestParser,
    state: ConnState,
    gen: u64,
    out: Vec<u8>,
    out_pos: usize,
    interest: u32,
    deadline: Option<Instant>,
    close_after_write: bool,
}

enum ReadStep {
    Data(usize),
    Eof,
    Block,
    Retry,
    Fail,
}

enum WriteStep {
    Done,
    Progress,
    Block,
    Fail,
}

struct Reactor {
    epoll: Epoll,
    listener: TcpListener,
    slab: Vec<Option<Conn>>,
    free: Vec<usize>,
    wheel: TimerWheel,
    jobs: Arc<JobQueue>,
    completions: Arc<Completions>,
    shutdown: Arc<AtomicBool>,
    opts: ReactorOptions,
    open: usize,
    next_gen: u64,
}

/// Runs the reactor until shutdown.  Consumes the listening socket; errors
/// setting up the epoll set are reported and abort the thread (the daemon
/// then serves nothing, which the caller's health check will notice).
pub(crate) fn run(
    listener: TcpListener,
    jobs: Arc<JobQueue>,
    completions: Arc<Completions>,
    shutdown: Arc<AtomicBool>,
    opts: ReactorOptions,
) {
    let epoll = match Epoll::new() {
        Ok(epoll) => epoll,
        Err(err) => {
            eprintln!("[afg-serve] reactor: epoll_create1 failed: {err}");
            return;
        }
    };
    if let Err(err) = listener.set_nonblocking(true) {
        eprintln!("[afg-serve] reactor: set_nonblocking failed: {err}");
        return;
    }
    if let Err(err) = epoll.add(listener.as_raw_fd(), EPOLLIN, LISTENER_TOKEN) {
        eprintln!("[afg-serve] reactor: registering listener failed: {err}");
        return;
    }
    if let Err(err) = epoll.add(completions.waker.file.as_raw_fd(), EPOLLIN, WAKER_TOKEN) {
        eprintln!("[afg-serve] reactor: registering waker failed: {err}");
        return;
    }
    let mut reactor = Reactor {
        epoll,
        listener,
        slab: Vec::new(),
        free: Vec::new(),
        wheel: TimerWheel::new(Instant::now()),
        jobs,
        completions,
        shutdown,
        opts,
        open: 0,
        next_gen: 0,
    };
    reactor.event_loop();
}

impl Reactor {
    fn event_loop(&mut self) {
        let mut events = vec![EpollEvent { events: 0, data: 0 }; 1024];
        loop {
            if self.shutdown.load(Ordering::SeqCst) {
                return;
            }
            let timeout = match self.wheel.next_timeout(Instant::now()) {
                // +1 ms so the wait lands just past the tick, not short
                // of it (as_millis truncates).
                Some(until) => (until.as_millis() as i64 + 1).min(60_000) as c_int,
                None => -1,
            };
            let n = match self.epoll.wait(&mut events, timeout) {
                Ok(n) => n,
                Err(err) => {
                    eprintln!("[afg-serve] reactor: epoll_wait failed: {err}");
                    return;
                }
            };
            afg_obs::counter!("afg_reactor_wakeups_total", "Reactor epoll wakeups").inc();
            afg_obs::histogram!(
                "afg_reactor_events",
                "Readiness events handled per reactor wakeup",
                1.0
            )
            .record(n as u64);
            let now = Instant::now();
            for event in events.iter().take(n) {
                // Copy the (possibly packed) fields out by value.
                let ev = *event;
                let (mask, token) = (ev.events, ev.data);
                match token {
                    LISTENER_TOKEN => self.handle_accept(),
                    WAKER_TOKEN => self.apply_completions(now),
                    _ => self.handle_conn(token, mask, now),
                }
            }
            self.fire_timers(Instant::now());
        }
    }

    // -- accept path --------------------------------------------------------

    fn handle_accept(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    afg_obs::counter!("afg_accepts_total", "Accepted TCP connections").inc();
                    if self.open >= self.opts.max_connections {
                        overload_counter("connections").inc();
                        shed_with_503(stream);
                        continue;
                    }
                    self.add_conn(stream);
                }
                Err(err) if err.kind() == io::ErrorKind::WouldBlock => return,
                Err(err) if err.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    fn add_conn(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let _ = stream.set_nodelay(true);
        let idx = self.free.pop().unwrap_or_else(|| {
            self.slab.push(None);
            self.slab.len() - 1
        });
        let token = idx as u64;
        if self
            .epoll
            .add(stream.as_raw_fd(), EPOLLIN | EPOLLRDHUP, token)
            .is_err()
        {
            self.free.push(idx);
            return;
        }
        let gen = self.next_gen;
        self.next_gen += 1;
        let deadline = Instant::now() + self.opts.idle_timeout;
        self.slab[idx] = Some(Conn {
            stream,
            parser: RequestParser::new(),
            state: ConnState::Idle,
            gen,
            out: Vec::new(),
            out_pos: 0,
            interest: EPOLLIN | EPOLLRDHUP,
            deadline: Some(deadline),
            close_after_write: false,
        });
        self.wheel.insert(deadline, token, gen);
        self.open += 1;
        open_gauge().set(self.open as i64);
    }

    fn close(&mut self, idx: usize) {
        if let Some(conn) = self.slab.get_mut(idx).and_then(Option::take) {
            let _ = self.epoll.del(conn.stream.as_raw_fd());
            self.free.push(idx);
            self.open -= 1;
            open_gauge().set(self.open as i64);
        }
    }

    // -- readiness dispatch --------------------------------------------------

    fn handle_conn(&mut self, token: u64, mask: u32, now: Instant) {
        let idx = token as usize;
        let Some(conn) = self.slab.get(idx).and_then(Option::as_ref) else {
            return;
        };
        if mask & (EPOLLERR | EPOLLHUP) != 0 {
            self.close(idx);
            return;
        }
        match conn.state {
            ConnState::Idle | ConnState::ReadingHead | ConnState::ReadingBody => {
                if mask & (EPOLLIN | EPOLLRDHUP) != 0 {
                    self.do_read(idx, now);
                }
            }
            ConnState::Writing => {
                if mask & EPOLLOUT != 0 {
                    self.do_write(idx, now);
                }
            }
            // Stale readiness while a worker owns the request.
            ConnState::Executing => {}
        }
    }

    fn do_read(&mut self, idx: usize, now: Instant) {
        let mut buf = [0u8; 16 * 1024];
        // Bounded drain: level-triggered epoll re-reports anything left,
        // so one connection cannot starve the loop.
        for _ in 0..32 {
            let step = {
                let Some(conn) = self.slab[idx].as_mut() else {
                    return;
                };
                match (&conn.stream).read(&mut buf) {
                    Ok(0) => ReadStep::Eof,
                    Ok(n) => ReadStep::Data(n),
                    Err(err) if err.kind() == io::ErrorKind::WouldBlock => ReadStep::Block,
                    Err(err) if err.kind() == io::ErrorKind::Interrupted => ReadStep::Retry,
                    Err(_) => ReadStep::Fail,
                }
            };
            match step {
                ReadStep::Data(n) => {
                    let parse = {
                        let Some(conn) = self.slab[idx].as_mut() else {
                            return;
                        };
                        conn.parser.feed(&buf[..n])
                    };
                    match parse {
                        Parse::Complete(request) => {
                            self.dispatch(idx, request, false);
                            return;
                        }
                        Parse::Error(err) => {
                            self.respond_error(idx, &err, now);
                            return;
                        }
                        Parse::Partial => self.note_reading(idx, now),
                    }
                }
                ReadStep::Eof => {
                    let outcome = {
                        let Some(conn) = self.slab[idx].as_mut() else {
                            return;
                        };
                        conn.parser.eof()
                    };
                    match outcome {
                        EofOutcome::Closed | EofOutcome::Drop => self.close(idx),
                        EofOutcome::Complete(request) => self.dispatch(idx, request, true),
                        EofOutcome::Error(err) => self.respond_error(idx, &err, now),
                    }
                    return;
                }
                ReadStep::Block => return,
                ReadStep::Retry => {}
                ReadStep::Fail => {
                    self.close(idx);
                    return;
                }
            }
        }
    }

    /// After a `Partial` feed: label the state by parser stage, and on the
    /// Idle → Reading transition arm the slow-loris deadline.  The
    /// deadline deliberately does NOT reset per byte — it spans the whole
    /// request read, so dripping one byte per second cannot hold a slot.
    fn note_reading(&mut self, idx: usize, now: Instant) {
        let Some(conn) = self.slab[idx].as_mut() else {
            return;
        };
        if conn.parser.is_idle() {
            return;
        }
        let was_idle = conn.state == ConnState::Idle;
        conn.state = match conn.parser.stage() {
            Stage::Head => ConnState::ReadingHead,
            Stage::Body => ConnState::ReadingBody,
        };
        if was_idle {
            let deadline = now + self.opts.header_timeout;
            conn.deadline = Some(deadline);
            let gen = conn.gen;
            self.wheel.insert(deadline, idx as u64, gen);
        }
    }

    /// A complete request: park socket interest and hand it to the worker
    /// pool (or shed with a 503 if the queue is full).  `eof_seen` closes
    /// the connection after the response regardless of keep-alive.
    fn dispatch(&mut self, idx: usize, request: Request, eof_seen: bool) {
        let keep_alive = request.keep_alive();
        let gen = {
            let Some(conn) = self.slab[idx].as_mut() else {
                return;
            };
            conn.close_after_write = !keep_alive || eof_seen;
            conn.state = ConnState::Executing;
            conn.deadline = None;
            conn.gen
        };
        let job = Job {
            token: idx as u64,
            gen,
            request,
            keep_alive,
            enqueued: Instant::now(),
        };
        if self.jobs.push(job) {
            self.set_interest(idx, 0);
        } else {
            overload_counter("queue").inc();
            if let Some(conn) = self.slab[idx].as_mut() {
                conn.close_after_write = true;
            }
            let bytes = encode_response(
                503,
                "application/json",
                &[],
                r#"{"error":"server overloaded"}"#,
                false,
            );
            self.queue_write(idx, bytes);
        }
    }

    fn respond_error(&mut self, idx: usize, err: &ParseError, _now: Instant) {
        let (status, body) = match err {
            ParseError::Malformed(message) => (400, error_json(message).to_string()),
            ParseError::TooLarge => (413, error_json("request too large").to_string()),
        };
        if let Some(conn) = self.slab[idx].as_mut() {
            conn.close_after_write = true;
        }
        let bytes = encode_response(status, "application/json", &[], &body, false);
        self.queue_write(idx, bytes);
    }

    // -- write path ----------------------------------------------------------

    fn queue_write(&mut self, idx: usize, bytes: Vec<u8>) {
        let now = Instant::now();
        {
            let Some(conn) = self.slab[idx].as_mut() else {
                return;
            };
            conn.out = bytes;
            conn.out_pos = 0;
            conn.state = ConnState::Writing;
            // A stalled peer may not drain its receive window forever.
            let deadline = now + self.opts.idle_timeout;
            conn.deadline = Some(deadline);
            let gen = conn.gen;
            self.wheel.insert(deadline, idx as u64, gen);
        }
        // Optimistic write: the common case finishes without ever arming
        // EPOLLOUT.
        self.do_write(idx, now);
    }

    fn do_write(&mut self, idx: usize, now: Instant) {
        loop {
            let step = {
                let Some(conn) = self.slab[idx].as_mut() else {
                    return;
                };
                if conn.out_pos >= conn.out.len() {
                    WriteStep::Done
                } else {
                    match (&conn.stream).write(&conn.out[conn.out_pos..]) {
                        Ok(0) => WriteStep::Fail,
                        Ok(n) => {
                            conn.out_pos += n;
                            WriteStep::Progress
                        }
                        Err(err) if err.kind() == io::ErrorKind::WouldBlock => WriteStep::Block,
                        Err(err) if err.kind() == io::ErrorKind::Interrupted => WriteStep::Progress,
                        Err(_) => WriteStep::Fail,
                    }
                }
            };
            match step {
                WriteStep::Done => {
                    self.finish_write(idx, now);
                    return;
                }
                WriteStep::Progress => {}
                WriteStep::Block => {
                    self.set_interest(idx, EPOLLOUT);
                    return;
                }
                WriteStep::Fail => {
                    self.close(idx);
                    return;
                }
            }
        }
    }

    /// Response fully flushed: close, or rotate back to reading — serving
    /// any already-buffered pipelined request first.
    fn finish_write(&mut self, idx: usize, now: Instant) {
        let close = {
            let Some(conn) = self.slab[idx].as_mut() else {
                return;
            };
            conn.out = Vec::new();
            conn.out_pos = 0;
            conn.close_after_write
        };
        if close {
            self.close(idx);
            return;
        }
        let parse = {
            let Some(conn) = self.slab[idx].as_mut() else {
                return;
            };
            conn.parser.feed(&[])
        };
        match parse {
            Parse::Complete(request) => self.dispatch(idx, request, false),
            Parse::Error(err) => self.respond_error(idx, &err, now),
            Parse::Partial => {
                {
                    let Some(conn) = self.slab[idx].as_mut() else {
                        return;
                    };
                    let (state, timeout) = if conn.parser.is_idle() {
                        (ConnState::Idle, self.opts.idle_timeout)
                    } else {
                        let state = match conn.parser.stage() {
                            Stage::Head => ConnState::ReadingHead,
                            Stage::Body => ConnState::ReadingBody,
                        };
                        (state, self.opts.header_timeout)
                    };
                    conn.state = state;
                    let deadline = now + timeout;
                    conn.deadline = Some(deadline);
                    let gen = conn.gen;
                    self.wheel.insert(deadline, idx as u64, gen);
                }
                self.set_interest(idx, EPOLLIN | EPOLLRDHUP);
            }
        }
    }

    // -- worker completions --------------------------------------------------

    fn apply_completions(&mut self, _now: Instant) {
        self.completions.waker.drain();
        for done in self.completions.take() {
            let idx = done.token as usize;
            let live = matches!(
                self.slab.get(idx).and_then(Option::as_ref),
                Some(conn) if conn.gen == done.gen && conn.state == ConnState::Executing
            );
            if !live {
                continue;
            }
            if !done.keep_alive {
                if let Some(conn) = self.slab[idx].as_mut() {
                    conn.close_after_write = true;
                }
            }
            self.queue_write(idx, done.bytes);
        }
    }

    // -- timers --------------------------------------------------------------

    fn fire_timers(&mut self, now: Instant) {
        for (token, gen) in self.wheel.advance(now) {
            let idx = token as usize;
            let verdict = {
                let Some(conn) = self.slab.get(idx).and_then(Option::as_ref) else {
                    continue;
                };
                if conn.gen != gen {
                    continue;
                }
                match conn.deadline {
                    None => None,
                    Some(deadline) if deadline <= now => Some(Err(match conn.state {
                        ConnState::Idle => "idle",
                        ConnState::ReadingHead | ConnState::ReadingBody => "header",
                        ConnState::Writing => "write",
                        ConnState::Executing => continue,
                    })),
                    Some(deadline) => Some(Ok(deadline)),
                }
            };
            match verdict {
                // Deadline disarmed (request executing): drop the entry.
                None => {}
                // Deadline moved (keep-alive renewed): lazy re-insert.
                Some(Ok(deadline)) => self.wheel.insert(deadline, token, gen),
                Some(Err(kind)) => {
                    afg_obs::global()
                        .counter(
                            "afg_conn_timeouts_total",
                            "Connections closed by reactor timeouts, by kind",
                            &[("kind", kind)],
                        )
                        .inc();
                    self.close(idx);
                }
            }
        }
    }

    // -- misc ----------------------------------------------------------------

    fn set_interest(&mut self, idx: usize, mask: u32) {
        let Some(conn) = self.slab[idx].as_mut() else {
            return;
        };
        if conn.interest == mask {
            return;
        }
        if self
            .epoll
            .modify(conn.stream.as_raw_fd(), mask, idx as u64)
            .is_ok()
        {
            conn.interest = mask;
        }
    }
}

fn open_gauge() -> std::sync::Arc<afg_obs::Gauge> {
    afg_obs::gauge!("afg_open_connections", "Currently open client connections")
}

fn overload_counter(reason: &'static str) -> std::sync::Arc<afg_obs::Counter> {
    afg_obs::global().counter(
        "afg_overload_rejections_total",
        "Requests shed under overload, by reason",
        &[("reason", reason)],
    )
}

/// Best-effort 503 on a connection shed at accept time.  The socket is
/// switched to nonblocking first: losing the 503 to a full buffer is
/// acceptable, stalling the reactor is not.
fn shed_with_503(mut stream: TcpStream) {
    let _ = stream.set_nonblocking(true);
    let _ = stream.write_all(&encode_response(
        503,
        "application/json",
        &[],
        r#"{"error":"server overloaded"}"#,
        false,
    ));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_wheel_fires_due_entries_and_lazily_reinserts() {
        let origin = Instant::now();
        let mut wheel = TimerWheel::new(origin);
        wheel.insert(origin + Duration::from_millis(50), 7, 1);
        // Not due yet.
        assert!(wheel.advance(origin + Duration::from_millis(10)).is_empty());
        // Due (and drained exactly once).
        let due = wheel.advance(origin + Duration::from_millis(120));
        assert_eq!(due, vec![(7, 1)]);
        assert!(wheel
            .advance(origin + Duration::from_millis(200))
            .is_empty());
    }

    #[test]
    fn timer_wheel_timeout_tracks_nearest_slot() {
        let origin = Instant::now();
        let mut wheel = TimerWheel::new(origin);
        assert!(wheel.next_timeout(origin).is_none());
        wheel.insert(origin + Duration::from_millis(500), 1, 1);
        let timeout = wheel.next_timeout(origin).expect("armed");
        assert!(timeout <= Duration::from_millis(525), "{timeout:?}");
    }

    #[test]
    fn job_queue_bounds_depth_and_closes() {
        let queue = JobQueue::new(1);
        let job = |token| Job {
            token,
            gen: 0,
            request: crate::http::Request {
                method: "GET".into(),
                path: "/healthz".into(),
                version: "HTTP/1.1".into(),
                headers: Vec::new(),
                body: Vec::new(),
            },
            keep_alive: true,
            enqueued: Instant::now(),
        };
        assert!(queue.push(job(1)));
        assert!(!queue.push(job(2)), "queue depth 1 must shed the second");
        assert_eq!(queue.pop().map(|j| j.token), Some(1));
        queue.close();
        assert!(queue.pop().is_none());
    }
}
