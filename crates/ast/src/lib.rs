//! Abstract syntax tree for MPY, the mini-Python language of the PLDI 2013
//! paper *Automated Feedback Generation for Introductory Programming
//! Assignments* (Singh, Gulwani, Solar-Lezama).
//!
//! MPY is the imperative subset of Python in which both the instructor's
//! reference implementations and the student submissions are written
//! (paper Figure 6(a)).  The companion language M̃PY — MPY extended with
//! *sets* of expressions and statements — lives in the `afg-synth` crate as a
//! choice AST; this crate only defines plain MPY together with the utilities
//! every other crate needs:
//!
//! * [`Expr`], [`Stmt`], [`FuncDef`], [`Program`] — the syntax tree itself,
//! * [`ops`] — arithmetic, comparison and boolean operators,
//! * [`types::MpyType`] — the instructor-declared parameter/return types
//!   (the paper encodes them as name suffixes such as `poly_list_int`),
//! * [`pretty`] — a pretty-printer that renders ASTs back to MPY source,
//!   used both by tests (round-tripping) and by the feedback generator
//!   (reporting "the problematic expression in the line"),
//! * [`visit`] — traversal, size and variable-collection helpers used by the
//!   error-model transformation,
//! * [`canon`] — alpha-renamed canonical forms and the 64-bit submission
//!   fingerprints behind `afg-core`'s grading cache.
//!
//! # Example
//!
//! ```
//! use afg_ast::{Expr, ops::BinOp};
//!
//! // 2 * x
//! let e = Expr::binop(BinOp::Mul, Expr::Int(2), Expr::var("x"));
//! assert_eq!(afg_ast::pretty::expr_to_string(&e), "2 * x");
//! assert_eq!(afg_ast::visit::expr_size(&e), 3);
//! ```

pub mod canon;
pub mod ops;
pub mod pretty;
pub mod types;
pub mod visit;

use ops::{BinOp, BoolOp, CmpOp, UnaryOp};
use types::MpyType;

/// An MPY expression (paper Figure 6(a), arithmetic and boolean expressions).
///
/// Expressions intentionally do not carry source spans so that they can be
/// compared structurally (`Eq`/`Hash`) during pattern matching in the error
/// model; line information lives on [`Stmt`], which is the granularity at
/// which the paper's feedback messages report locations.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// Integer literal, e.g. `42`.
    Int(i64),
    /// Boolean literal `True` / `False`.
    Bool(bool),
    /// String literal, e.g. `'_'`.
    Str(String),
    /// The `None` literal.
    None,
    /// Variable reference.
    Var(String),
    /// List literal `[e1, ..., en]` (the empty list `[]` included).
    List(Vec<Expr>),
    /// Tuple literal `(e1, ..., en)`.
    Tuple(Vec<Expr>),
    /// Dictionary literal `{k1: v1, ...}`.
    Dict(Vec<(Expr, Expr)>),
    /// Indexing `base[index]`.
    Index(Box<Expr>, Box<Expr>),
    /// Slicing `base[lower:upper]`; either bound may be omitted.
    Slice(Box<Expr>, Option<Box<Expr>>, Option<Box<Expr>>),
    /// Binary arithmetic `left op right`.
    BinOp(BinOp, Box<Expr>, Box<Expr>),
    /// Unary operation `-e` or `not e`.
    UnaryOp(UnaryOp, Box<Expr>),
    /// Comparison `left op right` (including `in` / `not in`).
    Compare(CmpOp, Box<Expr>, Box<Expr>),
    /// Boolean connective `left and right` / `left or right`.
    BoolExpr(BoolOp, Box<Expr>, Box<Expr>),
    /// Free function call `f(args...)` — builtins and user functions alike.
    Call(String, Vec<Expr>),
    /// Method call `recv.method(args...)`, e.g. `deriv.append(x)`.
    MethodCall(Box<Expr>, String, Vec<Expr>),
    /// Conditional expression `body if cond else orelse`.
    IfExpr(Box<Expr>, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Convenience constructor for a variable reference.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    /// Convenience constructor for a string literal.
    pub fn str(value: impl Into<String>) -> Expr {
        Expr::Str(value.into())
    }

    /// Convenience constructor for a binary operation.
    pub fn binop(op: BinOp, left: Expr, right: Expr) -> Expr {
        Expr::BinOp(op, Box::new(left), Box::new(right))
    }

    /// Convenience constructor for a comparison.
    pub fn compare(op: CmpOp, left: Expr, right: Expr) -> Expr {
        Expr::Compare(op, Box::new(left), Box::new(right))
    }

    /// Convenience constructor for a call.
    pub fn call(func: impl Into<String>, args: Vec<Expr>) -> Expr {
        Expr::Call(func.into(), args)
    }

    /// Convenience constructor for indexing.
    pub fn index(base: Expr, index: Expr) -> Expr {
        Expr::Index(Box::new(base), Box::new(index))
    }

    /// Returns `true` if the expression is a literal constant (no variables,
    /// no calls), i.e. it always evaluates to the same value.
    pub fn is_literal(&self) -> bool {
        match self {
            Expr::Int(_) | Expr::Bool(_) | Expr::Str(_) | Expr::None => true,
            Expr::List(items) | Expr::Tuple(items) => items.iter().all(Expr::is_literal),
            Expr::Dict(items) => items.iter().all(|(k, v)| k.is_literal() && v.is_literal()),
            Expr::UnaryOp(_, e) => e.is_literal(),
            _ => false,
        }
    }
}

/// Assignment target — the left-hand side of an assignment statement.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Target {
    /// Plain variable target `x = ...`.
    Var(String),
    /// Subscript target `xs[i] = ...`.
    Index(Expr, Expr),
    /// Tuple unpacking `a, b = ...`.
    Tuple(Vec<Target>),
}

impl Target {
    /// All variable names bound (or written through) by this target.
    pub fn bound_names(&self) -> Vec<String> {
        match self {
            Target::Var(name) => vec![name.clone()],
            Target::Index(base, _) => visit::expr_vars(base),
            Target::Tuple(items) => items.iter().flat_map(Target::bound_names).collect(),
        }
    }
}

/// An MPY statement together with the 1-based source line it came from.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Stmt {
    /// 1-based source line of the statement (0 for synthesised statements).
    pub line: u32,
    /// The statement itself.
    pub kind: StmtKind,
}

impl Stmt {
    /// Creates a statement with the given line number.
    pub fn new(line: u32, kind: StmtKind) -> Stmt {
        Stmt { line, kind }
    }

    /// Creates a statement with no source location (synthesised code).
    pub fn synthetic(kind: StmtKind) -> Stmt {
        Stmt { line: 0, kind }
    }
}

/// The different kinds of MPY statements (paper Figure 6(a), `Stmt Expr`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum StmtKind {
    /// Assignment `target = value`.
    Assign(Target, Expr),
    /// Augmented assignment `target op= value` (e.g. `deriv += [x]`).
    AugAssign(Target, BinOp, Expr),
    /// Expression evaluated for its side effect (e.g. `deriv.append(x)`).
    ExprStmt(Expr),
    /// Conditional `if cond: then_body else: else_body` (elif chains are
    /// desugared by the parser into nested `If`s in the else branch).
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// `while cond: body`.
    While(Expr, Vec<Stmt>),
    /// `for var in iter: body`.
    For(String, Expr, Vec<Stmt>),
    /// `return expr` (or bare `return`).
    Return(Option<Expr>),
    /// `print(e1, ..., en)` — modelled as a statement because the paper's
    /// `compBal-stdin` benchmark grades console output.
    Print(Vec<Expr>),
    /// `pass`.
    Pass,
    /// `break`.
    Break,
    /// `continue`.
    Continue,
}

/// A function parameter together with the type the instructor declared for it.
///
/// The paper encodes parameter types as name suffixes (`poly_list_int`); the
/// parser strips the suffix into [`MpyType`] and keeps the base name.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Param {
    /// Parameter name as used in the function body.
    pub name: String,
    /// Declared type, used to enumerate bounded inputs during verification.
    pub ty: MpyType,
}

impl Param {
    /// Creates a parameter.
    pub fn new(name: impl Into<String>, ty: MpyType) -> Param {
        Param {
            name: name.into(),
            ty,
        }
    }
}

/// A function definition `def f(p1, ..., pn): body`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FuncDef {
    /// Function name.
    pub name: String,
    /// Parameters in declaration order.
    pub params: Vec<Param>,
    /// Function body.
    pub body: Vec<Stmt>,
    /// 1-based line of the `def` keyword.
    pub line: u32,
}

/// A whole MPY program: one or more function definitions plus optional
/// top-level statements (used by stdin/stdout style problems).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Program {
    /// Function definitions, in source order.
    pub funcs: Vec<FuncDef>,
    /// Statements outside any function, in source order.
    pub top_level: Vec<Stmt>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Program {
        Program::default()
    }

    /// Looks up a function definition by name.
    pub fn func(&self, name: &str) -> Option<&FuncDef> {
        self.funcs.iter().find(|f| f.name == name)
    }

    /// The *entry* function of the program.
    ///
    /// Assignments in the paper always grade a single named function; when a
    /// student defines helpers, the last definition whose name matches the
    /// expected one is graded, otherwise the first definition is used.
    pub fn entry(&self, preferred: Option<&str>) -> Option<&FuncDef> {
        if let Some(name) = preferred {
            if let Some(f) = self.funcs.iter().rev().find(|f| f.name == name) {
                return Some(f);
            }
        }
        self.funcs.first()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ops::BinOp;

    #[test]
    fn expr_constructors_build_expected_nodes() {
        let e = Expr::binop(BinOp::Add, Expr::Int(1), Expr::var("x"));
        match &e {
            Expr::BinOp(BinOp::Add, l, r) => {
                assert_eq!(**l, Expr::Int(1));
                assert_eq!(**r, Expr::Var("x".to_string()));
            }
            other => panic!("unexpected expr {other:?}"),
        }
    }

    #[test]
    fn literal_detection() {
        assert!(Expr::Int(3).is_literal());
        assert!(Expr::List(vec![Expr::Int(0)]).is_literal());
        assert!(!Expr::var("x").is_literal());
        assert!(!Expr::call("len", vec![Expr::var("x")]).is_literal());
    }

    #[test]
    fn target_bound_names() {
        let t = Target::Tuple(vec![Target::Var("a".into()), Target::Var("b".into())]);
        assert_eq!(t.bound_names(), vec!["a".to_string(), "b".to_string()]);
        let t = Target::Index(Expr::var("xs"), Expr::var("i"));
        assert_eq!(t.bound_names(), vec!["xs".to_string()]);
    }

    #[test]
    fn program_entry_prefers_matching_name() {
        let mut p = Program::new();
        p.funcs.push(FuncDef {
            name: "helper".into(),
            params: vec![],
            body: vec![],
            line: 1,
        });
        p.funcs.push(FuncDef {
            name: "computeDeriv".into(),
            params: vec![],
            body: vec![],
            line: 3,
        });
        assert_eq!(p.entry(Some("computeDeriv")).unwrap().name, "computeDeriv");
        assert_eq!(p.entry(Some("missing")).unwrap().name, "helper");
        assert_eq!(p.entry(None).unwrap().name, "helper");
    }
}
