//! In-tree JSON support for the grading service.
//!
//! The workspace carries **no external dependencies**, so the wire format of
//! `afg-service` and the `--json` output of the experiment binaries cannot
//! come from `serde`.  This crate provides the three pieces they need:
//!
//! * [`Json`] — a JSON document as a plain Rust value (objects preserve
//!   insertion order so serialized output is deterministic),
//! * a strict RFC 8259 parser ([`parse_json`]) and a serializer
//!   ([`Json::to_string`] / [`Json::to_pretty`]),
//! * the [`ToJson`] / [`FromJson`] trait layer that the public report types
//!   of `afg-core` and `afg-bench` implement.
//!
//! # Example
//!
//! ```
//! use afg_json::{parse_json, Json};
//!
//! let doc = parse_json(r#"{"cost": 1, "rules": ["RANR"]}"#)?;
//! assert_eq!(doc.get("cost").and_then(Json::as_i64), Some(1));
//! assert_eq!(doc.to_string(), r#"{"cost":1,"rules":["RANR"]}"#);
//! # Ok::<(), afg_json::JsonError>(())
//! ```

mod parse;
mod value;

pub use parse::{parse_json, JsonError};
pub use value::Json;

/// Serialization into a [`Json`] document.
pub trait ToJson {
    /// Renders `self` as a JSON value.
    fn to_json(&self) -> Json;
}

/// Deserialization from a [`Json`] document.
pub trait FromJson: Sized {
    /// Reconstructs a value from its JSON rendering.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] describing the first missing or mistyped
    /// field.
    fn from_json(json: &Json) -> Result<Self, JsonError>;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for i64 {
    fn to_json(&self) -> Json {
        Json::Int(*self)
    }
}

impl ToJson for usize {
    fn to_json(&self) -> Json {
        Json::Int(*self as i64)
    }
}

impl ToJson for u64 {
    fn to_json(&self) -> Json {
        // Counters beyond i64::MAX are unrepresentable in interoperable
        // JSON integers; saturate rather than silently wrap.
        Json::Int(i64::try_from(*self).unwrap_or(i64::MAX))
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        self.as_slice().to_json()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(value) => value.to_json(),
            None => Json::Null,
        }
    }
}

impl ToJson for std::time::Duration {
    /// Durations serialize as fractional milliseconds — the unit every
    /// latency-shaped field of the service API uses.
    fn to_json(&self) -> Json {
        Json::Float(self.as_secs_f64() * 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn scalar_conversions() {
        assert_eq!(true.to_json(), Json::Bool(true));
        assert_eq!(7i64.to_json(), Json::Int(7));
        assert_eq!(7usize.to_json(), Json::Int(7));
        assert_eq!(u64::MAX.to_json(), Json::Int(i64::MAX));
        assert_eq!("hi".to_json(), Json::Str("hi".into()));
        assert_eq!(None::<i64>.to_json(), Json::Null);
        assert_eq!(
            vec![1i64, 2].to_json(),
            Json::Array(vec![Json::Int(1), Json::Int(2)])
        );
    }

    #[test]
    fn durations_become_milliseconds() {
        assert_eq!(Duration::from_micros(1500).to_json(), Json::Float(1.5),);
    }
}
