//! A cancellable portfolio: race several strategies, keep the first proof.
//!
//! CEGIS and enumeration have complementary strengths — SAT-guided search
//! shines when coordinated multi-site corrections are needed, while
//! cost-ordered enumeration wins on tiny choice spaces where encoding
//! overhead dominates.  Rather than guessing per problem, the portfolio
//! runs every registered strategy concurrently (plain `std::thread`, no
//! external dependencies) against the same borrowed choice program and
//! oracle, and the moment one of them returns a **definitive** outcome
//! (already correct, proven-minimal repair, or proven no-repair) the
//! others are cancelled through their shared [`CancelToken`] child and the
//! winner's result is returned.
//!
//! The merged [`SynthesisStats`] report the *total* work of the race (all
//! racers' counters summed) while `strategy` names the winner, so
//! experiment output can attribute both the answer and the cost.

use std::time::Instant;

use afg_eml::ChoiceProgram;
use afg_interp::EquivalenceOracle;

use crate::cegis::CegisSolver;
use crate::config::{SynthesisConfig, SynthesisOutcome, WarmStart};
use crate::enumerate::EnumerativeSolver;
use crate::strategy::{CancelToken, SearchStrategy};

/// Races a set of [`SearchStrategy`] implementations on std threads.
pub struct PortfolioSolver {
    strategies: Vec<Box<dyn SearchStrategy>>,
}

impl PortfolioSolver {
    /// The default portfolio: CEGIS racing enumeration.
    pub fn new() -> PortfolioSolver {
        PortfolioSolver::with_strategies(vec![
            Box::new(CegisSolver::new()),
            Box::new(EnumerativeSolver::new()),
        ])
    }

    /// A portfolio over an explicit strategy set (must be non-empty).
    pub fn with_strategies(strategies: Vec<Box<dyn SearchStrategy>>) -> PortfolioSolver {
        assert!(!strategies.is_empty(), "a portfolio needs strategies");
        PortfolioSolver { strategies }
    }

    /// The registered strategy names, in race order.
    pub fn strategy_names(&self) -> Vec<&'static str> {
        self.strategies.iter().map(|s| s.name()).collect()
    }
}

impl Default for PortfolioSolver {
    fn default() -> PortfolioSolver {
        PortfolioSolver::new()
    }
}

impl SearchStrategy for PortfolioSolver {
    fn name(&self) -> &'static str {
        "portfolio"
    }

    fn synthesize_with(
        &self,
        program: &ChoiceProgram,
        oracle: &EquivalenceOracle,
        config: &SynthesisConfig,
        cancel: &CancelToken,
    ) -> SynthesisOutcome {
        self.synthesize_with_hint(program, oracle, config, None, cancel)
    }

    /// Races the strategies, handing each one the transferred warm-start
    /// hypothesis (strategies that cannot exploit it ignore it).
    fn synthesize_with_hint(
        &self,
        program: &ChoiceProgram,
        oracle: &EquivalenceOracle,
        config: &SynthesisConfig,
        warm: Option<&WarmStart>,
        cancel: &CancelToken,
    ) -> SynthesisOutcome {
        if self.strategies.len() == 1 {
            return self.strategies[0].synthesize_with_hint(program, oracle, config, warm, cancel);
        }
        let start = Instant::now();
        // One shared race token, child of the caller's: an outer
        // cancellation stops every racer, while declaring a winner below
        // cancels only this race.
        let race = cancel.child();

        // Racers run on their own threads; hand each one the caller's
        // trace position so racer spans nest under the grade's search
        // span (purely observational — losers still get cancelled the
        // same way).
        let trace = afg_obs::current_handle();

        let (winner, mut others) = std::thread::scope(|scope| {
            let (sender, receiver) = std::sync::mpsc::channel();
            for strategy in &self.strategies {
                let sender = sender.clone();
                let race = race.clone();
                let trace = trace.clone();
                scope.spawn(move || {
                    let _guard = trace.map(afg_obs::TraceHandle::install);
                    let mut span = afg_obs::span("racer");
                    span.attr("strategy", strategy.name());
                    let outcome =
                        strategy.synthesize_with_hint(program, oracle, config, warm, &race);
                    // The receiver hangs up only after all results arrived;
                    // a send can therefore only fail on a panicked receiver,
                    // in which case the scope propagates the panic anyway.
                    let _ = sender.send(outcome);
                });
            }
            drop(sender);

            let mut winner: Option<SynthesisOutcome> = None;
            let mut others: Vec<SynthesisOutcome> = Vec::new();
            while let Ok(outcome) = receiver.recv() {
                if winner.is_none() && outcome.is_definitive() {
                    // First proof wins; losers stand down cooperatively.
                    race.cancel();
                    winner = Some(outcome);
                } else {
                    others.push(outcome);
                }
            }
            (winner, others)
        });

        let mut outcome = match winner {
            Some(outcome) => outcome,
            // Nobody finished with a proof (budgets ran out, or the caller
            // cancelled us): fall back to the best effort — the cheapest
            // repair found, else any timeout report.
            None => {
                let best_index = others
                    .iter()
                    .enumerate()
                    .filter(|(_, o)| o.solution().is_some())
                    .min_by_key(|(_, o)| o.solution().expect("filtered").cost)
                    .map(|(index, _)| index)
                    .unwrap_or(0);
                others.swap_remove(best_index)
            }
        };

        // Merge: the outcome (and its strategy attribution) is the
        // winner's; the counters cover the whole race.  A definitive
        // winner keeps its own wall-clock flag — its proof is
        // deterministic even though the losers were cancelled mid-flight;
        // a non-definitive fallback inherits any racer's clock stop, since
        // an idle machine might have let that racer do better.
        let definitive = outcome.is_definitive();
        if let Some(stats) = outcome.stats_mut() {
            for other_stats in others.iter().filter_map(SynthesisOutcome::stats) {
                stats.absorb_work(other_stats);
                if !definitive {
                    stats.wall_clock_limited |= other_stats.wall_clock_limited;
                }
            }
            stats.elapsed = start.elapsed();
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afg_eml::{apply_error_model, library};
    use afg_interp::{EquivalenceConfig, EquivalenceOracle};
    use afg_parser::parse_program;

    const REFERENCE: &str = "\
def computeDeriv(poly_list_int):
    result = []
    for i in range(len(poly_list_int)):
        result += [i * poly_list_int[i]]
    if len(poly_list_int) == 1:
        return result
    else:
        return result[1:]
";

    fn oracle() -> EquivalenceOracle {
        let reference = parse_program(REFERENCE).unwrap();
        EquivalenceOracle::from_reference(
            &reference,
            EquivalenceConfig {
                entry: Some("computeDeriv".into()),
                ..EquivalenceConfig::default()
            },
        )
    }

    fn buggy_choice_program() -> afg_eml::ChoiceProgram {
        let student = parse_program(
            "def computeDeriv(poly):\n    if len(poly) == 1:\n        return [0]\n    out = []\n    for i in range(0, len(poly)):\n        out.append(i * poly[i])\n    return out\n",
        )
        .unwrap();
        apply_error_model(
            &student,
            Some("computeDeriv"),
            &library::compute_deriv_model(),
        )
        .unwrap()
    }

    #[test]
    fn portfolio_finds_the_minimal_repair_and_names_a_winner() {
        let cp = buggy_choice_program();
        let outcome = PortfolioSolver::new().synthesize(&cp, &oracle(), &SynthesisConfig::fast());
        let solution = outcome.solution().expect("fixable");
        assert_eq!(solution.cost, 1);
        assert!(solution.minimal, "portfolio winners carry proofs");
        assert!(
            ["cegis", "enum"].contains(&solution.stats.strategy),
            "winner must be one of the racers, got '{}'",
            solution.stats.strategy
        );
        // Merged counters cover at least the winner's own work.
        assert!(solution.stats.candidates_checked >= 1);
    }

    #[test]
    fn portfolio_agrees_with_its_members_on_correct_submissions() {
        let student = parse_program(
            "def computeDeriv(poly):\n    if len(poly) == 1:\n        return [0]\n    out = []\n    for i in range(1, len(poly)):\n        out.append(i * poly[i])\n    return out\n",
        )
        .unwrap();
        let cp = apply_error_model(
            &student,
            Some("computeDeriv"),
            &library::compute_deriv_model(),
        )
        .unwrap();
        let outcome = PortfolioSolver::new().synthesize(&cp, &oracle(), &SynthesisConfig::fast());
        assert_eq!(outcome, SynthesisOutcome::AlreadyCorrect);
    }

    #[test]
    fn external_cancellation_reaches_every_racer() {
        let cp = buggy_choice_program();
        let cancel = CancelToken::new();
        cancel.cancel();
        let outcome = PortfolioSolver::new().synthesize_with(
            &cp,
            &oracle(),
            &SynthesisConfig::fast(),
            &cancel,
        );
        // With everyone pre-cancelled nobody can prove anything.
        assert!(!outcome.is_definitive());
    }

    #[test]
    fn single_strategy_portfolio_delegates() {
        let cp = buggy_choice_program();
        let portfolio = PortfolioSolver::with_strategies(vec![Box::new(EnumerativeSolver::new())]);
        assert_eq!(portfolio.strategy_names(), vec!["enum"]);
        let outcome = portfolio.synthesize(&cp, &oracle(), &SynthesisConfig::fast());
        assert_eq!(outcome.solution().expect("fixable").stats.strategy, "enum");
    }
}
