//! The autograder: the end-to-end pipeline of Figure 3.
//!
//! `student.py` → *Program Rewriter* (error model) → M̃PY → *Sketch
//! Translator / Solver* (choice encoding + CEGISMIN) → *Feedback Generator*.

use std::error::Error;
use std::fmt;
use std::time::Instant;

use afg_ast::Program;
use afg_eml::{apply_error_model, ErrorModel, TransformError};
use afg_interp::{EquivalenceConfig, EquivalenceOracle};
use afg_parser::{parse_program, ParseError};
use afg_synth::{Backend, SynthesisConfig, SynthesisOutcome};

use crate::feedback::{corrections_from_assignment, Feedback};

/// Errors raised while *setting up* a grader (problems with the instructor's
/// inputs, not with student submissions).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraderError {
    /// The reference implementation does not parse.
    ReferenceSyntax(ParseError),
    /// The reference implementation defines no function with the entry name.
    MissingEntry {
        /// The requested entry-function name.
        entry: String,
    },
    /// A parameter of the entry function lacks the type suffix that drives
    /// bounded input enumeration (`poly_list_int`, `n_int`, …).
    UntypedParam {
        /// The entry-function name.
        entry: String,
        /// The offending parameter, as written.
        param: String,
    },
    /// The error model is ill-formed.
    Model(TransformError),
}

impl fmt::Display for GraderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraderError::ReferenceSyntax(err) => write!(f, "reference implementation: {err}"),
            GraderError::MissingEntry { entry } => write!(
                f,
                "reference implementation: no function named '{entry}' \
                 (the graded entry function must be defined)"
            ),
            GraderError::UntypedParam { entry, param } => write!(
                f,
                "reference implementation: parameter '{param}' of '{entry}' has no \
                 type suffix; declare one (e.g. '{param}_int' or '{param}_list_int') \
                 so the equivalence oracle can enumerate bounded inputs"
            ),
            GraderError::Model(err) => write!(f, "error model: {err}"),
        }
    }
}

impl Error for GraderError {}

/// Configuration of the grading pipeline.
#[derive(Debug, Clone, Default)]
pub struct GraderConfig {
    /// Bounded input space and execution limits for equivalence checking.
    pub equivalence: EquivalenceConfig,
    /// Search budget for the synthesizer.
    pub synthesis: SynthesisConfig,
    /// Which synthesis back end to run.
    pub backend: Backend,
}

impl GraderConfig {
    /// A small budget suitable for tests.
    pub fn fast() -> GraderConfig {
        GraderConfig {
            equivalence: EquivalenceConfig::default(),
            synthesis: SynthesisConfig::fast(),
            backend: Backend::Cegis,
        }
    }
}

/// The result of grading one student submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GradeOutcome {
    /// The submission does not parse (excluded from the paper's test set).
    SyntaxError(ParseError),
    /// The submission is behaviourally equivalent to the reference.
    Correct,
    /// The submission is incorrect and the tool found minimal corrections.
    Feedback(Feedback),
    /// The submission is incorrect and the error model cannot repair it
    /// (the paper's "completely incorrect / big conceptual error" bucket).
    CannotFix,
    /// The search exceeded its time or candidate budget.
    Timeout,
}

impl GradeOutcome {
    /// Whether feedback (or a correctness verdict) was produced.
    pub fn feedback(&self) -> Option<&Feedback> {
        match self {
            GradeOutcome::Feedback(feedback) => Some(feedback),
            _ => None,
        }
    }
}

/// The automated feedback generator for one assignment.
///
/// Holds the instructor's inputs — the reference implementation, the graded
/// function's name and the error model — plus the cached equivalence oracle,
/// and grades any number of student submissions against them.
#[derive(Debug, Clone)]
pub struct Autograder {
    reference: Program,
    entry: String,
    model: ErrorModel,
    config: GraderConfig,
    oracle: EquivalenceOracle,
}

impl Autograder {
    /// Builds a grader from the reference implementation's source code.
    ///
    /// # Errors
    ///
    /// Returns [`GraderError::ReferenceSyntax`] if the reference does not
    /// parse, [`GraderError::MissingEntry`] if it defines no function named
    /// `entry`, and [`GraderError::UntypedParam`] if a parameter of the
    /// entry function lacks a type suffix — each is an instructor mistake
    /// better rejected at construction time than discovered as misbehaviour
    /// halfway through grading a class.
    pub fn new(
        reference_source: &str,
        entry: &str,
        model: ErrorModel,
        config: GraderConfig,
    ) -> Result<Autograder, GraderError> {
        let reference = parse_program(reference_source).map_err(GraderError::ReferenceSyntax)?;
        Autograder::from_program(reference, entry, model, config)
    }

    /// Builds a grader from an already-parsed reference implementation,
    /// applying the same validation as [`Autograder::new`].
    pub fn from_program(
        reference: Program,
        entry: &str,
        model: ErrorModel,
        config: GraderConfig,
    ) -> Result<Autograder, GraderError> {
        validate_reference(&reference, entry)?;
        let mut equivalence = config.equivalence.clone();
        equivalence.entry = Some(entry.to_string());
        let oracle = EquivalenceOracle::from_reference(&reference, equivalence);
        Ok(Autograder {
            reference,
            entry: entry.to_string(),
            model,
            config,
            oracle,
        })
    }

    /// The reference implementation being graded against.
    pub fn reference(&self) -> &Program {
        &self.reference
    }

    /// The name of the graded function.
    pub fn entry(&self) -> &str {
        &self.entry
    }

    /// The error model in use.
    pub fn model(&self) -> &ErrorModel {
        &self.model
    }

    /// The equivalence oracle (exposed for experiment harnesses).
    pub fn oracle(&self) -> &EquivalenceOracle {
        &self.oracle
    }

    /// Replaces the error model (used by the Figure 14(b)/(c) experiments
    /// that sweep over models of increasing size).
    pub fn set_model(&mut self, model: ErrorModel) {
        self.model = model;
    }

    /// Grades a submission given as source text.
    pub fn grade_source(&self, student_source: &str) -> GradeOutcome {
        match parse_program(student_source) {
            Err(err) => GradeOutcome::SyntaxError(err),
            Ok(program) => self.grade_program(&program),
        }
    }

    /// Grades an already-parsed submission.
    pub fn grade_program(&self, student: &Program) -> GradeOutcome {
        self.grade_program_traced(student).outcome
    }

    /// Grades a submission and additionally returns what the fingerprint
    /// cache needs: the minimal choice assignment behind a
    /// [`GradeOutcome::Feedback`] (so an alpha-equivalent submission can
    /// *replay* the repair instead of re-running synthesis) and whether the
    /// verdict is deterministic enough to cache at all.
    pub(crate) fn grade_program_traced(&self, student: &Program) -> TracedGrade {
        let start = Instant::now();
        let choice_program = match apply_error_model(student, Some(&self.entry), &self.model) {
            Ok(cp) => cp,
            Err(TransformError::NoEntryFunction) => {
                return TracedGrade::cacheable(GradeOutcome::CannotFix)
            }
            Err(err) => {
                // An ill-formed model is an instructor error; surface it as
                // an unfixable submission rather than panicking mid-batch.
                debug_assert!(false, "error model rejected at grading time: {err}");
                return TracedGrade::cacheable(GradeOutcome::CannotFix);
            }
        };
        let outcome =
            self.config
                .backend
                .synthesize(&choice_program, &self.oracle, &self.config.synthesis);
        match outcome {
            SynthesisOutcome::AlreadyCorrect => TracedGrade::cacheable(GradeOutcome::Correct),
            SynthesisOutcome::Fixed(solution) => {
                let corrections =
                    corrections_from_assignment(&choice_program, &solution.assignment);
                let trace = RepairTrace {
                    signature: crate::cache::choice_signature(&choice_program),
                    assignment: solution.assignment,
                    stats: solution.stats.clone(),
                };
                TracedGrade {
                    outcome: GradeOutcome::Feedback(Feedback {
                        corrections,
                        cost: solution.cost,
                        elapsed: start.elapsed(),
                        stats: solution.stats,
                    }),
                    repair: Some(trace),
                    cacheable: true,
                }
            }
            SynthesisOutcome::NoRepairFound(_) => TracedGrade::cacheable(GradeOutcome::CannotFix),
            SynthesisOutcome::Timeout(stats) => TracedGrade {
                outcome: GradeOutcome::Timeout,
                repair: None,
                // A timeout is only a *property of the submission* when the
                // search exhausted its candidate budget — that replays
                // identically anywhere.  A wall-clock timeout depends on
                // machine load: caching it would pin a transient verdict
                // onto every future alpha-equivalent submission.
                cacheable: stats.candidates_checked > self.config.synthesis.max_candidates,
            },
        }
    }
}

/// The result of [`Autograder::grade_program_traced`].
pub(crate) struct TracedGrade {
    pub outcome: GradeOutcome,
    /// The replayable repair, for `Feedback` outcomes.
    pub repair: Option<RepairTrace>,
    /// Whether the verdict may be stored in the fingerprint cache.
    pub cacheable: bool,
}

impl TracedGrade {
    fn cacheable(outcome: GradeOutcome) -> TracedGrade {
        TracedGrade {
            outcome,
            repair: None,
            cacheable: true,
        }
    }
}

/// The replayable part of a synthesis result (see
/// [`Autograder::grade_program_traced`]).
#[derive(Debug, Clone)]
pub(crate) struct RepairTrace {
    /// The minimal-cost selection of correction options.
    pub assignment: afg_eml::ChoiceAssignment,
    /// Structural signature of the choice program the assignment indexes
    /// into (rule names and option counts; alpha-invariant).
    pub signature: u64,
    /// Synthesizer counters from the original run.
    pub stats: afg_synth::SynthesisStats,
}

/// Construction-time validation of the instructor's reference program.
fn validate_reference(reference: &Program, entry: &str) -> Result<(), GraderError> {
    let Some(func) = reference.funcs.iter().rev().find(|f| f.name == entry) else {
        return Err(GraderError::MissingEntry {
            entry: entry.to_string(),
        });
    };
    for param in &func.params {
        if param.ty == afg_ast::types::MpyType::Dynamic {
            return Err(GraderError::UntypedParam {
                entry: entry.to_string(),
                param: param.name.clone(),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use afg_eml::library;

    const REFERENCE: &str = "\
def computeDeriv(poly_list_int):
    result = []
    for i in range(len(poly_list_int)):
        result += [i * poly_list_int[i]]
    if len(poly_list_int) == 1:
        return result
    else:
        return result[1:]
";

    fn grader() -> Autograder {
        Autograder::new(
            REFERENCE,
            "computeDeriv",
            library::compute_deriv_model(),
            GraderConfig::fast(),
        )
        .unwrap()
    }

    #[test]
    fn rejects_unparsable_reference() {
        let err = Autograder::new("def f(:\n", "f", ErrorModel::new("m"), GraderConfig::fast())
            .unwrap_err();
        assert!(matches!(err, GraderError::ReferenceSyntax(_)));
        assert!(err.to_string().contains("reference implementation"));
    }

    #[test]
    fn rejects_reference_without_the_entry_function() {
        let err = Autograder::new(
            "def helper(x_int):\n    return x_int\n",
            "computeDeriv",
            ErrorModel::new("m"),
            GraderConfig::fast(),
        )
        .unwrap_err();
        assert_eq!(
            err,
            GraderError::MissingEntry {
                entry: "computeDeriv".to_string()
            }
        );
        assert!(
            err.to_string().contains("no function named 'computeDeriv'"),
            "{err}"
        );
    }

    #[test]
    fn rejects_reference_with_untyped_parameters() {
        let err = Autograder::new(
            "def f(poly):\n    return poly\n",
            "f",
            ErrorModel::new("m"),
            GraderConfig::fast(),
        )
        .unwrap_err();
        assert_eq!(
            err,
            GraderError::UntypedParam {
                entry: "f".to_string(),
                param: "poly".to_string()
            }
        );
        let rendered = err.to_string();
        assert!(rendered.contains("parameter 'poly' of 'f'"), "{rendered}");
        assert!(rendered.contains("poly_int"), "{rendered}");

        // A mix of typed and untyped parameters names the untyped one.
        let err = Autograder::new(
            "def f(n_int, acc):\n    return acc\n",
            "f",
            ErrorModel::new("m"),
            GraderConfig::fast(),
        )
        .unwrap_err();
        assert!(matches!(err, GraderError::UntypedParam { param, .. } if param == "acc"));
    }

    #[test]
    fn classifies_syntax_errors() {
        let outcome = grader().grade_source("def computeDeriv(poly)\n    return poly\n");
        assert!(matches!(outcome, GradeOutcome::SyntaxError(_)));
    }

    #[test]
    fn classifies_correct_submissions() {
        let outcome = grader().grade_source(
            "def computeDeriv(poly):\n    if len(poly) == 1:\n        return [0]\n    d = []\n    for i in range(1, len(poly)):\n        d.append(i * poly[i])\n    return d\n",
        );
        assert_eq!(outcome, GradeOutcome::Correct);
    }

    #[test]
    fn produces_feedback_for_off_by_one_iteration() {
        let outcome = grader().grade_source(
            "def computeDeriv(poly):\n    if len(poly) == 1:\n        return [0]\n    d = []\n    for i in range(0, len(poly)):\n        d.append(i * poly[i])\n    return d\n",
        );
        let feedback = outcome.feedback().expect("expected feedback");
        // Several single-correction repairs exist (start the range at 1, or
        // drop the leading element of the result); the minimiser must find
        // one of them, i.e. exactly one correction.
        assert_eq!(feedback.cost, 1);
        assert_eq!(feedback.corrections.len(), 1);
        let rendered = feedback.to_string();
        assert!(
            rendered.contains("The program requires 1 change:"),
            "{rendered}"
        );
        assert!(rendered.contains("in line"), "{rendered}");
    }

    #[test]
    fn unfixable_submissions_are_reported() {
        let outcome = grader().grade_source("def computeDeriv(poly):\n    return 42\n");
        assert!(matches!(
            outcome,
            GradeOutcome::CannotFix | GradeOutcome::Timeout
        ));
        // A program with no function at all cannot be graded either.
        let outcome = grader().grade_source("x = 1\n");
        assert!(matches!(
            outcome,
            GradeOutcome::SyntaxError(_) | GradeOutcome::CannotFix
        ));
    }
}
