//! Routing: one complete [`Request`] in, one [`Reply`] out.
//!
//! The router is pure compute — no sockets, no blocking I/O — so both the
//! epoll reactor's CPU workers and the legacy thread-per-connection mode
//! call the same `handle`, and responses are byte-identical across
//! `--io epoll` / `--io threads` by construction.

use afg_json::{Json, ToJson};
use afg_obs::TraceRing;

use crate::handlers::{handle_batch, handle_grade, handle_register};
use crate::http::{encode_response, Request};
use crate::server::ServiceState;

/// A fully-formed response.  Handlers return this rather than
/// `(status, Json)` so routes can carry non-JSON bodies (`/metrics` is
/// Prometheus text) and per-response headers (`X-Afg-Trace-Id`).
pub(crate) struct Reply {
    pub(crate) status: u16,
    pub(crate) content_type: &'static str,
    pub(crate) headers: Vec<(&'static str, String)>,
    pub(crate) body: String,
}

impl Reply {
    pub(crate) fn json(status: u16, body: Json) -> Reply {
        Reply {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body: body.to_string(),
        }
    }

    /// Serializes the response through the shared wire encoder.
    pub(crate) fn encode(&self, keep_alive: bool) -> Vec<u8> {
        encode_response(
            self.status,
            self.content_type,
            &self.headers,
            &self.body,
            keep_alive,
        )
    }
}

pub(crate) fn error_json(message: &str) -> Json {
    Json::object([("error", Json::str(message))])
}

/// Routes one request.  Paths:
/// `POST /problems`, `POST /problems/{id}/grade`,
/// `POST /problems/{id}/grade/batch`, `GET /stats`, `GET /healthz`,
/// `GET /metrics` (Prometheus text), `GET /debug/traces`.
pub(crate) fn handle(request: &Request, state: &ServiceState) -> Reply {
    let registry = &state.registry;
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => Reply::json(
            200,
            Json::object([
                ("status", Json::str("ok")),
                ("problems", registry.len().to_json()),
            ]),
        ),
        ("GET", ["stats"]) => Reply::json(200, registry.stats_json()),
        ("GET", ["metrics"]) => Reply {
            status: 200,
            content_type: afg_obs::CONTENT_TYPE,
            headers: Vec::new(),
            body: afg_obs::global().render_prometheus(),
        },
        ("GET", ["debug", "traces"]) => Reply::json(200, traces_json(&state.traces)),
        ("POST", ["problems"]) => {
            let (status, body) = handle_register(request, registry);
            Reply::json(status, body)
        }
        ("POST", ["problems", id, "grade"]) => handle_grade(request, state, id),
        ("POST", ["problems", id, "grade", "batch"]) => handle_batch(request, state, id),
        (_, ["healthz" | "stats" | "metrics"])
        | (_, ["debug", "traces"])
        | (_, ["problems", ..]) => Reply::json(405, error_json("method not allowed")),
        _ => Reply::json(404, error_json("no such route")),
    }
}

/// The `/debug/traces` rendering of the recent-trace ring: every span's
/// name, parent index, offset and duration, oldest trace first.
fn traces_json(ring: &TraceRing) -> Json {
    let traces: Vec<Json> = ring
        .snapshot()
        .iter()
        .map(|trace| {
            let spans: Vec<Json> = trace
                .spans()
                .iter()
                .map(|span| {
                    let attrs: Vec<(String, Json)> = span
                        .attrs
                        .iter()
                        .map(|(key, value)| (key.to_string(), Json::str(value)))
                        .collect();
                    Json::object([
                        ("name", Json::str(span.name)),
                        (
                            "parent",
                            match span.parent {
                                Some(parent) => parent.to_json(),
                                None => Json::Null,
                            },
                        ),
                        ("start_ms", span.start.to_json()),
                        ("duration_ms", span.duration.to_json()),
                        ("attrs", Json::Object(attrs)),
                    ])
                })
                .collect();
            Json::object([
                ("id", Json::str(trace.id().to_string())),
                ("started_unix_ms", trace.started_unix().to_json()),
                ("duration_ms", trace.duration().to_json()),
                ("spans", Json::Array(spans)),
            ])
        })
        .collect();
    Json::object([
        ("capacity", ring.capacity().to_json()),
        ("traces", Json::Array(traces)),
    ])
}
