//! Workspace integration tests: the full pipeline (parser → error model →
//! synthesis → feedback) exercised across crates through the facade.

use autofeedback::corpus::{generate_corpus, problems, CorpusSpec, Origin};
use autofeedback::eml::{apply_error_model, library};
use autofeedback::interp::{EquivalenceConfig, EquivalenceOracle};
use autofeedback::parser::parse_program;
use autofeedback::synth::{Backend, SynthesisConfig};
use autofeedback::{Autograder, GradeOutcome, GraderConfig};

/// The paper's Figure 2(a) submission must be fixable and the repaired
/// program must be verified equivalent to the reference.
#[test]
fn figure_2a_submission_is_repaired_and_verified() {
    let problem = problems::compute_deriv();
    let grader = problem.autograder(GraderConfig::fast());
    let submission = "\
def computeDeriv(poly):
    deriv = []
    zero = 0
    if (len(poly) == 1):
        return deriv
    for e in range(0, len(poly)):
        if (poly[e] == 0):
            zero += 1
        else:
            deriv.append(poly[e]*e)
    return deriv
";
    match grader.grade_source(submission) {
        GradeOutcome::Feedback(feedback) => {
            // The paper reports three coordinated corrections for this one.
            assert!(
                (1..=4).contains(&feedback.cost),
                "unexpected number of corrections: {}",
                feedback.cost
            );
            assert_eq!(feedback.cost, feedback.corrections.len());
            let rendered = feedback.to_string();
            assert!(rendered.contains("The program requires"));
        }
        other => panic!("expected feedback for the Figure 2(a) submission, got {other:?}"),
    }
}

/// Every correct variant of every benchmark problem grades as Correct, and
/// every conceptual mutant grades as incorrect (feedback or cannot-fix).
#[test]
fn benchmark_problems_grade_their_own_variants_consistently() {
    for problem in problems::all_problems() {
        let grader = problem.autograder(GraderConfig::fast());
        for variant in &problem.correct_variants {
            assert_eq!(
                grader.grade_source(variant),
                GradeOutcome::Correct,
                "correct variant of {} misgraded",
                problem.id
            );
        }
        for mutant in &problem.conceptual_mutants {
            match grader.grade_source(mutant) {
                GradeOutcome::Correct => {
                    panic!("conceptual mutant of {} graded as correct", problem.id)
                }
                GradeOutcome::SyntaxError(err) => {
                    panic!("conceptual mutant of {} does not parse: {err}", problem.id)
                }
                _ => {}
            }
        }
    }
}

/// The repaired program returned by the synthesizer really is equivalent to
/// the reference, for both back ends, and both find the same minimal cost.
#[test]
fn backends_agree_and_produce_verified_repairs() {
    let problem = problems::compute_deriv();
    let reference = parse_program(problem.reference).unwrap();
    let oracle = EquivalenceOracle::from_reference(
        &reference,
        EquivalenceConfig {
            entry: Some(problem.entry.to_string()),
            ..EquivalenceConfig::default()
        },
    );
    let student = parse_program(
        "def computeDeriv(poly):\n    if len(poly) == 1:\n        return [0]\n    d = []\n    for i in range(0, len(poly)):\n        d.append(i * poly[i])\n    return d\n",
    )
    .unwrap();
    let choices = apply_error_model(&student, Some(problem.entry), &problem.model).unwrap();

    let cegis = Backend::Cegis.synthesize(&choices, &oracle, &SynthesisConfig::fast());
    let enumerative = Backend::Enumerative.synthesize(&choices, &oracle, &SynthesisConfig::fast());
    let cegis_solution = cegis.solution().expect("cegis repairs the submission");
    let enum_solution = enumerative
        .solution()
        .expect("enumeration repairs the submission");
    assert_eq!(cegis_solution.cost, enum_solution.cost);

    for solution in [cegis_solution, enum_solution] {
        let repaired = choices.concretize(&solution.assignment);
        assert!(
            oracle.is_equivalent(&repaired),
            "repair is not equivalent to the reference"
        );
    }
}

/// Grading a small synthetic class end to end: counters are consistent and a
/// healthy fraction of the incorrect submissions receive feedback.
#[test]
fn synthetic_class_is_graded_with_consistent_counters() {
    let problem = problems::iter_power();
    let grader = problem.autograder(GraderConfig::fast());
    let corpus = generate_corpus(&problem, &CorpusSpec::table1_like(24, 99));
    assert_eq!(corpus.len(), 24);

    let mut syntax = 0;
    let mut correct = 0;
    let mut fixed = 0;
    let mut other = 0;
    for submission in &corpus {
        match grader.grade_source(&submission.source) {
            GradeOutcome::SyntaxError(_) => {
                syntax += 1;
                assert_eq!(
                    submission.origin,
                    Origin::SyntaxError,
                    "only corrupted sources may fail to parse"
                );
            }
            GradeOutcome::Correct => correct += 1,
            GradeOutcome::Feedback(feedback) => {
                fixed += 1;
                assert!(feedback.cost >= 1);
            }
            GradeOutcome::CannotFix | GradeOutcome::Timeout => other += 1,
        }
    }
    assert_eq!(syntax + correct + fixed + other, 24);
    assert!(
        fixed > 0,
        "at least one incorrect submission should be repaired"
    );
    assert!(correct > 0);
}

/// The textual EML front end and the programmatic library produce models
/// that can both drive the grader.
#[test]
fn textual_and_programmatic_models_both_grade() {
    let reference = problems::compute_deriv().reference;
    let textual = autofeedback::eml::parse_error_model(
        "simple",
        "RETR: return a -> [0]\nRANR: range(a0, a1) -> range(a0 + 1, a1)\nEQF: a0 == a1 -> False\n",
    )
    .unwrap();
    let grader_text =
        Autograder::new(reference, "computeDeriv", textual, GraderConfig::fast()).unwrap();
    let grader_lib = Autograder::new(
        reference,
        "computeDeriv",
        library::section_2_1_model(),
        GraderConfig::fast(),
    )
    .unwrap();

    let submission = "\
def computeDeriv(poly):
    deriv = []
    if len(poly) == 1:
        return deriv
    for e in range(0, len(poly)):
        deriv.append(poly[e] * e)
    return deriv
";
    let a = grader_text.grade_source(submission);
    let b = grader_lib.grade_source(submission);
    assert!(a.feedback().is_some(), "textual model failed: {a:?}");
    assert!(b.feedback().is_some(), "library model failed: {b:?}");
}
