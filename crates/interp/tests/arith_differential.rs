//! Differential property test of the integer arithmetic primitives.
//!
//! `binary_op`/`unary_op` implement Python integer semantics over `i64`
//! with explicit `Overflow` errors.  The intended meaning is simple to
//! state in a wider type: compute the mathematical result in `i128`; if it
//! fits in `i64` that is the answer, otherwise the operation overflows.
//! This test sweeps a seeded SplitMix64 stream of operand pairs — biased
//! hard toward the corners where the two can drift apart (both-negative
//! `//`/`%` sign handling, `i64::MIN`/`i64::MAX` boundaries, tiny bases
//! with huge exponents) — and compares the production implementation
//! against that independent i128 oracle for `+ - * // % **`.
//!
//! The sweep found (and now guards) three real divergences: `**` rejected
//! any exponent above 63 even for bases 0/1/-1, and `i64::MIN // -1` /
//! `i64::MIN % -1` overflowed the native operators instead of reporting
//! `Overflow` / returning 0.

use afg_ast::ops::{BinOp, UnaryOp};
use afg_interp::{binary_op, unary_op, RuntimeError, Value};

/// What the mathematical (i128-widened) semantics say an operation does.
#[derive(Debug, PartialEq, Eq)]
enum Oracle {
    /// The result fits in `i64`.
    Int(i64),
    /// The mathematical result does not fit in `i64`.
    Overflow,
    /// Division or modulo by zero.
    ZeroDivision,
    /// Negative exponent (floats are unsupported in MPY).
    Unsupported,
}

fn fits(wide: i128) -> Oracle {
    match i64::try_from(wide) {
        Ok(narrow) => Oracle::Int(narrow),
        Err(_) => Oracle::Overflow,
    }
}

/// Floor of `a / b` in i128 (`b != 0`).  Written independently of the
/// production code: `div_euclid` rounds toward negative infinity only for
/// positive divisors, and `a / b == (-a) / (-b)` maps the negative-divisor
/// case onto it.  No i128 overflow is reachable: |a|, |b| ≤ 2^63.
fn floor_div_i128(a: i128, b: i128) -> i128 {
    if b > 0 {
        a.div_euclid(b)
    } else {
        (-a).div_euclid(-b)
    }
}

fn oracle_binary(op: BinOp, a: i64, b: i64) -> Oracle {
    let (wa, wb) = (i128::from(a), i128::from(b));
    match op {
        BinOp::Add => fits(wa + wb),
        BinOp::Sub => fits(wa - wb),
        BinOp::Mul => fits(wa * wb),
        BinOp::Div | BinOp::FloorDiv => {
            if b == 0 {
                Oracle::ZeroDivision
            } else {
                fits(floor_div_i128(wa, wb))
            }
        }
        BinOp::Mod => {
            if b == 0 {
                Oracle::ZeroDivision
            } else {
                // Python: a == b * (a // b) + (a % b), remainder signed like b.
                fits(wa - wb * floor_div_i128(wa, wb))
            }
        }
        BinOp::Pow => {
            if b < 0 {
                return Oracle::Unsupported;
            }
            // |a| <= 1 cycles through {-1, 0, 1}; otherwise multiply in
            // i128, bailing out the moment the accumulator leaves i64 range
            // (every further multiplication only moves it further out).
            match a {
                0 => return Oracle::Int(if b == 0 { 1 } else { 0 }),
                1 => return Oracle::Int(1),
                -1 => return Oracle::Int(if b % 2 == 0 { 1 } else { -1 }),
                _ => {}
            }
            let mut acc: i128 = 1;
            for _ in 0..b {
                acc *= wa;
                if i64::try_from(acc).is_err() {
                    return Oracle::Overflow;
                }
            }
            fits(acc)
        }
    }
}

fn observed_binary(op: BinOp, a: i64, b: i64) -> Oracle {
    match binary_op(op, &Value::Int(a), &Value::Int(b)) {
        Ok(Value::Int(v)) => Oracle::Int(v),
        Ok(other) => panic!("int {op:?} produced a non-int: {other:?}"),
        Err(RuntimeError::Overflow) => Oracle::Overflow,
        Err(RuntimeError::ZeroDivision) => Oracle::ZeroDivision,
        Err(RuntimeError::Unsupported(_)) => Oracle::Unsupported,
        Err(other) => panic!("int {op:?} raised {other:?}"),
    }
}

/// The corpus crate's SplitMix64 is not a dependency of `afg-interp`, so
/// the sweep carries its own copy of the (tiny, stable) generator.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// An operand biased toward the values where i64 arithmetic diverges
    /// from the mathematical semantics: boundary constants, small numbers
    /// around zero (sign corners), and occasional full-width noise.
    fn operand(&mut self) -> i64 {
        const EDGES: [i64; 10] = [0, 1, -1, 2, -2, 63, 64, i64::MAX, i64::MIN, i64::MIN + 1];
        match self.next_u64() % 4 {
            0 => EDGES[(self.next_u64() % EDGES.len() as u64) as usize],
            1 => (self.next_u64() % 21) as i64 - 10,
            2 => {
                let magnitude = (self.next_u64() % 64) as u32;
                let base = 1i64.wrapping_shl(magnitude);
                let jitter = (self.next_u64() % 3) as i64 - 1;
                let signed = base.wrapping_add(jitter);
                // Wrapping negation keeps i64::MIN reachable on both paths.
                if self.next_u64().is_multiple_of(2) {
                    signed
                } else {
                    signed.wrapping_neg()
                }
            }
            _ => self.next_u64() as i64,
        }
    }
}

const OPS: [BinOp; 6] = [
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::FloorDiv,
    BinOp::Mod,
    BinOp::Pow,
];

#[test]
fn binary_ops_agree_with_the_i128_oracle_on_a_seeded_sweep() {
    let mut rng = SplitMix64::new(0x5106_1353_2013_0616);
    for case in 0..60_000u32 {
        let a = rng.operand();
        let mut b = rng.operand();
        let op = OPS[(rng.next_u64() % OPS.len() as u64) as usize];
        if op == BinOp::Pow {
            // Cap exponents so the oracle's multiply loop stays cheap; the
            // early-exit makes anything past ~128 steps unreachable for
            // |a| > 1, and |a| <= 1 short-circuits, so small exponents plus
            // a huge-edge sprinkle cover every branch.
            if rng.next_u64().is_multiple_of(8) {
                b = [i64::MAX, 1 << 40, 64, 63][(rng.next_u64() % 4) as usize];
            } else {
                b = (rng.next_u64() % 200) as i64 - 20;
            }
        }
        assert_eq!(
            observed_binary(op, a, b),
            oracle_binary(op, a, b),
            "case {case}: {a} {op:?} {b}"
        );
    }
}

#[test]
fn floor_div_and_mod_sweep_every_small_sign_corner_exhaustively() {
    // The randomized sweep above hits the corners with high probability;
    // this exhaustive grid makes the both-negative sign cases certain.
    for a in -12i64..=12 {
        for b in -12i64..=12 {
            for op in [BinOp::FloorDiv, BinOp::Mod] {
                assert_eq!(
                    observed_binary(op, a, b),
                    oracle_binary(op, a, b),
                    "{a} {op:?} {b}"
                );
            }
            // Python invariant: a == b * (a // b) + (a % b) whenever defined.
            if b != 0 {
                let q = match observed_binary(BinOp::FloorDiv, a, b) {
                    Oracle::Int(q) => q,
                    other => panic!("{a} // {b} -> {other:?}"),
                };
                let r = match observed_binary(BinOp::Mod, a, b) {
                    Oracle::Int(r) => r,
                    other => panic!("{a} % {b} -> {other:?}"),
                };
                assert_eq!(a, b * q + r, "{a} = {b} * {q} + {r}");
                assert!(r == 0 || (r < 0) == (b < 0), "{a} % {b} = {r}");
            }
        }
    }
}

#[test]
fn unary_negation_agrees_with_the_widened_oracle() {
    let mut rng = SplitMix64::new(0xFEED_F00D);
    for _ in 0..10_000 {
        let a = rng.operand();
        let expected = fits(-i128::from(a));
        let observed = match unary_op(UnaryOp::Neg, &Value::Int(a)) {
            Ok(Value::Int(v)) => Oracle::Int(v),
            Ok(other) => panic!("-({a}) produced {other:?}"),
            Err(RuntimeError::Overflow) => Oracle::Overflow,
            Err(other) => panic!("-({a}) raised {other:?}"),
        };
        assert_eq!(observed, expected, "-({a})");
    }
}
