//! The synthetic student-submission generator.
//!
//! Generates, for one benchmark problem, a population of submissions with
//! the same structure the paper reports in Table 1: a fraction with syntax
//! errors (removed before grading), a fraction of correct solutions (written
//! with several distinct algorithms), a large fraction of *fixable*
//! incorrect solutions (correct solutions seeded with 1–4 realistic local
//! mistakes), and a tail of unfixable submissions (big conceptual errors,
//! empty or trivial attempts).

use afg_ast::pretty;
use afg_parser::parse_program;

use crate::mutate::mutate_program;
use crate::problem::Problem;
use crate::rng::StdRng;

/// Why a generated submission looks the way it does (used for analysis and
/// debugging; the grader never sees it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Origin {
    /// A correct solution (possibly a different algorithm than the
    /// reference).
    Correct,
    /// A correct solution with `n` injected mistakes.
    Mutated(usize),
    /// A hand-written big-conceptual-error solution.
    Conceptual,
    /// An empty or trivial attempt ("completely incorrect" in §5.3).
    Trivial,
    /// A submission that does not parse.
    SyntaxError,
}

/// One generated submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Submission {
    /// The submission's source code.
    pub source: String,
    /// How it was generated.
    pub origin: Origin,
}

/// The population mix for one problem.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusSpec {
    /// Total number of submissions to generate.
    pub total: usize,
    /// Fraction that fail to parse.
    pub syntax_fraction: f64,
    /// Fraction that are correct.
    pub correct_fraction: f64,
    /// Fraction that are unfixable (conceptual errors / trivial attempts);
    /// the remainder are mutated-but-plausibly-fixable submissions.
    pub unfixable_fraction: f64,
    /// RNG seed — corpora are fully reproducible.
    pub seed: u64,
}

impl CorpusSpec {
    /// A mix loosely matching the aggregate proportions of Table 1
    /// (≈25 % syntax errors, ≈45 % of the parsable set correct, and roughly
    /// a third of the incorrect set unfixable).
    pub fn table1_like(total: usize, seed: u64) -> CorpusSpec {
        CorpusSpec {
            total,
            syntax_fraction: 0.25,
            correct_fraction: 0.35,
            unfixable_fraction: 0.12,
            seed,
        }
    }

    /// A small corpus for unit tests.
    pub fn small(seed: u64) -> CorpusSpec {
        CorpusSpec::table1_like(24, seed)
    }
}

/// Generates a corpus of submissions for a problem.
pub fn generate_corpus(problem: &Problem, spec: &CorpusSpec) -> Vec<Submission> {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut submissions = Vec::with_capacity(spec.total);
    let seeds = problem.mutation_seeds();

    let syntax_count = (spec.total as f64 * spec.syntax_fraction).round() as usize;
    let correct_count = (spec.total as f64 * spec.correct_fraction).round() as usize;
    let unfixable_count = (spec.total as f64 * spec.unfixable_fraction).round() as usize;
    let mutated_count = spec
        .total
        .saturating_sub(syntax_count + correct_count + unfixable_count);

    for _ in 0..syntax_count {
        let seed_source = rng.choose(&seeds).expect("problems have seeds");
        submissions.push(Submission {
            source: corrupt_syntax(seed_source, &mut rng),
            origin: Origin::SyntaxError,
        });
    }
    for _ in 0..correct_count {
        let seed_source = rng.choose(&seeds).expect("problems have seeds");
        submissions.push(Submission {
            source: (*seed_source).to_string(),
            origin: Origin::Correct,
        });
    }
    for i in 0..unfixable_count {
        // Alternate between the hand-written conceptual errors and trivial
        // attempts so both buckets are represented.
        if i % 2 == 0 && !problem.conceptual_mutants.is_empty() {
            let source = rng
                .choose(&problem.conceptual_mutants)
                .expect("non-empty conceptual mutants");
            submissions.push(Submission {
                source: (*source).to_string(),
                origin: Origin::Conceptual,
            });
        } else {
            submissions.push(Submission {
                source: trivial_attempt(problem, &mut rng),
                origin: Origin::Trivial,
            });
        }
    }
    for _ in 0..mutated_count {
        let seed_source = rng.choose(&seeds).expect("problems have seeds");
        let mut program = parse_program(seed_source).expect("seed solutions parse");
        let mutations = sample_mutation_count(&mut rng);
        let applied = mutate_program(&mut program, mutations, &mut rng);
        submissions.push(Submission {
            source: pretty::program_to_string(&program),
            origin: Origin::Mutated(applied.len()),
        });
    }

    rng.shuffle(&mut submissions);
    submissions
}

/// The distribution of injected-mistake counts, shaped like the paper's
/// Figure 14(a): most incorrect attempts need one or two corrections, a
/// long-ish tail needs three or four coordinated ones.
fn sample_mutation_count(rng: &mut StdRng) -> usize {
    match rng.gen_range(0..100u32) {
        0..=61 => 1,
        62..=86 => 2,
        87..=95 => 3,
        _ => 4,
    }
}

/// Produces a plausibly student-like syntax error by corrupting one line
/// (a missing colon, an unbalanced parenthesis, a dangling `=`).
fn corrupt_syntax(source: &str, rng: &mut StdRng) -> String {
    let lines: Vec<&str> = source.lines().collect();
    let which = rng.gen_range(0..lines.len());
    let mut corrupted = String::new();
    for (i, line) in lines.iter().enumerate() {
        if i == which {
            match rng.gen_range(0..3u8) {
                0 => corrupted.push_str(&line.replace(':', "")),
                1 => corrupted.push_str(&line.replace('(', "")),
                _ => {
                    corrupted.push_str(line);
                    corrupted.push_str(" =");
                }
            }
        } else {
            corrupted.push_str(line);
        }
        corrupted.push('\n');
    }
    // The targeted line may not have contained the corrupted token; make
    // sure the result really is a syntax error (students' broken files are).
    if parse_program(&corrupted).is_ok() {
        corrupted.push_str("    return ((\n");
    }
    corrupted
}

/// Produces an empty or trivial attempt.
fn trivial_attempt(problem: &Problem, rng: &mut StdRng) -> String {
    let reference = parse_program(problem.reference).expect("reference parses");
    let entry = reference.entry(Some(problem.entry)).expect("entry exists");
    let params: Vec<String> = entry.params.iter().map(|p| p.name.clone()).collect();
    let header = format!("def {}({}):", problem.entry, params.join(", "));
    match rng.gen_range(0..3u8) {
        0 => format!("{header}\n    pass\n"),
        1 => format!("{header}\n    print('hello')\n"),
        _ => format!("{header}\n    return None\n"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problems;

    #[test]
    fn corpus_has_the_requested_size_and_mix() {
        let problem = problems::compute_deriv();
        let spec = CorpusSpec::table1_like(80, 42);
        let corpus = generate_corpus(&problem, &spec);
        assert_eq!(corpus.len(), 80);
        let syntax = corpus
            .iter()
            .filter(|s| s.origin == Origin::SyntaxError)
            .count();
        let correct = corpus
            .iter()
            .filter(|s| s.origin == Origin::Correct)
            .count();
        let mutated = corpus
            .iter()
            .filter(|s| matches!(s.origin, Origin::Mutated(_)))
            .count();
        assert_eq!(syntax, 20);
        assert_eq!(correct, 28);
        assert!(mutated > 20);
    }

    #[test]
    fn corpus_is_reproducible_for_a_fixed_seed() {
        let problem = problems::iter_power();
        let a = generate_corpus(&problem, &CorpusSpec::small(7));
        let b = generate_corpus(&problem, &CorpusSpec::small(7));
        assert_eq!(a, b);
        let c = generate_corpus(&problem, &CorpusSpec::small(8));
        assert_ne!(a, c);
    }

    #[test]
    fn syntax_error_submissions_really_fail_to_parse_mostly() {
        let problem = problems::compute_deriv();
        let corpus = generate_corpus(&problem, &CorpusSpec::table1_like(60, 3));
        let syntax_subs: Vec<&Submission> = corpus
            .iter()
            .filter(|s| s.origin == Origin::SyntaxError)
            .collect();
        let failing = syntax_subs
            .iter()
            .filter(|s| parse_program(&s.source).is_err())
            .count();
        // Corruption is heuristic; the overwhelming majority must fail to parse.
        assert!(
            failing * 10 >= syntax_subs.len() * 8,
            "{failing}/{}",
            syntax_subs.len()
        );
    }

    #[test]
    fn mutated_submissions_parse() {
        let problem = problems::hangman2();
        let corpus = generate_corpus(&problem, &CorpusSpec::table1_like(40, 11));
        for submission in corpus
            .iter()
            .filter(|s| matches!(s.origin, Origin::Mutated(_)))
        {
            parse_program(&submission.source).unwrap_or_else(|e| {
                panic!("mutated submission must parse: {e}\n{}", submission.source)
            });
        }
    }

    #[test]
    fn mutation_count_distribution_is_heavy_on_single_mistakes() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut counts = [0usize; 5];
        for _ in 0..1000 {
            counts[sample_mutation_count(&mut rng)] += 1;
        }
        assert!(counts[1] > counts[2]);
        assert!(counts[2] > counts[3]);
        assert!(counts[3] > counts[4]);
        assert_eq!(counts[0], 0);
    }
}
