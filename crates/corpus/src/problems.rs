//! The benchmark problems of the paper's evaluation (Table 1).
//!
//! All problems from the first four weeks of 6.00/6.00x are implemented in
//! MPY, plus the three PEX4FUN C# exercises transliterated to MPY (the
//! algorithms are language independent).  Two substitutions, both documented
//! in DESIGN.md, follow the paper's own practice: `compBal-stdin` is graded
//! as a function over integers (floats and raw stdin are outside MPY), and
//! the stock-market dollar thresholds are scaled down so that the bounded
//! input space exercises both sides of each comparison (paper §6: "the tool
//! currently replaces them with smaller teacher-provided constant values").

use afg_eml::{library, ErrorModel, Rule, Template};
use afg_interp::Value;

use crate::problem::Problem;

/// All benchmark problems, in the order they appear in Table 1.
pub fn all_problems() -> Vec<Problem> {
    vec![
        prod_by_sum(),
        odd_tuples(),
        compute_deriv(),
        eval_poly(),
        comp_bal(),
        iter_power(),
        recur_power(),
        iter_gcd(),
        hangman1(),
        hangman2(),
        stock_market_1(),
        stock_market_2(),
        restaurant_rush(),
    ]
}

/// Looks a problem up by its identifier.
pub fn problem(id: &str) -> Option<Problem> {
    all_problems().into_iter().find(|p| p.id == id)
}

fn ints(values: &[i64]) -> Vec<Value> {
    values.iter().map(|&v| Value::Int(v)).collect()
}

/// `prodBySum-6.00`: multiply two numbers using only addition.
pub fn prod_by_sum() -> Problem {
    Problem {
        id: "prodBySum",
        name: "prodBySum-6.00",
        entry: "iterMul",
        reference: "\
def iterMul(a_int, b_int):
    result = 0
    for i in range(b_int):
        result += a_int
    return result
",
        model: ErrorModel::new("prodBySum")
            .with_rule(library::initr())
            .with_rule(library::ranr1())
            .with_rule(library::compr())
            .with_rule(library::arith_op_rule())
            .with_rule(library::retr_generic()),
        correct_variants: vec![
            "\
def iterMul(a, b):
    total = 0
    count = 0
    while count < b:
        total = total + a
        count = count + 1
    return total
",
            "\
def iterMul(a, b):
    result = 0
    for i in range(0, b):
        result = result + a
    return result
",
        ],
        conceptual_mutants: vec![
            "\
def iterMul(a, b):
    return a + b
",
        ],
        test_inputs: vec![ints(&[3, 2]), ints(&[0, 3]), ints(&[2, 0]), ints(&[-2, 3])],
    }
}

/// `oddTuples`: every other element of a tuple.
pub fn odd_tuples() -> Problem {
    Problem {
        id: "oddTuples",
        name: "oddTuples-6.00x",
        entry: "oddTuples",
        reference: "\
def oddTuples(aTup_tuple_int):
    result = ()
    for i in range(len(aTup_tuple_int)):
        if i % 2 == 0:
            result += (aTup_tuple_int[i],)
    return result
",
        model: ErrorModel::new("oddTuples")
            .with_rule(library::ranr1())
            .with_rule(library::ranr2())
            .with_rule(library::compr())
            .with_rule(library::indr())
            .with_rule(library::initr())
            .with_rule(library::const_tweak()),
        correct_variants: vec![
            "\
def oddTuples(aTup):
    result = ()
    i = 0
    while i < len(aTup):
        result = result + (aTup[i],)
        i = i + 2
    return result
",
        ],
        conceptual_mutants: vec![
            "\
def oddTuples(aTup):
    return aTup
",
        ],
        test_inputs: vec![
            vec![Value::Tuple(vec![
                Value::Int(1),
                Value::Int(2),
                Value::Int(3),
            ])],
            vec![Value::Tuple(vec![])],
            vec![Value::Tuple(vec![Value::Int(5)])],
        ],
    }
}

/// `compDeriv`: derivative of a polynomial represented as a coefficient list.
pub fn compute_deriv() -> Problem {
    Problem {
        id: "compDeriv",
        name: "compDeriv-6.00x",
        entry: "computeDeriv",
        reference: "\
def computeDeriv(poly_list_int):
    result = []
    for i in range(len(poly_list_int)):
        result += [i * poly_list_int[i]]
    if len(poly_list_int) == 1:
        return result
    else:
        return result[1:]
",
        model: library::compute_deriv_model(),
        correct_variants: vec![
            "\
def computeDeriv(poly):
    if len(poly) == 1:
        return [0]
    deriv = []
    for i in range(1, len(poly)):
        deriv.append(i * poly[i])
    return deriv
",
            "\
def computeDeriv(poly):
    deriv = []
    i = 1
    while i < len(poly):
        deriv = deriv + [poly[i] * i]
        i = i + 1
    if len(poly) == 1:
        return [0]
    return deriv
",
        ],
        conceptual_mutants: vec![
            "\
def computeDeriv(poly):
    return poly
",
            "\
def computeDeriv(poly):
    total = 0
    for c in poly:
        total += c
    return [total]
",
        ],
        test_inputs: vec![
            vec![Value::int_list([2, -3, 1, 4])],
            vec![Value::int_list([7])],
            vec![Value::int_list([0, 0])],
            vec![Value::int_list([1, 2, 3])],
        ],
    }
}

/// `evalPoly`: evaluate a polynomial at a point.
pub fn eval_poly() -> Problem {
    Problem {
        id: "evalPoly",
        name: "evalPoly-6.00x",
        entry: "evaluatePoly",
        reference: "\
def evaluatePoly(poly_list_int, x_int):
    result = 0
    for i in range(len(poly_list_int)):
        result += poly_list_int[i] * x_int ** i
    return result
",
        model: ErrorModel::new("evalPoly")
            .with_rule(library::ranr1())
            .with_rule(library::ranr2())
            .with_rule(library::arith_op_rule())
            .with_rule(library::indr())
            .with_rule(library::initr())
            .with_rule(library::compr())
            .with_rule(library::const_tweak()),
        correct_variants: vec![
            "\
def evaluatePoly(poly, x):
    total = 0
    power = 1
    for c in poly:
        total = total + c * power
        power = power * x
    return total
",
        ],
        conceptual_mutants: vec![
            // The paper's Figure 13(a): uses list.index, which returns the
            // first occurrence and is wrong for repeated coefficients.
            "\
def evaluatePoly(poly, x):
    result = 0
    for i in list(poly):
        result += i * x ** poly.index(i)
    return result
",
        ],
        test_inputs: vec![
            vec![Value::int_list([0, 0, 5]), Value::Int(2)],
            vec![Value::int_list([1]), Value::Int(3)],
            vec![Value::int_list([]), Value::Int(1)],
        ],
    }
}

/// `compBal`: the stdin/print instalment problem, graded as an integer
/// function that prints the month-by-month balance (see module docs).
pub fn comp_bal() -> Problem {
    Problem {
        id: "compBal",
        name: "compBal-stdin-6.00",
        entry: "computeBalances",
        reference: "\
def computeBalances(balance_int, payment_int):
    month = 1
    while month <= 3:
        balance = balance_int - payment_int * month
        print(month, balance)
        month += 1
    return balance_int - payment_int * 3
",
        model: ErrorModel::new("compBal")
            .with_rule(Rule::drop_print("DROPPRINT"))
            .with_rule(library::initr())
            .with_rule(library::compr())
            .with_rule(library::arith_op_rule())
            .with_rule(library::retr_generic())
            .with_rule(library::const_tweak()),
        correct_variants: vec![
            "\
def computeBalances(balance, payment):
    for month in range(1, 4):
        print(month, balance - payment * month)
    return balance - payment * 3
",
        ],
        conceptual_mutants: vec![
            "\
def computeBalances(balance, payment):
    print(balance)
    return balance
",
        ],
        test_inputs: vec![ints(&[3, 1]), ints(&[0, 0]), ints(&[4, 2])],
    }
}

/// `iterPower`: exponentiation by repeated multiplication.
pub fn iter_power() -> Problem {
    Problem {
        id: "iterPower",
        name: "iterPower-6.00x",
        entry: "iterPower",
        reference: "\
def iterPower(base_int, exp_int):
    result = 1
    for i in range(exp_int):
        result *= base_int
    return result
",
        model: ErrorModel::new("iterPower")
            .with_rule(library::initr())
            .with_rule(library::ranr1())
            .with_rule(library::arith_op_rule())
            .with_rule(library::compr())
            .with_rule(library::retr_generic()),
        correct_variants: vec![
            "\
def iterPower(base, exp):
    result = 1
    count = 0
    while count < exp:
        result = result * base
        count = count + 1
    return result
",
        ],
        conceptual_mutants: vec![
            "\
def iterPower(base, exp):
    return base * exp
",
        ],
        test_inputs: vec![ints(&[2, 3]), ints(&[3, 0]), ints(&[0, 2]), ints(&[-2, 2])],
    }
}

/// `recurPower`: exponentiation by recursion.
pub fn recur_power() -> Problem {
    Problem {
        id: "recurPower",
        name: "recurPower-6.00x",
        entry: "recurPower",
        reference: "\
def recurPower(base_int, exp_int):
    if exp_int <= 0:
        return 1
    return base_int * recurPower(base_int, exp_int - 1)
",
        model: ErrorModel::new("recurPower")
            .with_rule(library::compr())
            .with_rule(library::arith_op_rule())
            .with_rule(library::retr_generic())
            .with_rule(library::initr())
            .with_rule(library::indr()),
        correct_variants: vec![
            "\
def recurPower(base, exp):
    if exp > 0:
        return base * recurPower(base, exp - 1)
    return 1
",
        ],
        conceptual_mutants: vec![
            "\
def recurPower(base, exp):
    return base
",
        ],
        test_inputs: vec![ints(&[2, 3]), ints(&[5, 0]), ints(&[3, 1])],
    }
}

/// `iterGCD`: greatest common divisor, iteratively.
pub fn iter_gcd() -> Problem {
    Problem {
        id: "iterGCD",
        name: "iterGCD-6.00x",
        entry: "gcdIter",
        reference: "\
def gcdIter(a_int, b_int):
    if a_int < 0 or b_int < 0:
        return 0
    if a_int == 0 or b_int == 0:
        return a_int + b_int
    test = min(a_int, b_int)
    while a_int % test != 0 or b_int % test != 0:
        test -= 1
    return test
",
        model: ErrorModel::new("iterGCD")
            .with_rule(library::compr())
            .with_rule(library::initr())
            .with_rule(library::arith_op_rule())
            .with_rule(library::indr())
            .with_rule(library::retr_generic())
            .with_rule(library::const_tweak()),
        correct_variants: vec![
            "\
def gcdIter(a, b):
    if a < 0 or b < 0:
        return 0
    while b != 0:
        temp = a % b
        a = b
        b = temp
    return a
",
        ],
        conceptual_mutants: vec![
            "\
def gcdIter(a, b):
    return min(a, b)
",
        ],
        test_inputs: vec![ints(&[4, 6]), ints(&[3, 5]), ints(&[0, 4]), ints(&[2, 2])],
    }
}

/// `hangman1`: has the word been fully guessed?
pub fn hangman1() -> Problem {
    Problem {
        id: "hangman1",
        name: "hangman1-str-6.00x",
        entry: "isWordGuessed",
        reference: "\
def isWordGuessed(secretWord_str, lettersGuessed_list_str):
    for letter in secretWord_str:
        if letter not in lettersGuessed_list_str:
            return False
    return True
",
        model: ErrorModel::new("hangman1")
            .with_rule(library::compr())
            .with_rule(library::retr_bool())
            .with_rule(library::initr())
            .with_rule(library::indr()),
        correct_variants: vec![
            "\
def isWordGuessed(secretWord, lettersGuessed):
    guessed = True
    for letter in secretWord:
        if letter in lettersGuessed:
            guessed = guessed
        else:
            guessed = False
    return guessed
",
        ],
        conceptual_mutants: vec![
            "\
def isWordGuessed(secretWord, lettersGuessed):
    for letter in lettersGuessed:
        if letter in secretWord:
            return True
    return False
",
        ],
        test_inputs: vec![
            vec![
                Value::Str("ab".into()),
                Value::List(vec![Value::Str("a".into()), Value::Str("b".into())]),
            ],
            vec![
                Value::Str("ab".into()),
                Value::List(vec![Value::Str("a".into())]),
            ],
            vec![Value::Str("".into()), Value::List(vec![])],
        ],
    }
}

/// `hangman2`: show the partially guessed word.
pub fn hangman2() -> Problem {
    Problem {
        id: "hangman2",
        name: "hangman2-str-6.00x",
        entry: "getGuessedWord",
        reference: "\
def getGuessedWord(secretWord_str, lettersGuessed_list_str):
    result = ''
    for letter in secretWord_str:
        if letter in lettersGuessed_list_str:
            result += letter
        else:
            result += '_'
    return result
",
        model: ErrorModel::new("hangman2")
            .with_rule(library::compr())
            .with_rule(library::initr())
            .with_rule(library::indr())
            .with_rule(library::retr_generic())
            .with_rule(library::const_tweak()),
        correct_variants: vec![
            "\
def getGuessedWord(secretWord, lettersGuessed):
    shown = ''
    for i in range(len(secretWord)):
        if secretWord[i] in lettersGuessed:
            shown = shown + secretWord[i]
        else:
            shown = shown + '_'
    return shown
",
        ],
        conceptual_mutants: vec![
            // The paper's Figure 13(b): replaces the *guessed* letters by '_'
            // instead of the not-yet-guessed ones.
            "\
def getGuessedWord(secretWord, lettersGuessed):
    for letter in lettersGuessed:
        secretWord = secretWord.replace(letter, '_')
    return secretWord
",
        ],
        test_inputs: vec![
            vec![
                Value::Str("abb".into()),
                Value::List(vec![Value::Str("b".into())]),
            ],
            vec![Value::Str("ab".into()), Value::List(vec![])],
        ],
    }
}

/// `stock-market-I` (PEX4FUN, C# in the paper): is the stock stable —
/// fewer than 2 day-to-day changes larger than 2 (thresholds scaled to the
/// bounded input space)?
pub fn stock_market_1() -> Problem {
    Problem {
        id: "stockMarketI",
        name: "stock-market-I(C#)",
        entry: "isStable",
        reference: "\
def isStable(prices_list_int):
    big = 0
    for i in range(1, len(prices_list_int)):
        change = prices_list_int[i] - prices_list_int[i - 1]
        if change < 0:
            change = 0 - change
        if change > 2:
            big += 1
    if big < 2:
        return True
    return False
",
        model: ErrorModel::new("stockMarketI")
            .with_rule(library::compr())
            .with_rule(library::initr())
            .with_rule(library::indr())
            .with_rule(library::ranr2())
            .with_rule(library::retr_bool())
            .with_rule(library::const_tweak()),
        correct_variants: vec![
            "\
def isStable(prices):
    count = 0
    i = 1
    while i < len(prices):
        diff = prices[i] - prices[i - 1]
        if diff > 2 or diff < -2:
            count = count + 1
        i = i + 1
    return count < 2
",
        ],
        conceptual_mutants: vec![
            "\
def isStable(prices):
    return len(prices) < 3
",
        ],
        test_inputs: vec![
            vec![Value::int_list([0, 3, 0])],
            vec![Value::int_list([1, 1, 1])],
            vec![Value::int_list([])],
        ],
    }
}

/// `stock-market-II`: is the max-min spread over a window small
/// (threshold scaled down)?
pub fn stock_market_2() -> Problem {
    Problem {
        id: "stockMarketII",
        name: "stock-market-II(C#)",
        entry: "smallSpread",
        reference: "\
def smallSpread(prices_list_int, start_int, end_int):
    if start_int < 0 or end_int >= len(prices_list_int) or start_int > end_int:
        return False
    lowest = prices_list_int[start_int]
    highest = prices_list_int[start_int]
    for i in range(start_int, end_int + 1):
        if prices_list_int[i] < lowest:
            lowest = prices_list_int[i]
        if prices_list_int[i] > highest:
            highest = prices_list_int[i]
    return highest - lowest < 4
",
        model: ErrorModel::new("stockMarketII")
            .with_rule(library::compr())
            .with_rule(library::indr())
            .with_rule(library::ranr2())
            .with_rule(library::initr())
            .with_rule(library::retr_bool())
            .with_rule(library::const_tweak()),
        correct_variants: vec![
            "\
def smallSpread(prices, start, end):
    if start < 0 or end >= len(prices) or start > end:
        return False
    window = prices[start:end + 1]
    return max(window) - min(window) < 4
",
        ],
        conceptual_mutants: vec![
            "\
def smallSpread(prices, start, end):
    return True
",
        ],
        test_inputs: vec![
            vec![Value::int_list([1, 2, 3]), Value::Int(0), Value::Int(2)],
            vec![Value::int_list([0, 3]), Value::Int(0), Value::Int(1)],
            vec![Value::int_list([1]), Value::Int(0), Value::Int(0)],
        ],
    }
}

/// `restaurant rush`: maximum contiguous subsequence sum (Kadane's problem).
pub fn restaurant_rush() -> Problem {
    Problem {
        id: "restaurantRush",
        name: "restaurant rush (C#)",
        entry: "bestRush",
        reference: "\
def bestRush(orders_list_int):
    best = 0
    current = 0
    for x in orders_list_int:
        current = current + x
        if current < 0:
            current = 0
        if current > best:
            best = current
    return best
",
        model: ErrorModel::new("restaurantRush")
            .with_rule(library::compr())
            .with_rule(library::initr())
            .with_rule(library::indr())
            .with_rule(library::arith_op_rule())
            .with_rule(library::retr_generic())
            .with_rule(library::const_tweak()),
        correct_variants: vec![
            "\
def bestRush(orders):
    best = 0
    for i in range(len(orders)):
        total = 0
        for j in range(i, len(orders)):
            total = total + orders[j]
            if total > best:
                best = total
    return best
",
        ],
        conceptual_mutants: vec![
            "\
def bestRush(orders):
    total = 0
    for x in orders:
        total += x
    return total
",
        ],
        test_inputs: vec![
            vec![Value::int_list([2, -1, 3])],
            vec![Value::int_list([-2, -1])],
            vec![Value::int_list([])],
        ],
    }
}

/// Incremental error models E0..E5 for a problem (paper Figure 14(b)); E0 is
/// the empty model, E_k keeps the first `k` rules.
pub fn incremental_models(problem: &Problem, steps: usize) -> Vec<ErrorModel> {
    (0..=steps.min(problem.model.len()))
        .map(|k| problem.model.truncated(k))
        .collect()
}

/// A tiny extra rule used by the richest models in the Figure 14(b) sweep.
pub fn extra_constant_rule() -> Rule {
    Rule::expr(
        "CONSTR",
        afg_eml::Pattern::AnyConst("n".into()),
        vec![Template::meta_plus("n", 1), Template::meta_plus("n", -1)],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirteen_problems_cover_the_papers_benchmarks() {
        let problems = all_problems();
        assert_eq!(problems.len(), 13);
        assert!(problem("compDeriv").is_some());
        assert!(problem("doesNotExist").is_none());
    }

    #[test]
    fn every_problem_validates() {
        // Correct variants really are equivalent to the reference, and
        // conceptual mutants really are wrong — on the bounded input space.
        for problem in all_problems() {
            problem.validate().unwrap();
        }
    }

    #[test]
    fn incremental_models_grow_by_one_rule() {
        let problem = compute_deriv();
        let models = incremental_models(&problem, 5);
        assert_eq!(models.len(), 6);
        for (k, model) in models.iter().enumerate() {
            assert_eq!(model.len(), k);
        }
    }
}
