//! The [`Json`] value type, its accessors and the serializer.

use std::fmt;

/// A JSON document.
///
/// Integers and floats are kept apart so that counters survive a round trip
/// exactly (`17` never resurfaces as `17.0`).  Objects are stored as an
/// insertion-ordered `Vec` of pairs — serialization is deterministic and the
/// handful of keys a grading request carries make linear lookup cheaper than
/// a map.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without a fractional part or exponent.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, in insertion order.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn object<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds a string value.
    pub fn str(value: impl Into<String>) -> Json {
        Json::Str(value.into())
    }

    /// The value under `key`, when `self` is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The boolean value, when `self` is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The integer value, when `self` is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric value, when `self` is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(v) => Some(*v as f64),
            Json::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The string slice, when `self` is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, when `self` is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value pairs, when `self` is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Whether `self` is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Serializes with two-space indentation (for humans; the service always
    /// sends the compact form).
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self, Some(0));
        out.push('\n');
        out
    }
}

impl fmt::Display for Json {
    /// The compact serialization (no insignificant whitespace).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_value(&mut out, self, None);
        f.write_str(&out)
    }
}

/// `indent`: `None` for compact output, `Some(depth)` for pretty output.
fn write_value(out: &mut String, value: &Json, indent: Option<usize>) {
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Int(v) => out.push_str(&v.to_string()),
        Json::Float(v) => write_float(out, *v),
        Json::Str(s) => write_string(out, s),
        Json::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_child_indent(out, indent);
                write_value(out, item, indent.map(|d| d + 1));
            }
            write_close_indent(out, indent);
            out.push(']');
        }
        Json::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_child_indent(out, indent);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent.map(|d| d + 1));
            }
            write_close_indent(out, indent);
            out.push('}');
        }
    }
}

fn write_child_indent(out: &mut String, indent: Option<usize>) {
    if let Some(depth) = indent {
        out.push('\n');
        out.push_str(&"  ".repeat(depth + 1));
    }
}

fn write_close_indent(out: &mut String, indent: Option<usize>) {
    if let Some(depth) = indent {
        out.push('\n');
        out.push_str(&"  ".repeat(depth));
    }
}

/// JSON has no NaN/Infinity; they serialize as `null` like every mainstream
/// encoder.  Finite floats use Rust's shortest round-trip rendering, with a
/// `.0` appended to integral values so they re-parse as floats.
fn write_float(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
        return;
    }
    let rendered = v.to_string();
    out.push_str(&rendered);
    if !rendered.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_serialization_is_deterministic() {
        let doc = Json::object([
            ("b", Json::Int(2)),
            ("a", Json::Array(vec![Json::Null, Json::Bool(false)])),
            ("s", Json::str("x\"y\n")),
        ]);
        assert_eq!(doc.to_string(), r#"{"b":2,"a":[null,false],"s":"x\"y\n"}"#);
    }

    #[test]
    fn floats_round_trip_as_floats() {
        assert_eq!(Json::Float(2.0).to_string(), "2.0");
        assert_eq!(Json::Float(2.5).to_string(), "2.5");
        assert_eq!(Json::Float(f64::NAN).to_string(), "null");
        assert_eq!(Json::Int(2).to_string(), "2");
    }

    #[test]
    fn accessors_select_by_shape() {
        let doc = Json::object([("n", Json::Int(3)), ("s", Json::str("hi"))]);
        assert_eq!(doc.get("n").and_then(Json::as_i64), Some(3));
        assert_eq!(doc.get("n").and_then(Json::as_f64), Some(3.0));
        assert_eq!(doc.get("s").and_then(Json::as_str), Some("hi"));
        assert_eq!(doc.get("missing"), None);
        assert!(Json::Null.is_null());
        assert_eq!(Json::Int(1).get("x"), None);
    }

    #[test]
    fn pretty_output_indents_and_terminates() {
        let doc = Json::object([("xs", Json::Array(vec![Json::Int(1)]))]);
        assert_eq!(doc.to_pretty(), "{\n  \"xs\": [\n    1\n  ]\n}\n");
        assert_eq!(Json::Object(vec![]).to_pretty(), "{}\n");
    }

    #[test]
    fn control_characters_escape_as_unicode() {
        assert_eq!(Json::str("\u{01}").to_string(), "\"\\u0001\"");
    }
}
