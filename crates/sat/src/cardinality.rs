//! Cardinality constraints via the sequential-counter encoding.
//!
//! CEGISMIN repeatedly tightens the bound "total number of corrections
//! `< k`" (paper Algorithm 1, line 13).  The synthesis encoding expresses
//! the total cost as the number of true choice-selector variables, so the
//! bound is an *at-most-(k−1)* cardinality constraint.  The sequential
//! counter encoding (Sinz 2005) is used because it is small, propagates
//! well, and is easy to audit.

use crate::literal::Lit;
use crate::solver::Solver;

/// Adds clauses enforcing "at most `bound` of `lits` are true".
///
/// Uses the sequential-counter encoding with `lits.len() * bound` auxiliary
/// variables.  A `bound` of zero forces every literal false; a bound no
/// smaller than `lits.len()` adds nothing.
///
/// Returns `false` if the solver became unsatisfiable while adding clauses.
pub fn add_at_most(solver: &mut Solver, lits: &[Lit], bound: usize) -> bool {
    let n = lits.len();
    if bound >= n {
        return true;
    }
    if bound == 0 {
        for &lit in lits {
            if !solver.add_clause(&[lit.negated()]) {
                return false;
            }
        }
        return true;
    }

    // registers[i][j] ⇔ at least j+1 of lits[0..=i] are true.
    let mut registers: Vec<Vec<Lit>> = Vec::with_capacity(n);
    for _ in 0..n {
        let row: Vec<Lit> = (0..bound).map(|_| solver.new_var().positive()).collect();
        registers.push(row);
    }

    // First element: r[0][0] ⇔ lits[0]; higher counts impossible.
    if !solver.add_implication(lits[0], registers[0][0]) {
        return false;
    }
    for &register in registers[0].iter().skip(1) {
        if !solver.add_clause(&[register.negated()]) {
            return false;
        }
    }

    for i in 1..n {
        // Count carries over: r[i-1][j] → r[i][j].
        for (&prev, &cur) in registers[i - 1].iter().zip(&registers[i]) {
            if !solver.add_implication(prev, cur) {
                return false;
            }
        }
        // A true literal increments the count: lits[i] → r[i][0] and
        // lits[i] ∧ r[i-1][j-1] → r[i][j].
        if !solver.add_implication(lits[i], registers[i][0]) {
            return false;
        }
        for j in 1..bound {
            if !solver.add_clause(&[
                lits[i].negated(),
                registers[i - 1][j - 1].negated(),
                registers[i][j],
            ]) {
                return false;
            }
        }
        // Overflow is forbidden: lits[i] ∧ r[i-1][bound-1] → ⊥.
        if !solver.add_clause(&[lits[i].negated(), registers[i - 1][bound - 1].negated()]) {
            return false;
        }
    }
    true
}

/// Adds clauses enforcing "at least `bound` of `lits` are true", by the dual
/// at-most constraint on the negations.
///
/// Returns `false` if the solver became unsatisfiable while adding clauses.
pub fn add_at_least(solver: &mut Solver, lits: &[Lit], bound: usize) -> bool {
    if bound == 0 {
        return true;
    }
    if bound > lits.len() {
        // Impossible: force a contradiction.
        return solver.add_clause(&[]);
    }
    let negated: Vec<Lit> = lits.iter().map(|l| l.negated()).collect();
    add_at_most(solver, &negated, lits.len() - bound)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::SatResult;

    fn count_true(model: &crate::literal::Model, lits: &[Lit]) -> usize {
        lits.iter().filter(|&&l| model.lit_is_true(l)).count()
    }

    #[test]
    fn at_most_bound_is_respected() {
        for bound in 0..=4 {
            let mut solver = Solver::new();
            let vars = solver.new_vars(4);
            let lits: Vec<Lit> = vars.iter().map(|v| v.positive()).collect();
            assert!(add_at_most(&mut solver, &lits, bound));
            match solver.solve() {
                SatResult::Sat(model) => assert!(count_true(&model, &lits) <= bound),
                SatResult::Unsat => panic!("at-most-{bound} over 4 literals must be satisfiable"),
            }
        }
    }

    #[test]
    fn at_most_zero_forces_all_false() {
        let mut solver = Solver::new();
        let vars = solver.new_vars(3);
        let lits: Vec<Lit> = vars.iter().map(|v| v.positive()).collect();
        assert!(add_at_most(&mut solver, &lits, 0));
        let model = match solver.solve() {
            SatResult::Sat(m) => m,
            SatResult::Unsat => panic!("satisfiable"),
        };
        assert_eq!(count_true(&model, &lits), 0);
    }

    #[test]
    fn at_most_conflicts_with_forced_literals() {
        let mut solver = Solver::new();
        let vars = solver.new_vars(3);
        let lits: Vec<Lit> = vars.iter().map(|v| v.positive()).collect();
        for l in &lits {
            assert!(solver.add_clause(&[*l]));
        }
        add_at_most(&mut solver, &lits, 2);
        assert_eq!(solver.solve(), SatResult::Unsat);
    }

    #[test]
    fn at_least_bound_is_respected() {
        for bound in 0..=3 {
            let mut solver = Solver::new();
            let vars = solver.new_vars(3);
            let lits: Vec<Lit> = vars.iter().map(|v| v.positive()).collect();
            assert!(add_at_least(&mut solver, &lits, bound));
            match solver.solve() {
                SatResult::Sat(model) => assert!(count_true(&model, &lits) >= bound),
                SatResult::Unsat => panic!("at-least-{bound} over 3 literals must be satisfiable"),
            }
        }
    }

    #[test]
    fn at_least_more_than_available_is_unsat() {
        let mut solver = Solver::new();
        let vars = solver.new_vars(2);
        let lits: Vec<Lit> = vars.iter().map(|v| v.positive()).collect();
        add_at_least(&mut solver, &lits, 3);
        assert_eq!(solver.solve(), SatResult::Unsat);
    }

    #[test]
    fn combined_window_of_counts() {
        // Exactly 2 of 4 literals: at most 2 and at least 2.
        let mut solver = Solver::new();
        let vars = solver.new_vars(4);
        let lits: Vec<Lit> = vars.iter().map(|v| v.positive()).collect();
        assert!(add_at_most(&mut solver, &lits, 2));
        assert!(add_at_least(&mut solver, &lits, 2));
        match solver.solve() {
            SatResult::Sat(model) => assert_eq!(count_true(&model, &lits), 2),
            SatResult::Unsat => panic!("exactly-2 of 4 must be satisfiable"),
        }
    }
}
