//! Textual front end for EML error models.
//!
//! The paper describes EML as a high-level language the instructor writes
//! correction rules in.  This module provides a concrete syntax for the
//! practical subset our benchmark models need and parses it into
//! [`ErrorModel`] values.  One rule per line:
//!
//! ```text
//! # The simplified computeDeriv model of paper §2.1
//! RETR:  return a       ->  [0]
//! RANR:  range(a0, a1)  ->  range(a0 + 1, a1)
//! EQF:   a0 == a1       ->  False
//! ```
//!
//! * Left-hand sides are MPY expressions over *metavariables*: names
//!   starting with `a` or `b` match any expression, names starting with `v`
//!   match only variables, names starting with `n` match only integer
//!   constants.  Two statement-shaped forms are recognised: `return a`
//!   (return rewrites) and `v = n` (constant-initialisation rewrites).
//! * The special form `cmp(a0, a1)` matches a comparison with any operator.
//! * Right-hand sides are `|`-separated alternatives, each an MPY expression
//!   over the bound metavariables.  `?x` stands for "any variable in scope"
//!   and `cmpany(a0, a1)` for "the comparison with any relational operator".
//! * Blank lines and `#` comments are ignored.
//!
//! Richer rules (nested option sets, primed sub-terms, statement insertion)
//! are built with the programmatic API in [`crate::rules`] /
//! [`crate::library`]; the textual form covers the common cases so an
//! instructor can iterate quickly.

use std::error::Error;
use std::fmt;

use afg_ast::ops::BinOp;
use afg_ast::Expr;
use afg_parser::parse_expr;

use crate::rules::{CmpTemplate, ErrorModel, Pattern, Rule, Template};

/// Error raised while parsing a textual error model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EmlParseError {
    /// 1-based line in the model text.
    pub line: u32,
    /// Description of the problem.
    pub message: String,
}

impl EmlParseError {
    fn new(line: u32, message: impl Into<String>) -> EmlParseError {
        EmlParseError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for EmlParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "error model syntax error at line {}: {}",
            self.line, self.message
        )
    }
}

impl Error for EmlParseError {}

/// Parses a textual error model.
///
/// # Errors
///
/// Returns an [`EmlParseError`] describing the first malformed rule.
pub fn parse_error_model(name: &str, text: &str) -> Result<ErrorModel, EmlParseError> {
    let mut model = ErrorModel::new(name);
    for (idx, raw_line) in text.lines().enumerate() {
        let line_no = (idx + 1) as u32;
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with('#') {
            afg_cov::cov_hit!();
            continue;
        }
        model.rules.push(parse_rule(line, line_no)?);
    }
    Ok(model)
}

fn parse_rule(line: &str, line_no: u32) -> Result<Rule, EmlParseError> {
    afg_cov::cov_hit!();
    let (name, rest) = match line.split_once(':') {
        Some((name, rest)) => (name.trim().to_string(), rest.trim()),
        None => {
            afg_cov::cov_hit!();
            return Err(EmlParseError::new(line_no, "expected 'NAME: lhs -> rhs'"));
        }
    };
    let (lhs_text, rhs_text) = match rest.split_once("->") {
        Some((lhs, rhs)) => (lhs.trim(), rhs.trim()),
        None => {
            return Err(EmlParseError::new(
                line_no,
                "expected '->' between the rule sides",
            ))
        }
    };
    if lhs_text.is_empty() || rhs_text.is_empty() {
        return Err(EmlParseError::new(
            line_no,
            "both sides of the rule must be non-empty",
        ));
    }

    // Statement-shaped left-hand sides.
    if let Some(ret_expr) = lhs_text.strip_prefix("return ") {
        afg_cov::cov_hit!();
        let metavars = vec![ret_expr.trim().to_string()];
        if metavars[0] != "a" {
            return Err(EmlParseError::new(
                line_no,
                "return rules must be written as 'return a'",
            ));
        }
        let alternatives = parse_alternatives(rhs_text, &metavars, line_no)?;
        return Ok(Rule::ret(name, alternatives));
    }
    if lhs_text == "v = n" {
        afg_cov::cov_hit!();
        let metavars = vec!["v".to_string(), "n".to_string()];
        let alternatives = parse_alternatives(rhs_text, &metavars, line_no)?;
        return Ok(Rule::init(name, alternatives));
    }

    // Expression rules.
    afg_cov::cov_hit!();
    let lhs_expr = parse_mpy(lhs_text, line_no)?;
    let pattern = expr_to_pattern(&lhs_expr);
    let mut metavars = Vec::new();
    collect_metavars(&pattern, &mut metavars);
    let alternatives = parse_alternatives(rhs_text, &metavars, line_no)?;
    Ok(Rule::expr(name, pattern, alternatives))
}

fn parse_alternatives(
    rhs_text: &str,
    metavars: &[String],
    line_no: u32,
) -> Result<Vec<Template>, EmlParseError> {
    rhs_text
        .split('|')
        .map(|alt| {
            let alt = alt.trim();
            if alt.starts_with('?') {
                afg_cov::cov_hit!();
                return Ok(Template::AnyScopeVar);
            }
            let expr = parse_mpy(alt, line_no)?;
            Ok(expr_to_template(&expr, metavars))
        })
        .collect()
}

/// Parses an MPY expression after rewriting the EML-only tokens (`?x`) into
/// placeholder identifiers the MPY lexer accepts.
fn parse_mpy(text: &str, line_no: u32) -> Result<Expr, EmlParseError> {
    let rewritten = text.replace('?', "__any_");
    parse_expr(&rewritten).map_err(|e| EmlParseError::new(line_no, e.message))
}

fn is_metavar(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some('a') | Some('b') | Some('v') | Some('n') => chars.all(|c| c.is_ascii_digit()),
        _ => false,
    }
}

fn expr_to_pattern(expr: &Expr) -> Pattern {
    match expr {
        Expr::Var(name) if name.starts_with('v') && is_metavar(name) => {
            Pattern::AnyVar(name.clone())
        }
        Expr::Var(name) if name.starts_with('n') && is_metavar(name) => {
            Pattern::AnyConst(name.clone())
        }
        Expr::Var(name) if is_metavar(name) => Pattern::AnyExpr(name.clone()),
        Expr::Var(name) => Pattern::Var(name.clone()),
        Expr::Int(v) => Pattern::Int(*v),
        Expr::Bool(b) => Pattern::Bool(*b),
        Expr::List(items) => Pattern::List(items.iter().map(expr_to_pattern).collect()),
        Expr::Index(base, index) => Pattern::Index(
            Box::new(expr_to_pattern(base)),
            Box::new(expr_to_pattern(index)),
        ),
        Expr::Call(name, args) if name == "cmp" && args.len() == 2 => Pattern::Compare(
            None,
            Box::new(expr_to_pattern(&args[0])),
            Box::new(expr_to_pattern(&args[1])),
        ),
        Expr::Call(name, args) => {
            Pattern::Call(name.clone(), args.iter().map(expr_to_pattern).collect())
        }
        Expr::MethodCall(recv, name, args) => Pattern::MethodCall(
            Box::new(expr_to_pattern(recv)),
            name.clone(),
            args.iter().map(expr_to_pattern).collect(),
        ),
        Expr::BinOp(op, left, right) => Pattern::BinOp(
            Some(*op),
            Box::new(expr_to_pattern(left)),
            Box::new(expr_to_pattern(right)),
        ),
        Expr::Compare(op, left, right) => Pattern::Compare(
            Some(*op),
            Box::new(expr_to_pattern(left)),
            Box::new(expr_to_pattern(right)),
        ),
        // Anything else is matched structurally through a wildcard; the
        // textual subset does not need finer patterns.
        _ => Pattern::Wildcard,
    }
}

fn collect_metavars(pattern: &Pattern, out: &mut Vec<String>) {
    match pattern {
        Pattern::AnyExpr(name) | Pattern::AnyVar(name) | Pattern::AnyConst(name)
            if !out.contains(name) =>
        {
            out.push(name.clone());
        }
        Pattern::List(items) => items.iter().for_each(|p| collect_metavars(p, out)),
        Pattern::Index(a, b) | Pattern::BinOp(_, a, b) | Pattern::Compare(_, a, b) => {
            collect_metavars(a, out);
            collect_metavars(b, out);
        }
        Pattern::Call(_, args) => args.iter().for_each(|p| collect_metavars(p, out)),
        Pattern::MethodCall(recv, _, args) => {
            collect_metavars(recv, out);
            args.iter().for_each(|p| collect_metavars(p, out));
        }
        _ => {}
    }
}

fn expr_to_template(expr: &Expr, metavars: &[String]) -> Template {
    match expr {
        Expr::Var(name) if name.starts_with("__any_") => Template::AnyScopeVar,
        Expr::Var(name) if metavars.contains(name) => Template::Meta(name.clone()),
        Expr::Var(name) => Template::Var(name.clone()),
        Expr::Int(v) => Template::Int(*v),
        Expr::Bool(b) => Template::Bool(*b),
        Expr::Str(s) => Template::Str(s.clone()),
        Expr::List(items) => Template::List(
            items
                .iter()
                .map(|e| expr_to_template(e, metavars))
                .collect(),
        ),
        Expr::Index(base, index) => Template::Index(
            Box::new(expr_to_template(base, metavars)),
            Box::new(expr_to_template(index, metavars)),
        ),
        Expr::Slice(base, lower, upper) => Template::Slice(
            Box::new(expr_to_template(base, metavars)),
            lower
                .as_ref()
                .map(|l| Box::new(expr_to_template(l, metavars))),
            upper
                .as_ref()
                .map(|u| Box::new(expr_to_template(u, metavars))),
        ),
        Expr::Call(name, args) if name == "cmpany" && args.len() == 2 => Template::Compare(
            CmpTemplate::AnyRelational,
            Box::new(expr_to_template(&args[0], metavars)),
            Box::new(expr_to_template(&args[1], metavars)),
        ),
        Expr::Call(name, args) => Template::Call(
            name.clone(),
            args.iter().map(|e| expr_to_template(e, metavars)).collect(),
        ),
        Expr::MethodCall(recv, name, args) => Template::MethodCall(
            Box::new(expr_to_template(recv, metavars)),
            name.clone(),
            args.iter().map(|e| expr_to_template(e, metavars)).collect(),
        ),
        Expr::BinOp(op, left, right) => Template::BinOp(
            *op,
            Box::new(expr_to_template(left, metavars)),
            Box::new(expr_to_template(right, metavars)),
        ),
        Expr::Compare(op, left, right) => Template::Compare(
            CmpTemplate::Fixed(*op),
            Box::new(expr_to_template(left, metavars)),
            Box::new(expr_to_template(right, metavars)),
        ),
        Expr::IfExpr(a, b, c) => Template::IfExpr(
            Box::new(expr_to_template(a, metavars)),
            Box::new(expr_to_template(b, metavars)),
            Box::new(expr_to_template(c, metavars)),
        ),
        Expr::UnaryOp(afg_ast::ops::UnaryOp::Neg, inner) => Template::BinOp(
            BinOp::Sub,
            Box::new(Template::Int(0)),
            Box::new(expr_to_template(inner, metavars)),
        ),
        other => Template::Str(afg_ast::pretty::expr_to_string(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::RuleKind;

    const SECTION_2_1: &str = "\
# The simplified computeDeriv model of paper section 2.1
RETR:  return a       ->  [0]
RANR:  range(a0, a1)  ->  range(a0 + 1, a1)
EQF:   a0 == a1       ->  False
";

    #[test]
    fn parses_the_section_2_1_model() {
        let model = parse_error_model("computeDeriv-simple", SECTION_2_1).unwrap();
        assert_eq!(model.len(), 3);
        assert!(matches!(model.rules[0].kind, RuleKind::Return { .. }));
        assert!(matches!(model.rules[1].kind, RuleKind::Expr { .. }));
        assert!(model.is_well_formed());
    }

    #[test]
    fn parses_init_rules_and_scope_vars() {
        let text = "INITR: v = n -> n + 1 | n - 1 | 0\nINDR: v[a] -> v[a + 1] | v[a - 1] | v[?x]\n";
        let model = parse_error_model("m", text).unwrap();
        assert_eq!(model.len(), 2);
        match &model.rules[0].kind {
            RuleKind::Init { alternatives } => assert_eq!(alternatives.len(), 3),
            other => panic!("expected init rule, got {other:?}"),
        }
        match &model.rules[1].kind {
            RuleKind::Expr {
                pattern,
                alternatives,
            } => {
                assert!(matches!(pattern, Pattern::Index(_, _)));
                assert_eq!(alternatives.len(), 3);
                assert!(matches!(
                    &alternatives[2],
                    Template::Index(_, idx) if matches!(**idx, Template::AnyScopeVar)
                ));
            }
            other => panic!("expected expr rule, got {other:?}"),
        }
    }

    #[test]
    fn parses_comparison_wildcards() {
        let text = "COMPR: cmp(a0, a1) -> cmpany(a0, a1) | True | False\n";
        let model = parse_error_model("m", text).unwrap();
        match &model.rules[0].kind {
            RuleKind::Expr {
                pattern,
                alternatives,
            } => {
                assert!(matches!(pattern, Pattern::Compare(None, _, _)));
                assert!(matches!(
                    &alternatives[0],
                    Template::Compare(CmpTemplate::AnyRelational, _, _)
                ));
                assert_eq!(alternatives.len(), 3);
            }
            other => panic!("expected expr rule, got {other:?}"),
        }
    }

    #[test]
    fn concrete_names_are_not_metavariables() {
        let text = "R: len(poly) -> len(poly) - 1\n";
        let model = parse_error_model("m", text).unwrap();
        match &model.rules[0].kind {
            RuleKind::Expr { pattern, .. } => match pattern {
                Pattern::Call(name, args) => {
                    assert_eq!(name, "len");
                    assert_eq!(args[0], Pattern::Var("poly".into()));
                }
                other => panic!("unexpected pattern {other:?}"),
            },
            other => panic!("expected expr rule, got {other:?}"),
        }
        assert!(is_metavar("a0"));
        assert!(is_metavar("v"));
        assert!(!is_metavar("poly"));
        assert!(!is_metavar("value"));
    }

    #[test]
    fn reports_malformed_rules_with_line_numbers() {
        let err = parse_error_model("m", "RULE missing arrow\n").unwrap_err();
        assert_eq!(err.line, 1);
        let err = parse_error_model("m", "\n\nR: x -> \n").unwrap_err();
        assert_eq!(err.line, 3);
        let err = parse_error_model("m", "R: return xs -> [0]\n").unwrap_err();
        assert!(err.message.contains("return a"));
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let model = parse_error_model("m", "\n# only comments\n\n").unwrap();
        assert!(model.is_empty());
    }
}
