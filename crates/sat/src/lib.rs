//! A small CDCL SAT solver with cardinality constraints.
//!
//! The paper's tool searches the space of candidate corrections with the
//! SKETCH synthesizer, whose back end is SAT-based CEGIS.  `afg-sat` is the
//! SAT substrate of our reproduction: the synthesis crate encodes each
//! correction choice as boolean selector variables, blocks failed candidates
//! with learnt clauses, and bounds the total correction cost through the
//! cardinality encodings in [`cardinality`].
//!
//! # Example
//!
//! ```
//! use afg_sat::{Solver, SatResult};
//!
//! let mut solver = Solver::new();
//! let a = solver.new_var();
//! let b = solver.new_var();
//! solver.add_clause(&[a.positive(), b.positive()]);
//! solver.add_clause(&[a.negative()]);
//! match solver.solve() {
//!     SatResult::Sat(model) => assert!(model.value(b)),
//!     SatResult::Unsat => unreachable!("the formula is satisfiable"),
//! }
//! ```

pub mod cardinality;
mod literal;
mod solver;

pub use cardinality::{add_at_least, add_at_most, Totalizer};
pub use literal::{Lit, Model, Var};
pub use solver::{SatResult, Solver, SolverStats};

#[cfg(test)]
mod proptests {
    use super::*;

    /// Minimal seeded SplitMix64 so the random-CNF sweep needs no external
    /// dependency and stays reproducible.
    ///
    /// Intentionally duplicates `afg_corpus::rng::StdRng`: depending on
    /// afg-corpus here would create a dev-dependency cycle (afg-corpus →
    /// afg-core → afg-synth → afg-sat), and the biased `% bound` sampling
    /// below is fine for test bounds ≤ 64 (bias < 2⁻⁵⁸).
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        fn below(&mut self, bound: u64) -> u64 {
            self.next() % bound
        }
    }

    /// Brute-force satisfiability of a CNF over `n` variables.
    fn brute_force_sat(num_vars: usize, clauses: &[Vec<(usize, bool)>]) -> bool {
        for assignment in 0u32..(1 << num_vars) {
            let value = |v: usize| assignment & (1 << v) != 0;
            if clauses
                .iter()
                .all(|clause| clause.iter().any(|&(v, positive)| value(v) == positive))
            {
                return true;
            }
        }
        false
    }

    /// The CDCL solver agrees with brute force on random small CNFs, and
    /// when it reports SAT its model really satisfies every clause.
    #[test]
    fn solver_agrees_with_brute_force() {
        let num_vars = 6usize;
        for seed in 0..128u64 {
            let mut rng = Rng(seed);
            let num_clauses = 1 + rng.below(23) as usize;
            let clauses: Vec<Vec<(usize, bool)>> = (0..num_clauses)
                .map(|_| {
                    let len = 1 + rng.below(3) as usize;
                    (0..len)
                        .map(|_| (rng.below(num_vars as u64) as usize, rng.below(2) == 1))
                        .collect()
                })
                .collect();

            let mut solver = Solver::new();
            let vars = solver.new_vars(num_vars);
            let mut trivially_unsat = false;
            for clause in &clauses {
                let lits: Vec<Lit> = clause
                    .iter()
                    .map(|&(v, positive)| {
                        if positive {
                            vars[v].positive()
                        } else {
                            vars[v].negative()
                        }
                    })
                    .collect();
                if !solver.add_clause(&lits) {
                    trivially_unsat = true;
                }
            }
            let expected = brute_force_sat(num_vars, &clauses);
            if trivially_unsat {
                assert!(!expected, "seed {seed}");
                continue;
            }
            match solver.solve() {
                SatResult::Sat(model) => {
                    assert!(
                        expected,
                        "seed {seed}: solver said SAT but brute force says UNSAT"
                    );
                    for clause in &clauses {
                        assert!(
                            clause
                                .iter()
                                .any(|&(v, positive)| model.value(vars[v]) == positive),
                            "seed {seed}: model violates clause {clause:?}"
                        );
                    }
                }
                SatResult::Unsat => {
                    assert!(
                        !expected,
                        "seed {seed}: solver said UNSAT but brute force says SAT"
                    );
                }
            }
        }
    }

    /// Solving under assumptions agrees with baking the assumptions in as
    /// unit clauses on a fresh solver — across random CNFs and random
    /// assumption sets, on one incrementally reused solver.
    #[test]
    fn assumptions_agree_with_unit_clauses() {
        let num_vars = 5usize;
        for seed in 0..96u64 {
            let mut rng = Rng(seed.wrapping_mul(0x9E37).wrapping_add(1));
            let num_clauses = 1 + rng.below(16) as usize;
            let clauses: Vec<Vec<(usize, bool)>> = (0..num_clauses)
                .map(|_| {
                    let len = 1 + rng.below(3) as usize;
                    (0..len)
                        .map(|_| (rng.below(num_vars as u64) as usize, rng.below(2) == 1))
                        .collect()
                })
                .collect();

            let mut incremental = Solver::new();
            let vars = incremental.new_vars(num_vars);
            let to_lit = |(v, positive): (usize, bool)| {
                if positive {
                    vars[v].positive()
                } else {
                    vars[v].negative()
                }
            };
            let mut base_ok = true;
            for clause in &clauses {
                let lits: Vec<Lit> = clause.iter().map(|&l| to_lit(l)).collect();
                base_ok &= incremental.add_clause(&lits);
            }
            if !base_ok {
                continue; // trivially unsat base: nothing to compare
            }

            // Several assumption sets against the SAME solver instance.
            for round in 0..4u64 {
                let mut rng = Rng(seed ^ (round << 32) ^ 0xA5A5);
                let picks = rng.below(3) + 1;
                let assumption_raw: Vec<(usize, bool)> = (0..picks)
                    .map(|_| (rng.below(num_vars as u64) as usize, rng.below(2) == 1))
                    .collect();
                let assumptions: Vec<Lit> = assumption_raw.iter().map(|&l| to_lit(l)).collect();

                // Reference: clauses + assumptions as units, brute forced.
                let mut reference = clauses.clone();
                reference.extend(assumption_raw.iter().map(|&l| vec![l]));
                let expected = brute_force_sat(num_vars, &reference);

                match incremental.solve_under_assumptions(&assumptions) {
                    SatResult::Sat(model) => {
                        assert!(expected, "seed {seed} round {round}: spurious SAT");
                        for &lit in &assumptions {
                            assert!(model.lit_is_true(lit), "assumption {lit} violated");
                        }
                        for clause in &clauses {
                            assert!(clause
                                .iter()
                                .any(|&(v, positive)| model.value(vars[v]) == positive));
                        }
                    }
                    SatResult::Unsat => {
                        assert!(!expected, "seed {seed} round {round}: spurious UNSAT");
                        // The core is a subset of the assumptions and is
                        // itself sufficient for unsatisfiability.
                        let core: Vec<Lit> = incremental.unsat_core().to_vec();
                        for lit in &core {
                            assert!(assumptions.contains(lit), "core leaked {lit}");
                        }
                        let mut with_core = clauses.clone();
                        with_core.extend(
                            core.iter()
                                .map(|lit| vec![(lit.var().index(), lit.is_positive())]),
                        );
                        assert!(
                            !brute_force_sat(num_vars, &with_core),
                            "seed {seed} round {round}: core {core:?} does not justify UNSAT"
                        );
                    }
                }
            }
        }
    }

    /// The at-most-k encoding never admits a model with more than k true
    /// literals, and is satisfiable whenever the literals are free.
    #[test]
    fn cardinality_encoding_is_sound() {
        for k in 0usize..5 {
            for n in 1usize..6 {
                let mut solver = Solver::new();
                let vars = solver.new_vars(n);
                let lits: Vec<Lit> = vars.iter().map(|v| v.positive()).collect();
                assert!(add_at_most(&mut solver, &lits, k));
                match solver.solve() {
                    SatResult::Sat(model) => {
                        let count = vars.iter().filter(|v| model.value(**v)).count();
                        assert!(
                            count <= k,
                            "at-most-{k} over {n} admitted {count} true literals"
                        );
                    }
                    SatResult::Unsat => {
                        // With no other constraints the all-false assignment always works.
                        panic!("at-most-{k} over {n} free literals must be satisfiable");
                    }
                }
            }
        }
    }
}
