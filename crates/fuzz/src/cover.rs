//! Cumulative coverage state for one fuzzing run.  Tracks, per edge
//! bucket, the highest AFL-style count class seen so far; an execution is
//! *novel* (and its input retained) when it raises any bucket's class.

use afg_cov::{count_class, MAP_SIZE};

/// Highest count class observed per edge bucket across the whole run.
pub struct CoverageMap {
    classes: Vec<u8>,
}

impl Default for CoverageMap {
    fn default() -> Self {
        Self::new()
    }
}

impl CoverageMap {
    #[must_use]
    pub fn new() -> CoverageMap {
        CoverageMap {
            classes: vec![0; MAP_SIZE],
        }
    }

    /// Merges one execution's edge snapshot (`(index, count)` pairs from
    /// `afg_cov::snapshot()`); returns true if any bucket reached a count
    /// class it had never reached before.
    pub fn merge(&mut self, snapshot: &[(u32, u32)]) -> bool {
        let mut novel = false;
        for &(index, count) in snapshot {
            let class = count_class(count);
            let slot = &mut self.classes[index as usize];
            if class > *slot {
                *slot = class;
                novel = true;
            }
        }
        novel
    }

    /// Number of edge buckets hit at least once.
    #[must_use]
    pub fn edges(&self) -> usize {
        self.classes.iter().filter(|&&c| c > 0).count()
    }

    /// FNV-1a digest over all `(bucket, class)` pairs — two runs with the
    /// same seed must produce the same signature, which CI asserts.
    #[must_use]
    pub fn signature(&self) -> u64 {
        let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
        for (index, &class) in self.classes.iter().enumerate() {
            if class == 0 {
                continue;
            }
            for byte in (index as u32)
                .to_le_bytes()
                .into_iter()
                .chain(std::iter::once(class))
            {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
        hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_reports_novelty_then_saturates() {
        let mut map = CoverageMap::new();
        assert!(map.merge(&[(3, 1), (9, 2)]));
        assert!(!map.merge(&[(3, 1), (9, 2)]));
        // Raising a bucket's count class is novelty again.
        assert!(map.merge(&[(3, 10)]));
        assert_eq!(map.edges(), 2);
    }

    #[test]
    fn signature_tracks_content() {
        let mut a = CoverageMap::new();
        let mut b = CoverageMap::new();
        assert_eq!(a.signature(), b.signature());
        a.merge(&[(5, 1)]);
        assert_ne!(a.signature(), b.signature());
        b.merge(&[(5, 1)]);
        assert_eq!(a.signature(), b.signature());
    }
}
