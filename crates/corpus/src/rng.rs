//! A tiny deterministic pseudo-random number generator.
//!
//! The corpus must be reproducible from a single `u64` seed and the
//! workspace carries no external dependencies, so this module provides the
//! handful of primitives the generator and mutator need (uniform ranges,
//! biased coin flips, slice choice and Fisher–Yates shuffling) on top of a
//! SplitMix64 core.  SplitMix64 passes BigCrush for this usage and, unlike a
//! library RNG, its output is stable across toolchain upgrades — corpora
//! generated today stay byte-identical forever.

/// A seeded SplitMix64 generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    state: u64,
}

impl StdRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> StdRng {
        StdRng { state: seed }
    }

    /// The next raw 64-bit output (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, bound)`; `bound` must be non-zero.
    /// Uses Lemire's multiply-shift rejection method to avoid modulo bias.
    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "empty range");
        loop {
            let x = self.next_u64();
            let (hi, lo) = {
                let wide = u128::from(x) * u128::from(bound);
                ((wide >> 64) as u64, wide as u64)
            };
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return hi;
            }
        }
    }

    /// A uniform value in the half-open range, like `rand`'s `gen_range`.
    pub fn gen_range<T: UniformInt>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample(self, range)
    }

    /// `true` with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        ((self.next_u64() >> 11) as f64) / ((1u64 << 53) as f64) < p
    }

    /// A uniformly chosen element of the slice (`None` when empty).
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            let index = self.below(slice.len() as u64) as usize;
            Some(&slice[index])
        }
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

/// Integer types [`StdRng::gen_range`] can sample uniformly.
pub trait UniformInt: Copy {
    /// Samples a uniform value in `range`.
    fn sample(rng: &mut StdRng, range: std::ops::Range<Self>) -> Self;
}

macro_rules! impl_uniform_int {
    ($($ty:ty),*) => {$(
        impl UniformInt for $ty {
            fn sample(rng: &mut StdRng, range: std::ops::Range<$ty>) -> $ty {
                assert!(range.start < range.end, "empty range");
                let span = (range.end - range.start) as u64;
                range.start + rng.below(span) as $ty
            }
        }
    )*};
}

impl_uniform_int!(u8, u32, u64, usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers_the_range() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(0..10usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
        for _ in 0..100 {
            let v = rng.gen_range(5..8u32);
            assert!((5..8).contains(&v));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "{hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn choose_and_shuffle() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(rng.choose::<u8>(&[]), None);
        let items = [10, 20, 30];
        for _ in 0..50 {
            assert!(items.contains(rng.choose(&items).unwrap()));
        }
        let mut deck: Vec<u32> = (0..52).collect();
        rng.shuffle(&mut deck);
        let mut sorted = deck.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..52).collect::<Vec<_>>());
        assert_ne!(deck, (0..52).collect::<Vec<_>>());
    }
}
