//! Cardinality constraints: a sequential-counter encoding for one-shot
//! bounds and an incremental **totalizer** for assumption-activated bounds.
//!
//! CEGISMIN repeatedly tightens the bound "total number of corrections
//! `< k`" (paper Algorithm 1, line 13).  The synthesis encoding expresses
//! the total cost as the number of true choice-selector variables, so the
//! bound is an *at-most-(k−1)* cardinality constraint.  Two encodings are
//! provided:
//!
//! * [`add_at_most`]/[`add_at_least`] — the sequential counter (Sinz 2005),
//!   used where a bound is part of the formula itself (e.g. at-most-one
//!   constraints); small, propagates well, easy to audit.
//! * [`Totalizer`] (Bailleux & Boufkhad 2003) — built **once** per
//!   encoding, it exposes one output literal per possible count; the bound
//!   `≤ k` is then activated per solve call by *assuming* the negation of
//!   the `k+1`-th output ([`Totalizer::at_most`]) instead of adding hard
//!   clauses.  This is what lets the CEGISMIN minimisation descent tighten
//!   its bound on a single solver instance while keeping every learnt
//!   clause.

use crate::literal::Lit;
use crate::solver::Solver;

/// An incremental cardinality structure over a fixed set of input literals.
///
/// The totalizer is a balanced tree of unary counters: for `n` inputs it
/// defines output literals `o_1 … o_n` with clauses entailing
/// "at least `j` inputs are true → `o_j`".  Assuming `¬o_{k+1}` therefore
/// forbids more than `k` true inputs, and dropping the assumption on the
/// next solve relaxes the bound without touching the clause database.
#[derive(Debug, Clone)]
pub struct Totalizer {
    /// `outputs[j]` is entailed whenever at least `j + 1` inputs are true
    /// (counts above the pruning cap all collapse onto the last output).
    outputs: Vec<Lit>,
    /// Number of input literals counted.
    inputs: usize,
}

impl Totalizer {
    /// Builds the full totalizer tree over `lits` (every count
    /// representable), adding its clauses to the solver.  O(n²) merge
    /// clauses; prefer [`Totalizer::with_cap`] when only small bounds will
    /// ever be queried.
    pub fn new(solver: &mut Solver, lits: &[Lit]) -> Totalizer {
        Totalizer::with_cap(solver, lits, lits.len())
    }

    /// Builds a **bound-pruned** totalizer: every tree node keeps at most
    /// `cap` outputs, with higher counts clamped onto the last one, so the
    /// clause count is O(n · cap²) instead of O(n²).  Only bounds `< cap`
    /// can be queried afterwards.  Not currently on the CEGISMIN path —
    /// the choice encoding deliberately builds the full-width totalizer
    /// (see `ChoiceEncoding::new` in `afg-synth` for the measurement) —
    /// but available for future encodings with hundreds of inputs.
    pub fn with_cap(solver: &mut Solver, lits: &[Lit], cap: usize) -> Totalizer {
        let cap = cap.clamp(1, lits.len().max(1));
        Totalizer {
            outputs: build_tree(solver, lits, cap),
            inputs: lits.len(),
        }
    }

    /// Number of input literals counted.
    pub fn len(&self) -> usize {
        self.inputs
    }

    /// Whether the totalizer counts no literals at all.
    pub fn is_empty(&self) -> bool {
        self.inputs == 0
    }

    /// The output literals, in count order (`outputs()[j]` ⇔ count > `j`;
    /// at most the pruning cap of them).
    pub fn outputs(&self) -> &[Lit] {
        &self.outputs
    }

    /// The assumption literal activating "at most `bound` inputs true", or
    /// `None` when the bound is vacuous (`bound ≥ n`).
    ///
    /// # Panics
    ///
    /// Panics when `bound` is non-vacuous but exceeds what the pruning cap
    /// can express — silently under-constraining would be unsound.
    pub fn at_most(&self, bound: usize) -> Option<Lit> {
        if bound >= self.inputs {
            return None;
        }
        assert!(
            bound < self.outputs.len(),
            "bound {bound} exceeds this totalizer's pruning cap {}",
            self.outputs.len()
        );
        Some(self.outputs[bound].negated())
    }
}

/// Recursively builds the (cap-pruned) totalizer tree and returns the
/// output literals of the root node.
fn build_tree(solver: &mut Solver, lits: &[Lit], cap: usize) -> Vec<Lit> {
    match lits {
        [] => Vec::new(),
        // A leaf counts itself.
        [single] => vec![*single],
        _ => {
            let (left_half, right_half) = lits.split_at(lits.len() / 2);
            let left = build_tree(solver, left_half, cap);
            let right = build_tree(solver, right_half, cap);
            let width = (left.len() + right.len()).min(cap);
            let outputs: Vec<Lit> = solver
                .new_vars(width)
                .iter()
                .map(|v| v.positive())
                .collect();
            // Merge clauses: left ≥ α ∧ right ≥ β → out ≥ min(α + β, cap),
            // i.e. ¬L_α ∨ ¬R_β ∨ O_{min(α+β, cap)} (with the L/R part
            // omitted when the respective count is zero).  The clamp is
            // sound because a query never distinguishes counts ≥ cap.
            for alpha in 0..=left.len() {
                for beta in 0..=right.len() {
                    if alpha + beta == 0 {
                        continue;
                    }
                    let mut clause = Vec::with_capacity(3);
                    if alpha > 0 {
                        clause.push(left[alpha - 1].negated());
                    }
                    if beta > 0 {
                        clause.push(right[beta - 1].negated());
                    }
                    clause.push(outputs[(alpha + beta).min(width) - 1]);
                    solver.add_clause(&clause);
                }
            }
            outputs
        }
    }
}

/// Adds clauses enforcing "at most `bound` of `lits` are true".
///
/// Uses the sequential-counter encoding with `lits.len() * bound` auxiliary
/// variables.  A `bound` of zero forces every literal false; a bound no
/// smaller than `lits.len()` adds nothing.
///
/// Returns `false` if the solver became unsatisfiable while adding clauses.
pub fn add_at_most(solver: &mut Solver, lits: &[Lit], bound: usize) -> bool {
    let n = lits.len();
    if bound >= n {
        return true;
    }
    if bound == 0 {
        for &lit in lits {
            if !solver.add_clause(&[lit.negated()]) {
                return false;
            }
        }
        return true;
    }

    // registers[i][j] ⇔ at least j+1 of lits[0..=i] are true.
    let mut registers: Vec<Vec<Lit>> = Vec::with_capacity(n);
    for _ in 0..n {
        let row: Vec<Lit> = (0..bound).map(|_| solver.new_var().positive()).collect();
        registers.push(row);
    }

    // First element: r[0][0] ⇔ lits[0]; higher counts impossible.
    if !solver.add_implication(lits[0], registers[0][0]) {
        return false;
    }
    for &register in registers[0].iter().skip(1) {
        if !solver.add_clause(&[register.negated()]) {
            return false;
        }
    }

    for i in 1..n {
        // Count carries over: r[i-1][j] → r[i][j].
        for (&prev, &cur) in registers[i - 1].iter().zip(&registers[i]) {
            if !solver.add_implication(prev, cur) {
                return false;
            }
        }
        // A true literal increments the count: lits[i] → r[i][0] and
        // lits[i] ∧ r[i-1][j-1] → r[i][j].
        if !solver.add_implication(lits[i], registers[i][0]) {
            return false;
        }
        for j in 1..bound {
            if !solver.add_clause(&[
                lits[i].negated(),
                registers[i - 1][j - 1].negated(),
                registers[i][j],
            ]) {
                return false;
            }
        }
        // Overflow is forbidden: lits[i] ∧ r[i-1][bound-1] → ⊥.
        if !solver.add_clause(&[lits[i].negated(), registers[i - 1][bound - 1].negated()]) {
            return false;
        }
    }
    true
}

/// Adds clauses enforcing "at least `bound` of `lits` are true", by the dual
/// at-most constraint on the negations.
///
/// Returns `false` if the solver became unsatisfiable while adding clauses.
pub fn add_at_least(solver: &mut Solver, lits: &[Lit], bound: usize) -> bool {
    if bound == 0 {
        return true;
    }
    if bound > lits.len() {
        // Impossible: force a contradiction.
        return solver.add_clause(&[]);
    }
    let negated: Vec<Lit> = lits.iter().map(|l| l.negated()).collect();
    add_at_most(solver, &negated, lits.len() - bound)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::SatResult;

    fn count_true(model: &crate::literal::Model, lits: &[Lit]) -> usize {
        lits.iter().filter(|&&l| model.lit_is_true(l)).count()
    }

    #[test]
    fn at_most_bound_is_respected() {
        for bound in 0..=4 {
            let mut solver = Solver::new();
            let vars = solver.new_vars(4);
            let lits: Vec<Lit> = vars.iter().map(|v| v.positive()).collect();
            assert!(add_at_most(&mut solver, &lits, bound));
            match solver.solve() {
                SatResult::Sat(model) => assert!(count_true(&model, &lits) <= bound),
                SatResult::Unsat => panic!("at-most-{bound} over 4 literals must be satisfiable"),
            }
        }
    }

    #[test]
    fn at_most_zero_forces_all_false() {
        let mut solver = Solver::new();
        let vars = solver.new_vars(3);
        let lits: Vec<Lit> = vars.iter().map(|v| v.positive()).collect();
        assert!(add_at_most(&mut solver, &lits, 0));
        let model = match solver.solve() {
            SatResult::Sat(m) => m,
            SatResult::Unsat => panic!("satisfiable"),
        };
        assert_eq!(count_true(&model, &lits), 0);
    }

    #[test]
    fn at_most_conflicts_with_forced_literals() {
        let mut solver = Solver::new();
        let vars = solver.new_vars(3);
        let lits: Vec<Lit> = vars.iter().map(|v| v.positive()).collect();
        for l in &lits {
            assert!(solver.add_clause(&[*l]));
        }
        add_at_most(&mut solver, &lits, 2);
        assert_eq!(solver.solve(), SatResult::Unsat);
    }

    #[test]
    fn at_least_bound_is_respected() {
        for bound in 0..=3 {
            let mut solver = Solver::new();
            let vars = solver.new_vars(3);
            let lits: Vec<Lit> = vars.iter().map(|v| v.positive()).collect();
            assert!(add_at_least(&mut solver, &lits, bound));
            match solver.solve() {
                SatResult::Sat(model) => assert!(count_true(&model, &lits) >= bound),
                SatResult::Unsat => panic!("at-least-{bound} over 3 literals must be satisfiable"),
            }
        }
    }

    #[test]
    fn at_least_more_than_available_is_unsat() {
        let mut solver = Solver::new();
        let vars = solver.new_vars(2);
        let lits: Vec<Lit> = vars.iter().map(|v| v.positive()).collect();
        add_at_least(&mut solver, &lits, 3);
        assert_eq!(solver.solve(), SatResult::Unsat);
    }

    #[test]
    fn totalizer_bounds_hold_under_assumptions() {
        // One totalizer, every bound probed by assumption on the same
        // solver — no re-encoding between queries.
        let mut solver = Solver::new();
        let vars = solver.new_vars(5);
        let lits: Vec<Lit> = vars.iter().map(|v| v.positive()).collect();
        let totalizer = Totalizer::new(&mut solver, &lits);
        assert_eq!(totalizer.len(), 5);
        assert_eq!(totalizer.at_most(5), None, "bound ≥ n is vacuous");

        for bound in 0..5 {
            let assumptions: Vec<Lit> = totalizer.at_most(bound).into_iter().collect();
            match solver.solve_under_assumptions(&assumptions) {
                SatResult::Sat(model) => {
                    let count = count_true(&model, &lits);
                    assert!(count <= bound, "bound {bound} admitted {count}");
                }
                SatResult::Unsat => panic!("at-most-{bound} over free literals must be sat"),
            }
        }
        // The bounds were assumptions, not clauses: all-true is still a model.
        for lit in &lits {
            assert!(solver.add_clause(&[*lit]));
        }
        assert!(solver.solve().is_sat());
    }

    #[test]
    fn totalizer_conflicts_name_the_bound_assumption() {
        let mut solver = Solver::new();
        let vars = solver.new_vars(4);
        let lits: Vec<Lit> = vars.iter().map(|v| v.positive()).collect();
        let totalizer = Totalizer::new(&mut solver, &lits);
        // Force three inputs true; at-most-2 must then fail and the core
        // must blame the bound assumption.
        for lit in &lits[0..3] {
            assert!(solver.add_clause(&[*lit]));
        }
        let bound = totalizer.at_most(2).expect("non-vacuous bound");
        assert_eq!(solver.solve_under_assumptions(&[bound]), SatResult::Unsat);
        assert_eq!(solver.unsat_core(), &[bound]);
        // Relaxing to at-most-3 succeeds on the same solver.
        let relaxed: Vec<Lit> = totalizer.at_most(3).into_iter().collect();
        assert!(solver.solve_under_assumptions(&relaxed).is_sat());
    }

    #[test]
    fn totalizer_tightening_descends_like_cegismin() {
        // Mimics the minimisation descent: one encoding, bounds 3, 2, 1, 0
        // activated in turn, with a hard at-least-2 making bounds < 2 unsat.
        let mut solver = Solver::new();
        let vars = solver.new_vars(6);
        let lits: Vec<Lit> = vars.iter().map(|v| v.positive()).collect();
        let totalizer = Totalizer::new(&mut solver, &lits);
        assert!(add_at_least(&mut solver, &lits, 2));
        for bound in (0..=3usize).rev() {
            let assumptions: Vec<Lit> = totalizer.at_most(bound).into_iter().collect();
            let result = solver.solve_under_assumptions(&assumptions);
            if bound >= 2 {
                let model = result.model().expect("bound ≥ 2 is satisfiable");
                assert!(count_true(model, &lits) <= bound);
            } else {
                assert_eq!(result, SatResult::Unsat, "bound {bound}");
            }
        }
    }

    #[test]
    fn pruned_totalizer_agrees_with_the_full_one_up_to_its_cap() {
        // cap = 3 supports bounds 0..=2 over 6 inputs with far fewer
        // clauses; every queryable bound behaves exactly like the full
        // encoding, and out-of-cap bounds panic instead of under-counting.
        for forced in 0..5usize {
            let mut solver = Solver::new();
            let vars = solver.new_vars(6);
            let lits: Vec<Lit> = vars.iter().map(|v| v.positive()).collect();
            let totalizer = Totalizer::with_cap(&mut solver, &lits, 3);
            assert_eq!(totalizer.len(), 6);
            for lit in &lits[0..forced] {
                assert!(solver.add_clause(&[*lit]));
            }
            for bound in 0..3usize {
                let assumptions: Vec<Lit> = totalizer.at_most(bound).into_iter().collect();
                match solver.solve_under_assumptions(&assumptions) {
                    SatResult::Sat(model) => {
                        assert!(forced <= bound, "bound {bound} admitted {forced} forced");
                        assert!(count_true(&model, &lits) <= bound);
                    }
                    SatResult::Unsat => {
                        assert!(forced > bound, "bound {bound} rejected {forced} forced");
                    }
                }
            }
        }

        let mut solver = Solver::new();
        let vars = solver.new_vars(6);
        let lits: Vec<Lit> = vars.iter().map(|v| v.positive()).collect();
        let totalizer = Totalizer::with_cap(&mut solver, &lits, 3);
        assert_eq!(totalizer.at_most(6), None, "vacuous bound stays None");
        assert!(std::panic::catch_unwind(|| totalizer.at_most(4)).is_err());
    }

    #[test]
    fn empty_and_singleton_totalizers() {
        let mut solver = Solver::new();
        let empty = Totalizer::new(&mut solver, &[]);
        assert!(empty.is_empty());
        assert_eq!(empty.at_most(0), None);

        let var = solver.new_var();
        let single = Totalizer::new(&mut solver, &[var.positive()]);
        assert_eq!(single.len(), 1);
        assert_eq!(single.at_most(0), Some(var.negative()));
        let result = solver.solve_under_assumptions(&[single.at_most(0).unwrap()]);
        assert!(!result.model().expect("sat").value(var));
    }

    #[test]
    fn combined_window_of_counts() {
        // Exactly 2 of 4 literals: at most 2 and at least 2.
        let mut solver = Solver::new();
        let vars = solver.new_vars(4);
        let lits: Vec<Lit> = vars.iter().map(|v| v.positive()).collect();
        assert!(add_at_most(&mut solver, &lits, 2));
        assert!(add_at_least(&mut solver, &lits, 2));
        match solver.solve() {
            SatResult::Sat(model) => assert_eq!(count_true(&model, &lits), 2),
            SatResult::Unsat => panic!("exactly-2 of 4 must be satisfiable"),
        }
    }
}
