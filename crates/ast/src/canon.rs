//! Canonical forms and submission fingerprints.
//!
//! A real class produces thousands of submissions, and a large share of them
//! are the *same program* up to variable names and formatting — students
//! copy skeleton code, follow the same tutorial, or resubmit with cosmetic
//! edits.  The fingerprint cache in `afg-core` exploits this: instead of
//! re-running CEGIS on a submission it has effectively seen before, it keys
//! cached grading results on the submission's **canonical form**:
//!
//! * every variable (parameters, assignment targets, loop variables and
//!   references) is alpha-renamed to `v0, v1, …` in first-occurrence order,
//!   per function scope;
//! * the program is re-rendered by the pretty-printer, which normalizes
//!   whitespace, parenthesisation and line layout;
//! * the instructor-declared parameter types are appended (they are carried
//!   by name *suffixes*, which renaming would otherwise erase).
//!
//! Function, method and builtin names are **not** renamed — calls live in a
//! separate namespace in MPY, and the grading pipeline looks the entry
//! function up by name.
//!
//! Two programs with equal canonical source are alpha-equivalent: they
//! evaluate identically on every input and the error-model transformation
//! produces structurally isomorphic choice programs for them (rule matching
//! is structural, and option enumeration follows first-occurrence scope
//! order, which renaming preserves).  That isomorphism is what lets the
//! cache *replay* a minimal repair found for one submission onto an
//! alpha-equivalent one — see `afg-core`.

use std::collections::HashMap;

use crate::pretty;
use crate::visit::map_expr;
use crate::{Expr, FuncDef, Program, Stmt, StmtKind, Target};

/// An order-preserving variable-renaming map for one function scope.
struct Renamer {
    names: HashMap<String, String>,
}

impl Renamer {
    fn new() -> Renamer {
        Renamer {
            names: HashMap::new(),
        }
    }

    fn rename(&mut self, name: &str) -> String {
        if let Some(renamed) = self.names.get(name) {
            return renamed.clone();
        }
        let fresh = format!("v{}", self.names.len());
        self.names.insert(name.to_string(), fresh.clone());
        fresh
    }
}

/// Returns the alpha-renamed canonical program.
///
/// Statement line numbers are preserved (they do not participate in the
/// canonical *source*, which is produced by the pretty-printer and carries
/// no line information).
pub fn canonicalize(program: &Program) -> Program {
    let mut canonical = Program::new();
    for func in &program.funcs {
        canonical.funcs.push(canonicalize_func(func));
    }
    let mut renamer = Renamer::new();
    canonical.top_level = program
        .top_level
        .iter()
        .map(|stmt| rename_stmt(stmt, &mut renamer))
        .collect();
    canonical
}

fn canonicalize_func(func: &FuncDef) -> FuncDef {
    let mut renamer = Renamer::new();
    let params = func
        .params
        .iter()
        .map(|p| crate::Param {
            name: renamer.rename(&p.name),
            ty: p.ty.clone(),
        })
        .collect();
    let body = func
        .body
        .iter()
        .map(|stmt| rename_stmt(stmt, &mut renamer))
        .collect();
    FuncDef {
        name: func.name.clone(),
        params,
        body,
        line: func.line,
    }
}

fn rename_stmt(stmt: &Stmt, renamer: &mut Renamer) -> Stmt {
    let kind = match &stmt.kind {
        StmtKind::Assign(target, value) => {
            StmtKind::Assign(rename_target(target, renamer), rename_expr(value, renamer))
        }
        StmtKind::AugAssign(target, op, value) => StmtKind::AugAssign(
            rename_target(target, renamer),
            *op,
            rename_expr(value, renamer),
        ),
        StmtKind::ExprStmt(expr) => StmtKind::ExprStmt(rename_expr(expr, renamer)),
        StmtKind::If(cond, then_body, else_body) => StmtKind::If(
            rename_expr(cond, renamer),
            rename_block(then_body, renamer),
            rename_block(else_body, renamer),
        ),
        StmtKind::While(cond, body) => {
            StmtKind::While(rename_expr(cond, renamer), rename_block(body, renamer))
        }
        StmtKind::For(var, iter, body) => {
            // Evaluation order: the iterable is computed before the loop
            // variable is bound, so it is renamed first — this keeps the
            // numbering consistent with first *runtime* occurrence.
            let iter = rename_expr(iter, renamer);
            let var = renamer.rename(var);
            StmtKind::For(var, iter, rename_block(body, renamer))
        }
        StmtKind::Return(expr) => StmtKind::Return(expr.as_ref().map(|e| rename_expr(e, renamer))),
        StmtKind::Print(args) => {
            StmtKind::Print(args.iter().map(|e| rename_expr(e, renamer)).collect())
        }
        StmtKind::Pass => StmtKind::Pass,
        StmtKind::Break => StmtKind::Break,
        StmtKind::Continue => StmtKind::Continue,
    };
    Stmt {
        line: stmt.line,
        kind,
    }
}

fn rename_block(body: &[Stmt], renamer: &mut Renamer) -> Vec<Stmt> {
    body.iter().map(|s| rename_stmt(s, renamer)).collect()
}

fn rename_target(target: &Target, renamer: &mut Renamer) -> Target {
    match target {
        Target::Var(name) => Target::Var(renamer.rename(name)),
        Target::Index(base, index) => {
            Target::Index(rename_expr(base, renamer), rename_expr(index, renamer))
        }
        Target::Tuple(items) => {
            Target::Tuple(items.iter().map(|t| rename_target(t, renamer)).collect())
        }
    }
}

fn rename_expr(expr: &Expr, renamer: &mut Renamer) -> Expr {
    // `map_expr` rebuilds bottom-up but MPY expressions contain no binders,
    // so the rename map is insensitive to the rewrite order within one
    // expression only when names were already assigned; to number names by
    // first occurrence in *reading* order we pre-walk the tree.
    assign_names(expr, renamer);
    map_expr(expr, &mut |e| match &e {
        Expr::Var(name) => Expr::Var(renamer.rename(name)),
        _ => e,
    })
}

fn assign_names(expr: &Expr, renamer: &mut Renamer) {
    if let Expr::Var(name) = expr {
        renamer.rename(name);
    }
    for child in crate::visit::expr_children(expr) {
        assign_names(child, renamer);
    }
}

/// The canonical source of a program: the pretty-printed alpha-renamed
/// program followed by the declared parameter types of every function.
///
/// Equal canonical source ⟺ alpha-equivalent programs with identical
/// declared types — the exactness the fingerprint cache keys on.
pub fn canonical_source(program: &Program) -> String {
    let canonical = canonicalize(program);
    let mut out = pretty::program_to_string(&canonical);
    append_declared_types(&canonical, &mut out);
    out
}

/// Appends the `# types f: ...` trailer shared by [`canonical_source`] and
/// [`skeleton_source`] — declared parameter types drive the bounded input
/// space, so they are part of both identities.
fn append_declared_types(program: &Program, out: &mut String) {
    for func in &program.funcs {
        if func.params.is_empty() {
            continue;
        }
        out.push_str("# types ");
        out.push_str(&func.name);
        out.push(':');
        for param in &func.params {
            out.push(' ');
            out.push_str(&param.ty.to_string());
        }
        out.push('\n');
    }
}

/// Returns the *structural skeleton* of a program: the canonicalized
/// (alpha-renamed) program with every constant literal collapsed to a
/// fixed placeholder — `Int` to `0`, `Str` to `''`, `Bool` to `True`.
///
/// Where [`canonicalize`] makes *exact* near-duplicates collide (same
/// program up to naming and layout), the skeleton makes *shape*
/// near-duplicates collide: cohort-mates who copied the same scaffold but
/// filled in different bounds, initialisers or debug strings share one
/// skeleton even though their canonical forms differ.  The cluster index
/// in `afg-core` keys on it to transfer verified repairs between
/// cluster-mates as CEGISMIN warm starts.
///
/// Unlike canonical equality, skeleton equality implies **nothing** about
/// behaviour — `range(0, n)` and `range(1, n)` share a skeleton on
/// purpose.  Every consumer must treat a skeleton match as a *hint* and
/// re-verify whatever it transfers.
pub fn skeletonize(program: &Program) -> Program {
    let mut skeleton = canonicalize(program);
    let mut erase = |e: Expr| match e {
        Expr::Int(_) => Expr::Int(0),
        Expr::Str(_) => Expr::Str(String::new()),
        Expr::Bool(_) => Expr::Bool(true),
        other => other,
    };
    for func in &mut skeleton.funcs {
        crate::visit::map_exprs_in_stmts(&mut func.body, &mut erase);
    }
    crate::visit::map_exprs_in_stmts(&mut skeleton.top_level, &mut erase);
    skeleton
}

/// The skeleton source of a program: the pretty-printed [`skeletonize`]d
/// program with declared parameter types appended (two submissions graded
/// under different declared input spaces must never share a cluster).
pub fn skeleton_source(program: &Program) -> String {
    let skeleton = skeletonize(program);
    let mut out = pretty::program_to_string(&skeleton);
    append_declared_types(&skeleton, &mut out);
    out
}

/// A 64-bit FNV-1a fingerprint of [`skeleton_source`] (logging/metrics
/// convenience; the cluster index stores the full skeleton source and
/// compares it on lookup, exactly like the fingerprint cache).
pub fn skeleton_fingerprint64(program: &Program) -> u64 {
    fnv1a64(skeleton_source(program).as_bytes())
}

/// A 64-bit FNV-1a fingerprint of [`canonical_source`].
///
/// FNV-1a is used instead of `DefaultHasher` because its output is stable
/// across Rust releases — fingerprints can be logged, compared across
/// processes and stored beyond one run.  Collisions are possible in
/// principle; the cache stores the full canonical source alongside and
/// compares it on lookup, so a collision costs a cache miss, never a wrong
/// grade.
pub fn fingerprint64(program: &Program) -> u64 {
    fnv1a64(canonical_source(program).as_bytes())
}

/// The FNV-1a hash of a byte string.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::MpyType;

    fn sample(name_a: &str, name_b: &str) -> Program {
        // def f(A):
        //     B = A + 1
        //     return B
        let mut program = Program::new();
        program.funcs.push(FuncDef {
            name: "f".into(),
            params: vec![crate::Param::new(name_a, MpyType::Int)],
            body: vec![
                Stmt::new(
                    2,
                    StmtKind::Assign(
                        Target::Var(name_b.into()),
                        Expr::binop(crate::ops::BinOp::Add, Expr::var(name_a), Expr::Int(1)),
                    ),
                ),
                Stmt::new(3, StmtKind::Return(Some(Expr::var(name_b)))),
            ],
            line: 1,
        });
        program
    }

    #[test]
    fn alpha_equivalent_programs_share_a_fingerprint() {
        let a = sample("x", "y");
        let b = sample("count", "total");
        assert_eq!(canonical_source(&a), canonical_source(&b));
        assert_eq!(fingerprint64(&a), fingerprint64(&b));
    }

    #[test]
    fn different_structure_changes_the_fingerprint() {
        let a = sample("x", "y");
        let mut c = sample("x", "y");
        c.funcs[0].body.pop();
        assert_ne!(fingerprint64(&a), fingerprint64(&c));
    }

    #[test]
    fn declared_types_are_part_of_the_fingerprint() {
        let a = sample("x", "y");
        let mut b = sample("x", "y");
        b.funcs[0].params[0].ty = MpyType::list_int();
        assert_ne!(fingerprint64(&a), fingerprint64(&b));
        assert!(canonical_source(&a).contains("# types f: int"));
    }

    #[test]
    fn canonicalize_is_idempotent() {
        let program = sample("alpha", "beta");
        let once = canonicalize(&program);
        let twice = canonicalize(&once);
        assert_eq!(
            pretty::program_to_string(&once),
            pretty::program_to_string(&twice)
        );
    }

    #[test]
    fn variables_number_in_first_occurrence_order() {
        let canonical = canonicalize(&sample("arg", "tmp"));
        let rendered = pretty::program_to_string(&canonical);
        assert_eq!(rendered, "def f(v0):\n    v1 = v0 + 1\n    return v1\n\n");
    }

    #[test]
    fn swapping_preexisting_v_names_is_still_a_bijection() {
        // A program that already uses canonical-looking names in a
        // different order must not collide with its own canonical form.
        let a = sample("v1", "v0");
        let rendered = pretty::program_to_string(&canonicalize(&a));
        assert_eq!(rendered, "def f(v0):\n    v1 = v0 + 1\n    return v1\n\n");
        assert_eq!(fingerprint64(&a), fingerprint64(&sample("x", "y")));
    }

    #[test]
    fn function_names_are_preserved() {
        let mut program = sample("x", "y");
        program.funcs[0].name = "computeDeriv".into();
        let canonical = canonicalize(&program);
        assert_eq!(canonical.funcs[0].name, "computeDeriv");
    }

    #[test]
    fn skeleton_erases_names_and_constants_but_not_structure() {
        // Same shape, different names AND different constants.
        let mut a = sample("x", "y");
        let mut b = sample("count", "total");
        a.funcs[0].body[0] = Stmt::new(
            2,
            StmtKind::Assign(
                Target::Var("y".into()),
                Expr::binop(crate::ops::BinOp::Add, Expr::var("x"), Expr::Int(1)),
            ),
        );
        b.funcs[0].body[0] = Stmt::new(
            2,
            StmtKind::Assign(
                Target::Var("total".into()),
                Expr::binop(crate::ops::BinOp::Add, Expr::var("count"), Expr::Int(17)),
            ),
        );
        assert_ne!(
            canonical_source(&a),
            canonical_source(&b),
            "different constants must keep distinct canonical forms"
        );
        assert_eq!(skeleton_source(&a), skeleton_source(&b));
        assert_eq!(skeleton_fingerprint64(&a), skeleton_fingerprint64(&b));

        // But structural drift still separates skeletons.
        let mut c = sample("x", "y");
        c.funcs[0].body.pop();
        assert_ne!(skeleton_fingerprint64(&a), skeleton_fingerprint64(&c));
    }

    #[test]
    fn skeleton_normalises_string_and_bool_literals() {
        let with_literals = |text: &str, flag: bool| {
            let mut program = Program::new();
            program.funcs.push(FuncDef {
                name: "f".into(),
                params: vec![crate::Param::new("x", MpyType::Int)],
                body: vec![
                    Stmt::new(
                        2,
                        StmtKind::Print(vec![Expr::Str(text.into()), Expr::var("x")]),
                    ),
                    Stmt::new(3, StmtKind::Return(Some(Expr::Bool(flag)))),
                ],
                line: 1,
            });
            program
        };
        let a = with_literals("debug: got here", true);
        let b = with_literals("xx", false);
        assert_ne!(canonical_source(&a), canonical_source(&b));
        assert_eq!(skeleton_source(&a), skeleton_source(&b));
    }

    #[test]
    fn skeleton_keeps_declared_types_apart() {
        let a = sample("x", "y");
        let mut b = sample("x", "y");
        b.funcs[0].params[0].ty = MpyType::list_int();
        assert_ne!(skeleton_fingerprint64(&a), skeleton_fingerprint64(&b));
    }

    #[test]
    fn skeletonize_is_idempotent_and_renders_placeholders() {
        let program = sample("alpha", "beta");
        let once = skeletonize(&program);
        let twice = skeletonize(&once);
        assert_eq!(
            pretty::program_to_string(&once),
            pretty::program_to_string(&twice)
        );
        // `x + 1` collapses to `v0 + 0`.
        assert_eq!(
            pretty::program_to_string(&once),
            "def f(v0):\n    v1 = v0 + 0\n    return v1\n\n"
        );
    }

    #[test]
    fn fnv_vector() {
        // Known FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
