//! Structured per-request traces: a span tree recorded through
//! thread-local context so instrumentation points never thread a trace
//! parameter through the grading APIs.
//!
//! The contract that keeps tracing byte-invisible to grading outcomes:
//! spans *observe* wall-clock and attributes, they never feed anything
//! back. With no trace installed, [`span`] costs one TLS read.

use std::cell::RefCell;
use std::collections::hash_map::RandomState;
use std::collections::VecDeque;
use std::fmt;
use std::hash::{BuildHasher, Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant, SystemTime};

use crate::Histogram;

/// A 128-bit request identifier, rendered as 32 lowercase hex digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceId(u64, u64);

impl TraceId {
    /// Generates a process-unique, hard-to-collide ID by mixing a
    /// monotone counter with per-process entropy (hasher seed, boot
    /// time) through SplitMix64.
    pub fn generate() -> Self {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        fn entropy() -> u64 {
            let mut h = RandomState::new().build_hasher();
            std::process::id().hash(&mut h);
            std::thread::current().id().hash(&mut h);
            SystemTime::now()
                .duration_since(SystemTime::UNIX_EPOCH)
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0)
                .hash(&mut h);
            h.finish()
        }
        fn splitmix(mut x: u64) -> u64 {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let e = entropy();
        Self(splitmix(e ^ n), splitmix(e.rotate_left(32).wrapping_add(n)))
    }

    /// Parses the 32-hex-digit form produced by `Display`.
    pub fn parse(s: &str) -> Option<Self> {
        if s.len() != 32 {
            return None;
        }
        let hi = u64::from_str_radix(&s[..16], 16).ok()?;
        let lo = u64::from_str_radix(&s[16..], 16).ok()?;
        Some(Self(hi, lo))
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}{:016x}", self.0, self.1)
    }
}

/// One completed (or still-open) span inside a trace.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Stage name (`"parse"`, `"search"`, …).
    pub name: &'static str,
    /// Index of the parent span within the trace, `None` for roots.
    pub parent: Option<usize>,
    /// Offset from the trace's start.
    pub start: Duration,
    /// Wall-clock spent in the span (zero until it closes).
    pub duration: Duration,
    /// Free-form key/value annotations (`tier=full`, `cache=hit`, …).
    pub attrs: Vec<(&'static str, String)>,
}

#[derive(Debug, Default)]
struct TraceBody {
    spans: Vec<SpanRecord>,
}

/// A per-request span tree. Create one at the service boundary, install
/// it, and every [`span`]/[`record_span`] call on this thread (and on
/// threads that installed a [`TraceHandle`]) lands in it.
#[derive(Debug)]
pub struct Trace {
    id: TraceId,
    started: Instant,
    started_unix: Duration,
    body: Mutex<TraceBody>,
}

impl Trace {
    pub fn new() -> Arc<Self> {
        Arc::new(Self {
            id: TraceId::generate(),
            started: Instant::now(),
            started_unix: SystemTime::now()
                .duration_since(SystemTime::UNIX_EPOCH)
                .unwrap_or(Duration::ZERO),
            body: Mutex::new(TraceBody::default()),
        })
    }

    pub fn id(&self) -> TraceId {
        self.id
    }

    /// Unix timestamp of trace creation (for display only).
    pub fn started_unix(&self) -> Duration {
        self.started_unix
    }

    /// Wall-clock from trace creation to the end of the latest span (or
    /// to now, if spans are still open).
    pub fn duration(&self) -> Duration {
        let body = self.body.lock().unwrap();
        body.spans
            .iter()
            .map(|s| s.start + s.duration)
            .max()
            .unwrap_or_default()
    }

    /// Snapshot of all spans, in creation order (parents precede
    /// children).
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.body.lock().unwrap().spans.clone()
    }

    /// Installs this trace as the current thread's trace context until
    /// the guard drops. Nested installs stack.
    pub fn install(self: &Arc<Self>) -> TraceGuard {
        TraceHandle {
            trace: Arc::clone(self),
            parent: None,
        }
        .install()
    }

    /// Captures the current thread's position in this trace so a worker
    /// thread can continue the tree under the same parent span.
    pub fn handle(self: &Arc<Self>) -> TraceHandle {
        TraceHandle {
            trace: Arc::clone(self),
            parent: None,
        }
    }

    fn push_span(&self, record: SpanRecord) -> usize {
        let mut body = self.body.lock().unwrap();
        body.spans.push(record);
        body.spans.len() - 1
    }

    fn close_span(&self, index: usize, duration: Duration, attrs: Vec<(&'static str, String)>) {
        let mut body = self.body.lock().unwrap();
        let span = &mut body.spans[index];
        span.duration = duration;
        span.attrs = attrs;
    }

    /// Renders the span tree as an indented text block (one line per
    /// span) — the slow-grade stderr format.
    pub fn render_tree(&self) -> String {
        let spans = self.spans();
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); spans.len()];
        let mut roots = Vec::new();
        for (i, s) in spans.iter().enumerate() {
            match s.parent {
                Some(p) => children[p].push(i),
                None => roots.push(i),
            }
        }
        let mut out = String::new();
        fn walk(
            out: &mut String,
            spans: &[SpanRecord],
            children: &[Vec<usize>],
            index: usize,
            depth: usize,
        ) {
            let s = &spans[index];
            for _ in 0..depth {
                out.push_str("  ");
            }
            out.push_str(&format!(
                "{} {:.3}ms (+{:.3}ms)",
                s.name,
                s.duration.as_secs_f64() * 1e3,
                s.start.as_secs_f64() * 1e3,
            ));
            for (k, v) in &s.attrs {
                out.push_str(&format!(" {k}={v}"));
            }
            out.push('\n');
            for &c in &children[index] {
                walk(out, spans, children, c, depth + 1);
            }
        }
        for &r in &roots {
            walk(&mut out, &spans, &children, r, 0);
        }
        out
    }
}

/// A cloneable pointer into a trace at a specific parent span, for
/// carrying the context across thread spawns.
#[derive(Debug, Clone)]
pub struct TraceHandle {
    trace: Arc<Trace>,
    parent: Option<usize>,
}

impl TraceHandle {
    pub fn id(&self) -> TraceId {
        self.trace.id()
    }

    /// Installs the handle's trace (and parent position) as the current
    /// thread's context until the guard drops.
    pub fn install(self) -> TraceGuard {
        let prev = CURRENT.with(|c| c.replace(Some(self)));
        TraceGuard { prev }
    }
}

thread_local! {
    static CURRENT: RefCell<Option<TraceHandle>> = const { RefCell::new(None) };
}

/// Restores the previous thread-local trace context on drop.
#[must_use = "dropping the guard immediately uninstalls the trace"]
pub struct TraceGuard {
    prev: Option<TraceHandle>,
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| c.replace(self.prev.take()));
    }
}

/// The current thread's trace position, if a trace is installed —
/// capture before spawning workers, install inside them.
pub fn current_handle() -> Option<TraceHandle> {
    CURRENT.with(|c| c.borrow().clone())
}

/// An RAII stage timer. While alive it is the parent of spans opened on
/// the same thread; on drop it writes its duration into the trace (if
/// one is installed) and into its stage histogram (if one was attached).
pub struct Span {
    start: Instant,
    hist: Option<Arc<Histogram>>,
    slot: Option<(TraceHandle, usize)>,
    attrs: Vec<(&'static str, String)>,
    restore: Option<TraceGuard>,
}

impl Span {
    /// Annotates the span; shows up in `/debug/traces` and the slow-grade
    /// tree. No-op when no trace is installed.
    pub fn attr(&mut self, key: &'static str, value: impl Into<String>) {
        if self.slot.is_some() {
            self.attrs.push((key, value.into()));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed();
        if let Some(h) = &self.hist {
            h.record_duration(elapsed);
        }
        if let Some((handle, index)) = self.slot.take() {
            handle
                .trace
                .close_span(index, elapsed, std::mem::take(&mut self.attrs));
        }
        // Restoring the parent context happens after the span closes.
        self.restore = None;
    }
}

/// Opens a span attached to the current trace (when installed) with no
/// histogram. Prefer the `stage_span!` macro for pipeline stages, which
/// also feeds the per-stage latency histogram.
pub fn span(name: &'static str) -> Span {
    open_span(name, None)
}

/// Opens a span that also records its duration into `hist` on drop —
/// the histogram fires whether or not a trace is installed, so stage
/// latency percentiles exist even with tracing off.
pub fn span_with_histogram(name: &'static str, hist: Arc<Histogram>) -> Span {
    open_span(name, Some(hist))
}

fn open_span(name: &'static str, hist: Option<Arc<Histogram>>) -> Span {
    let start = Instant::now();
    let slot = current_handle().map(|handle| {
        let index = handle.trace.push_span(SpanRecord {
            name,
            parent: handle.parent,
            start: handle.trace.started.elapsed(),
            duration: Duration::ZERO,
            attrs: Vec::new(),
        });
        // Children opened while this span is alive nest under it.
        let restore = TraceHandle {
            trace: Arc::clone(&handle.trace),
            parent: Some(index),
        }
        .install();
        ((handle, index), restore)
    });
    let (slot, restore) = match slot {
        Some((slot, restore)) => (Some(slot), Some(restore)),
        None => (None, None),
    };
    Span {
        start,
        hist,
        slot,
        attrs: Vec::new(),
        restore,
    }
}

/// Appends an already-measured span (e.g. an elapsed total a subsystem
/// accumulated itself) under the current span. No-op without a trace.
pub fn record_span(name: &'static str, duration: Duration) {
    if let Some(handle) = current_handle() {
        let now = handle.trace.started.elapsed();
        handle.trace.push_span(SpanRecord {
            name,
            parent: handle.parent,
            start: now.saturating_sub(duration),
            duration,
            attrs: Vec::new(),
        });
    }
}

/// A bounded ring of the most recent traces, for a `/debug/traces`
/// endpoint.
#[derive(Debug)]
pub struct TraceRing {
    cap: usize,
    ring: Mutex<VecDeque<Arc<Trace>>>,
}

impl TraceRing {
    pub fn new(cap: usize) -> Self {
        Self {
            cap: cap.max(1),
            ring: Mutex::new(VecDeque::new()),
        }
    }

    pub fn capacity(&self) -> usize {
        self.cap
    }

    pub fn push(&self, trace: Arc<Trace>) {
        let mut ring = self.ring.lock().unwrap();
        if ring.len() == self.cap {
            ring.pop_front();
        }
        ring.push_back(trace);
    }

    /// Most recent traces, oldest first.
    pub fn snapshot(&self) -> Vec<Arc<Trace>> {
        self.ring.lock().unwrap().iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_are_unique_and_roundtrip() {
        let a = TraceId::generate();
        let b = TraceId::generate();
        assert_ne!(a, b);
        let s = a.to_string();
        assert_eq!(s.len(), 32);
        assert_eq!(TraceId::parse(&s), Some(a));
        assert_eq!(TraceId::parse("zz"), None);
    }

    #[test]
    fn spans_nest_under_the_installed_trace() {
        let trace = Trace::new();
        {
            let _guard = trace.install();
            let mut outer = span("grade");
            outer.attr("cache", "miss");
            {
                let _inner = span("parse");
            }
            record_span("verify", Duration::from_millis(2));
        }
        let spans = trace.spans();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].name, "grade");
        assert_eq!(spans[0].parent, None);
        assert_eq!(spans[1].name, "parse");
        assert_eq!(spans[1].parent, Some(0));
        assert_eq!(spans[2].name, "verify");
        assert_eq!(spans[2].parent, Some(0));
        assert_eq!(spans[2].duration, Duration::from_millis(2));
        assert_eq!(spans[0].attrs, vec![("cache", "miss".to_string())]);
        // Closed spans carry a real duration; the tree renders them all.
        assert!(spans[0].duration >= spans[1].duration);
        let tree = trace.render_tree();
        assert!(tree.contains("grade"));
        assert!(tree.contains("  parse"));
        assert!(tree.contains("cache=miss"));
    }

    #[test]
    fn no_trace_installed_means_no_spans_recorded() {
        let trace = Trace::new();
        {
            let _span = span("orphan");
            record_span("also-orphan", Duration::from_millis(1));
        }
        assert!(trace.spans().is_empty());
        assert!(current_handle().is_none());
    }

    #[test]
    fn handles_carry_context_across_threads() {
        let trace = Trace::new();
        let _guard = trace.install();
        let root = span("batch");
        let handle = current_handle().expect("trace installed");
        drop(root);
        let worker = std::thread::spawn(move || {
            let _guard = handle.install();
            let _span = span("worker");
        });
        worker.join().unwrap();
        let spans = trace.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[1].name, "worker");
        assert_eq!(spans[1].parent, Some(0));
    }

    #[test]
    fn ring_keeps_only_the_most_recent() {
        let ring = TraceRing::new(2);
        let (a, b, c) = (Trace::new(), Trace::new(), Trace::new());
        ring.push(Arc::clone(&a));
        ring.push(Arc::clone(&b));
        ring.push(Arc::clone(&c));
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].id(), b.id());
        assert_eq!(snap[1].id(), c.id());
    }
}
