//! Mutation engine: synthesises *incorrect student submissions* by seeding
//! realistic local mistakes into correct solutions.
//!
//! The real 6.00/6.00x submission datasets are not public, so the corpus is
//! generated: each incorrect submission is a correct solution with one to
//! four injected mistakes drawn from the error classes the paper catalogues
//! (off-by-one iteration bounds, wrong initialisation constants, flipped
//! comparisons, wrong arithmetic operators, wrong list indices, missing
//! corner-case returns, misused variables).  Because different students make
//! the *same* kinds of mistakes, sampling mutations from a fixed operator
//! set also reproduces the "repetitive mistakes" structure the paper relies
//! on (Figure 14(b)).

use afg_ast::ops::{BinOp, CmpOp};
use afg_ast::visit::func_scope_vars;
use afg_ast::{Expr, FuncDef, Program, Stmt, StmtKind};

use crate::rng::StdRng;

/// The kinds of mistakes the mutator can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MutationKind {
    /// Shift an integer literal by ±1 (wrong bound, wrong initialiser).
    TweakConstant,
    /// Replace a comparison operator (`<` vs `<=`, `==` vs `!=`, ...).
    SwapComparison,
    /// Replace an arithmetic operator (`*` vs `+`, `**` vs `*`, ...).
    SwapArithmetic,
    /// Shift a list index by ±1.
    ShiftIndex,
    /// Replace a returned expression by a degenerate value (`[]`, `0`) or
    /// strip a slice.
    BreakReturn,
    /// Delete a guard `if` statement (losing a corner case).
    DropGuard,
    /// Use the wrong variable.
    MisuseVariable,
}

impl MutationKind {
    /// All operators, in a fixed order.
    pub fn all() -> &'static [MutationKind] {
        &[
            MutationKind::TweakConstant,
            MutationKind::SwapComparison,
            MutationKind::SwapArithmetic,
            MutationKind::ShiftIndex,
            MutationKind::BreakReturn,
            MutationKind::DropGuard,
            MutationKind::MisuseVariable,
        ]
    }
}

/// Applies `count` random mutations to the entry function of `program`.
/// Returns the kinds that were actually applied (some operators may find no
/// applicable site in a given program).
pub fn mutate_program(program: &mut Program, count: usize, rng: &mut StdRng) -> Vec<MutationKind> {
    let mut applied = Vec::new();
    let Some(func) = program.funcs.first_mut() else {
        return applied;
    };
    let mut attempts = 0;
    while applied.len() < count && attempts < count * 12 {
        attempts += 1;
        let kind = sample_kind(rng);
        if apply_mutation(func, kind, rng) {
            applied.push(kind);
        }
    }
    applied
}

/// Samples a mutation kind with the weights observed in the paper's error
/// catalogue: most student mistakes are wrong constants, bounds, comparisons
/// and indices; dropped guards and misused variables are rarer.
fn sample_kind(rng: &mut StdRng) -> MutationKind {
    match rng.gen_range(0..100u32) {
        0..=29 => MutationKind::TweakConstant,
        30..=54 => MutationKind::SwapComparison,
        55..=69 => MutationKind::ShiftIndex,
        70..=81 => MutationKind::SwapArithmetic,
        82..=91 => MutationKind::BreakReturn,
        92..=95 => MutationKind::DropGuard,
        _ => MutationKind::MisuseVariable,
    }
}

fn apply_mutation(func: &mut FuncDef, kind: MutationKind, rng: &mut StdRng) -> bool {
    match kind {
        MutationKind::TweakConstant => {
            let delta = if rng.gen_bool(0.5) { 1 } else { -1 };
            rewrite_random_expr(func, rng, &mut |expr, rng| match expr {
                Expr::Int(v) => {
                    let _ = rng;
                    Some(Expr::Int(*v + delta))
                }
                _ => None,
            })
        }
        MutationKind::SwapComparison => {
            rewrite_random_expr(func, rng, &mut |expr, rng| match expr {
                Expr::Compare(op, l, r) => {
                    let replacement = *rng.choose(CmpOp::relational()).expect("non-empty");
                    if replacement == *op {
                        None
                    } else {
                        Some(Expr::Compare(replacement, l.clone(), r.clone()))
                    }
                }
                _ => None,
            })
        }
        MutationKind::SwapArithmetic => {
            rewrite_random_expr(func, rng, &mut |expr, rng| match expr {
                Expr::BinOp(op, l, r) => {
                    let choices = [BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Pow];
                    let replacement = *rng.choose(&choices).expect("non-empty");
                    if replacement == *op {
                        None
                    } else {
                        Some(Expr::BinOp(replacement, l.clone(), r.clone()))
                    }
                }
                _ => None,
            })
        }
        MutationKind::ShiftIndex => {
            let delta = if rng.gen_bool(0.5) { 1 } else { -1 };
            rewrite_random_expr(func, rng, &mut |expr, _rng| match expr {
                Expr::Index(base, index) => Some(Expr::Index(
                    base.clone(),
                    Box::new(Expr::binop(BinOp::Add, (**index).clone(), Expr::Int(delta))),
                )),
                _ => None,
            })
        }
        MutationKind::BreakReturn => mutate_random_return(func, rng),
        MutationKind::DropGuard => drop_random_guard(&mut func.body, rng),
        MutationKind::MisuseVariable => {
            let vars = func_scope_vars(func);
            if vars.len() < 2 {
                return false;
            }
            rewrite_random_expr(func, rng, &mut |expr, rng| match expr {
                Expr::Var(name) => {
                    let other = rng.choose(&vars).expect("non-empty");
                    if other == name {
                        None
                    } else {
                        Some(Expr::var(other.clone()))
                    }
                }
                _ => None,
            })
        }
    }
}

/// Rewrites one randomly chosen expression node for which `try_rewrite`
/// returns a replacement.  Returns whether anything changed.
fn rewrite_random_expr(
    func: &mut FuncDef,
    rng: &mut StdRng,
    try_rewrite: &mut dyn FnMut(&Expr, &mut StdRng) -> Option<Expr>,
) -> bool {
    // First pass: count rewritable sites.
    let mut sites = 0usize;
    for_each_expr_mut(&mut func.body, &mut |expr| {
        if try_rewrite(expr, rng).is_some() {
            sites += 1;
        }
        None
    });
    if sites == 0 {
        return false;
    }
    let target = rng.gen_range(0..sites);
    let mut seen = 0usize;
    let mut done = false;
    for_each_expr_mut(&mut func.body, &mut |expr| {
        if done {
            return None;
        }
        if let Some(replacement) = try_rewrite(expr, rng) {
            if seen == target {
                done = true;
                return Some(replacement);
            }
            seen += 1;
        }
        None
    });
    done
}

/// Walks every expression of a statement block (including nested blocks) in
/// a deterministic order, replacing an expression when the callback returns
/// `Some`.  The callback sees nodes bottom-up within each expression tree.
fn for_each_expr_mut(body: &mut [Stmt], f: &mut dyn FnMut(&Expr) -> Option<Expr>) {
    for stmt in body {
        match &mut stmt.kind {
            StmtKind::Assign(_, value)
            | StmtKind::AugAssign(_, _, value)
            | StmtKind::ExprStmt(value) => rewrite_expr(value, f),
            StmtKind::If(cond, then_body, else_body) => {
                rewrite_expr(cond, f);
                for_each_expr_mut(then_body, f);
                for_each_expr_mut(else_body, f);
            }
            StmtKind::While(cond, inner) => {
                rewrite_expr(cond, f);
                for_each_expr_mut(inner, f);
            }
            StmtKind::For(_, iter, inner) => {
                rewrite_expr(iter, f);
                for_each_expr_mut(inner, f);
            }
            StmtKind::Return(Some(value)) => rewrite_expr(value, f),
            StmtKind::Print(args) => {
                for arg in args {
                    rewrite_expr(arg, f);
                }
            }
            _ => {}
        }
    }
}

fn rewrite_expr(expr: &mut Expr, f: &mut dyn FnMut(&Expr) -> Option<Expr>) {
    if let Some(replacement) = f(expr) {
        *expr = replacement;
        return;
    }
    match expr {
        Expr::List(items) | Expr::Tuple(items) | Expr::Call(_, items) => {
            for item in items {
                rewrite_expr(item, f);
            }
        }
        Expr::Dict(items) => {
            for (k, v) in items {
                rewrite_expr(k, f);
                rewrite_expr(v, f);
            }
        }
        Expr::Index(a, b)
        | Expr::BinOp(_, a, b)
        | Expr::Compare(_, a, b)
        | Expr::BoolExpr(_, a, b) => {
            rewrite_expr(a, f);
            rewrite_expr(b, f);
        }
        Expr::Slice(base, lower, upper) => {
            rewrite_expr(base, f);
            if let Some(l) = lower {
                rewrite_expr(l, f);
            }
            if let Some(u) = upper {
                rewrite_expr(u, f);
            }
        }
        Expr::UnaryOp(_, a) => rewrite_expr(a, f),
        Expr::MethodCall(recv, _, args) => {
            rewrite_expr(recv, f);
            for arg in args {
                rewrite_expr(arg, f);
            }
        }
        Expr::IfExpr(a, b, c) => {
            rewrite_expr(a, f);
            rewrite_expr(b, f);
            rewrite_expr(c, f);
        }
        _ => {}
    }
}

fn mutate_random_return(func: &mut FuncDef, rng: &mut StdRng) -> bool {
    let total = count_returns(&func.body);
    if total == 0 {
        return false;
    }
    let target = rng.gen_range(0..total);
    let flavour = rng.gen_range(0..3u8);
    let mut seen = 0usize;
    break_nth_return(&mut func.body, target, flavour, &mut seen)
}

fn count_returns(body: &[Stmt]) -> usize {
    let mut count = 0;
    for stmt in body {
        match &stmt.kind {
            StmtKind::Return(Some(_)) => count += 1,
            StmtKind::If(_, a, b) => count += count_returns(a) + count_returns(b),
            StmtKind::While(_, inner) | StmtKind::For(_, _, inner) => count += count_returns(inner),
            _ => {}
        }
    }
    count
}

fn break_nth_return(body: &mut [Stmt], target: usize, flavour: u8, seen: &mut usize) -> bool {
    for stmt in body {
        // The recursion needs `&mut` bindings, which match guards cannot
        // provide, so the inner `if`s stay.
        #[allow(clippy::collapsible_match)]
        match &mut stmt.kind {
            StmtKind::Return(Some(value)) => {
                if *seen == target {
                    *value = match (flavour, value.clone()) {
                        (_, Expr::Slice(base, _, _)) => (*base).clone(),
                        (0, _) => Expr::List(vec![]),
                        (1, _) => Expr::Int(0),
                        (_, original) => Expr::List(vec![original]),
                    };
                    return true;
                }
                *seen += 1;
            }
            StmtKind::If(_, a, b) => {
                if break_nth_return(a, target, flavour, seen)
                    || break_nth_return(b, target, flavour, seen)
                {
                    return true;
                }
            }
            StmtKind::While(_, inner) | StmtKind::For(_, _, inner) => {
                if break_nth_return(inner, target, flavour, seen) {
                    return true;
                }
            }
            _ => {}
        }
    }
    false
}

fn drop_random_guard(body: &mut Vec<Stmt>, rng: &mut StdRng) -> bool {
    let guard_positions: Vec<usize> = body
        .iter()
        .enumerate()
        .filter(|(_, s)| matches!(s.kind, StmtKind::If(_, _, ref e) if e.is_empty()))
        .map(|(i, _)| i)
        .collect();
    if let Some(&position) = rng.choose(&guard_positions) {
        // Keep at least one statement so the program still parses sensibly.
        if body.len() > 1 {
            body.remove(position);
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use afg_parser::parse_program;

    use crate::rng::StdRng;

    const SEED_PROGRAM: &str = "\
def computeDeriv(poly):
    if len(poly) == 1:
        return [0]
    deriv = []
    for i in range(1, len(poly)):
        deriv.append(i * poly[i])
    return deriv
";

    #[test]
    fn mutations_change_the_program_deterministically() {
        let original = parse_program(SEED_PROGRAM).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let mut mutated = original.clone();
        let applied = mutate_program(&mut mutated, 2, &mut rng);
        assert!(!applied.is_empty());
        assert_ne!(original, mutated, "mutation should modify the AST");

        // Same seed, same result.
        let mut rng2 = StdRng::seed_from_u64(7);
        let mut mutated2 = original.clone();
        mutate_program(&mut mutated2, 2, &mut rng2);
        assert_eq!(mutated, mutated2);
    }

    #[test]
    fn mutated_programs_still_parse_after_printing() {
        let original = parse_program(SEED_PROGRAM).unwrap();
        for seed in 0..20 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut mutated = original.clone();
            mutate_program(&mut mutated, 3, &mut rng);
            let printed = afg_ast::pretty::program_to_string(&mutated);
            parse_program(&printed).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{printed}"));
        }
    }

    #[test]
    fn most_mutants_are_behaviourally_different() {
        use afg_interp::{EquivalenceConfig, EquivalenceOracle};
        let original = parse_program(SEED_PROGRAM).unwrap();
        // The seed program leaves `poly` untyped, so declare the input space
        // explicitly: the Dynamic fallback only enumerates singleton lists,
        // which cannot see mistakes inside the loop body.
        let oracle = EquivalenceOracle::new(
            &original,
            &[afg_ast::types::MpyType::list_int()],
            EquivalenceConfig {
                entry: Some("computeDeriv".into()),
                ..EquivalenceConfig::default()
            },
        );
        let mut different = 0;
        let total = 30;
        for seed in 0..total {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut mutated = original.clone();
            mutate_program(&mut mutated, 1, &mut rng);
            if oracle.find_counterexample(&mutated).is_some() {
                different += 1;
            }
        }
        assert!(
            different > total / 2,
            "only {different}/{total} single mutations changed behaviour"
        );
    }

    #[test]
    fn programs_without_functions_are_left_alone() {
        let mut program = parse_program("x = 1\n").unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        assert!(mutate_program(&mut program, 2, &mut rng).is_empty());
    }
}
