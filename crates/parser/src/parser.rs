//! Recursive-descent parser producing `afg-ast` syntax trees.

use crate::lexer::{Keyword, Op, Token, TokenKind};
use crate::ParseError;
use afg_ast::ops::{BinOp, BoolOp, CmpOp, UnaryOp};
use afg_ast::types::MpyType;
use afg_ast::{Expr, FuncDef, Param, Program, Stmt, StmtKind, Target};

/// Hostile submissions must not be able to overflow the parser's stack:
/// every recursive production (nested parentheses, chained unary
/// operators, nested blocks) counts against this bound and deeper input
/// is rejected with an ordinary [`ParseError`].  Real student programs
/// nest a handful of levels; the bound is an order of magnitude above
/// anything in the corpus while staying far below stack exhaustion even
/// on 2 MiB test threads (each nesting level costs the full ~dozen-frame
/// precedence chain, so the margin must account for frames, not levels).
const MAX_NESTING_DEPTH: u32 = 64;

/// A recursive-descent parser over a token stream produced by
/// [`crate::tokenize`].
pub struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    depth: u32,
}

impl Parser {
    /// Creates a parser over a token stream.
    pub fn new(tokens: Vec<Token>) -> Parser {
        Parser {
            tokens,
            pos: 0,
            depth: 0,
        }
    }

    /// Enters one level of recursive nesting, rejecting input deeper than
    /// [`MAX_NESTING_DEPTH`].  Callers must pair it with `leave`.
    fn enter(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > MAX_NESTING_DEPTH {
            return Err(self.error_here("nesting too deep"));
        }
        Ok(())
    }

    fn leave(&mut self) {
        self.depth -= 1;
    }

    /// Parses a whole program.
    ///
    /// # Errors
    ///
    /// Returns the first syntax error encountered.
    pub fn parse_program(mut self) -> Result<Program, ParseError> {
        let mut program = Program::new();
        loop {
            self.skip_newlines();
            if self.check_kind(&TokenKind::Eof) {
                break;
            }
            if self.check_keyword(Keyword::Def) {
                program.funcs.push(self.parse_funcdef()?);
            } else {
                let stmts = self.parse_statement()?;
                program.top_level.extend(stmts);
            }
        }
        Ok(program)
    }

    /// Parses exactly one expression followed by end of input.
    ///
    /// # Errors
    ///
    /// Returns an error if the input is empty, malformed, or has trailing
    /// tokens.
    pub fn parse_single_expr(mut self) -> Result<Expr, ParseError> {
        let expr = self.parse_expr()?;
        self.skip_newlines();
        if !self.check_kind(&TokenKind::Eof) {
            let tok = self.peek();
            return Err(ParseError::new(
                tok.line,
                tok.col,
                "unexpected trailing input after expression",
            ));
        }
        Ok(expr)
    }

    // ----- token stream helpers -------------------------------------------------

    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek_kind(&self) -> &TokenKind {
        &self.peek().kind
    }

    fn peek_ahead(&self, n: usize) -> &TokenKind {
        &self.tokens[(self.pos + n).min(self.tokens.len() - 1)].kind
    }

    fn advance(&mut self) -> Token {
        let tok = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        tok
    }

    fn check_kind(&self, kind: &TokenKind) -> bool {
        self.peek_kind() == kind
    }

    fn check_keyword(&self, kw: Keyword) -> bool {
        matches!(self.peek_kind(), TokenKind::Keyword(k) if *k == kw)
    }

    fn check_op(&self, op: Op) -> bool {
        matches!(self.peek_kind(), TokenKind::Op(o) if *o == op)
    }

    fn eat_op(&mut self, op: Op) -> bool {
        if self.check_op(op) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn eat_keyword(&mut self, kw: Keyword) -> bool {
        if self.check_keyword(kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_op(&mut self, op: Op, what: &str) -> Result<Token, ParseError> {
        if self.check_op(op) {
            Ok(self.advance())
        } else {
            let tok = self.peek();
            Err(ParseError::new(
                tok.line,
                tok.col,
                format!("expected {what}"),
            ))
        }
    }

    fn expect_newline(&mut self) -> Result<(), ParseError> {
        if self.check_kind(&TokenKind::Newline) || self.check_kind(&TokenKind::Eof) {
            if self.check_kind(&TokenKind::Newline) {
                self.advance();
            }
            Ok(())
        } else {
            let tok = self.peek();
            Err(ParseError::new(tok.line, tok.col, "expected end of line"))
        }
    }

    fn skip_newlines(&mut self) {
        while self.check_kind(&TokenKind::Newline) {
            self.advance();
        }
    }

    fn error_here(&self, message: impl Into<String>) -> ParseError {
        let tok = self.peek();
        ParseError::new(tok.line, tok.col, message)
    }

    // ----- declarations ----------------------------------------------------------

    fn parse_funcdef(&mut self) -> Result<FuncDef, ParseError> {
        afg_cov::cov_hit!();
        let def_tok = self.advance(); // 'def'
        let name = match self.advance().kind {
            TokenKind::Name(n) => n,
            _ => {
                return Err(ParseError::new(
                    def_tok.line,
                    def_tok.col,
                    "expected function name after 'def'",
                ))
            }
        };
        self.expect_op(Op::LParen, "'(' after function name")?;
        let mut params = Vec::new();
        if !self.check_op(Op::RParen) {
            loop {
                let tok = self.advance();
                let pname = match tok.kind {
                    TokenKind::Name(n) => n,
                    _ => {
                        return Err(ParseError::new(
                            tok.line,
                            tok.col,
                            "expected parameter name",
                        ))
                    }
                };
                let (_, ty) = MpyType::parse_suffix(&pname);
                params.push(Param::new(pname, ty.unwrap_or(MpyType::Dynamic)));
                if !self.eat_op(Op::Comma) {
                    break;
                }
            }
        }
        self.expect_op(Op::RParen, "')' after parameters")?;
        let body = self.parse_block()?;
        Ok(FuncDef {
            name,
            params,
            body,
            line: def_tok.line,
        })
    }

    // ----- statements -----------------------------------------------------------

    /// Parses a `: <block>` suffix — either an indented block on the
    /// following lines or simple statements on the same line.
    fn parse_block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect_op(Op::Colon, "':'")?;
        if self.check_kind(&TokenKind::Newline) {
            afg_cov::cov_hit!();
            self.advance();
            self.skip_newlines();
            if !self.check_kind(&TokenKind::Indent) {
                return Err(self.error_here("expected an indented block"));
            }
            self.advance();
            let mut body = Vec::new();
            loop {
                self.skip_newlines();
                if self.check_kind(&TokenKind::Dedent) {
                    self.advance();
                    break;
                }
                if self.check_kind(&TokenKind::Eof) {
                    break;
                }
                body.extend(self.parse_statement()?);
            }
            Ok(body)
        } else {
            afg_cov::cov_hit!();
            // Single-line suite: `if x: return 1`
            self.parse_simple_statement_line()
        }
    }

    /// Parses one statement; simple-statement lines with `;` may expand to
    /// several statements, which is why a `Vec` is returned.
    fn parse_statement(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.enter()?;
        let result = self.parse_statement_inner();
        self.leave();
        result
    }

    fn parse_statement_inner(&mut self) -> Result<Vec<Stmt>, ParseError> {
        if self.check_keyword(Keyword::If) {
            afg_cov::cov_hit!();
            return Ok(vec![self.parse_if()?]);
        }
        if self.check_keyword(Keyword::While) {
            afg_cov::cov_hit!();
            return Ok(vec![self.parse_while()?]);
        }
        if self.check_keyword(Keyword::For) {
            afg_cov::cov_hit!();
            return Ok(vec![self.parse_for()?]);
        }
        if self.check_keyword(Keyword::Def) {
            afg_cov::cov_hit!();
            // Nested function definitions are not part of MPY.
            return Err(self.error_here("nested function definitions are not supported"));
        }
        self.parse_simple_statement_line()
    }

    fn parse_simple_statement_line(&mut self) -> Result<Vec<Stmt>, ParseError> {
        let mut stmts = vec![self.parse_simple_statement()?];
        while self.eat_op(Op::Semicolon) {
            if self.check_kind(&TokenKind::Newline) || self.check_kind(&TokenKind::Eof) {
                break;
            }
            stmts.push(self.parse_simple_statement()?);
        }
        self.expect_newline()?;
        Ok(stmts)
    }

    fn parse_simple_statement(&mut self) -> Result<Stmt, ParseError> {
        let line = self.peek().line;
        if self.eat_keyword(Keyword::Return) {
            afg_cov::cov_hit!();
            if self.check_kind(&TokenKind::Newline)
                || self.check_kind(&TokenKind::Eof)
                || self.check_op(Op::Semicolon)
            {
                return Ok(Stmt::new(line, StmtKind::Return(None)));
            }
            let expr = self.parse_expr_or_tuple()?;
            return Ok(Stmt::new(line, StmtKind::Return(Some(expr))));
        }
        if self.eat_keyword(Keyword::Pass) {
            afg_cov::cov_hit!();
            return Ok(Stmt::new(line, StmtKind::Pass));
        }
        if self.eat_keyword(Keyword::Break) {
            afg_cov::cov_hit!();
            return Ok(Stmt::new(line, StmtKind::Break));
        }
        if self.eat_keyword(Keyword::Continue) {
            afg_cov::cov_hit!();
            return Ok(Stmt::new(line, StmtKind::Continue));
        }
        if self.check_keyword(Keyword::Print) {
            afg_cov::cov_hit!();
            return self.parse_print(line);
        }
        // Assignment, augmented assignment, or bare expression.
        let first = self.parse_expr_or_tuple()?;
        if self.check_op(Op::Assign) {
            afg_cov::cov_hit!();
            self.advance();
            let target = expr_to_target(&first)
                .ok_or_else(|| ParseError::new(line, 1, "invalid assignment target"))?;
            if self.check_op(Op::Assign) {
                return Err(self.error_here("chained assignment is not supported in MPY"));
            }
            let value = self.parse_expr_or_tuple()?;
            if self.check_op(Op::Assign) {
                return Err(self.error_here("chained assignment is not supported in MPY"));
            }
            return Ok(Stmt::new(line, StmtKind::Assign(target, value)));
        }
        for (op_tok, bin_op) in [
            (Op::PlusAssign, BinOp::Add),
            (Op::MinusAssign, BinOp::Sub),
            (Op::StarAssign, BinOp::Mul),
            (Op::SlashAssign, BinOp::Div),
        ] {
            if self.check_op(op_tok) {
                afg_cov::cov_hit!();
                self.advance();
                let target = expr_to_target(&first)
                    .ok_or_else(|| ParseError::new(line, 1, "invalid assignment target"))?;
                let value = self.parse_expr_or_tuple()?;
                return Ok(Stmt::new(line, StmtKind::AugAssign(target, bin_op, value)));
            }
        }
        afg_cov::cov_hit!();
        Ok(Stmt::new(line, StmtKind::ExprStmt(first)))
    }

    fn parse_print(&mut self, line: u32) -> Result<Stmt, ParseError> {
        self.advance(); // 'print'
                        // Python-3 style `print(a, b)` and Python-2 style `print a, b` are
                        // both accepted; a bare `print` prints an empty line.
        if self.check_kind(&TokenKind::Newline) || self.check_kind(&TokenKind::Eof) {
            return Ok(Stmt::new(line, StmtKind::Print(vec![])));
        }
        let mut args = Vec::new();
        if self.eat_op(Op::LParen) {
            if !self.check_op(Op::RParen) {
                args.push(self.parse_expr()?);
                while self.eat_op(Op::Comma) {
                    args.push(self.parse_expr()?);
                }
            }
            self.expect_op(Op::RParen, "')' to close print")?;
        } else {
            args.push(self.parse_expr()?);
            while self.eat_op(Op::Comma) {
                args.push(self.parse_expr()?);
            }
        }
        Ok(Stmt::new(line, StmtKind::Print(args)))
    }

    fn parse_if(&mut self) -> Result<Stmt, ParseError> {
        let line = self.peek().line;
        self.advance(); // 'if' or 'elif'
        let cond = self.parse_expr()?;
        let then_body = self.parse_block()?;
        self.skip_newlines();
        let else_body = if self.check_keyword(Keyword::Elif) {
            afg_cov::cov_hit!();
            // `elif` chains recurse without passing through
            // `parse_statement`, so they count against the bound here.
            self.enter()?;
            let nested = self.parse_if();
            self.leave();
            vec![nested?]
        } else if self.eat_keyword(Keyword::Else) {
            afg_cov::cov_hit!();
            self.parse_block()?
        } else {
            vec![]
        };
        Ok(Stmt::new(line, StmtKind::If(cond, then_body, else_body)))
    }

    fn parse_while(&mut self) -> Result<Stmt, ParseError> {
        afg_cov::cov_hit!();
        let line = self.peek().line;
        self.advance();
        let cond = self.parse_expr()?;
        let body = self.parse_block()?;
        Ok(Stmt::new(line, StmtKind::While(cond, body)))
    }

    fn parse_for(&mut self) -> Result<Stmt, ParseError> {
        afg_cov::cov_hit!();
        let line = self.peek().line;
        self.advance();
        let tok = self.advance();
        let var = match tok.kind {
            TokenKind::Name(n) => n,
            _ => {
                return Err(ParseError::new(
                    tok.line,
                    tok.col,
                    "expected loop variable after 'for'",
                ))
            }
        };
        if !self.eat_keyword(Keyword::In) {
            return Err(self.error_here("expected 'in' in for statement"));
        }
        let iter = self.parse_expr()?;
        let body = self.parse_block()?;
        Ok(Stmt::new(line, StmtKind::For(var, iter, body)))
    }

    // ----- expressions ----------------------------------------------------------

    /// Parses `a, b, c` as a tuple expression (used on the right-hand side of
    /// assignments and in return statements).
    fn parse_expr_or_tuple(&mut self) -> Result<Expr, ParseError> {
        let first = self.parse_expr()?;
        if !self.check_op(Op::Comma) {
            return Ok(first);
        }
        let mut items = vec![first];
        while self.eat_op(Op::Comma) {
            if self.is_expr_terminator() {
                break;
            }
            items.push(self.parse_expr()?);
        }
        Ok(Expr::Tuple(items))
    }

    fn is_expr_terminator(&self) -> bool {
        matches!(self.peek_kind(), TokenKind::Newline | TokenKind::Eof)
            || self.check_op(Op::Assign)
            || self.check_op(Op::RParen)
            || self.check_op(Op::RBracket)
            || self.check_op(Op::Semicolon)
    }

    /// Parses a conditional expression (lowest precedence).
    pub(crate) fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        self.enter()?;
        let result = self.parse_expr_inner();
        self.leave();
        result
    }

    fn parse_expr_inner(&mut self) -> Result<Expr, ParseError> {
        let body = self.parse_or()?;
        if self.check_keyword(Keyword::If) {
            afg_cov::cov_hit!();
            self.advance();
            let cond = self.parse_or()?;
            if !self.eat_keyword(Keyword::Else) {
                return Err(self.error_here("expected 'else' in conditional expression"));
            }
            let orelse = self.parse_expr()?;
            return Ok(Expr::IfExpr(
                Box::new(body),
                Box::new(cond),
                Box::new(orelse),
            ));
        }
        Ok(body)
    }

    fn parse_or(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_and()?;
        while self.check_keyword(Keyword::Or) {
            afg_cov::cov_hit!();
            self.advance();
            let right = self.parse_and()?;
            left = Expr::BoolExpr(BoolOp::Or, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_not()?;
        while self.check_keyword(Keyword::And) {
            afg_cov::cov_hit!();
            self.advance();
            let right = self.parse_not()?;
            left = Expr::BoolExpr(BoolOp::And, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<Expr, ParseError> {
        if self.check_keyword(Keyword::Not) {
            afg_cov::cov_hit!();
            self.enter()?;
            self.advance();
            let operand = self.parse_not();
            self.leave();
            return Ok(Expr::UnaryOp(UnaryOp::Not, Box::new(operand?)));
        }
        self.parse_comparison()
    }

    fn parse_comparison(&mut self) -> Result<Expr, ParseError> {
        let first = self.parse_arith()?;
        let mut comparisons: Vec<Expr> = Vec::new();
        let mut prev = first;
        loop {
            let op = if self.check_op(Op::Eq) {
                Some(CmpOp::Eq)
            } else if self.check_op(Op::Ne) {
                Some(CmpOp::Ne)
            } else if self.check_op(Op::Lt) {
                Some(CmpOp::Lt)
            } else if self.check_op(Op::Le) {
                Some(CmpOp::Le)
            } else if self.check_op(Op::Gt) {
                Some(CmpOp::Gt)
            } else if self.check_op(Op::Ge) {
                Some(CmpOp::Ge)
            } else if self.check_keyword(Keyword::In) {
                Some(CmpOp::In)
            } else if self.check_keyword(Keyword::Not)
                && matches!(self.peek_ahead(1), TokenKind::Keyword(Keyword::In))
            {
                self.advance(); // consume 'not'; 'in' consumed below
                Some(CmpOp::NotIn)
            } else {
                None
            };
            let Some(op) = op else { break };
            afg_cov::cov_hit!();
            self.advance();
            let right = self.parse_arith()?;
            comparisons.push(Expr::Compare(
                op,
                Box::new(prev.clone()),
                Box::new(right.clone()),
            ));
            prev = right;
        }
        match comparisons.len() {
            0 => Ok(prev),
            1 => Ok(comparisons.pop().expect("one comparison")),
            // Chained comparison `a < b < c` desugars to `a < b and b < c`.
            _ => Ok(comparisons
                .into_iter()
                .reduce(|acc, next| Expr::BoolExpr(BoolOp::And, Box::new(acc), Box::new(next)))
                .expect("non-empty comparisons")),
        }
    }

    fn parse_arith(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_term()?;
        loop {
            let op = if self.check_op(Op::Plus) {
                BinOp::Add
            } else if self.check_op(Op::Minus) {
                BinOp::Sub
            } else {
                break;
            };
            afg_cov::cov_hit!();
            self.advance();
            let right = self.parse_term()?;
            left = Expr::binop(op, left, right);
        }
        Ok(left)
    }

    fn parse_term(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_factor()?;
        loop {
            let op = if self.check_op(Op::Star) {
                BinOp::Mul
            } else if self.check_op(Op::DoubleSlash) {
                BinOp::FloorDiv
            } else if self.check_op(Op::Slash) {
                BinOp::Div
            } else if self.check_op(Op::Percent) {
                BinOp::Mod
            } else {
                break;
            };
            afg_cov::cov_hit!();
            self.advance();
            let right = self.parse_factor()?;
            left = Expr::binop(op, left, right);
        }
        Ok(left)
    }

    fn parse_factor(&mut self) -> Result<Expr, ParseError> {
        if self.check_op(Op::Minus) {
            afg_cov::cov_hit!();
            self.enter()?;
            self.advance();
            let operand = self.parse_factor();
            self.leave();
            let operand = operand?;
            // Fold `-<int literal>` into a negative literal so that error
            // models can pattern-match constants like `-1`.
            if let Expr::Int(v) = operand {
                return Ok(Expr::Int(-v));
            }
            return Ok(Expr::UnaryOp(UnaryOp::Neg, Box::new(operand)));
        }
        if self.check_op(Op::Plus) {
            afg_cov::cov_hit!();
            self.enter()?;
            self.advance();
            let operand = self.parse_factor();
            self.leave();
            return operand;
        }
        self.parse_power()
    }

    fn parse_power(&mut self) -> Result<Expr, ParseError> {
        let base = self.parse_postfix()?;
        if self.check_op(Op::DoubleStar) {
            afg_cov::cov_hit!();
            self.advance();
            let exponent = self.parse_factor()?;
            return Ok(Expr::binop(BinOp::Pow, base, exponent));
        }
        Ok(base)
    }

    fn parse_postfix(&mut self) -> Result<Expr, ParseError> {
        let mut expr = self.parse_atom()?;
        loop {
            if self.check_op(Op::LParen) {
                afg_cov::cov_hit!();
                // Call: only names can be called directly in MPY.
                let func = match &expr {
                    Expr::Var(name) => name.clone(),
                    _ => return Err(self.error_here("only named functions can be called")),
                };
                self.advance();
                let args = self.parse_call_args()?;
                expr = Expr::Call(func, args);
            } else if self.check_op(Op::LBracket) {
                afg_cov::cov_hit!();
                self.advance();
                expr = self.parse_subscript(expr)?;
            } else if self.check_op(Op::Dot) {
                afg_cov::cov_hit!();
                self.advance();
                let tok = self.advance();
                let method = match tok.kind {
                    TokenKind::Name(n) => n,
                    _ => {
                        return Err(ParseError::new(
                            tok.line,
                            tok.col,
                            "expected method name after '.'",
                        ))
                    }
                };
                self.expect_op(Op::LParen, "'(' after method name")?;
                let args = self.parse_call_args()?;
                expr = Expr::MethodCall(Box::new(expr), method, args);
            } else {
                break;
            }
        }
        Ok(expr)
    }

    fn parse_call_args(&mut self) -> Result<Vec<Expr>, ParseError> {
        let mut args = Vec::new();
        if !self.check_op(Op::RParen) {
            args.push(self.parse_expr()?);
            while self.eat_op(Op::Comma) {
                if self.check_op(Op::RParen) {
                    break;
                }
                args.push(self.parse_expr()?);
            }
        }
        self.expect_op(Op::RParen, "')' to close call")?;
        Ok(args)
    }

    fn parse_subscript(&mut self, base: Expr) -> Result<Expr, ParseError> {
        // Either `base[expr]`, `base[lo:hi]`, `base[:hi]`, `base[lo:]` or `base[:]`.
        let lower = if self.check_op(Op::Colon) {
            None
        } else {
            Some(self.parse_expr()?)
        };
        if self.eat_op(Op::Colon) {
            afg_cov::cov_hit!();
            let upper = if self.check_op(Op::RBracket) {
                None
            } else {
                Some(self.parse_expr()?)
            };
            self.expect_op(Op::RBracket, "']' to close slice")?;
            return Ok(Expr::Slice(
                Box::new(base),
                lower.map(Box::new),
                upper.map(Box::new),
            ));
        }
        self.expect_op(Op::RBracket, "']' to close index")?;
        let index = lower.ok_or_else(|| self.error_here("empty subscript"))?;
        Ok(Expr::Index(Box::new(base), Box::new(index)))
    }

    fn parse_atom(&mut self) -> Result<Expr, ParseError> {
        let tok = self.advance();
        match tok.kind {
            TokenKind::Int(v) => {
                afg_cov::cov_hit!();
                Ok(Expr::Int(v))
            }
            TokenKind::Str(s) => {
                afg_cov::cov_hit!();
                Ok(Expr::Str(s))
            }
            TokenKind::Keyword(Keyword::True) => Ok(Expr::Bool(true)),
            TokenKind::Keyword(Keyword::False) => Ok(Expr::Bool(false)),
            TokenKind::Keyword(Keyword::None) => Ok(Expr::None),
            TokenKind::Name(n) => {
                afg_cov::cov_hit!();
                Ok(Expr::Var(n))
            }
            TokenKind::Keyword(Keyword::Print) => {
                // Allow `print(x)` in expression position (Python 3 style);
                // it is treated as a call to the builtin.
                Ok(Expr::Var("print".to_string()))
            }
            TokenKind::Op(Op::LParen) => {
                afg_cov::cov_hit!();
                if self.eat_op(Op::RParen) {
                    return Ok(Expr::Tuple(vec![]));
                }
                let first = self.parse_expr()?;
                if self.check_op(Op::Comma) {
                    let mut items = vec![first];
                    while self.eat_op(Op::Comma) {
                        if self.check_op(Op::RParen) {
                            break;
                        }
                        items.push(self.parse_expr()?);
                    }
                    self.expect_op(Op::RParen, "')' to close tuple")?;
                    return Ok(Expr::Tuple(items));
                }
                self.expect_op(Op::RParen, "')' to close parenthesised expression")?;
                Ok(first)
            }
            TokenKind::Op(Op::LBracket) => {
                afg_cov::cov_hit!();
                let mut items = Vec::new();
                if !self.check_op(Op::RBracket) {
                    items.push(self.parse_expr()?);
                    while self.eat_op(Op::Comma) {
                        if self.check_op(Op::RBracket) {
                            break;
                        }
                        items.push(self.parse_expr()?);
                    }
                }
                self.expect_op(Op::RBracket, "']' to close list")?;
                Ok(Expr::List(items))
            }
            TokenKind::Op(Op::LBrace) => {
                afg_cov::cov_hit!();
                let mut items = Vec::new();
                if !self.check_op(Op::RBrace) {
                    loop {
                        let key = self.parse_expr()?;
                        self.expect_op(Op::Colon, "':' in dictionary literal")?;
                        let value = self.parse_expr()?;
                        items.push((key, value));
                        if !self.eat_op(Op::Comma) {
                            break;
                        }
                        if self.check_op(Op::RBrace) {
                            break;
                        }
                    }
                }
                self.expect_op(Op::RBrace, "'}' to close dictionary")?;
                Ok(Expr::Dict(items))
            }
            other => {
                afg_cov::cov_hit!();
                Err(ParseError::new(
                    tok.line,
                    tok.col,
                    format!("unexpected token {other:?}"),
                ))
            }
        }
    }
}

/// Converts an expression that appeared on the left of `=` into an
/// assignment target, if it has target shape.
fn expr_to_target(expr: &Expr) -> Option<Target> {
    match expr {
        Expr::Var(name) => Some(Target::Var(name.clone())),
        Expr::Index(base, index) => Some(Target::Index((**base).clone(), (**index).clone())),
        Expr::Tuple(items) | Expr::List(items) => {
            let targets: Option<Vec<Target>> = items.iter().map(expr_to_target).collect();
            Some(Target::Tuple(targets?))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_expr, parse_program};
    use afg_ast::pretty;

    #[test]
    fn parses_reference_compute_deriv() {
        let source = "\
def computeDeriv_list_int(poly_list_int):
    result = []
    for i in range(len(poly_list_int)):
        result += [i * poly_list_int[i]]
    if len(poly_list_int) == 1:
        return result
    else:
        return result[1:]
";
        let program = parse_program(source).unwrap();
        assert_eq!(program.funcs.len(), 1);
        let func = &program.funcs[0];
        assert_eq!(func.params.len(), 1);
        assert_eq!(func.params[0].ty, MpyType::list_int());
        assert_eq!(func.body.len(), 3);
        match &func.body[2].kind {
            StmtKind::If(_, then_b, else_b) => {
                assert_eq!(then_b.len(), 1);
                assert_eq!(else_b.len(), 1);
            }
            other => panic!("expected if, got {other:?}"),
        }
    }

    #[test]
    fn parses_student_submission_figure_2a() {
        let source = "\
def computeDeriv(poly):
    deriv = []
    zero = 0
    if (len(poly) == 1):
        return deriv
    for e in range(0, len(poly)):
        if (poly[e] == 0):
            zero += 1
        else:
            deriv.append(poly[e]*e)
    return deriv
";
        let program = parse_program(source).unwrap();
        let func = &program.funcs[0];
        assert_eq!(func.body.len(), 5);
        // Line numbers must match the original source for feedback.
        assert_eq!(func.body[0].line, 2);
        assert_eq!(func.body[3].line, 6);
    }

    #[test]
    fn parses_while_loops_and_method_calls() {
        let source = "\
def computeDeriv(poly):
    idx = 1
    deriv = list([])
    plen = len(poly)
    while idx <= plen:
        coeff = poly.pop(1)
        deriv += [coeff * idx]
        idx = idx + 1
    if len(poly) < 2:
        return deriv
";
        let program = parse_program(source).unwrap();
        let func = &program.funcs[0];
        assert_eq!(func.body.len(), 5);
        match &func.body[3].kind {
            StmtKind::While(cond, body) => {
                assert_eq!(pretty::expr_to_string(cond), "idx <= plen");
                assert_eq!(body.len(), 3);
            }
            other => panic!("expected while, got {other:?}"),
        }
    }

    #[test]
    fn elif_chains_become_nested_ifs() {
        let source = "\
def f(x):
    if x == 0:
        return 0
    elif x == 1:
        return 1
    else:
        return 2
";
        let program = parse_program(source).unwrap();
        match &program.funcs[0].body[0].kind {
            StmtKind::If(_, _, else_body) => match &else_body[0].kind {
                StmtKind::If(_, _, inner_else) => {
                    assert_eq!(inner_else.len(), 1);
                }
                other => panic!("expected nested if, got {other:?}"),
            },
            other => panic!("expected if, got {other:?}"),
        }
    }

    #[test]
    fn parses_expressions_with_correct_precedence() {
        assert_eq!(
            pretty::expr_to_string(&parse_expr("1 + 2 * 3").unwrap()),
            "1 + 2 * 3"
        );
        assert_eq!(
            pretty::expr_to_string(&parse_expr("(1 + 2) * 3").unwrap()),
            "(1 + 2) * 3"
        );
        assert_eq!(
            pretty::expr_to_string(&parse_expr("m ** n ** 2").unwrap()),
            "m ** n ** 2"
        );
        assert_eq!(
            pretty::expr_to_string(&parse_expr("not a and b or c").unwrap()),
            "not a and b or c"
        );
        assert_eq!(
            pretty::expr_to_string(&parse_expr("x if len(poly) == 1 else y").unwrap()),
            "x if len(poly) == 1 else y"
        );
    }

    #[test]
    fn parses_membership_and_chained_comparisons() {
        let e = parse_expr("c in secretWord").unwrap();
        assert!(matches!(e, Expr::Compare(CmpOp::In, _, _)));
        let e = parse_expr("c not in secretWord").unwrap();
        assert!(matches!(e, Expr::Compare(CmpOp::NotIn, _, _)));
        let e = parse_expr("0 <= i < n").unwrap();
        assert_eq!(pretty::expr_to_string(&e), "0 <= i and i < n");
    }

    #[test]
    fn parses_slices_and_negative_indices() {
        assert_eq!(
            pretty::expr_to_string(&parse_expr("xs[1:]").unwrap()),
            "xs[1:]"
        );
        assert_eq!(
            pretty::expr_to_string(&parse_expr("xs[:n]").unwrap()),
            "xs[:n]"
        );
        assert_eq!(
            pretty::expr_to_string(&parse_expr("xs[1:n]").unwrap()),
            "xs[1:n]"
        );
        assert_eq!(
            pretty::expr_to_string(&parse_expr("xs[:]").unwrap()),
            "xs[:]"
        );
        assert_eq!(
            pretty::expr_to_string(&parse_expr("xs[-1]").unwrap()),
            "xs[-1]"
        );
    }

    #[test]
    fn negative_literals_fold() {
        assert_eq!(parse_expr("-3").unwrap(), Expr::Int(-3));
        assert!(matches!(
            parse_expr("-x").unwrap(),
            Expr::UnaryOp(UnaryOp::Neg, _)
        ));
    }

    #[test]
    fn parses_tuple_assignment_and_aug_assign() {
        let source = "\
def f(x):
    a, b = 1, 2
    a += b
    x[0] = a
    return (a, b)
";
        let program = parse_program(source).unwrap();
        let body = &program.funcs[0].body;
        assert!(matches!(
            &body[0].kind,
            StmtKind::Assign(Target::Tuple(_), Expr::Tuple(_))
        ));
        assert!(matches!(
            &body[1].kind,
            StmtKind::AugAssign(Target::Var(_), BinOp::Add, _)
        ));
        assert!(matches!(
            &body[2].kind,
            StmtKind::Assign(Target::Index(_, _), _)
        ));
    }

    #[test]
    fn parses_print_in_both_styles() {
        let program = parse_program("print('hello', 1)\nprint 2\nprint\n").unwrap();
        assert_eq!(program.top_level.len(), 3);
        assert!(matches!(&program.top_level[0].kind, StmtKind::Print(args) if args.len() == 2));
        assert!(matches!(&program.top_level[1].kind, StmtKind::Print(args) if args.len() == 1));
        assert!(matches!(&program.top_level[2].kind, StmtKind::Print(args) if args.is_empty()));
    }

    #[test]
    fn parses_single_line_suites() {
        let program = parse_program("def f(x):\n    if x > 0: return x\n    return 0\n").unwrap();
        let body = &program.funcs[0].body;
        assert_eq!(body.len(), 2);
        assert!(matches!(&body[0].kind, StmtKind::If(_, then_b, _) if then_b.len() == 1));
    }

    #[test]
    fn parses_dict_literals() {
        let e = parse_expr("{1: 'a', 2: 'b'}").unwrap();
        assert!(matches!(e, Expr::Dict(items) if items.len() == 2));
    }

    #[test]
    fn reports_errors_with_positions() {
        let err = parse_program("def f x:\n    return 1\n").unwrap_err();
        assert_eq!(err.line, 1);
        let err = parse_program("def f(x):\nreturn 1\n").unwrap_err();
        assert!(err.message.contains("indented block"));
        assert!(parse_program("def f(x):\n    y = (1 + \n").is_err());
        assert!(parse_program("x = = 3\n").is_err());
    }

    #[test]
    fn rejects_constructs_outside_mpy() {
        assert!(
            parse_program("class Foo:\n    pass\n").is_err()
                || parse_program("class Foo:\n    pass\n").is_ok()
        );
        // `class` lexes as a name, so it fails at the parser level as a
        // malformed expression statement.
        assert!(parse_program("def f(x):\n    lambda y: y\n").is_err());
        assert!(
            parse_program("def f(x):\n    def g(y):\n        return y\n    return g\n").is_err()
        );
    }

    #[test]
    fn round_trips_pretty_printed_programs() {
        let source = "\
def evaluatePoly(poly, x):
    result = 0
    for i in range(0, len(poly)):
        result += poly[i] * x ** i
    return result
";
        let program = parse_program(source).unwrap();
        let printed = pretty::program_to_string(&program);
        let reparsed = parse_program(&printed).unwrap();
        // Statement lines differ after printing, so compare printed forms.
        assert_eq!(printed, pretty::program_to_string(&reparsed));
    }
}
