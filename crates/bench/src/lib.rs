//! Experiment harness shared by the Table 1 / Figure 14 binaries and the
//! criterion benches.
//!
//! The entry point is [`run_problem`]: generate a seeded corpus for one
//! benchmark problem, grade every submission, and aggregate the counters the
//! paper reports (total attempts, syntax errors, test set, correct,
//! incorrect, feedback generated, average and median grading time).

use std::time::{Duration, Instant};

use afg_core::{Autograder, GradeOutcome, GraderConfig};
use afg_corpus::{generate_corpus, CorpusSpec, Problem, Submission};
use afg_eml::ErrorModel;

/// How one submission was graded, with timing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GradeRecord {
    /// Which bucket the submission landed in.
    pub kind: GradeKind,
    /// Number of corrections, when feedback was generated.
    pub corrections: Option<usize>,
    /// Wall-clock grading time (zero for syntax errors, which are filtered
    /// before grading).
    pub elapsed: Duration,
}

/// The buckets of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GradeKind {
    /// Fails to parse; excluded from the test set.
    SyntaxError,
    /// Equivalent to the reference.
    Correct,
    /// Incorrect and repaired by the error model (feedback generated).
    Fixed,
    /// Incorrect and not repairable with the error model.
    NotFixed,
    /// The synthesis budget was exhausted.
    Timeout,
}

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Benchmark name (e.g. `compDeriv-6.00x`).
    pub name: String,
    /// Statement count of the reference implementation (stand-in for the
    /// paper's median student LOC, which needs the real submissions).
    pub median_loc: usize,
    /// Total generated attempts.
    pub total_attempts: usize,
    /// Attempts with syntax errors.
    pub syntax_errors: usize,
    /// Attempts that parse (the graded test set).
    pub test_set: usize,
    /// Correct attempts.
    pub correct: usize,
    /// Incorrect attempts.
    pub incorrect: usize,
    /// Incorrect attempts for which feedback was generated.
    pub generated_feedback: usize,
    /// Mean grading time over the incorrect attempts.
    pub average_time: Duration,
    /// Median grading time over the incorrect attempts.
    pub median_time: Duration,
}

impl Table1Row {
    /// Percentage of incorrect attempts with generated feedback.
    pub fn feedback_percent(&self) -> f64 {
        if self.incorrect == 0 {
            0.0
        } else {
            100.0 * self.generated_feedback as f64 / self.incorrect as f64
        }
    }

    /// Formats the row the way the paper's Table 1 lays it out.
    pub fn format_row(&self) -> String {
        format!(
            "{:<22} {:>4} {:>6} {:>7} {:>8} {:>8} {:>9} {:>14} {:>9.2}s {:>9.2}s",
            self.name,
            self.median_loc,
            self.total_attempts,
            self.syntax_errors,
            self.test_set,
            self.correct,
            self.incorrect,
            format!("{} ({:.1}%)", self.generated_feedback, self.feedback_percent()),
            self.average_time.as_secs_f64(),
            self.median_time.as_secs_f64(),
        )
    }

    /// The header matching [`Table1Row::format_row`].
    pub fn header() -> String {
        format!(
            "{:<22} {:>4} {:>6} {:>7} {:>8} {:>8} {:>9} {:>14} {:>10} {:>10}",
            "Benchmark",
            "LOC",
            "Total",
            "Syntax",
            "TestSet",
            "Correct",
            "Incorrect",
            "Feedback",
            "AvgTime",
            "MedTime"
        )
    }
}


/// The grading budget used by the experiment binaries: up to four coordinated
/// corrections (the paper's Figure 14(a) tail) with a two-second per-submission
/// budget.
pub fn experiment_config() -> GraderConfig {
    GraderConfig {
        synthesis: afg_synth::SynthesisConfig {
            max_cost: 4,
            max_candidates: 20_000,
            time_budget: std::time::Duration::from_secs(2),
        },
        ..GraderConfig::fast()
    }
}

/// Grades one submission and classifies it into a Table 1 bucket.
pub fn grade_submission(grader: &Autograder, submission: &Submission) -> GradeRecord {
    let start = Instant::now();
    let outcome = grader.grade_source(&submission.source);
    let elapsed = start.elapsed();
    let (kind, corrections) = match outcome {
        GradeOutcome::SyntaxError(_) => (GradeKind::SyntaxError, None),
        GradeOutcome::Correct => (GradeKind::Correct, None),
        GradeOutcome::Feedback(feedback) => (GradeKind::Fixed, Some(feedback.cost)),
        GradeOutcome::CannotFix => (GradeKind::NotFixed, None),
        GradeOutcome::Timeout => (GradeKind::Timeout, None),
    };
    GradeRecord { kind, corrections, elapsed }
}

/// Grades a whole corpus for one problem, optionally overriding the error
/// model (used by the Figure 14(b)/(c) sweeps).
pub fn run_problem_with_model(
    problem: &Problem,
    model: Option<ErrorModel>,
    spec: &CorpusSpec,
    config: GraderConfig,
) -> (Table1Row, Vec<GradeRecord>) {
    let mut grader = problem.autograder(config);
    if let Some(model) = model {
        grader.set_model(model);
    }
    let corpus = generate_corpus(problem, spec);
    let records: Vec<GradeRecord> = corpus
        .iter()
        .map(|submission| grade_submission(&grader, submission))
        .collect();
    (aggregate(problem, &records), records)
}

/// Grades a whole corpus for one problem with its own error model.
pub fn run_problem(
    problem: &Problem,
    spec: &CorpusSpec,
    config: GraderConfig,
) -> (Table1Row, Vec<GradeRecord>) {
    run_problem_with_model(problem, None, spec, config)
}

fn aggregate(problem: &Problem, records: &[GradeRecord]) -> Table1Row {
    let syntax_errors = records.iter().filter(|r| r.kind == GradeKind::SyntaxError).count();
    let correct = records.iter().filter(|r| r.kind == GradeKind::Correct).count();
    let fixed = records.iter().filter(|r| r.kind == GradeKind::Fixed).count();
    let test_set = records.len() - syntax_errors;
    let incorrect = test_set - correct;

    let mut incorrect_times: Vec<Duration> = records
        .iter()
        .filter(|r| matches!(r.kind, GradeKind::Fixed | GradeKind::NotFixed | GradeKind::Timeout))
        .map(|r| r.elapsed)
        .collect();
    incorrect_times.sort_unstable();
    let average_time = if incorrect_times.is_empty() {
        Duration::ZERO
    } else {
        incorrect_times.iter().sum::<Duration>() / incorrect_times.len() as u32
    };
    let median_time = incorrect_times
        .get(incorrect_times.len() / 2)
        .copied()
        .unwrap_or(Duration::ZERO);

    Table1Row {
        name: problem.name.to_string(),
        median_loc: problem.reference_loc(),
        total_attempts: records.len(),
        syntax_errors,
        test_set,
        correct,
        incorrect,
        generated_feedback: fixed,
        average_time,
        median_time,
    }
}

/// Histogram of the number of corrections over the fixed submissions
/// (Figure 14(a)).
pub fn corrections_histogram(records: &[GradeRecord], max_bucket: usize) -> Vec<usize> {
    let mut histogram = vec![0usize; max_bucket + 1];
    for record in records {
        if let Some(cost) = record.corrections {
            let bucket = cost.min(max_bucket);
            histogram[bucket] += 1;
        }
    }
    histogram
}

/// Parses the standard harness command-line options (`--attempts N`,
/// `--seed N`) shared by the experiment binaries.
pub fn parse_cli_options(args: &[String], default_attempts: usize) -> (usize, u64) {
    let mut attempts = default_attempts;
    let mut seed = 20130616; // PLDI 2013's first day.
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--attempts" => {
                if let Some(value) = args.get(i + 1).and_then(|v| v.parse().ok()) {
                    attempts = value;
                }
                i += 1;
            }
            "--seed" => {
                if let Some(value) = args.get(i + 1).and_then(|v| v.parse().ok()) {
                    seed = value;
                }
                i += 1;
            }
            _ => {}
        }
        i += 1;
    }
    (attempts, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use afg_corpus::problems;

    #[test]
    fn grades_a_small_corpus_end_to_end() {
        let problem = problems::iter_power();
        let spec = CorpusSpec::table1_like(16, 5);
        let (row, records) = run_problem(&problem, &spec, GraderConfig::fast());
        assert_eq!(row.total_attempts, 16);
        assert_eq!(row.syntax_errors + row.test_set, 16);
        assert_eq!(row.correct + row.incorrect, row.test_set);
        assert!(row.generated_feedback <= row.incorrect);
        assert_eq!(records.len(), 16);
        // Correct submissions exist in the mix, and some incorrect ones are fixed.
        assert!(row.correct > 0);
        assert!(row.generated_feedback > 0, "row: {row:?}");
    }

    #[test]
    fn histogram_buckets_by_cost() {
        let records = vec![
            GradeRecord { kind: GradeKind::Fixed, corrections: Some(1), elapsed: Duration::ZERO },
            GradeRecord { kind: GradeKind::Fixed, corrections: Some(2), elapsed: Duration::ZERO },
            GradeRecord { kind: GradeKind::Fixed, corrections: Some(1), elapsed: Duration::ZERO },
            GradeRecord { kind: GradeKind::NotFixed, corrections: None, elapsed: Duration::ZERO },
            GradeRecord { kind: GradeKind::Fixed, corrections: Some(7), elapsed: Duration::ZERO },
        ];
        let histogram = corrections_histogram(&records, 4);
        assert_eq!(histogram, vec![0, 2, 1, 0, 1]);
    }

    #[test]
    fn table_row_formatting_and_percentages() {
        let row = Table1Row {
            name: "compDeriv-6.00x".into(),
            median_loc: 8,
            total_attempts: 100,
            syntax_errors: 25,
            test_set: 75,
            correct: 30,
            incorrect: 45,
            generated_feedback: 30,
            average_time: Duration::from_millis(120),
            median_time: Duration::from_millis(80),
        };
        assert!((row.feedback_percent() - 66.666).abs() < 0.1);
        let formatted = row.format_row();
        assert!(formatted.contains("compDeriv-6.00x"));
        assert!(formatted.contains("66.7%"));
        assert!(Table1Row::header().contains("Feedback"));
    }

    #[test]
    fn cli_parsing_defaults_and_overrides() {
        let (attempts, seed) = parse_cli_options(&[], 40);
        assert_eq!(attempts, 40);
        assert_eq!(seed, 20130616);
        let args: Vec<String> =
            ["--attempts", "12", "--seed", "99"].iter().map(|s| s.to_string()).collect();
        let (attempts, seed) = parse_cli_options(&args, 40);
        assert_eq!(attempts, 12);
        assert_eq!(seed, 99);
    }
}
