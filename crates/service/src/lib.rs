//! `afg-service` — the grading daemon.
//!
//! A zero-dependency HTTP/1.1 server (hand-rolled on `std::net` with an
//! `epoll` reactor — no async runtime, no libc crate) that fronts the
//! `afg-core` grading engine for classroom/MOOC-scale traffic:
//!
//! | Endpoint | Meaning |
//! |---|---|
//! | `POST /problems` | Register an assignment: a built-in benchmark (`{"problem": "compDeriv"}`) or instructor-supplied `{"id", "entry", "reference", "model"}` (MPY source + EML text) |
//! | `POST /problems/{id}/grade` | Grade one submission `{"source": "..."}` |
//! | `POST /problems/{id}/grade/batch` | Grade a corpus `{"sources": [...], "workers": N?}` through [`afg_core::BatchGrader`] |
//! | `GET /stats` | Per-problem outcome counters, fingerprint-cache and verdict-cache hit/miss counters |
//! | `GET /healthz` | Liveness |
//! | `GET /metrics` | Process-wide metrics in Prometheus text exposition (grade latency, per-stage latency, cache ratios, SAT/sweep work) |
//! | `GET /debug/traces` | The most recent grade span trees as JSON (ring capacity set by [`ServiceConfig::trace_ring`]) |
//!
//! Every grade response carries an `X-Afg-Trace-Id` header (unless the
//! daemon runs with tracing disabled); the matching span tree —
//! parse → canonicalize → search → verify, with per-stage wall-clock —
//! is retrievable from `/debug/traces`, and grades slower than
//! [`ServiceConfig::slow_grade`] log their tree to stderr.
//!
//! The I/O core is selectable via [`ServiceConfig::io`] (`--io` on the
//! daemon): **`epoll`** (default on Linux) multiplexes every connection
//! onto one reactor thread — incremental push parsing, per-connection
//! state machine, timer-wheel idle/slow-loris timeouts — and executes
//! complete requests on a bounded CPU worker pool, so thousands of idle
//! keep-alive sockets cost no threads; **`threads`** is the legacy
//! blocking thread-per-connection pool, kept for A/B comparison and
//! non-Linux builds.  Both cores share the parser, router and response
//! encoder, so their responses are byte-identical.
//!
//! Each registered problem owns an [`afg_core::Autograder`] (shared
//! read-only across connections) and, unless registered with
//! `"cache": false`, an [`afg_core::FingerprintCache`]: submissions that
//! are alpha-equivalent to one already graded — same program modulo
//! variable names and formatting — skip the CEGIS search entirely, and
//! grade responses carry `"cache": "hit" | "miss" | "off"`.
//!
//! ```no_run
//! use afg_json::Json;
//!
//! let handle = afg_service::start(afg_service::ServiceConfig::default())?;
//! let mut client = afg_service::client::Client::connect(handle.addr())?;
//! let (status, _) =
//!     client.post("/problems", &Json::object([("problem", Json::str("compDeriv"))]))?;
//! assert_eq!(status, 201);
//! let (_, graded) = client.post(
//!     "/problems/compDeriv/grade",
//!     &Json::object([("source", Json::str("def computeDeriv(poly):\n    return poly\n"))]),
//! )?;
//! println!("{}", graded.to_pretty());
//! # Ok::<(), std::io::Error>(())
//! ```

pub mod client;
mod handlers;
mod http;
#[cfg(target_os = "linux")]
mod reactor;
mod registry;
mod router;
mod server;

pub use http::{EofOutcome, Parse, ParseError, Request, RequestParser, Stage, MAX_BODY};
pub use server::{start, IoMode, ServerHandle, ServiceConfig};
