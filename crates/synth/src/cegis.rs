//! CEGIS and CEGISMIN: counterexample-guided search for minimal corrections.
//!
//! The paper extends SKETCH's CEGIS loop with the CEGISMIN algorithm
//! (Algorithm 1): whenever the verifier accepts a candidate, the constraint
//! `totalCost < best` is added and the synthesis/verification loop continues
//! until the constraints become unsatisfiable, at which point the best
//! solution seen so far is returned.
//!
//! The whole minimisation descent is **incremental**: one [`Solver`] and one
//! [`ChoiceEncoding`] serve every iteration.  The cost bound is never baked
//! into the clause database — the encoding's totalizer exposes per-bound
//! output literals and each `totalCost ≤ k` is activated by *assumption*
//! ([`Solver::solve_under_assumptions`]), so tightening the bound after a
//! verified candidate costs nothing and every learnt clause, blocking
//! clause and counterexample survives to the next round.
//!
//! Our verifier is the bounded-exhaustive [`EquivalenceOracle`] rather than
//! SKETCH's symbolic one, so candidate consistency with the accumulated
//! counterexamples is established by (cheap) interpretation and failed
//! candidates are excluded with blocking clauses.
//!
//! The verification hot loop is **zero-materialisation**: candidates are
//! evaluated through the oracle's [`afg_interp::ChoiceSession`], which walks
//! the shared choice AST under the proposed assignment, and inputs are
//! checked **counterexamples first** — the inputs that killed earlier
//! candidates almost always kill the next one too, so the common case
//! rejects a candidate after a handful of runs.  `concretize` is never
//! called while searching (a unit test counts the calls); it remains the
//! cold path for rendering the final repaired program.

use std::time::Instant;

use afg_eml::ChoiceProgram;
use afg_interp::EquivalenceOracle;
use afg_sat::{SatResult, Solver};

use crate::bitset::IndexBitset;
use crate::config::{Solution, SynthesisConfig, SynthesisOutcome, SynthesisStats, WarmStart};
use crate::encode::ChoiceEncoding;
use crate::strategy::{CancelToken, SearchStrategy};

/// The SAT-backed CEGIS/CEGISMIN synthesizer.
#[derive(Debug, Clone, Default)]
pub struct CegisSolver;

impl CegisSolver {
    /// Creates a solver.
    pub fn new() -> CegisSolver {
        CegisSolver
    }
}

impl SearchStrategy for CegisSolver {
    fn name(&self) -> &'static str {
        "cegis"
    }

    /// Searches for a minimal-cost choice assignment that makes the
    /// transformed submission equivalent to the reference on the bounded
    /// input space.
    fn synthesize_with(
        &self,
        program: &ChoiceProgram,
        oracle: &EquivalenceOracle,
        config: &SynthesisConfig,
        cancel: &CancelToken,
    ) -> SynthesisOutcome {
        self.synthesize_with_hint(program, oracle, config, None, cancel)
    }

    /// As [`CegisSolver::synthesize_with`], but seeded with a transferred
    /// hypothesis: the verified minimal repair of a *skeleton cluster-mate*
    /// plus its counterexample set.  The hypothesis is verified with one
    /// bounded sweep before it is trusted; on success the CEGISMIN descent
    /// opens at `hypothesis cost - 1` instead of `max_cost` and the
    /// counterexample bitset is pre-seeded, on failure the hypothesis is
    /// just one more blocked candidate — either way the descent still runs
    /// to Unsat, so the outcome is cost-identical to the cold search.
    fn synthesize_with_hint(
        &self,
        program: &ChoiceProgram,
        oracle: &EquivalenceOracle,
        config: &SynthesisConfig,
        warm: Option<&WarmStart>,
        cancel: &CancelToken,
    ) -> SynthesisOutcome {
        let start = Instant::now();
        let mut stats = SynthesisStats {
            strategy: self.name(),
            ..SynthesisStats::default()
        };
        let session = oracle.choice_session(program);

        // Step 0: a submission that is already equivalent needs no feedback.
        // Even the original is checked through the choice session (with the
        // all-default assignment) so grading materialises nothing.
        let default_assignment = afg_eml::ChoiceAssignment::default_choices();
        stats.candidates_checked += 1;
        let verify_start = Instant::now();
        let first_cex = session.find_counterexample(&default_assignment, &[]);
        stats.verify_elapsed += verify_start.elapsed();
        let first_cex = match first_cex {
            None => return SynthesisOutcome::AlreadyCorrect,
            Some(cex) => cex,
        };

        // One solver, one encoding — the entire CEGISMIN descent below is
        // incremental on this pair.
        let mut solver = Solver::new();
        let encoding = ChoiceEncoding::new(&mut solver, program);

        // The counterexample set σ of Algorithm 1, seeded with the input that
        // already distinguishes the unmodified submission.  The `Vec` keeps
        // the fast-rejection order; the bitset answers membership in O(1).
        let mut counterexamples: Vec<usize> = vec![first_cex];
        let mut seen_counterexamples = IndexBitset::default();
        seen_counterexamples.insert(first_cex);
        stats.counterexamples = 1;
        // The original program (all-default assignment) is known bad.
        encoding.block_assignment(&mut solver, &default_assignment);

        let mut best: Option<Solution> = None;
        // CEGISMIN line 13 (`minHole < minHoleVal`): the current bound,
        // activated per solve call through totalizer assumptions and
        // tightened to `cost - 1` after every verified candidate.
        let mut bound = config.max_cost;

        // Transferred warm start: pre-seed the counterexample set (stale
        // indices are harmless — each is just a bounded-space input checked
        // early), then spend one bounded sweep on the hypothesis.  Verified
        // ⇒ the descent opens at its cost; refuted ⇒ it becomes an ordinary
        // blocked candidate and the refuting input a counterexample.
        if let Some(warm) = warm {
            let input_count = session.oracle().inputs().len();
            for &cex in &warm.counterexamples {
                if cex < input_count && seen_counterexamples.insert(cex) {
                    counterexamples.push(cex);
                    stats.counterexamples += 1;
                }
            }
            let hypothesis = &warm.assignment;
            let cost = hypothesis.cost();
            if cost > 0 && cost <= config.max_cost && assignment_fits(program, hypothesis) {
                stats.warm_start_attempted = true;
                stats.candidates_checked += 1;
                let verify_start = Instant::now();
                let hypothesis_cex = session.find_counterexample(hypothesis, &counterexamples);
                stats.verify_elapsed += verify_start.elapsed();
                match hypothesis_cex {
                    None => {
                        stats.warm_start_verified = true;
                        best = Some(Solution {
                            assignment: hypothesis.clone(),
                            cost,
                            minimal: false,
                            counterexamples: Vec::new(),
                            stats: SynthesisStats::default(),
                        });
                        bound = cost - 1;
                        stats.descent_learnts.push(solver.stats().learnts);
                    }
                    Some(cex) => {
                        if seen_counterexamples.insert(cex) {
                            counterexamples.push(cex);
                            stats.counterexamples += 1;
                        }
                    }
                }
                // Equivalent or not, the hypothesis itself never needs to be
                // proposed again.
                encoding.block_assignment(&mut solver, hypothesis);
            }
        }

        // Set when the SAT solver proves no cheaper candidate exists.
        let mut proven_minimal = false;

        loop {
            if cancel.is_cancelled() || start.elapsed() > config.time_budget {
                stats.wall_clock_limited = true;
                break;
            }
            if stats.candidates_checked > config.max_candidates {
                break;
            }
            stats.cegis_iterations += 1;

            // Synthesis phase: ask the SAT solver for a candidate assignment
            // consistent with all blocking clauses, under the current cost
            // bound assumption.
            let assumptions = encoding.cost_bound_assumptions(bound);
            let sat_start = Instant::now();
            let proposal = solver.solve_under_assumptions(&assumptions);
            stats.sat_elapsed += sat_start.elapsed();
            let assignment = match proposal {
                SatResult::Unsat => {
                    // No candidate under the bound: whatever we hold is the
                    // proven minimum (or the model can't repair this at all).
                    proven_minimal = true;
                    break;
                }
                SatResult::Sat(model) => encoding.decode(&model),
            };

            stats.candidates_checked += 1;

            // Cancellation is polled once more between the SAT call and the
            // verification sweep — the two potentially long steps of an
            // iteration — so a portfolio loser stands down without paying
            // for one last full bounded-input pass.
            if cancel.is_cancelled() {
                stats.wall_clock_limited = true;
                break;
            }

            // Verification phase: bounded-exhaustive equivalence check over
            // the shared choice AST, accumulated counterexamples first — the
            // fast-rejection path and the full sweep in one ordered pass.
            let verify_start = Instant::now();
            let verdict = session.find_counterexample(&assignment, &counterexamples);
            stats.verify_elapsed += verify_start.elapsed();
            match verdict {
                Some(cex) => {
                    if seen_counterexamples.insert(cex) {
                        counterexamples.push(cex);
                        stats.counterexamples += 1;
                    }
                    encoding.block_assignment(&mut solver, &assignment);
                }
                None => {
                    // Verification succeeded: record the solution and tighten
                    // the cost bound (CEGISMIN line 13: minHole < minHoleVal).
                    let cost = assignment.cost();
                    if best.as_ref().is_none_or(|b| cost < b.cost) {
                        best = Some(Solution {
                            assignment: assignment.clone(),
                            cost,
                            minimal: false,
                            counterexamples: Vec::new(),
                            stats: SynthesisStats::default(),
                        });
                    }
                    if cost == 0 {
                        proven_minimal = true;
                        break;
                    }
                    bound = cost - 1;
                    stats.descent_learnts.push(solver.stats().learnts);
                    encoding.block_assignment(&mut solver, &assignment);
                }
            }
        }

        let sat = solver.stats();
        stats.sat_conflicts = sat.conflicts;
        stats.sat_propagations = sat.propagations;
        stats.sat_learnts = sat.learnts;
        stats.restarts = sat.restarts;
        let sweep = session.sweep_stats();
        stats.sweeps = sweep.sweeps;
        stats.sweep_inputs = sweep.inputs_run;
        stats.sweep_compiled = sweep.compiled;
        stats.sweep_cache_hits = sweep.cache_hits;
        stats.sweep_cache_nodes = sweep.cache_nodes;
        stats.elapsed = start.elapsed();
        // Trace-only accounting: the verification share of this search,
        // attached under the caller's current span. Observes wall-clock
        // already measured above; steers nothing.
        afg_obs::record_span("verify", stats.verify_elapsed);
        afg_obs::record_span("sat", stats.sat_elapsed);
        match best {
            Some(mut solution) => {
                solution.minimal = proven_minimal;
                solution.counterexamples = counterexamples;
                solution.stats = stats;
                SynthesisOutcome::Fixed(solution)
            }
            None if proven_minimal => SynthesisOutcome::NoRepairFound(stats),
            None => SynthesisOutcome::Timeout(stats),
        }
    }
}

/// Whether every non-default selection of `assignment` indexes an existing
/// option of `program` — the structural precondition for trying a
/// transferred hypothesis at all.
fn assignment_fits(program: &ChoiceProgram, assignment: &afg_eml::ChoiceAssignment) -> bool {
    assignment.non_default().all(|(id, option)| {
        program
            .choice_info(id)
            .is_some_and(|info| option < info.options.len())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use afg_eml::{apply_error_model, library};
    use afg_interp::{EquivalenceConfig, EquivalenceOracle};
    use afg_parser::parse_program;

    const REFERENCE: &str = "\
def computeDeriv(poly_list_int):
    result = []
    for i in range(len(poly_list_int)):
        result += [i * poly_list_int[i]]
    if len(poly_list_int) == 1:
        return result
    else:
        return result[1:]
";

    fn oracle() -> EquivalenceOracle {
        let reference = parse_program(REFERENCE).unwrap();
        EquivalenceOracle::from_reference(
            &reference,
            EquivalenceConfig {
                entry: Some("computeDeriv".into()),
                ..EquivalenceConfig::default()
            },
        )
    }

    #[test]
    fn correct_submission_needs_no_corrections() {
        let student = parse_program(
            "def computeDeriv(poly):\n    if len(poly) == 1:\n        return [0]\n    out = []\n    for i in range(1, len(poly)):\n        out.append(i * poly[i])\n    return out\n",
        )
        .unwrap();
        let cp = apply_error_model(
            &student,
            Some("computeDeriv"),
            &library::compute_deriv_model(),
        )
        .unwrap();
        let outcome = CegisSolver::new().synthesize(&cp, &oracle(), &SynthesisConfig::fast());
        assert_eq!(outcome, SynthesisOutcome::AlreadyCorrect);
    }

    #[test]
    fn single_correction_bug_is_fixed_with_cost_one() {
        // Iterates from 0 instead of 1: the leading zero coefficient stays in
        // the result for lists of length > 1.
        let student = parse_program(
            "def computeDeriv(poly):\n    if len(poly) == 1:\n        return [0]\n    out = []\n    for i in range(0, len(poly)):\n        out.append(i * poly[i])\n    return out\n",
        )
        .unwrap();
        let cp = apply_error_model(
            &student,
            Some("computeDeriv"),
            &library::compute_deriv_model(),
        )
        .unwrap();
        let outcome = CegisSolver::new().synthesize(&cp, &oracle(), &SynthesisConfig::fast());
        let solution = outcome.solution().expect("should be fixable");
        assert_eq!(
            solution.cost, 1,
            "minimal repair should be a single correction"
        );
        assert!(solution.minimal, "the descent ran to Unsat");
        assert_eq!(solution.stats.strategy, "cegis");
        // The repaired program really is equivalent.
        let repaired = cp.concretize(&solution.assignment);
        assert!(oracle().is_equivalent(&repaired));
    }

    #[test]
    fn minimisation_descent_runs_on_a_single_encoding() {
        // The incremental-search acceptance criterion: one synthesize call
        // constructs exactly one ChoiceEncoding (hence one solver encoding),
        // and the learnt-clause count sampled at each bound tightening is
        // monotone — impossible if the descent re-encoded per bound, since a
        // fresh solver would reset the counter.
        let student = parse_program(
            "def computeDeriv(poly):\n    if len(poly) == 1:\n        return [0]\n    out = []\n    for i in range(0, len(poly)):\n        out.append(i * poly[i])\n    return out\n",
        )
        .unwrap();
        let cp = apply_error_model(
            &student,
            Some("computeDeriv"),
            &library::compute_deriv_model(),
        )
        .unwrap();
        let oracle = oracle();
        let config = SynthesisConfig::fast();

        let before = crate::encode::instrument::encodings_created();
        let outcome = CegisSolver::new().synthesize(&cp, &oracle, &config);
        let after = crate::encode::instrument::encodings_created();
        assert_eq!(
            after - before,
            1,
            "CEGISMIN must build exactly one ChoiceEncoding per synthesize call"
        );

        let solution = outcome.solution().expect("fixable");
        assert!(solution.minimal);
        let descent = &solution.stats.descent_learnts;
        assert!(
            descent.windows(2).all(|w| w[0] <= w[1]),
            "learnt-clause counts must be monotone across the descent: {descent:?}"
        );
        assert!(
            solution.stats.sat_learnts >= descent.last().copied().unwrap_or(0),
            "final learnt count cannot drop below the last descent sample"
        );
        assert!(
            solution.stats.sat_propagations > 0,
            "solver work must be reported"
        );
    }

    #[test]
    fn warm_start_replays_a_transferred_repair_and_stays_cost_identical() {
        let student = parse_program(
            "def computeDeriv(poly):\n    if len(poly) == 1:\n        return [0]\n    out = []\n    for i in range(0, len(poly)):\n        out.append(i * poly[i])\n    return out\n",
        )
        .unwrap();
        let cp = apply_error_model(
            &student,
            Some("computeDeriv"),
            &library::compute_deriv_model(),
        )
        .unwrap();
        let oracle = oracle();
        let config = SynthesisConfig::fast();

        // Cold baseline: the donor run whose repair and counterexamples a
        // cluster-mate would inherit.
        let cold = CegisSolver::new().synthesize(&cp, &oracle, &config);
        let donor = cold.solution().expect("fixable").clone();
        assert!(!donor.counterexamples.is_empty());
        assert!(!donor.stats.warm_start_attempted);

        // Warm run seeded with the donor's own repair: one hypothesis
        // verification, then straight to the Unsat proof below its cost.
        let warm = WarmStart {
            assignment: donor.assignment.clone(),
            counterexamples: donor.counterexamples.clone(),
        };
        let warm_outcome = CegisSolver::new().synthesize_with_hint(
            &cp,
            &oracle,
            &config,
            Some(&warm),
            &CancelToken::new(),
        );
        let warm_solution = warm_outcome.solution().expect("fixable");
        assert_eq!(warm_solution.cost, donor.cost, "cost-identical to cold");
        assert!(warm_solution.minimal, "the descent still proves minimality");
        assert!(warm_solution.stats.warm_start_attempted);
        assert!(warm_solution.stats.warm_start_verified);
        assert!(
            warm_solution.stats.candidates_checked < donor.stats.candidates_checked,
            "warm {} vs cold {} candidates",
            warm_solution.stats.candidates_checked,
            donor.stats.candidates_checked
        );
        assert!(
            warm_solution.stats.sat_conflicts <= donor.stats.sat_conflicts,
            "warm {} vs cold {} conflicts",
            warm_solution.stats.sat_conflicts,
            donor.stats.sat_conflicts
        );

        // A refuted hypothesis (a non-repair) must fall back to the cold
        // path with the same verdict and cost.
        let bogus = WarmStart {
            assignment: afg_eml::ChoiceAssignment::default_choices(),
            counterexamples: vec![0],
        };
        let refuted = CegisSolver::new().synthesize_with_hint(
            &cp,
            &oracle,
            &config,
            Some(&bogus),
            &CancelToken::new(),
        );
        // Cost-0 hypotheses are rejected up front (the default assignment
        // is already known bad), so this counts as no attempt.
        let refuted_solution = refuted.solution().expect("fixable");
        assert_eq!(refuted_solution.cost, donor.cost);
        assert!(refuted_solution.minimal);
        assert!(!refuted_solution.stats.warm_start_attempted);

        // An out-of-range hypothesis (unknown choice site) is ignored, not
        // trusted.
        let misfit = WarmStart {
            assignment: afg_eml::ChoiceAssignment::from_pairs([(afg_eml::ChoiceId(9_999), 1)]),
            counterexamples: vec![99_999],
        };
        let ignored = CegisSolver::new().synthesize_with_hint(
            &cp,
            &oracle,
            &config,
            Some(&misfit),
            &CancelToken::new(),
        );
        let ignored_solution = ignored.solution().expect("fixable");
        assert_eq!(ignored_solution.cost, donor.cost);
        assert!(!ignored_solution.stats.warm_start_attempted);
    }

    #[test]
    fn cancellation_stops_the_search_cooperatively() {
        let student = parse_program(
            "def computeDeriv(poly):\n    if len(poly) == 1:\n        return [0]\n    out = []\n    for i in range(0, len(poly)):\n        out.append(i * poly[i])\n    return out\n",
        )
        .unwrap();
        let cp = apply_error_model(
            &student,
            Some("computeDeriv"),
            &library::compute_deriv_model(),
        )
        .unwrap();
        let cancel = CancelToken::new();
        cancel.cancel();
        let outcome =
            CegisSolver::new().synthesize_with(&cp, &oracle(), &SynthesisConfig::fast(), &cancel);
        // A pre-cancelled search gives up before proposing any candidate
        // (the cheap already-correct check still runs).
        match outcome {
            SynthesisOutcome::Timeout(stats) => assert_eq!(stats.cegis_iterations, 0),
            other => panic!("expected Timeout from a cancelled search, got {other:?}"),
        }
    }

    #[test]
    fn synthesis_materialises_zero_candidate_programs() {
        // The acceptance criterion of the zero-materialisation refactor: a
        // full CEGISMIN search — original check, counterexample filtering,
        // bounded-exhaustive verification, minimisation — performs no
        // `concretize` call at all.  (The counter is thread-local, so other
        // tests running concurrently cannot disturb it.)
        let student = parse_program(
            "def computeDeriv(poly):\n    if len(poly) == 1:\n        return [0]\n    out = []\n    for i in range(0, len(poly)):\n        out.append(i * poly[i])\n    return out\n",
        )
        .unwrap();
        let cp = apply_error_model(
            &student,
            Some("computeDeriv"),
            &library::compute_deriv_model(),
        )
        .unwrap();
        let oracle = oracle();
        let config = SynthesisConfig::fast();

        let before = afg_eml::instrument::concretize_calls();
        let outcome = CegisSolver::new().synthesize(&cp, &oracle, &config);
        let after = afg_eml::instrument::concretize_calls();
        assert!(outcome.solution().is_some(), "the submission is fixable");
        assert_eq!(
            after - before,
            0,
            "CEGIS checked {} candidates but must concretize none of them",
            outcome.solution().unwrap().stats.candidates_checked
        );

        // The enumerative back end honours the same contract.
        let before = afg_eml::instrument::concretize_calls();
        let outcome = crate::enumerate::EnumerativeSolver::new().synthesize(&cp, &oracle, &config);
        let after = afg_eml::instrument::concretize_calls();
        assert!(outcome.solution().is_some());
        assert_eq!(
            after - before,
            0,
            "enumeration must not concretize candidates"
        );
    }

    #[test]
    fn unfixable_submission_reports_no_repair() {
        // Returns a constant — no local correction in the model can fix it.
        let student = parse_program("def computeDeriv(poly):\n    return 42\n").unwrap();
        let model = library::section_2_1_model();
        let cp = apply_error_model(&student, Some("computeDeriv"), &model).unwrap();
        let outcome = CegisSolver::new().synthesize(&cp, &oracle(), &SynthesisConfig::fast());
        assert!(matches!(
            outcome,
            SynthesisOutcome::NoRepairFound(_) | SynthesisOutcome::Timeout(_)
        ));
    }
}
