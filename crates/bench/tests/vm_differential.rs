//! Differential property suite: the bytecode VM must be observationally
//! identical to the tree-walking interpreter — same result, same printed
//! output, same fuel consumption — on every corpus program, on seeded
//! mutants of every corpus program, and on the arithmetic edge cases that
//! historically diverged between naive implementations (`0 ** 1000`,
//! `i64::MIN // -1`, sequence-repetition bounds).  A separate test pins
//! fuel-exhaustion parity across whole budget ranges, and another checks
//! that the sweep verdict cache never changes a `find_counterexample`
//! answer (cache on ≡ cache off ≡ tree walker, including repeated
//! queries that exercise the hit path).

use afg_corpus::rng::StdRng;
use afg_corpus::{mutate_program, problems};
use afg_eml::{apply_error_model, ChoiceAssignment};
use afg_interp::{
    CompiledProgram, EquivalenceConfig, EquivalenceOracle, ExecLimits, Interpreter, RuntimeError,
    SweepMode, Value, Vm,
};

/// Runs `program` on `args` under both back ends and asserts result,
/// output and fuel agreement.  Programs the compiler cannot lower are
/// skipped (they fall back to the tree walker in production).
fn assert_backends_agree(
    program: &afg_ast::Program,
    entry: &str,
    args: &[Value],
    limits: ExecLimits,
    context: &str,
) {
    let Some(compiled) = CompiledProgram::from_program(program, Some(entry)) else {
        return;
    };
    let mut vm = Vm::new(limits);
    let vm_result = vm.run(&compiled, args);
    let mut interp = Interpreter::with_limits(program, limits);
    let tree_result = interp.call_entry(Some(entry), args);
    match (&vm_result, &tree_result) {
        (Ok(vm_outcome), Ok(tree_outcome)) => {
            assert_eq!(vm_outcome.value, tree_outcome.value, "value: {context}");
            assert_eq!(vm_outcome.output, tree_outcome.output, "output: {context}");
        }
        (Err(vm_err), Err(tree_err)) => assert_eq!(vm_err, tree_err, "error: {context}"),
        _ => panic!("backends disagree ({context}): vm {vm_result:?} vs tree {tree_result:?}"),
    }
    assert_eq!(vm.fuel_used(), interp.fuel_used(), "fuel: {context}");
}

/// Every corpus program (reference, correct variants, conceptual mutants)
/// on its full bounded input deck, plus seeded mutants of each: the VM
/// must agree with the tree walker on result, output and fuel everywhere.
#[test]
fn vm_matches_tree_on_all_corpus_programs_and_seeded_mutants() {
    let limits = ExecLimits::fast();
    for problem in problems::all_problems() {
        let reference = afg_parser::parse_program(problem.reference).expect("references parse");
        let oracle = EquivalenceOracle::from_reference(
            &reference,
            EquivalenceConfig {
                entry: Some(problem.entry.to_string()),
                limits,
                ..EquivalenceConfig::default()
            },
        );
        let inputs = oracle.inputs();

        let mut programs: Vec<afg_ast::Program> = Vec::new();
        programs.push(reference.clone());
        for source in problem
            .correct_variants
            .iter()
            .chain(problem.conceptual_mutants.iter())
        {
            programs.push(afg_parser::parse_program(source).expect("corpus programs parse"));
        }
        // Seeded single-mistake mutants of every seed program: buggy
        // submissions are what verification sweeps actually execute, so
        // the parity claim has to hold off the happy path too.
        for (m, seed_source) in problem.mutation_seeds().into_iter().enumerate() {
            let mut mutated = afg_parser::parse_program(seed_source).expect("seeds parse");
            let mut rng = StdRng::seed_from_u64(0x2013_0616 ^ ((m as u64 + 1) << 24));
            mutate_program(&mut mutated, 1, &mut rng);
            programs.push(mutated);
        }

        for (s, program) in programs.iter().enumerate() {
            // The deck is bounded; cap per-program work so the whole
            // corpus stays fast in debug builds.
            for (i, args) in inputs.iter().take(48).enumerate() {
                assert_backends_agree(
                    program,
                    problem.entry,
                    args,
                    limits,
                    &format!("{} program {s} input {i}", problem.id),
                );
            }
        }
    }
}

/// The arithmetic and sequence edge cases called out by the paper's error
/// classes: huge exponents with |base| <= 1, the `i64::MIN // -1` /
/// `i64::MIN % -1` overflow corner, and sequence repetition at the size
/// bounds.  All must agree across back ends — including which error is
/// raised and how much fuel the failing run burned.
#[test]
fn vm_matches_tree_on_arithmetic_and_repetition_edge_cases() {
    let limits = ExecLimits::default();
    let pow = "def f(a, b):\n    return a ** b\n";
    let floordiv = "def f(a, b):\n    return a // b\n";
    let modulo = "def f(a, b):\n    return a % b\n";
    let repeat = "def f(s, n):\n    return s * n\n";
    let cases: Vec<(&str, Vec<Value>)> = vec![
        (pow, vec![Value::Int(0), Value::Int(1000)]),
        (pow, vec![Value::Int(1), Value::Int(i64::MAX)]),
        (pow, vec![Value::Int(-1), Value::Int(i64::MAX)]),
        (pow, vec![Value::Int(2), Value::Int(63)]),
        (pow, vec![Value::Int(2), Value::Int(64)]),
        (pow, vec![Value::Int(i64::MIN), Value::Int(2)]),
        (floordiv, vec![Value::Int(i64::MIN), Value::Int(-1)]),
        (floordiv, vec![Value::Int(i64::MIN), Value::Int(1)]),
        (floordiv, vec![Value::Int(-7), Value::Int(2)]),
        (modulo, vec![Value::Int(i64::MIN), Value::Int(-1)]),
        (modulo, vec![Value::Int(-7), Value::Int(2)]),
        (repeat, vec![Value::Str("ab".into()), Value::Int(-3)]),
        (repeat, vec![Value::Str("ab".into()), Value::Int(1 << 40)]),
        (repeat, vec![Value::int_list([1, 2]), Value::Int(1 << 40)]),
        (repeat, vec![Value::int_list([1, 2]), Value::Int(0)]),
        (repeat, vec![Value::Int(3), Value::Str("ab".into())]),
    ];
    for (case, (source, args)) in cases.iter().enumerate() {
        let program = afg_parser::parse_program(source).expect("edge-case programs parse");
        assert_backends_agree(&program, "f", args, limits, &format!("edge case {case}"));
    }
}

/// Fuel-exhaustion parity: for every corpus reference and one input,
/// sweep the whole budget range from 1 fuel unit up and require byte-for-
/// byte agreement on where execution stops, what it reports, and how much
/// fuel was consumed.
#[test]
fn fuel_exhaustion_parity_across_budgets_on_corpus_references() {
    for problem in problems::all_problems() {
        let reference = afg_parser::parse_program(problem.reference).expect("references parse");
        let oracle = EquivalenceOracle::from_reference(
            &reference,
            EquivalenceConfig {
                entry: Some(problem.entry.to_string()),
                limits: ExecLimits::fast(),
                ..EquivalenceConfig::default()
            },
        );
        let Some(args) = oracle.inputs().iter().max_by_key(|args| {
            // The most expensive deck input exercises the longest prefix
            // of the program under tiny budgets.
            let mut interp = Interpreter::with_limits(&reference, ExecLimits::fast());
            let _ = interp.call_entry(Some(problem.entry), args);
            interp.fuel_used()
        }) else {
            continue;
        };
        let Some(compiled) = CompiledProgram::from_program(&reference, Some(problem.entry)) else {
            continue;
        };
        for fuel in 1..200 {
            let limits = ExecLimits {
                fuel,
                max_recursion: 32,
            };
            let mut vm = Vm::new(limits);
            let vm_result = vm.run(&compiled, args);
            let mut interp = Interpreter::with_limits(&reference, limits);
            let tree_result = interp.call_entry(Some(problem.entry), args);
            match (&vm_result, &tree_result) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.value, b.value, "{} fuel {fuel}", problem.id);
                    assert_eq!(a.output, b.output, "{} fuel {fuel}", problem.id);
                }
                (Err(a), Err(b)) => assert_eq!(a, b, "{} fuel {fuel}", problem.id),
                _ => panic!(
                    "{} fuel {fuel}: vm {vm_result:?} vs tree {tree_result:?}",
                    problem.id
                ),
            }
            assert_eq!(
                vm.fuel_used(),
                interp.fuel_used(),
                "{} fuel {fuel}",
                problem.id
            );
            if !matches!(vm_result, Err(RuntimeError::FuelExhausted)) {
                // The budget stopped binding; larger budgets replay the
                // same complete run.
                break;
            }
        }
    }
}

/// The sweep verdict cache is an observational-equivalence memoization —
/// it must never change an answer.  For seeded buggy choice programs this
/// sweeps a candidate set through three sessions (tree, compiled without
/// cache, compiled with cache) and requires identical counterexamples —
/// querying the cached session twice so the second pass answers from the
/// trie.
#[test]
fn verdict_cache_never_changes_a_sweep_answer() {
    for problem in problems::all_problems() {
        let reference = afg_parser::parse_program(problem.reference).expect("references parse");
        let oracle_with = |mode: SweepMode, cache: bool| {
            EquivalenceOracle::from_reference(
                &reference,
                EquivalenceConfig {
                    entry: Some(problem.entry.to_string()),
                    limits: ExecLimits::fast(),
                    sweep: mode,
                    sweep_cache: cache,
                    ..EquivalenceConfig::default()
                },
            )
        };
        let tree_oracle = oracle_with(SweepMode::Tree, false);
        let raw_oracle = oracle_with(SweepMode::Compiled, false);
        let cached_oracle = oracle_with(SweepMode::Compiled, true);

        for m in 0..2usize {
            let seeds = problem.mutation_seeds();
            let mut mutated =
                afg_parser::parse_program(seeds[m % seeds.len()]).expect("seeds parse");
            let mut rng = StdRng::seed_from_u64(0xCAC4E ^ ((m as u64 + 1) << 18));
            mutate_program(&mut mutated, 1, &mut rng);
            let Ok(choice_program) =
                apply_error_model(&mutated, Some(problem.entry), &problem.model)
            else {
                continue;
            };
            if choice_program.choices.is_empty() {
                continue;
            }

            let mut assignments = vec![ChoiceAssignment::default_choices()];
            for info in choice_program.choices.iter().take(6) {
                let mut single = ChoiceAssignment::default_choices();
                single.select(info.id, 1);
                assignments.push(single);
            }
            if choice_program.choices.len() >= 2 {
                let mut pair = ChoiceAssignment::default_choices();
                pair.select(choice_program.choices[0].id, 1);
                pair.select(choice_program.choices[1].id, 1);
                assignments.push(pair);
            }

            let tree_session = tree_oracle.choice_session(&choice_program);
            let raw_session = raw_oracle.choice_session(&choice_program);
            let cached_session = cached_oracle.choice_session(&choice_program);
            for (a, assignment) in assignments.iter().enumerate() {
                let want = tree_session.find_counterexample(assignment, &[]);
                let raw = raw_session.find_counterexample(assignment, &[]);
                let first = cached_session.find_counterexample(assignment, &[]);
                let second = cached_session.find_counterexample(assignment, &[]);
                assert_eq!(want, raw, "{} mutant {m} assignment {a} (raw)", problem.id);
                assert_eq!(
                    want, first,
                    "{} mutant {m} assignment {a} (cold)",
                    problem.id
                );
                assert_eq!(
                    want, second,
                    "{} mutant {m} assignment {a} (warm)",
                    problem.id
                );
            }
            let stats = cached_session.sweep_stats();
            assert!(
                stats.cache_hits > 0,
                "{} mutant {m}: cache never hit across repeated sweeps",
                problem.id
            );
        }
    }
}
