//! Torture tests for the incremental push parser and the epoll reactor.
//!
//! The invariant under attack: *how* bytes arrive must never change *what*
//! the server answers.  A request delivered byte-at-a-time, split at any
//! header boundary, or glued to its pipelined successor must produce
//! responses byte-identical to the same request delivered in one write —
//! and identical across `--io epoll` and `--io threads`, since both cores
//! share the parser, router and wire encoder.
//!
//! Also pinned here: the reactor's timer wheel actually defends the
//! daemon — a slow-loris socket dribbling a header is closed on the
//! header deadline while concurrent well-behaved requests keep being
//! answered, and idle keep-alive sockets are reaped on the idle deadline.

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use afg_json::Json;
use afg_service::{start, IoMode, Parse, RequestParser, ServerHandle, ServiceConfig};

const MODES: [IoMode; 2] = [IoMode::Epoll, IoMode::Threads];

fn boot(io: IoMode) -> ServerHandle {
    start(ServiceConfig {
        io,
        threads: 2,
        keep_alive_timeout: Duration::from_millis(400),
        ..ServiceConfig::default()
    })
    .expect("bind an ephemeral port")
}

/// Writes `raw` in the given chunks (flushing each), then reads until the
/// server closes or idles out.
fn exchange_chunked(addr: std::net::SocketAddr, chunks: &[&[u8]]) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let _ = stream.set_nodelay(true);
    for chunk in chunks {
        stream.write_all(chunk).expect("write chunk");
        stream.flush().expect("flush chunk");
    }
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let mut response = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => response.extend_from_slice(&buf[..n]),
            Err(_) => break,
        }
    }
    String::from_utf8_lossy(&response).into_owned()
}

// ---------------------------------------------------------------------------
// Parser-level: every split boundary, no server involved
// ---------------------------------------------------------------------------

#[test]
fn every_split_boundary_parses_identically() {
    let raw: &[u8] = b"POST /problems/x/grade HTTP/1.1\r\n\
                       Host: example\r\n\
                       Content-Length: 11\r\n\
                       Connection: keep-alive\r\n\
                       \r\n\
                       hello world";
    // Reference: one whole-buffer feed.
    let reference = {
        let mut parser = RequestParser::new();
        match parser.feed(raw) {
            Parse::Complete(request) => format!("{request:?}"),
            other => panic!("whole feed must complete, got {other:?}"),
        }
    };
    // Every two-way split, including the empty prefix and suffix.
    for at in 0..=raw.len() {
        let mut parser = RequestParser::new();
        let first = parser.feed(&raw[..at]);
        let request = match first {
            Parse::Complete(request) => request,
            Parse::Partial => match parser.feed(&raw[at..]) {
                Parse::Complete(request) => request,
                other => panic!("split at {at}: second feed gave {other:?}"),
            },
            Parse::Error(err) => panic!("split at {at}: first feed errored: {err:?}"),
        };
        assert_eq!(
            format!("{request:?}"),
            reference,
            "split at byte {at} changed the parse"
        );
    }
    // Byte-at-a-time.
    let mut parser = RequestParser::new();
    let mut complete = None;
    for (i, byte) in raw.iter().enumerate() {
        match parser.feed(std::slice::from_ref(byte)) {
            Parse::Complete(request) => {
                assert_eq!(i, raw.len() - 1, "completed early at byte {i}");
                complete = Some(request);
            }
            Parse::Partial => {}
            Parse::Error(err) => panic!("byte {i}: {err:?}"),
        }
    }
    let request = complete.expect("byte-at-a-time must complete");
    assert_eq!(format!("{request:?}"), reference);
}

// ---------------------------------------------------------------------------
// Wire-level: delivery shape vs. response bytes, in both I/O modes
// ---------------------------------------------------------------------------

#[test]
fn byte_at_a_time_delivery_answers_identically_in_both_modes() {
    let raw: &[u8] = b"GET /healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n";
    let mut responses = Vec::new();
    for io in MODES {
        let handle = boot(io);
        let whole = exchange_chunked(handle.addr(), &[raw]);
        let dribbled: Vec<&[u8]> = raw.chunks(1).collect();
        let trickled = exchange_chunked(handle.addr(), &dribbled);
        assert_eq!(
            whole,
            trickled,
            "{}: byte-at-a-time delivery changed the response",
            io.name()
        );
        assert!(
            whole.starts_with("HTTP/1.1 200 "),
            "{}: expected a 200, got:\n{whole}",
            io.name()
        );
        responses.push(whole);
        handle.shutdown();
    }
    assert_eq!(
        responses[0], responses[1],
        "epoll and threads modes must answer /healthz byte-identically"
    );
}

#[test]
fn pipelined_requests_are_answered_in_order_in_both_modes() {
    let mut raw = Vec::new();
    raw.extend_from_slice(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
    raw.extend_from_slice(b"GET /nope HTTP/1.1\r\nHost: x\r\n\r\n");
    // The final request must have a deterministic body (`/stats` carries
    // `uptime_ms`) so the cross-mode comparison can be byte-exact.
    raw.extend_from_slice(b"GET /healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n");
    let mut responses = Vec::new();
    for io in MODES {
        let handle = boot(io);
        let response = exchange_chunked(handle.addr(), &[&raw]);
        let statuses: Vec<&str> = response
            .match_indices("HTTP/1.1 ")
            .map(|(at, _)| &response[at + 9..at + 12])
            .collect();
        assert_eq!(
            statuses,
            vec!["200", "404", "200"],
            "{}: pipelined responses out of order:\n{response}",
            io.name()
        );
        responses.push(response);
        handle.shutdown();
    }
    assert_eq!(
        responses[0], responses[1],
        "epoll and threads modes must answer the pipeline byte-identically"
    );
}

#[test]
fn over_limit_bodies_are_rejected_identically_in_both_modes() {
    // Headers dribbled in two chunks, declaring a body beyond MAX_BODY.
    let head = b"POST /problems HTTP/1.1\r\nHost: x\r\nContent-";
    let rest = b"Length: 999999999\r\n\r\n";
    let mut responses = Vec::new();
    for io in MODES {
        let handle = boot(io);
        let response = exchange_chunked(handle.addr(), &[head, rest]);
        assert!(
            response.starts_with("HTTP/1.1 413 "),
            "{}: expected 413, got:\n{response}",
            io.name()
        );
        assert!(
            response.contains("Connection: close"),
            "{}: a closing rejection must say Connection: close:\n{response}",
            io.name()
        );
        responses.push(response);
        handle.shutdown();
    }
    assert_eq!(responses[0], responses[1]);
}

/// Grade responses across the two modes, compared as JSON with the
/// wall-clock field stripped (it is the one legitimately varying field;
/// trace ids are response *headers*, not body).
#[test]
fn grade_responses_are_identical_across_modes_modulo_timing() {
    fn grade_body(io: IoMode) -> Json {
        let handle = boot(io);
        let mut client = afg_service::client::Client::connect(handle.addr()).expect("connect");
        let (status, _) = client
            .post(
                "/problems",
                &Json::object([("problem", Json::str("compDeriv"))]),
            )
            .expect("register");
        assert_eq!(status, 201);
        let (status, graded) = client
            .post(
                "/problems/compDeriv/grade",
                &Json::object([(
                    "source",
                    Json::str("def computeDeriv(poly):\n    return poly\n"),
                )]),
            )
            .expect("grade");
        assert_eq!(status, 200);
        handle.shutdown();
        match graded {
            Json::Object(pairs) => Json::Object(
                pairs
                    .into_iter()
                    .filter(|(k, _)| k != "elapsed_ms")
                    .collect(),
            ),
            other => other,
        }
    }
    let epoll = grade_body(IoMode::Epoll);
    let threads = grade_body(IoMode::Threads);
    assert_eq!(
        epoll.to_string(),
        threads.to_string(),
        "grade responses must match across I/O modes"
    );
}

// ---------------------------------------------------------------------------
// Timer wheel: slow-loris and idle reaping (epoll mode)
// ---------------------------------------------------------------------------

/// Reads until the peer closes, returning how long that took; panics if it
/// takes longer than `limit`.
fn wait_for_close(stream: &mut TcpStream, limit: Duration) -> Duration {
    let start = Instant::now();
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut buf = [0u8; 1024];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => return start.elapsed(),
            Ok(_) => {}
            Err(err)
                if err.kind() == ErrorKind::WouldBlock || err.kind() == ErrorKind::TimedOut => {}
            // RST also counts as the server hanging up.
            Err(_) => return start.elapsed(),
        }
        assert!(
            start.elapsed() < limit,
            "server did not close the connection within {limit:?}"
        );
    }
}

#[test]
fn slow_loris_socket_is_closed_while_concurrent_requests_proceed() {
    let handle = start(ServiceConfig {
        io: IoMode::Epoll,
        threads: 2,
        header_timeout: Duration::from_millis(250),
        // Idle limit far above the header limit: proves the *header*
        // deadline is what fires.
        keep_alive_timeout: Duration::from_secs(30),
        ..ServiceConfig::default()
    })
    .expect("bind an ephemeral port");

    // The attacker: dribbles half a request line and then stalls.
    let mut loris = TcpStream::connect(handle.addr()).expect("connect loris");
    loris.write_all(b"GET /hea").expect("dribble");
    loris.flush().expect("flush");

    // A well-behaved client keeps being served while the loris stalls.
    let healthy = exchange_chunked(
        handle.addr(),
        &[b"GET /healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"],
    );
    assert!(
        healthy.starts_with("HTTP/1.1 200 "),
        "concurrent request must succeed while the loris stalls:\n{healthy}"
    );

    // Generous bound for a loaded single-core CI runner; the deadline
    // itself is 250 ms.
    let took = wait_for_close(&mut loris, Duration::from_secs(10));
    assert!(
        took >= Duration::from_millis(100),
        "closed suspiciously fast ({took:?}) — did the read path error instead of the timer?"
    );
    handle.shutdown();
}

#[test]
fn idle_keep_alive_connections_are_reaped() {
    let handle = start(ServiceConfig {
        io: IoMode::Epoll,
        threads: 2,
        keep_alive_timeout: Duration::from_millis(250),
        ..ServiceConfig::default()
    })
    .expect("bind an ephemeral port");
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
        .expect("write");
    // The response arrives, the connection stays open (keep-alive), then
    // the idle deadline reaps it.
    let took = wait_for_close(&mut stream, Duration::from_secs(10));
    assert!(
        took >= Duration::from_millis(100),
        "reaped before the idle deadline could plausibly fire ({took:?})"
    );
    handle.shutdown();
}
