//! Regenerates **Figure 14(a)**: the distribution of the number of
//! corrections needed by the repaired submissions of the 6.00x problems
//! (log-scale histogram in the paper; printed here as counts per bucket).
//!
//! ```text
//! cargo run --release -p afg-bench --bin fig14a -- [--attempts N] [--seed S] [--workers N]
//! ```

use afg_bench::{corrections_histogram, run_problem_on, CliOptions};
use afg_corpus::{problems, CorpusSpec};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = CliOptions::parse_or_exit(&args, 40);
    let engine = options.engine();
    let (attempts, seed) = (options.attempts, options.seed);

    // The six 6.00x problems plotted in Figure 14(a).
    let ids = [
        "compDeriv",
        "evalPoly",
        "iterGCD",
        "oddTuples",
        "recurPower",
        "iterPower",
    ];

    println!("Figure 14(a): distribution of the number of corrections");
    println!("(synthetic corpus: {attempts} attempts per benchmark, seed {seed})");
    println!();
    println!(
        "{:<14} {:>8} {:>8} {:>8} {:>8}",
        "Benchmark", "1 corr", "2 corr", "3 corr", "4+ corr"
    );

    let mut totals = [0usize; 5];
    for id in ids {
        let problem = problems::problem(id).expect("known benchmark id");
        let spec = CorpusSpec::table1_like(attempts, seed ^ id.len() as u64);
        let (_row, records, _report) = run_problem_on(
            &problem,
            None,
            &spec,
            afg_bench::experiment_config(),
            &engine,
        );
        let histogram = corrections_histogram(&records, 4);
        println!(
            "{:<14} {:>8} {:>8} {:>8} {:>8}",
            id, histogram[1], histogram[2], histogram[3], histogram[4]
        );
        for (bucket, count) in histogram.iter().enumerate() {
            totals[bucket] += count;
        }
    }
    println!();
    println!(
        "All problems: 1 -> {}, 2 -> {}, 3 -> {}, 4+ -> {}",
        totals[1], totals[2], totals[3], totals[4]
    );
    println!(
        "Expected shape (paper): counts fall roughly geometrically with the number of corrections,"
    );
    println!("with a non-trivial tail at 3-4 coordinated corrections.");
}
