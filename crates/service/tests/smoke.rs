//! End-to-end smoke test of the grading daemon, run as a dedicated CI step.
//!
//! Boots the server in-process on an ephemeral port, registers the paper's
//! `computeDeriv` problem, grades the same known-buggy submission twice
//! over real TCP, and asserts the second response is a fingerprint-cache
//! hit with feedback identical to the first.

use afg_json::Json;
use afg_service::client::Client;
use afg_service::{start, ServiceConfig};

/// The paper's worked example: iteration starts at 0 instead of 1 —
/// incorrect, repairable with one correction.
const BUGGY: &str = "def computeDeriv(poly):\n    if len(poly) == 1:\n        return [0]\n    d = []\n    for i in range(0, len(poly)):\n        d.append(i * poly[i])\n    return d\n";

fn boot() -> (afg_service::ServerHandle, Client) {
    let handle = start(ServiceConfig {
        threads: 4,
        ..ServiceConfig::default()
    })
    .expect("bind an ephemeral port");
    let client = Client::connect(handle.addr()).expect("connect");
    (handle, client)
}

#[test]
fn grades_a_buggy_submission_twice_with_a_cache_hit() {
    let (handle, mut client) = boot();

    // Liveness first; no problems registered yet.
    let (status, health) = client.get("/healthz").unwrap();
    assert_eq!(status, 200);
    assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(health.get("problems").and_then(Json::as_i64), Some(0));

    // Register the built-in computeDeriv benchmark with a deterministic
    // (candidate-bounded) search budget.
    let (status, registered) = client
        .post(
            "/problems",
            &Json::object([
                ("problem", Json::str("compDeriv")),
                ("max_candidates", Json::Int(2000)),
                ("time_budget_ms", Json::Int(600_000)),
            ]),
        )
        .unwrap();
    assert_eq!(status, 201, "{registered}");
    assert_eq!(
        registered.get("id").and_then(Json::as_str),
        Some("compDeriv")
    );
    assert_eq!(
        registered.get("entry").and_then(Json::as_str),
        Some("computeDeriv")
    );
    assert_eq!(registered.get("cache").and_then(Json::as_bool), Some(true));

    // First grading: a miss that runs the full CEGIS search.
    let body = Json::object([("source", Json::str(BUGGY))]);
    let (status, first) = client.post("/problems/compDeriv/grade", &body).unwrap();
    assert_eq!(status, 200, "{first}");
    assert_eq!(
        first.get("outcome").and_then(Json::as_str),
        Some("feedback")
    );
    assert_eq!(first.get("cache").and_then(Json::as_str), Some("miss"));

    // Second grading of the same submission: served from the cache, with
    // identical feedback.
    let (status, second) = client.post("/problems/compDeriv/grade", &body).unwrap();
    assert_eq!(status, 200);
    assert_eq!(second.get("cache").and_then(Json::as_str), Some("hit"));
    assert_eq!(
        first.get("feedback").and_then(|f| f.get("rendered")),
        second.get("feedback").and_then(|f| f.get("rendered")),
        "cached feedback must be identical"
    );
    assert_eq!(
        first.get("feedback").and_then(|f| f.get("corrections")),
        second.get("feedback").and_then(|f| f.get("corrections"))
    );
    let rendered = second
        .get("feedback")
        .and_then(|f| f.get("rendered"))
        .and_then(Json::as_str)
        .expect("rendered feedback");
    assert!(
        rendered.contains("The program requires 1 change:"),
        "{rendered}"
    );

    // /stats reflects both requests and the one cache hit.
    let (status, stats) = client.get("/stats").unwrap();
    assert_eq!(status, 200);
    let problems = stats.get("problems").and_then(Json::as_array).unwrap();
    assert_eq!(problems.len(), 1);
    let outcomes = problems[0].get("outcomes").unwrap();
    assert_eq!(outcomes.get("graded").and_then(Json::as_i64), Some(2));
    assert_eq!(outcomes.get("fixed").and_then(Json::as_i64), Some(2));
    let cache = problems[0].get("cache").unwrap();
    assert_eq!(cache.get("hits").and_then(Json::as_i64), Some(1));
    assert_eq!(cache.get("misses").and_then(Json::as_i64), Some(1));
    assert_eq!(cache.get("entries").and_then(Json::as_i64), Some(1));

    // Solver-work totals count the one real search only: the cache hit
    // replays the stored stats but must not re-add them.
    let solver = problems[0].get("solver").unwrap();
    let searched = first
        .get("feedback")
        .and_then(|f| f.get("stats"))
        .and_then(|s| s.get("sat_propagations"))
        .and_then(Json::as_i64)
        .expect("miss carries solver stats");
    assert_eq!(
        solver.get("sat_propagations").and_then(Json::as_i64),
        Some(searched),
        "a cache hit must not inflate the solver-work totals"
    );

    handle.shutdown();
}

#[test]
fn registers_a_custom_problem_from_eml_text_and_batch_grades() {
    let (handle, mut client) = boot();

    // The README's textual model for computeDeriv.
    let (status, registered) = client
        .post(
            "/problems",
            &Json::object([
                ("id", Json::str("deriv-text")),
                ("entry", Json::str("computeDeriv")),
                (
                    "reference",
                    Json::str(
                        "def computeDeriv(poly_list_int):\n    result = []\n    for i in range(len(poly_list_int)):\n        result += [i * poly_list_int[i]]\n    if len(poly_list_int) == 1:\n        return result\n    else:\n        return result[1:]\n",
                    ),
                ),
                (
                    "model",
                    Json::str(
                        "RETR: return a -> [0]\nRANR: range(a0, a1) -> range(a0 + 1, a1)\nEQF: a0 == a1 -> False\n",
                    ),
                ),
            ]),
        )
        .unwrap();
    assert_eq!(status, 201, "{registered}");

    let correct = "def computeDeriv(poly):\n    if len(poly) == 1:\n        return [0]\n    d = []\n    for i in range(1, len(poly)):\n        d.append(i * poly[i])\n    return d\n";
    let broken = "def computeDeriv(poly)\n    return poly\n";
    let (status, report) = client
        .post(
            "/problems/deriv-text/grade/batch",
            &Json::object([
                (
                    "sources",
                    Json::Array(vec![
                        Json::str(BUGGY),
                        Json::str(correct),
                        Json::str(broken),
                        Json::str(BUGGY),
                    ]),
                ),
                ("workers", Json::Int(2)),
            ]),
        )
        .unwrap();
    assert_eq!(status, 200, "{report}");
    let items = report.get("items").and_then(Json::as_array).unwrap();
    assert_eq!(items.len(), 4);
    assert_eq!(
        items[0].get("outcome").and_then(Json::as_str),
        Some("feedback")
    );
    assert_eq!(
        items[1].get("outcome").and_then(Json::as_str),
        Some("correct")
    );
    assert_eq!(
        items[2].get("outcome").and_then(Json::as_str),
        Some("syntax_error")
    );
    // Identical submissions in one batch produce identical feedback.
    assert_eq!(
        items[0].get("feedback").and_then(|f| f.get("rendered")),
        items[3].get("feedback").and_then(|f| f.get("rendered"))
    );
    let totals = report.get("totals").unwrap();
    assert_eq!(totals.get("graded").and_then(Json::as_i64), Some(4));
    assert_eq!(
        totals.get("cache_hits").and_then(Json::as_i64).unwrap()
            + totals.get("cache_misses").and_then(Json::as_i64).unwrap(),
        4
    );

    handle.shutdown();
}

#[test]
fn registers_with_portfolio_backend_and_escalation_ladder() {
    let (handle, mut client) = boot();

    // Portfolio backend, two-tier escalation: an empty cheap model first
    // (tier 0 can repair nothing and escalates), the full model second.
    let (status, registered) = client
        .post(
            "/problems",
            &Json::object([
                ("problem", Json::str("compDeriv")),
                ("id", Json::str("deriv-ladder")),
                ("backend", Json::str("portfolio")),
                ("max_candidates", Json::Int(2000)),
                ("time_budget_ms", Json::Int(600_000)),
                (
                    "escalation",
                    Json::Array(vec![
                        Json::object([
                            ("label", Json::str("cheap")),
                            ("rules", Json::Int(0)),
                            ("max_candidates", Json::Int(50)),
                        ]),
                        Json::object([("label", Json::str("full"))]),
                    ]),
                ),
            ]),
        )
        .unwrap();
    assert_eq!(status, 201, "{registered}");
    assert_eq!(
        registered.get("backend").and_then(Json::as_str),
        Some("portfolio")
    );
    assert_eq!(
        registered.get("escalation_tiers").and_then(Json::as_i64),
        Some(2)
    );

    // The buggy submission escalates past the empty tier and is repaired.
    let body = Json::object([("source", Json::str(BUGGY))]);
    let (status, graded) = client.post("/problems/deriv-ladder/grade", &body).unwrap();
    assert_eq!(status, 200, "{graded}");
    assert_eq!(
        graded.get("outcome").and_then(Json::as_str),
        Some("feedback")
    );
    let stats = graded.get("feedback").and_then(|f| f.get("stats")).unwrap();
    let winner = stats.get("strategy").and_then(Json::as_str).unwrap();
    assert!(
        winner == "cegis" || winner == "enum",
        "portfolio feedback must name the winning strategy, got '{winner}'"
    );

    // /stats exposes backend, ladder and solver-work totals.
    let (status, stats) = client.get("/stats").unwrap();
    assert_eq!(status, 200);
    let problems = stats.get("problems").and_then(Json::as_array).unwrap();
    let entry = problems
        .iter()
        .find(|p| p.get("id").and_then(Json::as_str) == Some("deriv-ladder"))
        .expect("registered problem listed");
    assert_eq!(
        entry.get("backend").and_then(Json::as_str),
        Some("portfolio")
    );
    let tiers = entry.get("escalation").and_then(Json::as_array).unwrap();
    assert_eq!(tiers.len(), 2);
    assert_eq!(tiers[0].get("label").and_then(Json::as_str), Some("cheap"));
    assert_eq!(tiers[0].get("model_rules").and_then(Json::as_i64), Some(0));
    assert!(tiers[1].get("model_rules").unwrap().is_null());
    let solver = entry.get("solver").expect("solver work totals");
    assert!(solver
        .get("sat_propagations")
        .and_then(Json::as_i64)
        .is_some());

    // Malformed escalation tiers are rejected, not silently defaulted.
    let (status, body) = client
        .post(
            "/problems",
            &Json::object([
                ("problem", Json::str("compDeriv")),
                (
                    "escalation",
                    Json::Array(vec![Json::str("cheap"), Json::Int(42)]),
                ),
            ]),
        )
        .unwrap();
    assert_eq!(status, 400, "{body}");
    assert!(body
        .get("error")
        .and_then(Json::as_str)
        .unwrap()
        .contains("escalation[0]"));

    // Unknown backends are rejected with a helpful message.
    let (status, body) = client
        .post(
            "/problems",
            &Json::object([
                ("problem", Json::str("compDeriv")),
                ("backend", Json::str("sketch")),
            ]),
        )
        .unwrap();
    assert_eq!(status, 422);
    assert!(body
        .get("error")
        .and_then(Json::as_str)
        .unwrap()
        .contains("unknown backend"));

    handle.shutdown();
}

#[test]
fn skeleton_cluster_transfer_is_reported_in_stats() {
    let (handle, mut client) = boot();
    let (status, registered) = client
        .post(
            "/problems",
            &Json::object([
                ("problem", Json::str("compDeriv")),
                ("id", Json::str("deriv-cluster")),
                ("max_candidates", Json::Int(2000)),
                ("time_budget_ms", Json::Int(600_000)),
            ]),
        )
        .unwrap();
    assert_eq!(status, 201, "{registered}");
    assert_eq!(
        registered.get("clustering").and_then(Json::as_bool),
        Some(true)
    );

    // Two cohort-mates: same buggy scaffold, different constant in an
    // unused assignment — distinct canonical forms, one skeleton.
    let mate = |constant: i64| {
        format!(
            "def computeDeriv(poly):\n    scratch = {constant}\n    if len(poly) == 1:\n        return [0]\n    d = []\n    for i in range(0, len(poly)):\n        d.append(i * poly[i])\n    return d\n"
        )
    };
    let grade = |client: &mut Client, source: &str| {
        let body = Json::object([("source", Json::str(source))]);
        let (status, response) = client.post("/problems/deriv-cluster/grade", &body).unwrap();
        assert_eq!(status, 200, "{response}");
        response
    };

    let first = grade(&mut client, &mate(7));
    assert_eq!(first.get("cache").and_then(Json::as_str), Some("miss"));
    assert_eq!(first.get("transfer").and_then(Json::as_str), Some("none"));

    let second = grade(&mut client, &mate(21));
    assert_eq!(second.get("cache").and_then(Json::as_str), Some("miss"));
    assert_eq!(
        second.get("transfer").and_then(Json::as_str),
        Some("hit"),
        "{second}"
    );
    // Transfer keeps the verdict cost-identical to the cold run.
    assert_eq!(
        first.get("feedback").and_then(|f| f.get("cost")),
        second.get("feedback").and_then(|f| f.get("cost"))
    );

    // An exact resubmission is an exact-cache hit — the cluster is not
    // consulted again.
    let third = grade(&mut client, &mate(21));
    assert_eq!(third.get("cache").and_then(Json::as_str), Some("hit"));
    assert_eq!(third.get("transfer").and_then(Json::as_str), Some("none"));

    let (status, stats) = client.get("/stats").unwrap();
    assert_eq!(status, 200);
    let problems = stats.get("problems").and_then(Json::as_array).unwrap();
    let entry = problems
        .iter()
        .find(|p| p.get("id").and_then(Json::as_str) == Some("deriv-cluster"))
        .expect("registered problem listed");
    let clusters = entry.get("clusters").expect("clusters stats present");
    assert_eq!(clusters.get("clusters").and_then(Json::as_i64), Some(1));
    assert_eq!(clusters.get("members").and_then(Json::as_i64), Some(2));
    assert_eq!(clusters.get("repairs").and_then(Json::as_i64), Some(1));
    assert_eq!(
        clusters.get("transfer_attempts").and_then(Json::as_i64),
        Some(1)
    );
    assert_eq!(
        clusters.get("transfer_hits").and_then(Json::as_i64),
        Some(1)
    );
    assert!(clusters
        .get("conflicts_saved")
        .and_then(Json::as_i64)
        .is_some());

    // Clustering can be disabled per problem; /stats then reports null.
    let (status, registered) = client
        .post(
            "/problems",
            &Json::object([
                ("problem", Json::str("compDeriv")),
                ("id", Json::str("deriv-noclusters")),
                ("clustering", Json::Bool(false)),
            ]),
        )
        .unwrap();
    assert_eq!(status, 201, "{registered}");
    assert_eq!(
        registered.get("clustering").and_then(Json::as_bool),
        Some(false)
    );
    let (_, stats) = client.get("/stats").unwrap();
    let problems = stats.get("problems").and_then(Json::as_array).unwrap();
    let entry = problems
        .iter()
        .find(|p| p.get("id").and_then(Json::as_str) == Some("deriv-noclusters"))
        .unwrap();
    assert!(entry.get("clusters").unwrap().is_null());

    handle.shutdown();
}

#[test]
fn api_errors_are_json_with_proper_status_codes() {
    let (handle, mut client) = boot();

    let (status, body) = client
        .post(
            "/problems/ghost/grade",
            &Json::object([("source", Json::str("x = 1\n"))]),
        )
        .unwrap();
    assert_eq!(status, 404);
    assert!(body.get("error").is_some());

    let (status, _) = client.request("GET", "/problems", None).unwrap();
    assert_eq!(status, 405);

    let (status, _) = client.request("POST", "/nope", Some(&Json::Null)).unwrap();
    assert_eq!(status, 404);

    // Malformed JSON body.
    let mut raw = Client::connect(handle.addr()).unwrap();
    let (status, body) = raw
        .request("POST", "/problems", Some(&Json::str("{not json")))
        .unwrap();
    // A JSON *string* containing garbage is valid JSON but not a valid
    // registration: expect 400 either way.
    assert_eq!(status, 400, "{body}");

    // A registration that parses but fails validation (untyped params).
    let (status, body) = client
        .post(
            "/problems",
            &Json::object([
                ("id", Json::str("bad")),
                ("entry", Json::str("f")),
                ("reference", Json::str("def f(x):\n    return x\n")),
                ("model", Json::str("EQF: a0 == a1 -> False\n")),
            ]),
        )
        .unwrap();
    assert_eq!(status, 422, "{body}");
    let message = body.get("error").and_then(Json::as_str).unwrap();
    assert!(message.contains("type suffix"), "{message}");

    // Unknown built-in problem.
    let (status, _) = client
        .post("/problems", &Json::object([("problem", Json::str("nope"))]))
        .unwrap();
    assert_eq!(status, 404);

    handle.shutdown();
}
