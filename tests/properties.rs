//! Cross-crate property-based tests of the pipeline's core invariants.

use autofeedback::corpus::{mutate_program, problems};
use autofeedback::eml::{apply_error_model, ChoiceAssignment};
use autofeedback::interp::{EquivalenceConfig, EquivalenceOracle};
use autofeedback::parser::parse_program;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Pretty-printing any mutated benchmark solution and re-parsing it is a
    /// fixed point: parse(print(p)) prints identically.
    #[test]
    fn mutated_programs_round_trip_through_the_printer(seed in 0u64..500, mutations in 1usize..4) {
        let problem = problems::compute_deriv();
        let mut program = parse_program(problem.reference).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        mutate_program(&mut program, mutations, &mut rng);
        let printed = autofeedback::ast::pretty::program_to_string(&program);
        let reparsed = parse_program(&printed).expect("printed program parses");
        prop_assert_eq!(printed, autofeedback::ast::pretty::program_to_string(&reparsed));
    }

    /// The error-model transformation is *conservative*: with every choice at
    /// its default, the concretised program behaves exactly like the input
    /// program on the bounded input space.
    #[test]
    fn default_concretisation_preserves_behaviour(seed in 0u64..200) {
        let problem = problems::compute_deriv();
        let mut student = parse_program(problem.reference).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        mutate_program(&mut student, 2, &mut rng);

        let choices = apply_error_model(&student, Some(problem.entry), &problem.model).unwrap();
        let roundtrip = choices.original_program();

        // Build an oracle whose "reference" is the (possibly broken) student
        // program itself: the default concretisation must be equivalent to it.
        let oracle = EquivalenceOracle::from_reference(
            &parse_with_types(&student, problem.reference, problem.entry),
            EquivalenceConfig { entry: Some(problem.entry.to_string()), ..EquivalenceConfig::default() },
        );
        prop_assert!(oracle.is_equivalent(&roundtrip));
    }

    /// Cost accounting: the cost of an assignment equals the number of
    /// non-default selections, and concretising the same assignment twice is
    /// deterministic.
    #[test]
    fn assignment_cost_counts_non_default_choices(selection_bits in proptest::collection::vec(any::<bool>(), 0..12)) {
        let problem = problems::compute_deriv();
        let student = parse_program(problem.correct_variants[0]).unwrap();
        let choices = apply_error_model(&student, Some(problem.entry), &problem.model).unwrap();

        let mut assignment = ChoiceAssignment::default_choices();
        let mut expected_cost = 0;
        for (info, &flip) in choices.choices.iter().zip(selection_bits.iter()) {
            if flip && info.options.len() > 1 {
                assignment.select(info.id, 1);
                expected_cost += 1;
            }
        }
        prop_assert_eq!(assignment.cost(), expected_cost);
        prop_assert_eq!(choices.concretize(&assignment), choices.concretize(&assignment));
    }
}

/// The student program keeps its own parameter names, but the declared types
/// live on the reference; borrow them so the oracle enumerates the same
/// input space for both.
fn parse_with_types(
    student: &autofeedback::ast::Program,
    reference_source: &str,
    entry: &str,
) -> autofeedback::ast::Program {
    let reference = parse_program(reference_source).unwrap();
    let mut student = student.clone();
    if let (Some(student_func), Some(reference_func)) =
        (student.funcs.first_mut(), reference.entry(Some(entry)))
    {
        for (param, reference_param) in
            student_func.params.iter_mut().zip(reference_func.params.iter())
        {
            param.ty = reference_param.ty.clone();
        }
    }
    student
}
