//! A definitional interpreter for MPY.
//!
//! The grader uses the interpreter in two roles:
//!
//! * as the **verification oracle** — candidate corrected programs are run
//!   against the reference implementation on every input of a bounded size
//!   (the paper performs the same bounded equivalence check symbolically
//!   inside SKETCH), and
//! * as the **baseline grader** — the test-case feedback approach simply runs
//!   the submission on a handful of inputs.
//!
//! Execution is bounded by a *fuel* budget (steps) and a recursion-depth
//! limit so that student infinite loops terminate deterministically; running
//! out of fuel surfaces as [`RuntimeError::FuelExhausted`].

use std::collections::HashMap;
use std::sync::Arc;

use afg_ast::ops::{BinOp, BoolOp, CmpOp, UnaryOp};
use afg_ast::{Expr, FuncDef, Program, Stmt, StmtKind, Target};

use crate::builtins::{self, normalise_index};
use crate::error::RuntimeError;
use crate::value::Value;

/// Resource bounds for one execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecLimits {
    /// Maximum number of interpreter steps (statements, expression nodes and
    /// loop iterations each cost one unit).
    pub fuel: u64,
    /// Maximum user-function call depth.
    pub max_recursion: u32,
}

impl Default for ExecLimits {
    fn default() -> ExecLimits {
        ExecLimits {
            fuel: 200_000,
            max_recursion: 64,
        }
    }
}

impl ExecLimits {
    /// A tighter budget suitable for the inner loop of synthesis, where
    /// millions of candidate executions may be needed.
    pub fn fast() -> ExecLimits {
        ExecLimits {
            fuel: 20_000,
            max_recursion: 32,
        }
    }
}

/// The observable result of running an MPY function: its return value plus
/// everything it printed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outcome {
    /// The function's return value (`None` if it fell off the end).
    pub value: Value,
    /// Lines printed during execution, in order.
    pub output: Vec<String>,
}

/// Control-flow signal produced by executing a statement.
pub(crate) enum Flow {
    Normal,
    Return(Value),
    Break,
    Continue,
}

/// A local frame.  Keyed by shared `Arc<str>` so hot binding sites (entry
/// parameters, loop variables) clone a pointer instead of the name's bytes;
/// `Arc` rather than `Rc` because [`crate::ChoiceEvaluator`] shares its
/// pre-resolved parameter keys across grading threads.
pub(crate) type Frame = HashMap<Arc<str>, Value>;

/// The choice context of an interpreter evaluating an M̃PY program directly:
/// the choice-bearing entry function plus the option selection to apply at
/// every choice site.  See [`crate::choice_eval`].
pub(crate) struct ChoiceCtx<'p> {
    pub(crate) func: &'p afg_eml::CFuncDef,
    pub(crate) assignment: &'p afg_eml::ChoiceAssignment,
    /// Parameter names of `func`, interned once per evaluator so binding
    /// arguments on every candidate run allocates nothing.
    pub(crate) param_keys: &'p [Arc<str>],
}

/// An interpreter instance bound to one program.
pub struct Interpreter<'p> {
    pub(crate) program: &'p Program,
    pub(crate) limits: ExecLimits,
    pub(crate) fuel: u64,
    pub(crate) depth: u32,
    pub(crate) output: Vec<String>,
    pub(crate) stdin: Vec<Value>,
    pub(crate) stdin_pos: usize,
    /// When set, calls to `choice.func.name` re-enter the choice-bearing
    /// entry function instead of looking it up in `program` (which then only
    /// holds the student's helper functions).
    pub(crate) choice: Option<ChoiceCtx<'p>>,
}

impl<'p> Interpreter<'p> {
    /// Creates an interpreter with default limits.
    pub fn new(program: &'p Program) -> Interpreter<'p> {
        Interpreter::with_limits(program, ExecLimits::default())
    }

    /// Creates an interpreter with explicit limits.
    pub fn with_limits(program: &'p Program, limits: ExecLimits) -> Interpreter<'p> {
        Interpreter {
            program,
            limits,
            fuel: limits.fuel,
            depth: 0,
            output: Vec::new(),
            stdin: Vec::new(),
            stdin_pos: 0,
            choice: None,
        }
    }

    /// Provides values returned by successive `input()` / `raw_input()`
    /// calls (used by the stdin-driven benchmark problems).
    pub fn with_stdin(mut self, values: Vec<Value>) -> Interpreter<'p> {
        self.stdin = values;
        self
    }

    /// Calls the program's entry function on `args` and returns its outcome.
    ///
    /// # Errors
    ///
    /// Any [`RuntimeError`] raised during execution, including
    /// `FuelExhausted` for programs that loop too long and a `TypeError`
    /// when the function's arity does not match `args`.
    pub fn call_entry(
        &mut self,
        entry: Option<&str>,
        args: &[Value],
    ) -> Result<Outcome, RuntimeError> {
        let func = self
            .program
            .entry(entry)
            .ok_or_else(|| RuntimeError::Name("program defines no function".to_string()))?;
        self.fuel = self.limits.fuel;
        self.output.clear();
        self.stdin_pos = 0;
        let value = self.call_func(func, args.to_vec())?;
        Ok(Outcome {
            value,
            output: std::mem::take(&mut self.output),
        })
    }

    /// Runs the program's top-level statements (for print/stdin style
    /// problems) and returns the `None` value plus the captured output.
    ///
    /// # Errors
    ///
    /// Any [`RuntimeError`] raised during execution.
    pub fn run_top_level(&mut self) -> Result<Outcome, RuntimeError> {
        self.fuel = self.limits.fuel;
        self.output.clear();
        self.stdin_pos = 0;
        let mut frame = Frame::new();
        match self.exec_block(&self.program.top_level, &mut frame)? {
            Flow::Return(v) => Ok(Outcome {
                value: v,
                output: std::mem::take(&mut self.output),
            }),
            _ => Ok(Outcome {
                value: Value::None,
                output: std::mem::take(&mut self.output),
            }),
        }
    }

    /// Fuel consumed by the most recent entry-point call (complete or
    /// not), for differential fuel-parity checks against the bytecode VM.
    pub fn fuel_used(&self) -> u64 {
        self.limits.fuel - self.fuel
    }

    pub(crate) fn charge(&mut self, amount: u64) -> Result<(), RuntimeError> {
        if self.fuel < amount {
            return Err(RuntimeError::FuelExhausted);
        }
        self.fuel -= amount;
        Ok(())
    }

    pub(crate) fn call_func(
        &mut self,
        func: &FuncDef,
        args: Vec<Value>,
    ) -> Result<Value, RuntimeError> {
        if self.depth >= self.limits.max_recursion {
            return Err(RuntimeError::RecursionLimit);
        }
        if func.params.len() != args.len() {
            return Err(RuntimeError::Type(format!(
                "{}() takes {} arguments ({} given)",
                func.name,
                func.params.len(),
                args.len()
            )));
        }
        let mut frame = Frame::new();
        for (param, arg) in func.params.iter().zip(args) {
            frame.insert(Arc::from(param.name.as_str()), arg);
        }
        self.depth += 1;
        let flow = self.exec_block(&func.body, &mut frame);
        self.depth -= 1;
        match flow? {
            Flow::Return(v) => Ok(v),
            _ => Ok(Value::None),
        }
    }

    pub(crate) fn exec_block(
        &mut self,
        stmts: &[Stmt],
        frame: &mut Frame,
    ) -> Result<Flow, RuntimeError> {
        for stmt in stmts {
            match self.exec_stmt(stmt, frame)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(&mut self, stmt: &Stmt, frame: &mut Frame) -> Result<Flow, RuntimeError> {
        self.charge(1)?;
        match &stmt.kind {
            StmtKind::Assign(target, value) => {
                afg_cov::cov_hit!();
                let value = self.eval(value, frame)?;
                self.assign(target, value, frame)?;
                Ok(Flow::Normal)
            }
            StmtKind::AugAssign(target, op, value) => {
                afg_cov::cov_hit!();
                let rhs = self.eval(value, frame)?;
                let current = self.read_target(target, frame)?;
                let updated = binary_op(*op, &current, &rhs)?;
                self.assign(target, updated, frame)?;
                Ok(Flow::Normal)
            }
            StmtKind::ExprStmt(expr) => {
                self.eval(expr, frame)?;
                Ok(Flow::Normal)
            }
            StmtKind::If(cond, then_body, else_body) => {
                afg_cov::cov_hit!();
                if self.eval(cond, frame)?.is_truthy() {
                    self.exec_block(then_body, frame)
                } else {
                    self.exec_block(else_body, frame)
                }
            }
            StmtKind::While(cond, body) => {
                afg_cov::cov_hit!();
                while self.eval(cond, frame)?.is_truthy() {
                    self.charge(1)?;
                    match self.exec_block(body, frame)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal | Flow::Continue => {}
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::For(var, iter, body) => {
                afg_cov::cov_hit!();
                let items = iterable_items(&self.eval(iter, frame)?)?;
                let key: Arc<str> = Arc::from(var.as_str());
                for item in items {
                    self.charge(1)?;
                    frame.insert(Arc::clone(&key), item);
                    match self.exec_block(body, frame)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal | Flow::Continue => {}
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::Return(expr) => {
                afg_cov::cov_hit!();
                let value = match expr {
                    Some(e) => self.eval(e, frame)?,
                    None => Value::None,
                };
                Ok(Flow::Return(value))
            }
            StmtKind::Print(args) => {
                afg_cov::cov_hit!();
                let mut parts = Vec::new();
                for arg in args {
                    parts.push(self.eval(arg, frame)?.display_str());
                }
                self.output.push(parts.join(" "));
                Ok(Flow::Normal)
            }
            StmtKind::Pass => Ok(Flow::Normal),
            StmtKind::Break => Ok(Flow::Break),
            StmtKind::Continue => Ok(Flow::Continue),
        }
    }

    pub(crate) fn assign(
        &mut self,
        target: &Target,
        value: Value,
        frame: &mut Frame,
    ) -> Result<(), RuntimeError> {
        match target {
            Target::Var(name) => {
                frame.insert(Arc::from(name.as_str()), value);
                Ok(())
            }
            Target::Index(base, index) => {
                let index_value = self.eval(index, frame)?;
                let mut container = self.eval(base, frame)?;
                store_index(&mut container, &index_value, value)?;
                // Write the mutated container back to its own location when
                // the base is itself assignable (variable or nested index).
                if let Some(base_target) = expr_as_target(base) {
                    self.assign(&base_target, container, frame)?;
                }
                Ok(())
            }
            Target::Tuple(targets) => {
                let items = match &value {
                    Value::List(items) | Value::Tuple(items) => items.clone(),
                    other => {
                        return Err(RuntimeError::Type(format!(
                            "cannot unpack non-sequence {}",
                            other.type_name()
                        )))
                    }
                };
                if items.len() != targets.len() {
                    return Err(RuntimeError::Value(format!(
                        "too {} values to unpack",
                        if items.len() > targets.len() {
                            "many"
                        } else {
                            "few"
                        }
                    )));
                }
                for (t, v) in targets.iter().zip(items) {
                    self.assign(t, v, frame)?;
                }
                Ok(())
            }
        }
    }

    pub(crate) fn read_target(
        &mut self,
        target: &Target,
        frame: &mut Frame,
    ) -> Result<Value, RuntimeError> {
        match target {
            Target::Var(name) => frame
                .get(name.as_str())
                .cloned()
                .ok_or_else(|| RuntimeError::Name(format!("name '{name}' is not defined"))),
            Target::Index(base, index) => {
                let base_value = self.eval(base, frame)?;
                let index_value = self.eval(index, frame)?;
                load_index(&base_value, &index_value)
            }
            Target::Tuple(_) => Err(RuntimeError::Type(
                "augmented assignment to a tuple target is not allowed".to_string(),
            )),
        }
    }

    pub(crate) fn eval(&mut self, expr: &Expr, frame: &mut Frame) -> Result<Value, RuntimeError> {
        self.charge(1)?;
        match expr {
            Expr::Int(v) => Ok(Value::Int(*v)),
            Expr::Bool(b) => Ok(Value::Bool(*b)),
            Expr::Str(s) => Ok(Value::Str(s.clone())),
            Expr::None => Ok(Value::None),
            Expr::Var(name) => frame
                .get(name.as_str())
                .cloned()
                .ok_or_else(|| RuntimeError::Name(format!("name '{name}' is not defined"))),
            Expr::List(items) => {
                let mut values = Vec::with_capacity(items.len());
                for item in items {
                    values.push(self.eval(item, frame)?);
                }
                Ok(Value::List(values))
            }
            Expr::Tuple(items) => {
                let mut values = Vec::with_capacity(items.len());
                for item in items {
                    values.push(self.eval(item, frame)?);
                }
                Ok(Value::Tuple(values))
            }
            Expr::Dict(items) => {
                let mut entries = Vec::with_capacity(items.len());
                for (k, v) in items {
                    let key = self.eval(k, frame)?;
                    let value = self.eval(v, frame)?;
                    if let Some(existing) = entries
                        .iter_mut()
                        .find(|(ek, _): &&mut (Value, Value)| ek.py_eq(&key))
                    {
                        existing.1 = value;
                    } else {
                        entries.push((key, value));
                    }
                }
                Ok(Value::Dict(entries))
            }
            Expr::Index(base, index) => {
                let base_value = self.eval(base, frame)?;
                let index_value = self.eval(index, frame)?;
                load_index(&base_value, &index_value)
            }
            Expr::Slice(base, lower, upper) => {
                let base_value = self.eval(base, frame)?;
                let lower = match lower {
                    Some(e) => Some(self.eval(e, frame)?),
                    None => None,
                };
                let upper = match upper {
                    Some(e) => Some(self.eval(e, frame)?),
                    None => None,
                };
                slice_value(&base_value, lower.as_ref(), upper.as_ref())
            }
            Expr::BinOp(op, left, right) => {
                let l = self.eval(left, frame)?;
                let r = self.eval(right, frame)?;
                binary_op(*op, &l, &r)
            }
            Expr::UnaryOp(op, operand) => {
                let v = self.eval(operand, frame)?;
                unary_op(*op, &v)
            }
            Expr::Compare(op, left, right) => {
                let l = self.eval(left, frame)?;
                let r = self.eval(right, frame)?;
                compare_op(*op, &l, &r)
            }
            Expr::BoolExpr(op, left, right) => {
                let l = self.eval(left, frame)?;
                match op {
                    BoolOp::And => {
                        if !l.is_truthy() {
                            Ok(l)
                        } else {
                            self.eval(right, frame)
                        }
                    }
                    BoolOp::Or => {
                        if l.is_truthy() {
                            Ok(l)
                        } else {
                            self.eval(right, frame)
                        }
                    }
                }
            }
            Expr::Call(name, args) => {
                let mut values = Vec::with_capacity(args.len());
                for arg in args {
                    values.push(self.eval(arg, frame)?);
                }
                self.call_named(name, values)
            }
            Expr::MethodCall(recv, method, args) => {
                let mut receiver = self.eval(recv, frame)?;
                let mut values = Vec::with_capacity(args.len());
                for arg in args {
                    values.push(self.eval(arg, frame)?);
                }
                let (result, mutated) = builtins::call_method(&mut receiver, method, &values)?;
                if mutated {
                    if let Some(target) = expr_as_target(recv) {
                        self.assign(&target, receiver, frame)?;
                    }
                }
                Ok(result)
            }
            Expr::IfExpr(body, cond, orelse) => {
                if self.eval(cond, frame)?.is_truthy() {
                    self.eval(body, frame)
                } else {
                    self.eval(orelse, frame)
                }
            }
        }
    }

    pub(crate) fn call_named(
        &mut self,
        name: &str,
        args: Vec<Value>,
    ) -> Result<Value, RuntimeError> {
        // A recursive call back into the graded entry function re-enters the
        // choice-aware evaluator; the entry shadows any same-named helper,
        // exactly as it does in the concretised program (where the entry is
        // `funcs[0]`).
        if self
            .choice
            .as_ref()
            .is_some_and(|ctx| ctx.func.name == name)
        {
            return self.call_choice_func(args);
        }
        // User-defined functions shadow builtins, matching Python scoping.
        if let Some(func) = self.program.func(name) {
            return self.call_func(func, args);
        }
        if name == "print" {
            let line = args
                .iter()
                .map(Value::display_str)
                .collect::<Vec<_>>()
                .join(" ");
            self.output.push(line);
            return Ok(Value::None);
        }
        if name == "input" || name == "raw_input" {
            let value =
                self.stdin.get(self.stdin_pos).cloned().ok_or_else(|| {
                    RuntimeError::Value("input(): no more stdin values".to_string())
                })?;
            self.stdin_pos += 1;
            return Ok(if name == "raw_input" {
                Value::Str(value.display_str())
            } else {
                value
            });
        }
        match builtins::call_builtin(name, &args) {
            Some(result) => result,
            None => Err(RuntimeError::Name(format!("name '{name}' is not defined"))),
        }
    }
}

/// Runs `program`'s entry function on `args` with the given limits and
/// returns the outcome.  Convenience wrapper used throughout the workspace.
///
/// # Errors
///
/// Propagates any [`RuntimeError`] raised during execution.
pub fn run_function(
    program: &Program,
    entry: Option<&str>,
    args: &[Value],
    limits: ExecLimits,
) -> Result<Outcome, RuntimeError> {
    Interpreter::with_limits(program, limits).call_entry(entry, args)
}

/// The items an MPY `for` loop iterates over.
pub fn iterable_items(value: &Value) -> Result<Vec<Value>, RuntimeError> {
    match value {
        Value::List(items) | Value::Tuple(items) => Ok(items.clone()),
        Value::Str(s) => Ok(s.chars().map(|c| Value::Str(c.to_string())).collect()),
        Value::Dict(items) => Ok(items.iter().map(|(k, _)| k.clone()).collect()),
        other => Err(RuntimeError::Type(format!(
            "'{}' object is not iterable",
            other.type_name()
        ))),
    }
}

pub(crate) fn expr_as_target(expr: &Expr) -> Option<Target> {
    match expr {
        Expr::Var(name) => Some(Target::Var(name.clone())),
        Expr::Index(base, index) => Some(Target::Index((**base).clone(), (**index).clone())),
        _ => None,
    }
}

pub(crate) fn load_index(base: &Value, index: &Value) -> Result<Value, RuntimeError> {
    match base {
        Value::List(items) | Value::Tuple(items) => {
            let idx = index
                .as_int()
                .ok_or_else(|| RuntimeError::Type("list indices must be integers".to_string()))?;
            let pos = normalise_index(idx, items.len())
                .ok_or_else(|| RuntimeError::Index("list index out of range".to_string()))?;
            Ok(items[pos].clone())
        }
        Value::Str(s) => {
            let idx = index
                .as_int()
                .ok_or_else(|| RuntimeError::Type("string indices must be integers".to_string()))?;
            let chars: Vec<char> = s.chars().collect();
            let pos = normalise_index(idx, chars.len())
                .ok_or_else(|| RuntimeError::Index("string index out of range".to_string()))?;
            Ok(Value::Str(chars[pos].to_string()))
        }
        Value::Dict(entries) => entries
            .iter()
            .find(|(k, _)| k.py_eq(index))
            .map(|(_, v)| v.clone())
            .ok_or_else(|| RuntimeError::Key(index.repr())),
        other => Err(RuntimeError::Type(format!(
            "'{}' object is not subscriptable",
            other.type_name()
        ))),
    }
}

pub(crate) fn store_index(
    base: &mut Value,
    index: &Value,
    value: Value,
) -> Result<(), RuntimeError> {
    match base {
        Value::List(items) => {
            let idx = index
                .as_int()
                .ok_or_else(|| RuntimeError::Type("list indices must be integers".to_string()))?;
            let pos = normalise_index(idx, items.len()).ok_or_else(|| {
                RuntimeError::Index("list assignment index out of range".to_string())
            })?;
            items[pos] = value;
            Ok(())
        }
        Value::Dict(entries) => {
            if let Some(entry) = entries.iter_mut().find(|(k, _)| k.py_eq(index)) {
                entry.1 = value;
            } else {
                entries.push((index.clone(), value));
            }
            Ok(())
        }
        Value::Tuple(_) => Err(RuntimeError::Type(
            "'tuple' object does not support item assignment".to_string(),
        )),
        Value::Str(_) => Err(RuntimeError::Type(
            "'str' object does not support item assignment".to_string(),
        )),
        other => Err(RuntimeError::Type(format!(
            "'{}' object does not support item assignment",
            other.type_name()
        ))),
    }
}

pub(crate) fn slice_value(
    base: &Value,
    lower: Option<&Value>,
    upper: Option<&Value>,
) -> Result<Value, RuntimeError> {
    fn bounds(
        len: usize,
        lower: Option<&Value>,
        upper: Option<&Value>,
    ) -> Result<(usize, usize), RuntimeError> {
        let len = len as i64;
        let clamp = |v: i64| -> i64 {
            let adjusted = if v < 0 { v + len } else { v };
            adjusted.clamp(0, len)
        };
        let lo =
            match lower {
                Some(v) => clamp(v.as_int().ok_or_else(|| {
                    RuntimeError::Type("slice indices must be integers".to_string())
                })?),
                None => 0,
            };
        let hi =
            match upper {
                Some(v) => clamp(v.as_int().ok_or_else(|| {
                    RuntimeError::Type("slice indices must be integers".to_string())
                })?),
                None => len,
            };
        Ok((lo as usize, (hi.max(lo)) as usize))
    }
    match base {
        Value::List(items) => {
            let (lo, hi) = bounds(items.len(), lower, upper)?;
            Ok(Value::List(items[lo..hi].to_vec()))
        }
        Value::Tuple(items) => {
            let (lo, hi) = bounds(items.len(), lower, upper)?;
            Ok(Value::Tuple(items[lo..hi].to_vec()))
        }
        Value::Str(s) => {
            let chars: Vec<char> = s.chars().collect();
            let (lo, hi) = bounds(chars.len(), lower, upper)?;
            Ok(Value::Str(chars[lo..hi].iter().collect()))
        }
        other => Err(RuntimeError::Type(format!(
            "'{}' object cannot be sliced",
            other.type_name()
        ))),
    }
}

/// Evaluates a unary operator with Python semantics.
pub fn unary_op(op: UnaryOp, v: &Value) -> Result<Value, RuntimeError> {
    match op {
        UnaryOp::Neg => match v.as_int() {
            Some(i) => Ok(Value::Int(i.checked_neg().ok_or(RuntimeError::Overflow)?)),
            None => Err(RuntimeError::Type(format!(
                "bad operand type for unary -: '{}'",
                v.type_name()
            ))),
        },
        UnaryOp::Not => Ok(Value::Bool(!v.is_truthy())),
    }
}

/// Evaluates a binary arithmetic operator with Python semantics (Python-2
/// style integer division, sign-of-divisor modulo, sequence concatenation
/// and repetition).
pub fn binary_op(op: BinOp, left: &Value, right: &Value) -> Result<Value, RuntimeError> {
    use Value::{Int, List, Str, Tuple};
    let type_error = || {
        RuntimeError::Type(format!(
            "unsupported operand type(s) for {}: '{}' and '{}'",
            op.symbol(),
            left.type_name(),
            right.type_name()
        ))
    };
    match op {
        BinOp::Add => match (left, right) {
            _ if {
                afg_cov::cov_hit!();
                false
            } =>
            {
                unreachable!()
            }
            (Str(a), Str(b)) => Ok(Str(format!("{a}{b}"))),
            (List(a), List(b)) => Ok(List(a.iter().cloned().chain(b.iter().cloned()).collect())),
            (Tuple(a), Tuple(b)) => Ok(Tuple(a.iter().cloned().chain(b.iter().cloned()).collect())),
            _ => match (left.as_int(), right.as_int()) {
                (Some(a), Some(b)) => Ok(Int(a.checked_add(b).ok_or(RuntimeError::Overflow)?)),
                _ => Err(type_error()),
            },
        },
        BinOp::Sub => {
            afg_cov::cov_hit!();
            match (left.as_int(), right.as_int()) {
                (Some(a), Some(b)) => Ok(Int(a.checked_sub(b).ok_or(RuntimeError::Overflow)?)),
                _ => Err(type_error()),
            }
        }
        BinOp::Mul => match (left, right) {
            (Str(s), other) | (other, Str(s)) if other.as_int().is_some() => {
                afg_cov::cov_hit!();
                let n = other.as_int().unwrap_or(0).max(0) as usize;
                if n.checked_mul(s.len()).is_none_or(|total| total > 10_000) {
                    return Err(RuntimeError::Overflow);
                }
                Ok(Str(s.repeat(n)))
            }
            (List(items), other) | (other, List(items)) if other.as_int().is_some() => {
                afg_cov::cov_hit!();
                let n = other.as_int().unwrap_or(0).max(0) as usize;
                if n.checked_mul(items.len())
                    .is_none_or(|total| total > 10_000)
                {
                    return Err(RuntimeError::Overflow);
                }
                let mut result = Vec::with_capacity(n * items.len());
                for _ in 0..n {
                    result.extend(items.iter().cloned());
                }
                Ok(List(result))
            }
            _ => match (left.as_int(), right.as_int()) {
                (Some(a), Some(b)) => Ok(Int(a.checked_mul(b).ok_or(RuntimeError::Overflow)?)),
                _ => Err(type_error()),
            },
        },
        BinOp::Div | BinOp::FloorDiv => match (left.as_int(), right.as_int()) {
            (Some(_), Some(0)) => {
                afg_cov::cov_hit!();
                Err(RuntimeError::ZeroDivision)
            }
            (Some(a), Some(b)) => {
                afg_cov::cov_hit!();
                // Python floor division rounds toward negative infinity.
                // `i64::MIN // -1` is the one quotient that does not fit.
                let q = a.checked_div(b).ok_or(RuntimeError::Overflow)?;
                let q = if a % b != 0 && (a < 0) != (b < 0) {
                    q - 1
                } else {
                    q
                };
                Ok(Int(q))
            }
            _ => Err(type_error()),
        },
        BinOp::Mod => match (left.as_int(), right.as_int()) {
            (Some(_), Some(0)) => {
                afg_cov::cov_hit!();
                Err(RuntimeError::ZeroDivision)
            }
            (Some(a), Some(b)) => {
                afg_cov::cov_hit!();
                // Python's % takes the sign of the divisor.  `checked_rem` is
                // `None` only for `i64::MIN % -1`, whose mathematical value
                // (0) fits fine — the truncated *quotient* is what overflows.
                let r = a.checked_rem(b).unwrap_or(0);
                let r = if r != 0 && (r < 0) != (b < 0) {
                    r + b
                } else {
                    r
                };
                Ok(Int(r))
            }
            _ => Err(type_error()),
        },
        BinOp::Pow => match (left.as_int(), right.as_int()) {
            (Some(a), Some(b)) => {
                afg_cov::cov_hit!();
                if b < 0 {
                    return Err(RuntimeError::Unsupported(
                        "negative exponents produce floats, which MPY does not support".to_string(),
                    ));
                }
                // Bases 0, 1 and -1 never leave {-1, 0, 1}, no matter how
                // large the exponent — students write `(-1) ** n` and
                // `1 ** big` on purpose, so these must not trip the
                // large-exponent overflow guard below.
                match a {
                    0 => return Ok(Int(if b == 0 { 1 } else { 0 })),
                    1 => return Ok(Int(1)),
                    -1 => return Ok(Int(if b % 2 == 0 { 1 } else { -1 })),
                    _ => {}
                }
                // |a| >= 2: any exponent above 63 overflows i64, and the
                // u32/checked_pow pair covers everything below.
                let exp = u32::try_from(b).map_err(|_| RuntimeError::Overflow)?;
                if exp > 63 {
                    return Err(RuntimeError::Overflow);
                }
                Ok(Int(a.checked_pow(exp).ok_or(RuntimeError::Overflow)?))
            }
            _ => Err(type_error()),
        },
    }
}

/// Evaluates a comparison operator with Python semantics.
pub fn compare_op(op: CmpOp, left: &Value, right: &Value) -> Result<Value, RuntimeError> {
    match op {
        CmpOp::Eq => Ok(Value::Bool(left.py_eq(right))),
        CmpOp::Ne => Ok(Value::Bool(!left.py_eq(right))),
        CmpOp::In | CmpOp::NotIn => {
            let contained = match right {
                Value::List(items) | Value::Tuple(items) => items.iter().any(|v| v.py_eq(left)),
                Value::Str(haystack) => match left {
                    Value::Str(needle) => haystack.contains(needle.as_str()),
                    other => {
                        return Err(RuntimeError::Type(format!(
                            "'in <string>' requires string as left operand, not {}",
                            other.type_name()
                        )))
                    }
                },
                Value::Dict(entries) => entries.iter().any(|(k, _)| k.py_eq(left)),
                other => {
                    return Err(RuntimeError::Type(format!(
                        "argument of type '{}' is not iterable",
                        other.type_name()
                    )))
                }
            };
            Ok(Value::Bool(if op == CmpOp::In {
                contained
            } else {
                !contained
            }))
        }
        _ => {
            let ordering = left.py_cmp(right).ok_or_else(|| {
                RuntimeError::Type(format!(
                    "'{}' not supported between instances of '{}' and '{}'",
                    op.symbol(),
                    left.type_name(),
                    right.type_name()
                ))
            })?;
            let result = match op {
                CmpOp::Lt => ordering.is_lt(),
                CmpOp::Le => ordering.is_le(),
                CmpOp::Gt => ordering.is_gt(),
                CmpOp::Ge => ordering.is_ge(),
                _ => unreachable!("handled above"),
            };
            Ok(Value::Bool(result))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afg_parser::parse_program;

    fn run(source: &str, entry: &str, args: &[Value]) -> Result<Outcome, RuntimeError> {
        let program = parse_program(source).expect("benchmark source parses");
        run_function(&program, Some(entry), args, ExecLimits::default())
    }

    #[test]
    fn runs_reference_compute_deriv() {
        let source = "\
def computeDeriv(poly_list_int):
    result = []
    for i in range(len(poly_list_int)):
        result += [i * poly_list_int[i]]
    if len(poly_list_int) == 1:
        return result
    else:
        return result[1:]
";
        // Paper example: [2, -3, 1, 4] -> [-3, 2, 12]
        let out = run(source, "computeDeriv", &[Value::int_list([2, -3, 1, 4])]).unwrap();
        assert_eq!(out.value, Value::int_list([-3, 2, 12]));
        // Note: for a single-element list the reference returns [0*c] = [0].
        let out = run(source, "computeDeriv", &[Value::int_list([7])]).unwrap();
        assert_eq!(out.value, Value::int_list([0]));
    }

    #[test]
    fn pow_with_unit_bases_never_overflows() {
        let pow = |a: i64, b: i64| binary_op(BinOp::Pow, &Value::Int(a), &Value::Int(b));
        // |base| <= 1 stays in {-1, 0, 1} for any exponent, including ones
        // far beyond the 63-bit guard for wider bases.
        assert_eq!(pow(1, 100).unwrap(), Value::Int(1));
        assert_eq!(pow(1, i64::MAX).unwrap(), Value::Int(1));
        assert_eq!(pow(-1, 101).unwrap(), Value::Int(-1));
        assert_eq!(pow(-1, 100).unwrap(), Value::Int(1));
        assert_eq!(pow(-1, i64::MAX).unwrap(), Value::Int(-1));
        assert_eq!(pow(0, 1000).unwrap(), Value::Int(0));
        assert_eq!(pow(0, 0).unwrap(), Value::Int(1));
        assert_eq!(pow(-1, 0).unwrap(), Value::Int(1));
        // Wider bases still hit the guard exactly where i64 gives out.
        assert_eq!(pow(2, 62).unwrap(), Value::Int(1 << 62));
        assert_eq!(pow(2, 63).unwrap_err(), RuntimeError::Overflow);
        assert_eq!(pow(-2, 63).unwrap(), Value::Int(i64::MIN));
        assert_eq!(pow(2, 64).unwrap_err(), RuntimeError::Overflow);
        assert_eq!(pow(3, 1_000_000).unwrap_err(), RuntimeError::Overflow);
        assert!(matches!(
            pow(1, -1).unwrap_err(),
            RuntimeError::Unsupported(_)
        ));
    }

    #[test]
    fn floor_division_and_modulo_survive_the_i64_min_corner() {
        let div = |a: i64, b: i64| binary_op(BinOp::FloorDiv, &Value::Int(a), &Value::Int(b));
        let rem = |a: i64, b: i64| binary_op(BinOp::Mod, &Value::Int(a), &Value::Int(b));
        // i64::MIN // -1 is the single quotient outside i64; the matching
        // remainder is mathematically 0 and must come back as 0, not a
        // panic or a bogus Overflow.
        assert_eq!(div(i64::MIN, -1).unwrap_err(), RuntimeError::Overflow);
        assert_eq!(rem(i64::MIN, -1).unwrap(), Value::Int(0));
        // Both-negative and mixed-sign corners keep Python semantics.
        assert_eq!(div(-7, -2).unwrap(), Value::Int(3));
        assert_eq!(rem(-7, -2).unwrap(), Value::Int(-1));
        assert_eq!(div(-7, 2).unwrap(), Value::Int(-4));
        assert_eq!(rem(-7, 2).unwrap(), Value::Int(1));
        assert_eq!(div(7, -2).unwrap(), Value::Int(-4));
        assert_eq!(rem(7, -2).unwrap(), Value::Int(-1));
        assert_eq!(div(i64::MIN, 1).unwrap(), Value::Int(i64::MIN));
        assert_eq!(rem(i64::MIN, 1).unwrap(), Value::Int(0));
    }

    #[test]
    fn runs_student_submission_with_mutating_pop() {
        // Figure 2(b): uses poly.pop(1) and a while loop.
        let source = "\
def computeDeriv(poly):
    idx = 1
    deriv = list([])
    plen = len(poly)
    while idx <= plen:
        coeff = poly.pop(1)
        deriv += [coeff * idx]
        idx = idx + 1
    if len(poly) < 2:
        return deriv
";
        // The submission crashes with an IndexError (pop(1) on a shrinking
        // list) for lists of length >= 2 — exactly why it is incorrect.
        let err = run(source, "computeDeriv", &[Value::int_list([2, -3, 1, 4])]).unwrap_err();
        assert_eq!(err.kind(), "IndexError");
        // For [x] it pops index 1 immediately -> IndexError as well.
        let err = run(source, "computeDeriv", &[Value::int_list([5])]).unwrap_err();
        assert_eq!(err.kind(), "IndexError");
    }

    #[test]
    fn recursion_works_and_is_bounded() {
        let source = "\
def recurPower(base, exp):
    if exp == 0:
        return 1
    return base * recurPower(base, exp - 1)
";
        let out = run(source, "recurPower", &[Value::Int(3), Value::Int(4)]).unwrap();
        assert_eq!(out.value, Value::Int(81));
        let err = run(source, "recurPower", &[Value::Int(3), Value::Int(-1)]).unwrap_err();
        assert!(matches!(
            err,
            RuntimeError::RecursionLimit | RuntimeError::FuelExhausted
        ));
    }

    #[test]
    fn infinite_loops_run_out_of_fuel() {
        let source = "\
def spin(n):
    while True:
        n = n + 1
    return n
";
        let program = parse_program(source).unwrap();
        let err =
            run_function(&program, Some("spin"), &[Value::Int(0)], ExecLimits::fast()).unwrap_err();
        assert_eq!(err, RuntimeError::FuelExhausted);
    }

    #[test]
    fn print_output_is_captured_in_order() {
        let source = "\
def report(n):
    print('value', n)
    print(n * 2)
    return None
";
        let out = run(source, "report", &[Value::Int(3)]).unwrap();
        assert_eq!(out.output, vec!["value 3".to_string(), "6".to_string()]);
    }

    #[test]
    fn top_level_stdin_programs_run() {
        let source = "\
price = input()
print(price * 2)
";
        let program = parse_program(source).unwrap();
        let mut interp = Interpreter::new(&program).with_stdin(vec![Value::Int(21)]);
        let out = interp.run_top_level().unwrap();
        assert_eq!(out.output, vec!["42".to_string()]);
    }

    #[test]
    fn falling_off_the_end_returns_none() {
        let source = "\
def f(x):
    y = x + 1
";
        let out = run(source, "f", &[Value::Int(1)]).unwrap();
        assert_eq!(out.value, Value::None);
    }

    #[test]
    fn name_errors_and_index_errors_surface() {
        let source = "\
def f(x):
    return x + undefined_variable
";
        assert_eq!(
            run(source, "f", &[Value::Int(1)]).unwrap_err().kind(),
            "NameError"
        );
        let source = "\
def f(xs):
    return xs[10]
";
        assert_eq!(
            run(source, "f", &[Value::int_list([1, 2])])
                .unwrap_err()
                .kind(),
            "IndexError"
        );
    }

    #[test]
    fn wrong_arity_is_a_type_error() {
        let source = "def f(x, y):\n    return x\n";
        let err = run(source, "f", &[Value::Int(1)]).unwrap_err();
        assert_eq!(err.kind(), "TypeError");
    }

    #[test]
    fn arithmetic_semantics_match_python() {
        assert_eq!(
            binary_op(BinOp::Div, &Value::Int(7), &Value::Int(2)).unwrap(),
            Value::Int(3)
        );
        assert_eq!(
            binary_op(BinOp::Div, &Value::Int(-7), &Value::Int(2)).unwrap(),
            Value::Int(-4)
        );
        assert_eq!(
            binary_op(BinOp::Mod, &Value::Int(-7), &Value::Int(3)).unwrap(),
            Value::Int(2)
        );
        assert_eq!(
            binary_op(BinOp::Pow, &Value::Int(2), &Value::Int(10)).unwrap(),
            Value::Int(1024)
        );
        assert_eq!(
            binary_op(BinOp::Add, &Value::int_list([1]), &Value::int_list([2])).unwrap(),
            Value::int_list([1, 2])
        );
        assert_eq!(
            binary_op(BinOp::Mul, &Value::Str("ab".into()), &Value::Int(2)).unwrap(),
            Value::Str("abab".into())
        );
        assert!(binary_op(BinOp::Add, &Value::Int(1), &Value::int_list([1])).is_err());
        assert_eq!(
            binary_op(BinOp::Div, &Value::Int(1), &Value::Int(0)).unwrap_err(),
            RuntimeError::ZeroDivision
        );
    }

    #[test]
    fn comparison_semantics() {
        assert_eq!(
            compare_op(
                CmpOp::In,
                &Value::Str("a".into()),
                &Value::Str("cat".into())
            )
            .unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            compare_op(CmpOp::NotIn, &Value::Int(5), &Value::int_list([1, 2])).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            compare_op(CmpOp::Lt, &Value::Int(1), &Value::Int(2)).unwrap(),
            Value::Bool(true)
        );
        assert!(compare_op(CmpOp::Lt, &Value::Int(1), &Value::Str("a".into())).is_err());
    }

    #[test]
    fn slices_and_index_assignment() {
        let source = "\
def f(xs):
    xs[0] = 10
    return xs[1:3]
";
        let out = run(source, "f", &[Value::int_list([1, 2, 3, 4])]).unwrap();
        assert_eq!(out.value, Value::int_list([2, 3]));
    }

    #[test]
    fn hangman_style_string_manipulation() {
        let source = "\
def getGuessedWord(secretWord, lettersGuessed):
    result = ''
    for c in secretWord:
        if c in lettersGuessed:
            result = result + c
        else:
            result = result + '_'
    return result
";
        let out = run(
            source,
            "getGuessedWord",
            &[
                Value::Str("apple".into()),
                Value::List(vec![Value::Str("a".into()), Value::Str("p".into())]),
            ],
        )
        .unwrap();
        assert_eq!(out.value, Value::Str("app__".into()));
    }

    #[test]
    fn conditional_expressions_and_bool_ops() {
        let source = "\
def f(x):
    y = 1 if x > 0 else -1
    return y * x or 99
";
        assert_eq!(
            run(source, "f", &[Value::Int(5)]).unwrap().value,
            Value::Int(5)
        );
        assert_eq!(
            run(source, "f", &[Value::Int(0)]).unwrap().value,
            Value::Int(99)
        );
    }

    #[test]
    fn dict_literals_and_lookup() {
        let source = "\
def f(k):
    d = {1: 'one', 2: 'two'}
    d[3] = 'three'
    return d[k]
";
        assert_eq!(
            run(source, "f", &[Value::Int(3)]).unwrap().value,
            Value::Str("three".into())
        );
        assert_eq!(
            run(source, "f", &[Value::Int(9)]).unwrap_err().kind(),
            "KeyError"
        );
    }
}
