//! The zero-overhead contract for the coverage instrumentation: in the
//! default workspace build (what production and `cargo test` use), the
//! `afg-cov/enabled` feature must NOT be activated — not directly and not
//! through feature unification from any default workspace member.  CI
//! additionally checks the release feature graph with `cargo tree -e
//! features`; this test pins the same fact at compile time.

#[test]
// Asserting a constant is the entire point of this test: the constant
// must be `false` in every default build.
#[allow(clippy::assertions_on_constants)]
fn coverage_recording_is_compiled_out_by_default() {
    assert!(
        !afg_cov::ENABLED,
        "afg-cov/enabled leaked into the default build — some default \
         workspace member activates it unconditionally"
    );
    // And the hooks really are inert, not just flagged off.
    afg_cov::reset();
    afg_cov::cov_hit!();
    assert!(afg_cov::snapshot().is_empty());
}
