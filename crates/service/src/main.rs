//! The `afg-serve` daemon binary.
//!
//! ```text
//! cargo run --release -p afg-service --bin afg-serve -- [--addr HOST:PORT] [--threads N]
//! ```
//!
//! Runs until killed.  See the crate docs (or the README's "Grading
//! service" section) for the endpoint reference and curl examples.

use afg_service::{IoMode, ServiceConfig};

fn usage() -> String {
    "usage: afg-serve [--addr HOST:PORT] [--io epoll|threads] [--threads N]\n\
     \x20                [--idle-timeout-ms N] [--header-timeout-ms N]\n\
     \x20                [--queue-depth N] [--max-connections N] [--no-tracing]\n\
     \x20                [--slow-grade-ms N] [--trace-ring N]\n\
     \n\
     --addr HOST:PORT  bind address (default 127.0.0.1:8080; port 0 = ephemeral)\n\
     --io MODE         I/O core: 'epoll' (reactor + CPU worker pool; default on\n\
     \x20                Linux) or 'threads' (thread-per-connection)\n\
     --threads N       worker threads (default 16): CPU workers under epoll,\n\
     \x20                connection-serving workers under threads\n\
     --idle-timeout-ms N    close idle keep-alive connections after N ms\n\
     \x20                (default 5000)\n\
     --header-timeout-ms N  close connections that dribble a request for more\n\
     \x20                than N ms — slow-loris guard, epoll mode (default 10000)\n\
     --queue-depth N   parsed-request queue bound before 503 shedding, epoll\n\
     \x20                mode (default 1024)\n\
     --max-connections N    open-connection cap before 503 shedding, epoll mode\n\
     \x20                (default 16384)\n\
     --no-tracing      disable per-request span traces (/debug/traces, X-Afg-Trace-Id)\n\
     --slow-grade-ms N log the span tree of grades slower than N ms to stderr\n\
     \x20                (default 1000; 0 disables the slow-grade log)\n\
     --trace-ring N    recent traces retained for /debug/traces (default 64)"
        .to_string()
}

fn main() {
    let mut config = ServiceConfig {
        addr: "127.0.0.1:8080".to_string(),
        ..ServiceConfig::default()
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--addr" => match iter.next() {
                Some(addr) => config.addr = addr.clone(),
                None => exit_usage("option '--addr' requires a value"),
            },
            "--io" => match iter.next().and_then(|v| IoMode::parse(v)) {
                Some(io) => config.io = io,
                None => exit_usage("option '--io' expects 'epoll' or 'threads'"),
            },
            "--threads" => match iter.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(threads) if threads > 0 => config.threads = threads,
                _ => exit_usage("option '--threads' expects a positive integer"),
            },
            "--idle-timeout-ms" => match iter.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(ms) if ms > 0 => {
                    config.keep_alive_timeout = std::time::Duration::from_millis(ms)
                }
                _ => exit_usage("option '--idle-timeout-ms' expects a positive integer"),
            },
            "--header-timeout-ms" => match iter.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(ms) if ms > 0 => config.header_timeout = std::time::Duration::from_millis(ms),
                _ => exit_usage("option '--header-timeout-ms' expects a positive integer"),
            },
            "--queue-depth" => match iter.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(depth) if depth > 0 => config.queue_depth = depth,
                _ => exit_usage("option '--queue-depth' expects a positive integer"),
            },
            "--max-connections" => match iter.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(cap) if cap > 0 => config.max_connections = cap,
                _ => exit_usage("option '--max-connections' expects a positive integer"),
            },
            "--no-tracing" => config.tracing = false,
            "--slow-grade-ms" => match iter.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(0) => config.slow_grade = None,
                Some(ms) => config.slow_grade = Some(std::time::Duration::from_millis(ms)),
                None => exit_usage("option '--slow-grade-ms' expects a non-negative integer"),
            },
            "--trace-ring" => match iter.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(cap) if cap > 0 => config.trace_ring = cap,
                _ => exit_usage("option '--trace-ring' expects a positive integer"),
            },
            "--help" | "-h" => {
                println!("{}", usage());
                return;
            }
            other => exit_usage(&format!("unknown option '{other}'")),
        }
    }

    let io = config.io;
    match afg_service::start(config) {
        Ok(handle) => {
            println!(
                "afg-serve listening on http://{} (io={}; POST /problems to register an assignment)",
                handle.addr(),
                io.name()
            );
            handle.wait();
        }
        Err(err) => {
            eprintln!("failed to start: {err}");
            std::process::exit(1);
        }
    }
}

fn exit_usage(message: &str) -> ! {
    eprintln!("{message}\n\n{}", usage());
    std::process::exit(2)
}
