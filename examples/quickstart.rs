//! Quickstart: grade one student submission against a reference
//! implementation with a three-rule error model.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use autofeedback::eml::parse_error_model;
use autofeedback::{Autograder, GradeOutcome, GraderConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The instructor writes a reference implementation.  Parameter types are
    // declared with name suffixes (`_list_int`), as in the paper.
    let reference = "\
def computeDeriv(poly_list_int):
    result = []
    for i in range(len(poly_list_int)):
        result += [i * poly_list_int[i]]
    if len(poly_list_int) == 1:
        return result
    else:
        return result[1:]
";

    // ... and an error model in EML (the simplified model of paper §2.1).
    let model = parse_error_model(
        "computeDeriv-simple",
        "\
RETR:  return a       ->  [0]
RANR:  range(a0, a1)  ->  range(a0 + 1, a1)
EQF:   a0 == a1       ->  False
",
    )?;

    let grader = Autograder::new(reference, "computeDeriv", model, GraderConfig::default())?;

    // A student who starts the iteration at 0 and forgets the [0] base case.
    let submission = "\
def computeDeriv(poly):
    deriv = []
    if len(poly) == 1:
        return deriv
    for e in range(0, len(poly)):
        deriv.append(poly[e] * e)
    return deriv
";

    match grader.grade_source(submission) {
        GradeOutcome::Correct => println!("The submission is correct."),
        GradeOutcome::Feedback(feedback) => print!("{feedback}"),
        GradeOutcome::CannotFix => println!("The error model cannot repair this submission."),
        GradeOutcome::Timeout => println!("The synthesis budget was exhausted."),
        GradeOutcome::SyntaxError(err) => println!("Syntax error: {err}"),
    }
    Ok(())
}
