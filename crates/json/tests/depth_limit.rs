//! Pinned regression for recursion-depth exhaustion: `parse_json` is
//! recursive-descent, so without the `MAX_DEPTH` guard a payload of a
//! hundred thousand `[` bytes would abort the service with a stack
//! overflow.  The guard must fire as a structured [`JsonError`] and must
//! not reject legitimately nested documents.

use afg_json::parse_json;

#[test]
fn deeply_nested_arrays_are_rejected_not_fatal() {
    let bomb = format!("{}1{}", "[".repeat(100_000), "]".repeat(100_000));
    let err = parse_json(&bomb).expect_err("depth bomb must be rejected");
    assert!(err.to_string().contains("nesting too deep"), "got {err}");
}

#[test]
fn deeply_nested_objects_are_rejected_not_fatal() {
    let mut bomb = String::new();
    for _ in 0..100_000 {
        bomb.push_str("{\"a\":");
    }
    bomb.push('1');
    bomb.push_str(&"}".repeat(100_000));
    let err = parse_json(&bomb).expect_err("depth bomb must be rejected");
    assert!(err.to_string().contains("nesting too deep"), "got {err}");
}

#[test]
fn alternating_array_object_nesting_is_rejected_not_fatal() {
    // Mixed nesting exercises both recursive arms together.
    let mut bomb = String::new();
    for _ in 0..50_000 {
        bomb.push_str("[{\"a\":");
    }
    bomb.push_str("null");
    for _ in 0..50_000 {
        bomb.push_str("}]");
    }
    let err = parse_json(&bomb).expect_err("depth bomb must be rejected");
    assert!(err.to_string().contains("nesting too deep"), "got {err}");
}

#[test]
fn nesting_under_the_limit_parses() {
    // 100 levels is comfortably under MAX_DEPTH (128) and far past any
    // document the service actually produces.
    let doc = format!("{}0{}", "[".repeat(100), "]".repeat(100));
    assert!(parse_json(&doc).is_ok());
}
