//! AST traversal and rewriting utilities.
//!
//! These helpers back the error-model transformation (`afg-eml`), which needs
//! to (a) measure syntax-tree sizes to check rule well-formedness
//! (paper Definition 1), (b) enumerate the variables in scope for the `?a`
//! shorthand, and (c) rewrite every expression position of a program.

use crate::{Expr, FuncDef, Program, Stmt, StmtKind, Target};
use std::collections::BTreeSet;

/// Number of nodes in an expression's syntax tree.
pub fn expr_size(expr: &Expr) -> usize {
    let mut size = 1;
    for child in expr_children(expr) {
        size += expr_size(child);
    }
    size
}

/// Number of nodes in a statement's syntax tree (statements, targets and
/// expressions all count as one node each).
pub fn stmt_size(stmt: &Stmt) -> usize {
    let mut size = 1;
    match &stmt.kind {
        StmtKind::Assign(target, value) => {
            size += target_size(target) + expr_size(value);
        }
        StmtKind::AugAssign(target, _, value) => {
            size += target_size(target) + expr_size(value);
        }
        StmtKind::ExprStmt(expr) => size += expr_size(expr),
        StmtKind::If(cond, then_body, else_body) => {
            size += expr_size(cond);
            size += then_body.iter().map(stmt_size).sum::<usize>();
            size += else_body.iter().map(stmt_size).sum::<usize>();
        }
        StmtKind::While(cond, body) => {
            size += expr_size(cond);
            size += body.iter().map(stmt_size).sum::<usize>();
        }
        StmtKind::For(_, iter, body) => {
            size += 1 + expr_size(iter);
            size += body.iter().map(stmt_size).sum::<usize>();
        }
        StmtKind::Return(Some(expr)) => size += expr_size(expr),
        StmtKind::Print(args) => size += args.iter().map(expr_size).sum::<usize>(),
        StmtKind::Return(None) | StmtKind::Pass | StmtKind::Break | StmtKind::Continue => {}
    }
    size
}

/// Number of nodes in a function's syntax tree.
pub fn func_size(func: &FuncDef) -> usize {
    1 + func.params.len() + func.body.iter().map(stmt_size).sum::<usize>()
}

fn target_size(target: &Target) -> usize {
    match target {
        Target::Var(_) => 1,
        Target::Index(base, index) => 1 + expr_size(base) + expr_size(index),
        Target::Tuple(items) => 1 + items.iter().map(target_size).sum::<usize>(),
    }
}

/// The direct sub-expressions of an expression, in evaluation order.
pub fn expr_children(expr: &Expr) -> Vec<&Expr> {
    match expr {
        Expr::Int(_) | Expr::Bool(_) | Expr::Str(_) | Expr::None | Expr::Var(_) => vec![],
        Expr::List(items) | Expr::Tuple(items) | Expr::Call(_, items) => items.iter().collect(),
        Expr::Dict(items) => items.iter().flat_map(|(k, v)| [k, v]).collect(),
        Expr::Index(a, b) => vec![a, b],
        Expr::Slice(base, lower, upper) => {
            let mut children: Vec<&Expr> = vec![base];
            if let Some(l) = lower {
                children.push(l);
            }
            if let Some(u) = upper {
                children.push(u);
            }
            children
        }
        Expr::BinOp(_, a, b) | Expr::Compare(_, a, b) | Expr::BoolExpr(_, a, b) => vec![a, b],
        Expr::UnaryOp(_, a) => vec![a],
        Expr::MethodCall(recv, _, args) => {
            let mut children: Vec<&Expr> = vec![recv];
            children.extend(args.iter());
            children
        }
        Expr::IfExpr(a, b, c) => vec![a, b, c],
    }
}

/// All variable names referenced by an expression, in first-occurrence order
/// without duplicates.
pub fn expr_vars(expr: &Expr) -> Vec<String> {
    let mut seen = BTreeSet::new();
    let mut ordered = Vec::new();
    collect_expr_vars(expr, &mut seen, &mut ordered);
    ordered
}

fn collect_expr_vars(expr: &Expr, seen: &mut BTreeSet<String>, ordered: &mut Vec<String>) {
    if let Expr::Var(name) = expr {
        if seen.insert(name.clone()) {
            ordered.push(name.clone());
        }
    }
    for child in expr_children(expr) {
        collect_expr_vars(child, seen, ordered);
    }
}

/// All variable names a function mentions: parameters, assignment targets and
/// loop variables, in first-occurrence order.  This is the scope used to
/// instantiate the `?a` shorthand of EML rules ("any variable of the same
/// type in scope"); because MPY is dynamically typed we over-approximate with
/// every name bound in the function.
pub fn func_scope_vars(func: &FuncDef) -> Vec<String> {
    let mut seen = BTreeSet::new();
    let mut ordered = Vec::new();
    for param in &func.params {
        if seen.insert(param.name.clone()) {
            ordered.push(param.name.clone());
        }
    }
    collect_bound_vars(&func.body, &mut seen, &mut ordered);
    ordered
}

fn collect_bound_vars(body: &[Stmt], seen: &mut BTreeSet<String>, ordered: &mut Vec<String>) {
    for stmt in body {
        match &stmt.kind {
            StmtKind::Assign(target, _) | StmtKind::AugAssign(target, _, _) => {
                for name in target.bound_names() {
                    if seen.insert(name.clone()) {
                        ordered.push(name);
                    }
                }
            }
            StmtKind::For(var, _, inner) => {
                if seen.insert(var.clone()) {
                    ordered.push(var.clone());
                }
                collect_bound_vars(inner, seen, ordered);
            }
            StmtKind::If(_, then_body, else_body) => {
                collect_bound_vars(then_body, seen, ordered);
                collect_bound_vars(else_body, seen, ordered);
            }
            StmtKind::While(_, inner) => collect_bound_vars(inner, seen, ordered),
            _ => {}
        }
    }
}

/// Applies `f` to every statement of a function body, recursing into nested
/// blocks (pre-order).
pub fn visit_stmts<'a>(body: &'a [Stmt], f: &mut impl FnMut(&'a Stmt)) {
    for stmt in body {
        f(stmt);
        match &stmt.kind {
            StmtKind::If(_, then_body, else_body) => {
                visit_stmts(then_body, f);
                visit_stmts(else_body, f);
            }
            StmtKind::While(_, inner) | StmtKind::For(_, _, inner) => visit_stmts(inner, f),
            _ => {}
        }
    }
}

/// Applies `f` to every expression of a statement block, including nested
/// statements (pre-order over statements, then pre-order over each
/// expression tree).
pub fn visit_exprs<'a>(body: &'a [Stmt], f: &mut impl FnMut(&'a Expr)) {
    visit_stmts(body, &mut |stmt| {
        for expr in stmt_exprs(&stmt.kind) {
            visit_expr_tree(expr, f);
        }
    });
}

fn visit_expr_tree<'a>(expr: &'a Expr, f: &mut impl FnMut(&'a Expr)) {
    f(expr);
    for child in expr_children(expr) {
        visit_expr_tree(child, f);
    }
}

/// The top-level expressions appearing directly in a statement (not recursing
/// into nested statement blocks).
pub fn stmt_exprs(kind: &StmtKind) -> Vec<&Expr> {
    match kind {
        StmtKind::Assign(target, value) | StmtKind::AugAssign(target, _, value) => {
            let mut exprs = target_exprs(target);
            exprs.push(value);
            exprs
        }
        StmtKind::ExprStmt(expr) => vec![expr],
        StmtKind::If(cond, _, _) | StmtKind::While(cond, _) => vec![cond],
        StmtKind::For(_, iter, _) => vec![iter],
        StmtKind::Return(Some(expr)) => vec![expr],
        StmtKind::Print(args) => args.iter().collect(),
        StmtKind::Return(None) | StmtKind::Pass | StmtKind::Break | StmtKind::Continue => vec![],
    }
}

fn target_exprs(target: &Target) -> Vec<&Expr> {
    match target {
        Target::Var(_) => vec![],
        Target::Index(base, index) => vec![base, index],
        Target::Tuple(items) => items.iter().flat_map(target_exprs).collect(),
    }
}

/// Total number of statements in a program (used to report the paper's
/// "Median LOC" column, which counts statement lines).
pub fn program_stmt_count(program: &Program) -> usize {
    let mut count = 0;
    for func in &program.funcs {
        count += 1;
        visit_stmts(&func.body, &mut |_| count += 1);
    }
    visit_stmts(&program.top_level, &mut |_| count += 1);
    count
}

/// Rewrites an expression bottom-up: children are rewritten first, then `f`
/// is applied to the rebuilt node.
pub fn map_expr(expr: &Expr, f: &mut impl FnMut(Expr) -> Expr) -> Expr {
    let rebuilt = match expr {
        Expr::Int(_) | Expr::Bool(_) | Expr::Str(_) | Expr::None | Expr::Var(_) => expr.clone(),
        Expr::List(items) => Expr::List(items.iter().map(|e| map_expr(e, f)).collect()),
        Expr::Tuple(items) => Expr::Tuple(items.iter().map(|e| map_expr(e, f)).collect()),
        Expr::Dict(items) => Expr::Dict(
            items
                .iter()
                .map(|(k, v)| (map_expr(k, f), map_expr(v, f)))
                .collect(),
        ),
        Expr::Index(a, b) => Expr::Index(Box::new(map_expr(a, f)), Box::new(map_expr(b, f))),
        Expr::Slice(base, lower, upper) => Expr::Slice(
            Box::new(map_expr(base, f)),
            lower.as_ref().map(|l| Box::new(map_expr(l, f))),
            upper.as_ref().map(|u| Box::new(map_expr(u, f))),
        ),
        Expr::BinOp(op, a, b) => {
            Expr::BinOp(*op, Box::new(map_expr(a, f)), Box::new(map_expr(b, f)))
        }
        Expr::UnaryOp(op, a) => Expr::UnaryOp(*op, Box::new(map_expr(a, f))),
        Expr::Compare(op, a, b) => {
            Expr::Compare(*op, Box::new(map_expr(a, f)), Box::new(map_expr(b, f)))
        }
        Expr::BoolExpr(op, a, b) => {
            Expr::BoolExpr(*op, Box::new(map_expr(a, f)), Box::new(map_expr(b, f)))
        }
        Expr::Call(name, args) => {
            Expr::Call(name.clone(), args.iter().map(|e| map_expr(e, f)).collect())
        }
        Expr::MethodCall(recv, name, args) => Expr::MethodCall(
            Box::new(map_expr(recv, f)),
            name.clone(),
            args.iter().map(|e| map_expr(e, f)).collect(),
        ),
        Expr::IfExpr(a, b, c) => Expr::IfExpr(
            Box::new(map_expr(a, f)),
            Box::new(map_expr(b, f)),
            Box::new(map_expr(c, f)),
        ),
    };
    f(rebuilt)
}

/// Rewrites every expression position of a statement block in place —
/// nested blocks and assignment-target subscripts included — applying
/// [`map_expr`] at each position.  The shared walker behind constant
/// erasure (`crate::canon::skeletonize`) and the test suites' constant
/// perturbations, so the set of "expression positions" cannot drift
/// between them.
pub fn map_exprs_in_stmts<F: FnMut(Expr) -> Expr>(body: &mut [Stmt], f: &mut F) {
    for stmt in body.iter_mut() {
        match &mut stmt.kind {
            StmtKind::Assign(target, value) => {
                map_exprs_in_target(target, f);
                *value = map_expr(value, f);
            }
            StmtKind::AugAssign(target, _, value) => {
                map_exprs_in_target(target, f);
                *value = map_expr(value, f);
            }
            StmtKind::ExprStmt(value) => *value = map_expr(value, f),
            StmtKind::If(cond, then_body, else_body) => {
                *cond = map_expr(cond, f);
                map_exprs_in_stmts(then_body, f);
                map_exprs_in_stmts(else_body, f);
            }
            StmtKind::While(cond, inner) => {
                *cond = map_expr(cond, f);
                map_exprs_in_stmts(inner, f);
            }
            StmtKind::For(_, iter, inner) => {
                *iter = map_expr(iter, f);
                map_exprs_in_stmts(inner, f);
            }
            StmtKind::Return(Some(value)) => *value = map_expr(value, f),
            StmtKind::Print(args) => {
                for arg in args.iter_mut() {
                    *arg = map_expr(arg, f);
                }
            }
            StmtKind::Return(None) | StmtKind::Pass | StmtKind::Break | StmtKind::Continue => {}
        }
    }
}

fn map_exprs_in_target<F: FnMut(Expr) -> Expr>(target: &mut Target, f: &mut F) {
    match target {
        Target::Var(_) => {}
        Target::Index(base, index) => {
            *base = map_expr(base, f);
            *index = map_expr(index, f);
        }
        Target::Tuple(items) => {
            for item in items {
                map_exprs_in_target(item, f);
            }
        }
    }
}

/// Substitutes variables by expressions (capture is not a concern in MPY
/// because there are no binders inside expressions).
pub fn substitute_vars(expr: &Expr, subst: &dyn Fn(&str) -> Option<Expr>) -> Expr {
    map_expr(expr, &mut |e| match &e {
        Expr::Var(name) => subst(name).unwrap_or(e.clone()),
        _ => e,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{BinOp, CmpOp};
    use crate::types::MpyType;
    use crate::Param;

    fn sample_func() -> FuncDef {
        // def f(poly):
        //     deriv = []
        //     for e in range(0, len(poly)):
        //         deriv.append(poly[e] * e)
        //     return deriv
        FuncDef {
            name: "f".into(),
            params: vec![Param::new("poly", MpyType::list_int())],
            body: vec![
                Stmt::new(
                    2,
                    StmtKind::Assign(Target::Var("deriv".into()), Expr::List(vec![])),
                ),
                Stmt::new(
                    3,
                    StmtKind::For(
                        "e".into(),
                        Expr::call(
                            "range",
                            vec![Expr::Int(0), Expr::call("len", vec![Expr::var("poly")])],
                        ),
                        vec![Stmt::new(
                            4,
                            StmtKind::ExprStmt(Expr::MethodCall(
                                Box::new(Expr::var("deriv")),
                                "append".into(),
                                vec![Expr::binop(
                                    BinOp::Mul,
                                    Expr::index(Expr::var("poly"), Expr::var("e")),
                                    Expr::var("e"),
                                )],
                            )),
                        )],
                    ),
                ),
                Stmt::new(5, StmtKind::Return(Some(Expr::var("deriv")))),
            ],
            line: 1,
        }
    }

    #[test]
    fn sizes_count_every_node() {
        let e = Expr::binop(BinOp::Mul, Expr::Int(2), Expr::var("x"));
        assert_eq!(expr_size(&e), 3);
        let e = Expr::compare(
            CmpOp::Lt,
            Expr::index(Expr::var("x"), Expr::var("i")),
            Expr::index(Expr::var("y"), Expr::var("j")),
        );
        assert_eq!(expr_size(&e), 7);
    }

    #[test]
    fn scope_vars_include_params_targets_and_loop_vars() {
        let vars = func_scope_vars(&sample_func());
        assert_eq!(
            vars,
            vec!["poly".to_string(), "deriv".to_string(), "e".to_string()]
        );
    }

    #[test]
    fn expr_vars_are_deduplicated_in_order() {
        let e = Expr::binop(
            BinOp::Add,
            Expr::binop(BinOp::Mul, Expr::var("x"), Expr::var("y")),
            Expr::var("x"),
        );
        assert_eq!(expr_vars(&e), vec!["x".to_string(), "y".to_string()]);
    }

    #[test]
    fn visit_exprs_reaches_nested_blocks() {
        let func = sample_func();
        let mut range_calls = 0;
        visit_exprs(&func.body, &mut |e| {
            if matches!(e, Expr::Call(name, _) if name == "range") {
                range_calls += 1;
            }
        });
        assert_eq!(range_calls, 1);
        let mut total = 0;
        visit_exprs(&func.body, &mut |_| total += 1);
        assert!(
            total > 10,
            "expected to visit every sub-expression, saw {total}"
        );
    }

    #[test]
    fn map_expr_rewrites_bottom_up() {
        let e = Expr::binop(BinOp::Add, Expr::Int(1), Expr::Int(2));
        let doubled = map_expr(&e, &mut |node| match node {
            Expr::Int(v) => Expr::Int(v * 10),
            other => other,
        });
        assert_eq!(
            doubled,
            Expr::binop(BinOp::Add, Expr::Int(10), Expr::Int(20))
        );
    }

    #[test]
    fn substitution_replaces_only_requested_vars() {
        let e = Expr::binop(BinOp::Add, Expr::var("x"), Expr::var("y"));
        let replaced = substitute_vars(&e, &|name| (name == "x").then_some(Expr::Int(7)));
        assert_eq!(
            replaced,
            Expr::binop(BinOp::Add, Expr::Int(7), Expr::var("y"))
        );
    }

    #[test]
    fn program_stmt_count_counts_defs_and_statements() {
        let mut program = Program::new();
        program.funcs.push(sample_func());
        // def + assign + for + exprstmt + return = 5
        assert_eq!(program_stmt_count(&program), 5);
    }
}
