//! `BatchGrader` — parallel grading of a submission corpus.
//!
//! A classroom (or a MOOC) grades thousands of submissions against the
//! *same* assignment: one reference implementation, one error model, one
//! cached equivalence oracle.  All of that state is read-only during
//! grading, so a batch parallelises embarrassingly well: a pool of workers
//! (plain `std::thread`, no external dependencies) pulls submissions from a
//! shared queue, grades each one with a shared `&Autograder`, and reports
//! per-worker statistics that are merged when the batch completes.
//!
//! Results come back in submission order regardless of which worker graded
//! what, so serial and parallel runs are interchangeable whenever grading
//! itself is deterministic (searches bounded by candidate count rather
//! than wall-clock time) — a property the experiment harness (`afg-bench`)
//! relies on and tests.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use crate::cache::{FingerprintCache, GradeDisposition};
use crate::cluster::ClusterIndex;
use crate::grader::{Autograder, GradeOutcome};

/// The result of grading one submission within a batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchItem {
    /// The grading outcome.
    pub outcome: GradeOutcome,
    /// Wall-clock time spent grading this submission.
    pub elapsed: Duration,
    /// Index of the worker that graded it (0 for the serial path).
    pub worker: usize,
    /// Whether the fingerprint cache answered (`None` when the batch ran
    /// without a cache).
    pub cache_hit: Option<bool>,
    /// Whether a cluster repair transfer was tried, and whether the
    /// hypothesis verified (`None` when no transfer was attempted — see
    /// [`GradeDisposition::transfer`]).
    pub transfer: Option<bool>,
}

/// Statistics aggregated by one worker over the submissions it graded.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Number of submissions this worker graded.
    pub graded: usize,
    /// Total time this worker spent grading (its busy time).
    pub busy: Duration,
    /// Submissions that failed to parse.
    pub syntax_errors: usize,
    /// Submissions equivalent to the reference.
    pub correct: usize,
    /// Incorrect submissions repaired by the error model.
    pub fixed: usize,
    /// Incorrect submissions the model could not repair.
    pub cannot_fix: usize,
    /// Submissions whose search budget ran out.
    pub timeouts: usize,
    /// Submissions answered from the fingerprint cache (0 when grading
    /// without one).
    pub cache_hits: usize,
    /// Submissions that consulted the fingerprint cache and missed (0 when
    /// grading without one).
    pub cache_misses: usize,
    /// Cluster warm starts the searches actually tried (0 when grading
    /// without a cluster index).
    pub transfer_attempts: usize,
    /// Tried warm starts whose hypothesis verified.
    pub transfer_hits: usize,
    /// Verification sweeps performed by this worker's fresh repairs
    /// (cache replays do no verification work and are not counted).
    pub sweeps: u64,
    /// Candidate executions across those sweeps — one per
    /// (assignment, input) pair the equivalence sessions ran.
    pub sweep_inputs: u64,
    /// Whether any of this worker's searches ran candidates on the
    /// compiled bytecode VM rather than the tree walker.
    pub sweep_compiled: bool,
}

impl WorkerStats {
    /// `cache`: `None` when no cache was consulted, otherwise whether the
    /// lookup hit; `transfer` likewise for cluster repair transfer.
    fn record(
        &mut self,
        outcome: &GradeOutcome,
        elapsed: Duration,
        cache: Option<bool>,
        transfer: Option<bool>,
    ) {
        self.graded += 1;
        self.busy += elapsed;
        match outcome {
            GradeOutcome::SyntaxError(_) => self.syntax_errors += 1,
            GradeOutcome::Correct => self.correct += 1,
            GradeOutcome::Feedback(feedback) => {
                self.fixed += 1;
                // A cache hit replays the donor's recorded statistics; the
                // sweep counters track work *this* worker performed, so
                // only fresh grades contribute.
                if cache != Some(true) {
                    self.sweeps += feedback.stats.sweeps;
                    self.sweep_inputs += feedback.stats.sweep_inputs;
                    self.sweep_compiled |= feedback.stats.sweep_compiled;
                }
            }
            GradeOutcome::CannotFix => self.cannot_fix += 1,
            GradeOutcome::Timeout => self.timeouts += 1,
        }
        match cache {
            Some(true) => self.cache_hits += 1,
            Some(false) => self.cache_misses += 1,
            None => {}
        }
        match transfer {
            Some(true) => {
                self.transfer_attempts += 1;
                self.transfer_hits += 1;
            }
            Some(false) => self.transfer_attempts += 1,
            None => {}
        }
    }

    /// Merges another worker's counters into this one.
    pub fn merge(&mut self, other: &WorkerStats) {
        self.graded += other.graded;
        self.busy += other.busy;
        self.syntax_errors += other.syntax_errors;
        self.correct += other.correct;
        self.fixed += other.fixed;
        self.cannot_fix += other.cannot_fix;
        self.timeouts += other.timeouts;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.transfer_attempts += other.transfer_attempts;
        self.transfer_hits += other.transfer_hits;
        self.sweeps += other.sweeps;
        self.sweep_inputs += other.sweep_inputs;
        self.sweep_compiled |= other.sweep_compiled;
    }
}

/// The outcome of grading a whole corpus.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Per-submission results, in submission order.
    pub items: Vec<BatchItem>,
    /// Per-worker statistics, indexed by worker id.
    pub worker_stats: Vec<WorkerStats>,
    /// Wall-clock time for the whole batch.
    pub wall_time: Duration,
}

impl BatchReport {
    /// The merged statistics across all workers.
    pub fn totals(&self) -> WorkerStats {
        let mut totals = WorkerStats::default();
        for stats in &self.worker_stats {
            totals.merge(stats);
        }
        totals
    }

    /// Total busy time across workers — with N workers, a healthy batch has
    /// `wall_time` approaching `busy_time / N`.
    pub fn busy_time(&self) -> Duration {
        self.worker_stats.iter().map(|s| s.busy).sum()
    }
}

/// A parallel grading engine over a worker pool.
///
/// The pool size is fixed at construction; grading a corpus spawns that many
/// scoped threads (none for a single worker, which runs inline) sharing the
/// read-only [`Autograder`] and a lock-free work queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchGrader {
    workers: usize,
}

impl BatchGrader {
    /// Creates an engine with an explicit worker count (clamped to ≥ 1).
    pub fn new(workers: usize) -> BatchGrader {
        BatchGrader {
            workers: workers.max(1),
        }
    }

    /// Creates an engine sized to the machine's available parallelism.
    pub fn with_available_parallelism() -> BatchGrader {
        BatchGrader::new(std::thread::available_parallelism().map_or(1, |n| n.get()))
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Grades every submission source against the shared grader.
    ///
    /// Results are returned in submission order; each item records which
    /// worker graded it and how long it took.
    pub fn grade_sources<S: AsRef<str> + Sync>(
        &self,
        grader: &Autograder,
        sources: &[S],
    ) -> BatchReport {
        self.grade_sources_with_cache(grader, sources, None)
    }

    /// Grades every submission source, optionally through a shared
    /// [`FingerprintCache`]; with a cache, per-worker stats additionally
    /// count hits and misses.
    pub fn grade_sources_with_cache<S: AsRef<str> + Sync>(
        &self,
        grader: &Autograder,
        sources: &[S],
        cache: Option<&FingerprintCache>,
    ) -> BatchReport {
        self.grade_sources_clustered(grader, sources, cache, None)
    }

    /// Grades every submission source through the cache *and* a cluster
    /// index: cache misses whose skeleton matches an already-repaired
    /// cluster-mate warm-start their search with the transferred repair
    /// (see [`ClusterIndex`]).  A cluster index without a cache is
    /// meaningless (the clustered path lives behind the cache lookup), so
    /// `clusters` is ignored when `cache` is `None`.
    pub fn grade_sources_clustered<S: AsRef<str> + Sync>(
        &self,
        grader: &Autograder,
        sources: &[S],
        cache: Option<&FingerprintCache>,
        clusters: Option<&ClusterIndex>,
    ) -> BatchReport {
        let start = Instant::now();
        if self.workers == 1 || sources.len() <= 1 {
            return self.grade_serial(grader, sources, cache, clusters, start);
        }

        let workers = self.workers.min(sources.len());
        let next = AtomicUsize::new(0);
        let mut per_worker: Vec<(Vec<(usize, BatchItem)>, WorkerStats)> = Vec::new();

        // Propagate the caller's trace (if one is installed) into the
        // worker threads, so per-submission spans land under the batch
        // request's span tree instead of disappearing.
        let trace = afg_obs::current_handle();

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for worker in 0..workers {
                let next = &next;
                let trace = trace.clone();
                handles.push(scope.spawn(move || {
                    let _trace_guard = trace.map(afg_obs::TraceHandle::install);
                    let mut worker_span = afg_obs::span("worker");
                    worker_span.attr("index", worker.to_string());
                    let mut items: Vec<(usize, BatchItem)> = Vec::new();
                    let mut stats = WorkerStats::default();
                    loop {
                        let index = next.fetch_add(1, Ordering::Relaxed);
                        if index >= sources.len() {
                            break;
                        }
                        let item_start = Instant::now();
                        let (outcome, disposition) =
                            grade_one(grader, sources[index].as_ref(), cache, clusters);
                        let elapsed = item_start.elapsed();
                        let hit = cache.map(|_| disposition.cache_hit);
                        stats.record(&outcome, elapsed, hit, disposition.transfer);
                        items.push((
                            index,
                            BatchItem {
                                outcome,
                                elapsed,
                                worker,
                                cache_hit: hit,
                                transfer: disposition.transfer,
                            },
                        ));
                    }
                    (items, stats)
                }));
            }
            per_worker.extend(
                handles
                    .into_iter()
                    .map(|h| h.join().expect("worker panicked")),
            );
        });

        let mut slots: Vec<Option<BatchItem>> = vec![None; sources.len()];
        let mut worker_stats = Vec::with_capacity(workers);
        for (items, stats) in per_worker {
            for (index, item) in items {
                slots[index] = Some(item);
            }
            worker_stats.push(stats);
        }
        BatchReport {
            items: slots
                .into_iter()
                .map(|s| s.expect("every index graded"))
                .collect(),
            worker_stats,
            wall_time: start.elapsed(),
        }
    }

    fn grade_serial<S: AsRef<str> + Sync>(
        &self,
        grader: &Autograder,
        sources: &[S],
        cache: Option<&FingerprintCache>,
        clusters: Option<&ClusterIndex>,
        start: Instant,
    ) -> BatchReport {
        let mut stats = WorkerStats::default();
        let items = sources
            .iter()
            .map(|source| {
                let item_start = Instant::now();
                let (outcome, disposition) = grade_one(grader, source.as_ref(), cache, clusters);
                let elapsed = item_start.elapsed();
                let hit = cache.map(|_| disposition.cache_hit);
                stats.record(&outcome, elapsed, hit, disposition.transfer);
                BatchItem {
                    outcome,
                    elapsed,
                    worker: 0,
                    cache_hit: hit,
                    transfer: disposition.transfer,
                }
            })
            .collect();
        BatchReport {
            items,
            worker_stats: vec![stats],
            wall_time: start.elapsed(),
        }
    }
}

/// Grades one submission, through the cache (and cluster index) when
/// provided.
fn grade_one(
    grader: &Autograder,
    source: &str,
    cache: Option<&FingerprintCache>,
    clusters: Option<&ClusterIndex>,
) -> (GradeOutcome, GradeDisposition) {
    match cache {
        Some(cache) => grader.grade_source_clustered(source, cache, clusters),
        None => (grader.grade_source(source), GradeDisposition::default()),
    }
}

impl Default for BatchGrader {
    fn default() -> BatchGrader {
        BatchGrader::with_available_parallelism()
    }
}

// The engine shares one `&Autograder` across worker threads; this line makes
// "the grader is immutable shared state" a compile-time guarantee.
const _: fn() = || {
    fn assert_sync<T: Sync>() {}
    assert_sync::<Autograder>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grader::GraderConfig;
    use afg_eml::library;

    const REFERENCE: &str = "\
def computeDeriv(poly_list_int):
    result = []
    for i in range(len(poly_list_int)):
        result += [i * poly_list_int[i]]
    if len(poly_list_int) == 1:
        return result
    else:
        return result[1:]
";

    fn grader() -> Autograder {
        // Candidate-bounded search budget: wall-clock budgets can flip a
        // submission between CannotFix and Timeout under CPU contention,
        // which would break the serial/parallel equality assertions below.
        let config = GraderConfig {
            synthesis: afg_synth::SynthesisConfig {
                max_cost: 3,
                max_candidates: 2_000,
                time_budget: std::time::Duration::from_secs(600),
            },
            ..GraderConfig::fast()
        };
        Autograder::new(
            REFERENCE,
            "computeDeriv",
            library::compute_deriv_model(),
            config,
        )
        .unwrap()
    }

    fn sample_sources() -> Vec<String> {
        let correct = "def computeDeriv(poly):\n    if len(poly) == 1:\n        return [0]\n    d = []\n    for i in range(1, len(poly)):\n        d.append(i * poly[i])\n    return d\n";
        let off_by_one = "def computeDeriv(poly):\n    if len(poly) == 1:\n        return [0]\n    d = []\n    for i in range(0, len(poly)):\n        d.append(i * poly[i])\n    return d\n";
        let syntax = "def computeDeriv(poly)\n    return poly\n";
        let hopeless = "def computeDeriv(poly):\n    return 42\n";
        let mut sources = Vec::new();
        for _ in 0..3 {
            sources.push(correct.to_string());
            sources.push(off_by_one.to_string());
            sources.push(syntax.to_string());
            sources.push(hopeless.to_string());
        }
        sources
    }

    #[test]
    fn serial_and_parallel_agree_in_submission_order() {
        let grader = grader();
        let sources = sample_sources();
        let serial = BatchGrader::new(1).grade_sources(&grader, &sources);
        let parallel = BatchGrader::new(4).grade_sources(&grader, &sources);
        assert_eq!(serial.items.len(), sources.len());
        assert_eq!(parallel.items.len(), sources.len());
        for (i, (s, p)) in serial.items.iter().zip(parallel.items.iter()).enumerate() {
            // Outcomes match position by position; timing and worker ids
            // legitimately differ.
            match (&s.outcome, &p.outcome) {
                (GradeOutcome::Feedback(a), GradeOutcome::Feedback(b)) => {
                    assert_eq!(a.cost, b.cost, "submission {i}");
                    assert_eq!(a.corrections, b.corrections, "submission {i}");
                }
                (a, b) => assert_eq!(a, b, "submission {i}"),
            }
        }
    }

    #[test]
    fn worker_stats_partition_the_batch() {
        let grader = grader();
        let sources = sample_sources();
        let report = BatchGrader::new(3).grade_sources(&grader, &sources);
        let totals = report.totals();
        assert_eq!(totals.graded, sources.len());
        assert_eq!(totals.syntax_errors, 3);
        assert_eq!(totals.correct, 3);
        assert_eq!(totals.fixed, 3);
        assert_eq!(totals.cannot_fix + totals.timeouts, 3);
        assert_eq!(report.worker_stats.len(), 3);
        // Scheduling decides how the queue is split, so only the partition
        // invariant is asserted: worker counts sum to the batch exactly.
        assert_eq!(
            report.worker_stats.iter().map(|s| s.graded).sum::<usize>(),
            sources.len()
        );
        assert!(report.busy_time() >= report.worker_stats.iter().map(|s| s.busy).max().unwrap());
    }

    #[test]
    fn pool_clamps_and_reports_sizes() {
        assert_eq!(BatchGrader::new(0).workers(), 1);
        assert_eq!(BatchGrader::new(7).workers(), 7);
        assert!(BatchGrader::default().workers() >= 1);
        // More workers than submissions is fine.
        let report = BatchGrader::new(64)
            .grade_sources(&grader(), &["def computeDeriv(p):\n    return []\n"]);
        assert_eq!(report.items.len(), 1);
    }

    #[test]
    fn empty_batch_is_empty() {
        let report = BatchGrader::new(4).grade_sources(&grader(), &Vec::<String>::new());
        assert!(report.items.is_empty());
        assert_eq!(report.totals().graded, 0);
    }

    #[test]
    fn cached_batch_counts_hits_and_agrees_with_the_uncached_run() {
        let grader = grader();
        let sources = sample_sources();
        let uncached = BatchGrader::new(2).grade_sources(&grader, &sources);
        // Warm the cache serially: each of the 4 distinct submissions
        // misses exactly once, and every repeat hits — deterministic,
        // unlike a parallel first pass where a duplicate can race its own
        // first occurrence.
        let cache = FingerprintCache::new();
        let warm = BatchGrader::new(1).grade_sources_with_cache(&grader, &sources, Some(&cache));
        let totals = warm.totals();
        assert_eq!(totals.cache_misses, 4);
        assert_eq!(totals.cache_hits, sources.len() - 4);

        // A parallel pass over the warm cache hits on every submission and
        // agrees with the uncached run position by position (rendered
        // feedback included).
        let cached = BatchGrader::new(2).grade_sources_with_cache(&grader, &sources, Some(&cache));
        assert_eq!(cached.totals().cache_hits, sources.len());
        for (u, c) in uncached.items.iter().zip(cached.items.iter()) {
            match (&u.outcome, &c.outcome) {
                (GradeOutcome::Feedback(a), GradeOutcome::Feedback(b)) => {
                    assert_eq!(a.to_string(), b.to_string());
                }
                (a, b) => assert_eq!(a, b),
            }
        }

        // The uncached run never consults a cache; the cache's own
        // counters line up with the engine's view.
        let uncached_totals = uncached.totals();
        assert_eq!(uncached_totals.cache_hits, 0);
        assert_eq!(uncached_totals.cache_misses, 0);
        let stats = cache.stats();
        assert_eq!(stats.hits, (totals.cache_hits + sources.len()) as u64);
        assert_eq!(stats.misses, 4);
        assert_eq!(stats.entries, 3); // correct, off-by-one, hopeless
        assert_eq!(stats.syntax_entries, 1);
    }
}
