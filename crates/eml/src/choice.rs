//! The M̃PY choice AST — MPY extended with *sets* of expressions and
//! statements (paper §3.1, Figure 6(b)).
//!
//! An M̃PY program concisely represents a large set of MPY candidate
//! programs.  Every position where an error-model rule matched becomes a
//! [`CExpr::Choice`] (or [`CStmt::ChoiceBlock`]) node whose option 0 is the
//! original, zero-cost program fragment and whose remaining options are the
//! candidate corrections.  Selecting concrete options for every choice
//! ([`ChoiceAssignment`]) concretises the M̃PY program back into an ordinary
//! MPY program; the number of non-default selections is the *cost* — the
//! "number of corrections" the paper reports and minimises.

use std::collections::BTreeMap;

use afg_ast::ops::{BinOp, BoolOp, CmpOp, UnaryOp};
use afg_ast::{Expr, FuncDef, Param, Program, Stmt, StmtKind, Target};

/// Identifier of one choice site within a transformed program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChoiceId(pub u32);

/// An expression in the M̃PY language.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CExpr {
    /// A plain MPY expression with no choices inside.
    Plain(Expr),
    /// A set of alternative expressions; option 0 is the zero-cost default.
    Choice(ChoiceId, Vec<CExpr>),
    /// List literal with choice-bearing elements.
    List(Vec<CExpr>),
    /// Tuple literal with choice-bearing elements.
    Tuple(Vec<CExpr>),
    /// Indexing with choice-bearing parts.
    Index(Box<CExpr>, Box<CExpr>),
    /// Slicing with choice-bearing parts.
    Slice(Box<CExpr>, Option<Box<CExpr>>, Option<Box<CExpr>>),
    /// Binary operation; the operator itself may be a choice.
    BinOp(OpChoice<BinOp>, Box<CExpr>, Box<CExpr>),
    /// Unary operation.
    UnaryOp(UnaryOp, Box<CExpr>),
    /// Comparison; the operator itself may be a choice.
    Compare(OpChoice<CmpOp>, Box<CExpr>, Box<CExpr>),
    /// Boolean connective.
    BoolExpr(BoolOp, Box<CExpr>, Box<CExpr>),
    /// Function call.
    Call(String, Vec<CExpr>),
    /// Method call.
    MethodCall(Box<CExpr>, String, Vec<CExpr>),
    /// Conditional expression `body if cond else orelse`.
    IfExpr(Box<CExpr>, Box<CExpr>, Box<CExpr>),
}

/// An operator position that may itself be rewritten by the error model
/// (e.g. the paper's `COMPR` rule replaces a comparison operator with any
/// member of `{<, >, ≤, ≥, ==, ≠}`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpChoice<T> {
    /// The operator is fixed.
    Fixed(T),
    /// The operator is selected among options; option 0 is the default.
    Choice(ChoiceId, Vec<T>),
}

/// A statement in the M̃PY language.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CStmt {
    /// Source line of the original statement (0 for inserted statements).
    pub line: u32,
    /// The statement itself.
    pub kind: CStmtKind,
}

/// Statement kinds of the M̃PY language.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CStmtKind {
    /// Assignment.
    Assign(Target, CExpr),
    /// Augmented assignment.
    AugAssign(Target, BinOp, CExpr),
    /// Expression statement.
    ExprStmt(CExpr),
    /// Conditional.
    If(CExpr, Vec<CStmt>, Vec<CStmt>),
    /// While loop.
    While(CExpr, Vec<CStmt>),
    /// For loop.
    For(String, CExpr, Vec<CStmt>),
    /// Return.
    Return(Option<CExpr>),
    /// Print.
    Print(Vec<CExpr>),
    /// Pass / break / continue.
    Pass,
    /// Break.
    Break,
    /// Continue.
    Continue,
    /// A statement-level choice between alternative blocks; option 0 is the
    /// original block.  Used for rules that insert or drop statements
    /// (e.g. "add the `len(poly) == 1` base case at the top").
    ChoiceBlock(ChoiceId, Vec<Vec<CStmt>>),
}

/// A function definition whose body may contain choices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CFuncDef {
    /// Function name.
    pub name: String,
    /// Parameters (unchanged by the error model).
    pub params: Vec<Param>,
    /// Body with choices.
    pub body: Vec<CStmt>,
    /// Source line of the `def`.
    pub line: u32,
}

/// Description of one choice site, used by the synthesizer (how many
/// options) and the feedback generator (what to tell the student).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChoiceInfo {
    /// Choice identifier.
    pub id: ChoiceId,
    /// Source line the choice is attached to.
    pub line: u32,
    /// Name of the correction rule that created the choice.
    pub rule: String,
    /// Pretty-printed original fragment (option 0).
    pub original: String,
    /// Pretty-printed fragments of all options (index 0 = original).
    pub options: Vec<String>,
    /// Optional custom feedback template provided by the rule
    /// (placeholders: `{line}`, `{original}`, `{replacement}`).
    pub message: Option<String>,
}

/// A transformed program: the choice-bearing function plus the registry of
/// choice sites.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChoiceProgram {
    /// The transformed entry function.
    pub func: CFuncDef,
    /// Untouched helper functions from the student program (graded as-is).
    pub other_funcs: Vec<FuncDef>,
    /// Choice-site registry in identifier order.
    pub choices: Vec<ChoiceInfo>,
}

/// A selection of one option per choice site.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ChoiceAssignment {
    selections: BTreeMap<ChoiceId, usize>,
}

impl ChoiceAssignment {
    /// The all-default assignment (the original program).
    pub fn default_choices() -> ChoiceAssignment {
        ChoiceAssignment::default()
    }

    /// Creates an assignment from explicit `(choice, option)` pairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (ChoiceId, usize)>) -> ChoiceAssignment {
        ChoiceAssignment {
            selections: pairs.into_iter().collect(),
        }
    }

    /// Sets the selected option for a choice.
    pub fn select(&mut self, id: ChoiceId, option: usize) {
        if option == 0 {
            self.selections.remove(&id);
        } else {
            self.selections.insert(id, option);
        }
    }

    /// The selected option for a choice (0 = default when unset).
    pub fn selected(&self, id: ChoiceId) -> usize {
        self.selections.get(&id).copied().unwrap_or(0)
    }

    /// The number of non-default selections — the paper's `totalCost`.
    pub fn cost(&self) -> usize {
        self.selections.len()
    }

    /// Iterates over the non-default selections.
    pub fn non_default(&self) -> impl Iterator<Item = (ChoiceId, usize)> + '_ {
        self.selections.iter().map(|(&id, &option)| (id, option))
    }
}

impl ChoiceProgram {
    /// Number of choice sites.
    pub fn num_choices(&self) -> usize {
        self.choices.len()
    }

    /// Looks up the metadata of a choice site.
    pub fn choice_info(&self, id: ChoiceId) -> Option<&ChoiceInfo> {
        self.choices.iter().find(|c| c.id == id)
    }

    /// The size of the candidate-program space represented by this M̃PY
    /// program (product of option counts), as reported in paper §2.2.
    pub fn candidate_space_size(&self) -> f64 {
        self.choices
            .iter()
            .map(|c| c.options.len() as f64)
            .product()
    }

    /// Concretises the choice program into an ordinary MPY program under the
    /// given assignment.  Unknown choice ids in the assignment are ignored;
    /// missing ids take the default option.
    ///
    /// This materialises a full AST clone and is therefore the *cold path*:
    /// the synthesis hot loop evaluates candidates directly through the
    /// choice-aware interpreter and only concretises the final solution for
    /// feedback rendering.  [`instrument::concretize_calls`] counts the
    /// calls made by the current thread so tests can assert the hot loop
    /// stays cold.
    pub fn concretize(&self, assignment: &ChoiceAssignment) -> Program {
        instrument::record_concretize();
        let mut program = Program::new();
        program.funcs.push(FuncDef {
            name: self.func.name.clone(),
            params: self.func.params.clone(),
            body: concretize_block(&self.func.body, assignment),
            line: self.func.line,
        });
        program.funcs.extend(self.other_funcs.iter().cloned());
        program
    }

    /// Convenience: the original student program (all defaults).
    pub fn original_program(&self) -> Program {
        self.concretize(&ChoiceAssignment::default_choices())
    }
}

/// Per-thread instrumentation of AST materialisations.
///
/// The CEGIS acceptance criterion is *zero* `concretize` calls per candidate
/// check; the counter is thread-local so concurrently running tests (or
/// batch-grading workers) never observe each other's materialisations.
pub mod instrument {
    use std::cell::Cell;

    thread_local! {
        static CONCRETIZE_CALLS: Cell<u64> = const { Cell::new(0) };
    }

    pub(super) fn record_concretize() {
        CONCRETIZE_CALLS.with(|c| c.set(c.get() + 1));
    }

    /// Number of [`super::ChoiceProgram::concretize`] calls made by the
    /// current thread since it started.
    pub fn concretize_calls() -> u64 {
        CONCRETIZE_CALLS.with(Cell::get)
    }
}

fn concretize_block(body: &[CStmt], assignment: &ChoiceAssignment) -> Vec<Stmt> {
    let mut stmts = Vec::with_capacity(body.len());
    for stmt in body {
        concretize_stmt(stmt, assignment, &mut stmts);
    }
    stmts
}

fn concretize_stmt(stmt: &CStmt, assignment: &ChoiceAssignment, out: &mut Vec<Stmt>) {
    let kind = match &stmt.kind {
        CStmtKind::Assign(target, value) => {
            StmtKind::Assign(target.clone(), concretize_expr(value, assignment))
        }
        CStmtKind::AugAssign(target, op, value) => {
            StmtKind::AugAssign(target.clone(), *op, concretize_expr(value, assignment))
        }
        CStmtKind::ExprStmt(expr) => StmtKind::ExprStmt(concretize_expr(expr, assignment)),
        CStmtKind::If(cond, then_body, else_body) => StmtKind::If(
            concretize_expr(cond, assignment),
            concretize_block(then_body, assignment),
            concretize_block(else_body, assignment),
        ),
        CStmtKind::While(cond, body) => StmtKind::While(
            concretize_expr(cond, assignment),
            concretize_block(body, assignment),
        ),
        CStmtKind::For(var, iter, body) => StmtKind::For(
            var.clone(),
            concretize_expr(iter, assignment),
            concretize_block(body, assignment),
        ),
        CStmtKind::Return(expr) => {
            StmtKind::Return(expr.as_ref().map(|e| concretize_expr(e, assignment)))
        }
        CStmtKind::Print(args) => StmtKind::Print(
            args.iter()
                .map(|e| concretize_expr(e, assignment))
                .collect(),
        ),
        CStmtKind::Pass => StmtKind::Pass,
        CStmtKind::Break => StmtKind::Break,
        CStmtKind::Continue => StmtKind::Continue,
        CStmtKind::ChoiceBlock(id, options) => {
            let selected = assignment.selected(*id).min(options.len() - 1);
            for inner in &options[selected] {
                concretize_stmt(inner, assignment, out);
            }
            return;
        }
    };
    out.push(Stmt {
        line: stmt.line,
        kind,
    });
}

/// Concretises a choice expression under an assignment.
pub fn concretize_expr(expr: &CExpr, assignment: &ChoiceAssignment) -> Expr {
    match expr {
        CExpr::Plain(e) => e.clone(),
        CExpr::Choice(id, options) => {
            let selected = assignment.selected(*id).min(options.len() - 1);
            concretize_expr(&options[selected], assignment)
        }
        CExpr::List(items) => Expr::List(
            items
                .iter()
                .map(|e| concretize_expr(e, assignment))
                .collect(),
        ),
        CExpr::Tuple(items) => Expr::Tuple(
            items
                .iter()
                .map(|e| concretize_expr(e, assignment))
                .collect(),
        ),
        CExpr::Index(base, index) => Expr::Index(
            Box::new(concretize_expr(base, assignment)),
            Box::new(concretize_expr(index, assignment)),
        ),
        CExpr::Slice(base, lower, upper) => Expr::Slice(
            Box::new(concretize_expr(base, assignment)),
            lower
                .as_ref()
                .map(|e| Box::new(concretize_expr(e, assignment))),
            upper
                .as_ref()
                .map(|e| Box::new(concretize_expr(e, assignment))),
        ),
        CExpr::BinOp(op, left, right) => Expr::BinOp(
            select_op(op, assignment),
            Box::new(concretize_expr(left, assignment)),
            Box::new(concretize_expr(right, assignment)),
        ),
        CExpr::UnaryOp(op, operand) => {
            Expr::UnaryOp(*op, Box::new(concretize_expr(operand, assignment)))
        }
        CExpr::Compare(op, left, right) => Expr::Compare(
            select_op(op, assignment),
            Box::new(concretize_expr(left, assignment)),
            Box::new(concretize_expr(right, assignment)),
        ),
        CExpr::BoolExpr(op, left, right) => Expr::BoolExpr(
            *op,
            Box::new(concretize_expr(left, assignment)),
            Box::new(concretize_expr(right, assignment)),
        ),
        CExpr::Call(name, args) => Expr::Call(
            name.clone(),
            args.iter()
                .map(|e| concretize_expr(e, assignment))
                .collect(),
        ),
        CExpr::MethodCall(recv, name, args) => Expr::MethodCall(
            Box::new(concretize_expr(recv, assignment)),
            name.clone(),
            args.iter()
                .map(|e| concretize_expr(e, assignment))
                .collect(),
        ),
        CExpr::IfExpr(body, cond, orelse) => Expr::IfExpr(
            Box::new(concretize_expr(body, assignment)),
            Box::new(concretize_expr(cond, assignment)),
            Box::new(concretize_expr(orelse, assignment)),
        ),
    }
}

fn select_op<T: Copy>(op: &OpChoice<T>, assignment: &ChoiceAssignment) -> T {
    match op {
        OpChoice::Fixed(op) => *op,
        OpChoice::Choice(id, options) => {
            let selected = assignment.selected(*id).min(options.len() - 1);
            options[selected]
        }
    }
}

impl CExpr {
    /// Wraps a plain expression.
    pub fn plain(expr: Expr) -> CExpr {
        CExpr::Plain(expr)
    }

    /// Collects the identifiers of every choice inside the expression.
    pub fn collect_choice_ids(&self, out: &mut Vec<ChoiceId>) {
        match self {
            CExpr::Plain(_) => {}
            CExpr::Choice(id, options) => {
                out.push(*id);
                for option in options {
                    option.collect_choice_ids(out);
                }
            }
            CExpr::List(items) | CExpr::Tuple(items) | CExpr::Call(_, items) => {
                for item in items {
                    item.collect_choice_ids(out);
                }
            }
            CExpr::Index(a, b) => {
                a.collect_choice_ids(out);
                b.collect_choice_ids(out);
            }
            CExpr::Slice(base, lower, upper) => {
                base.collect_choice_ids(out);
                if let Some(l) = lower {
                    l.collect_choice_ids(out);
                }
                if let Some(u) = upper {
                    u.collect_choice_ids(out);
                }
            }
            CExpr::BinOp(op, a, b) => {
                if let OpChoice::Choice(id, _) = op {
                    out.push(*id);
                }
                a.collect_choice_ids(out);
                b.collect_choice_ids(out);
            }
            CExpr::Compare(op, a, b) => {
                if let OpChoice::Choice(id, _) = op {
                    out.push(*id);
                }
                a.collect_choice_ids(out);
                b.collect_choice_ids(out);
            }
            CExpr::UnaryOp(_, a) => a.collect_choice_ids(out),
            CExpr::BoolExpr(_, a, b) => {
                a.collect_choice_ids(out);
                b.collect_choice_ids(out);
            }
            CExpr::MethodCall(recv, _, args) => {
                recv.collect_choice_ids(out);
                for arg in args {
                    arg.collect_choice_ids(out);
                }
            }
            CExpr::IfExpr(a, b, c) => {
                a.collect_choice_ids(out);
                b.collect_choice_ids(out);
                c.collect_choice_ids(out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afg_ast::types::MpyType;

    fn sample_choice_program() -> ChoiceProgram {
        // def f(x):
        //     return {x, [0]}        <- choice 0
        let choice = CExpr::Choice(
            ChoiceId(0),
            vec![
                CExpr::plain(Expr::var("x")),
                CExpr::plain(Expr::List(vec![Expr::Int(0)])),
            ],
        );
        ChoiceProgram {
            func: CFuncDef {
                name: "f".into(),
                params: vec![Param::new("x", MpyType::Int)],
                body: vec![CStmt {
                    line: 2,
                    kind: CStmtKind::Return(Some(choice)),
                }],
                line: 1,
            },
            other_funcs: vec![],
            choices: vec![ChoiceInfo {
                id: ChoiceId(0),
                line: 2,
                rule: "RETR".into(),
                original: "x".into(),
                options: vec!["x".into(), "[0]".into()],
                message: None,
            }],
        }
    }

    #[test]
    fn default_assignment_reproduces_original() {
        let cp = sample_choice_program();
        let program = cp.original_program();
        let body = &program.funcs[0].body;
        assert_eq!(body[0].kind, StmtKind::Return(Some(Expr::var("x"))));
    }

    #[test]
    fn non_default_selection_changes_program_and_costs_one() {
        let cp = sample_choice_program();
        let mut assignment = ChoiceAssignment::default_choices();
        assignment.select(ChoiceId(0), 1);
        assert_eq!(assignment.cost(), 1);
        let program = cp.concretize(&assignment);
        assert_eq!(
            program.funcs[0].body[0].kind,
            StmtKind::Return(Some(Expr::List(vec![Expr::Int(0)])))
        );
    }

    #[test]
    fn selecting_default_removes_cost() {
        let mut assignment = ChoiceAssignment::default_choices();
        assignment.select(ChoiceId(3), 2);
        assert_eq!(assignment.cost(), 1);
        assignment.select(ChoiceId(3), 0);
        assert_eq!(assignment.cost(), 0);
        assert_eq!(assignment.selected(ChoiceId(3)), 0);
    }

    #[test]
    fn choice_block_inserts_statements() {
        // Choice between [] and [return [0]] prepended to the body.
        let base_case = CStmt {
            line: 0,
            kind: CStmtKind::Return(Some(CExpr::plain(Expr::List(vec![Expr::Int(0)])))),
        };
        let block = CStmt {
            line: 0,
            kind: CStmtKind::ChoiceBlock(ChoiceId(1), vec![vec![], vec![base_case]]),
        };
        let cp = ChoiceProgram {
            func: CFuncDef {
                name: "f".into(),
                params: vec![],
                body: vec![
                    block,
                    CStmt {
                        line: 2,
                        kind: CStmtKind::Return(Some(CExpr::plain(Expr::Int(1)))),
                    },
                ],
                line: 1,
            },
            other_funcs: vec![],
            choices: vec![],
        };
        let original = cp.original_program();
        assert_eq!(original.funcs[0].body.len(), 1);
        let with_insert = cp.concretize(&ChoiceAssignment::from_pairs([(ChoiceId(1), 1)]));
        assert_eq!(with_insert.funcs[0].body.len(), 2);
    }

    #[test]
    fn operator_choice_concretises() {
        let cmp = CExpr::Compare(
            OpChoice::Choice(ChoiceId(5), vec![CmpOp::Ge, CmpOp::Ne]),
            Box::new(CExpr::plain(Expr::var("i"))),
            Box::new(CExpr::plain(Expr::Int(0))),
        );
        let default = concretize_expr(&cmp, &ChoiceAssignment::default_choices());
        assert_eq!(
            default,
            Expr::compare(CmpOp::Ge, Expr::var("i"), Expr::Int(0))
        );
        let changed = concretize_expr(&cmp, &ChoiceAssignment::from_pairs([(ChoiceId(5), 1)]));
        assert_eq!(
            changed,
            Expr::compare(CmpOp::Ne, Expr::var("i"), Expr::Int(0))
        );
    }

    #[test]
    fn candidate_space_size_multiplies_option_counts() {
        let mut cp = sample_choice_program();
        cp.choices.push(ChoiceInfo {
            id: ChoiceId(1),
            line: 3,
            rule: "RANR".into(),
            original: "0".into(),
            options: vec!["0".into(), "1".into(), "-1".into()],
            message: None,
        });
        assert_eq!(cp.candidate_space_size(), 6.0);
    }

    #[test]
    fn collect_choice_ids_finds_nested_choices() {
        let nested = CExpr::BinOp(
            OpChoice::Fixed(BinOp::Add),
            Box::new(CExpr::Choice(ChoiceId(0), vec![CExpr::plain(Expr::Int(1))])),
            Box::new(CExpr::Compare(
                OpChoice::Choice(ChoiceId(1), vec![CmpOp::Lt]),
                Box::new(CExpr::plain(Expr::Int(2))),
                Box::new(CExpr::Choice(ChoiceId(2), vec![CExpr::plain(Expr::Int(3))])),
            )),
        );
        let mut ids = Vec::new();
        nested.collect_choice_ids(&mut ids);
        assert_eq!(ids, vec![ChoiceId(0), ChoiceId(1), ChoiceId(2)]);
    }
}
