//! Automated feedback generation for introductory programming assignments —
//! the public API of the reproduction of Singh, Gulwani & Solar-Lezama
//! (PLDI 2013).
//!
//! The instructor supplies three things: a **reference implementation**, the
//! name of the graded function, and an **error model** describing the local
//! corrections students typically need.  [`Autograder`] then grades any
//! number of student submissions, producing for each one either *correct*,
//! *syntax error*, a minimal set of **corrections** rendered as
//! natural-language [`Feedback`], or *cannot fix*.
//!
//! ```
//! use afg_core::{Autograder, GraderConfig, GradeOutcome};
//! use afg_eml::library;
//!
//! let reference = "\
//! def computeDeriv(poly_list_int):
//!     result = []
//!     for i in range(len(poly_list_int)):
//!         result += [i * poly_list_int[i]]
//!     if len(poly_list_int) == 1:
//!         return result
//!     else:
//!         return result[1:]
//! ";
//! let grader = Autograder::new(
//!     reference,
//!     "computeDeriv",
//!     library::compute_deriv_model(),
//!     GraderConfig::fast(),
//! )?;
//!
//! // A student who iterates from 0 instead of 1.
//! let submission = "\
//! def computeDeriv(poly):
//!     if len(poly) == 1:
//!         return [0]
//!     d = []
//!     for i in range(0, len(poly)):
//!         d.append(i * poly[i])
//!     return d
//! ";
//! match grader.grade_source(submission) {
//!     GradeOutcome::Feedback(feedback) => {
//!         assert_eq!(feedback.cost, 1);
//!         println!("{feedback}");
//!     }
//!     other => panic!("expected feedback, got {other:?}"),
//! }
//! # Ok::<(), afg_core::GraderError>(())
//! ```

mod batch;
mod cache;
mod cluster;
mod feedback;
mod grader;
mod json;

pub use batch::{BatchGrader, BatchItem, BatchReport, WorkerStats};
pub use cache::{CacheStats, FingerprintCache, GradeDisposition};
pub use cluster::{ClusterIndex, ClusterStats};
pub use feedback::{corrections_from_assignment, Correction, Feedback, FeedbackLevel};
pub use grader::{
    Autograder, EscalationPolicy, EscalationTier, GradeOutcome, GraderConfig, GraderError,
};

// Re-export the pieces callers need to configure a grader without adding
// direct dependencies on every sub-crate.
pub use afg_eml::{ErrorModel, Rule};
pub use afg_interp::{EquivalenceConfig, ExecLimits, InputSpace, SweepMode};
pub use afg_synth::{Backend, CancelToken, SearchStrategy, SynthesisConfig};
