//! A minimal HTTP/1.1 layer built around an **incremental push parser**.
//!
//! Only what the grading API needs: request-line + header parsing,
//! `Content-Length` bodies, keep-alive, and fixed-size limits so a hostile
//! peer cannot balloon memory.  No chunked encoding, no TLS, no
//! compression — the daemon is meant to sit behind a real edge proxy.
//!
//! The parser is resumable: [`RequestParser::feed`] accepts bytes in
//! arbitrary chunks (one syscall's worth from the epoll reactor, a whole
//! pipelined burst, or one byte at a time) and yields
//! [`Parse::Partial`] / [`Parse::Complete`] / [`Parse::Error`].  Both I/O
//! modes — the epoll reactor and the legacy blocking path — run this one
//! parser, so limits and error semantics cannot drift between them.
//! Leftover bytes after a complete request (pipelining) stay buffered;
//! call `feed(&[])` to drain them before reading from the socket again.

use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Largest accepted request body (a submission corpus for batch grading).
pub const MAX_BODY: usize = 8 * 1024 * 1024;
/// Largest accepted header section.
const MAX_HEADER_LINE: usize = 8 * 1024;
const MAX_HEADERS: usize = 100;

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, …).
    pub method: String,
    /// The path component, query string stripped.
    pub path: String,
    /// `HTTP/1.0` or `HTTP/1.1`.
    pub version: String,
    /// Headers with lower-cased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The raw body (empty without `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header, by lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the connection should stay open after the response.
    pub fn keep_alive(&self) -> bool {
        match self.header("connection").map(str::to_ascii_lowercase) {
            Some(v) if v.contains("close") => false,
            Some(v) if v.contains("keep-alive") => true,
            _ => self.version == "HTTP/1.1",
        }
    }
}

/// Why a request cannot be parsed.  Once a parser reports an error it is
/// poisoned: the connection must be answered (400/413) and closed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The bytes on the wire are not HTTP (respond 400, drop).
    Malformed(String),
    /// The request exceeds a size limit (respond 413, drop).
    TooLarge,
}

/// Result of pushing bytes into a [`RequestParser`].
#[derive(Debug)]
pub enum Parse {
    /// More bytes are needed.
    Partial,
    /// One complete request.  Pipelined leftovers stay buffered — call
    /// `feed(&[])` to drain them before blocking on the socket.
    Complete(Request),
    /// The connection is poisoned; every further call repeats the error.
    Error(ParseError),
}

/// What an end-of-stream means, given how far the parser had gotten.
#[derive(Debug)]
pub enum EofOutcome {
    /// Clean EOF between requests.
    Closed,
    /// The unterminated tail still formed a complete request.
    Complete(Request),
    /// The tail was malformed or truncated inside the header section.
    Error(ParseError),
    /// EOF inside a declared body: drop silently (I/O-error-equivalent).
    Drop,
}

/// Which phase of a request the parser is inside — the reactor uses this
/// to pick the right timeout (header vs body are both "mid-request").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Request line + headers.
    Head,
    /// A `Content-Length` body.
    Body,
}

enum ParserState {
    /// Reading the request line (`request` is `None`) or headers.
    Head { request: Option<Request> },
    /// Reading `needed` more body bytes.
    Body { request: Request, needed: usize },
    /// Sticky error.
    Failed(ParseError),
}

/// The resumable request parser: a byte buffer plus a state machine.
///
/// One parser lives per connection and persists across requests, carrying
/// pipelined leftovers forward.
pub struct RequestParser {
    buf: Vec<u8>,
    /// Consumed prefix of `buf`; compacted after every `feed`/`eof`.
    pos: usize,
    state: ParserState,
}

impl Default for RequestParser {
    fn default() -> RequestParser {
        RequestParser::new()
    }
}

impl RequestParser {
    #[must_use]
    pub fn new() -> RequestParser {
        RequestParser {
            buf: Vec::new(),
            pos: 0,
            state: ParserState::Head { request: None },
        }
    }

    /// True when no byte of a new request has been seen: the connection is
    /// idle between requests (keep-alive timeout territory), as opposed to
    /// mid-request (header timeout territory).
    #[must_use]
    pub fn is_idle(&self) -> bool {
        matches!(&self.state, ParserState::Head { request: None }) && self.pos >= self.buf.len()
    }

    /// Which phase of a request the parser is inside.
    #[must_use]
    pub fn stage(&self) -> Stage {
        match &self.state {
            ParserState::Body { .. } => Stage::Body,
            _ => Stage::Head,
        }
    }

    /// Pushes bytes into the parser and advances as far as they allow.
    /// `feed(&[])` advances over already-buffered (pipelined) bytes.
    pub fn feed(&mut self, bytes: &[u8]) -> Parse {
        if let ParserState::Failed(err) = &self.state {
            return Parse::Error(err.clone());
        }
        self.buf.extend_from_slice(bytes);
        let parse = self.advance(false);
        self.compact();
        parse
    }

    /// Tells the parser the stream ended.  A partial header line is
    /// flushed and parsed exactly as the blocking path always did.
    pub fn eof(&mut self) -> EofOutcome {
        if let ParserState::Failed(err) = &self.state {
            return EofOutcome::Error(err.clone());
        }
        if self.is_idle() {
            return EofOutcome::Closed;
        }
        let parse = self.advance(true);
        self.compact();
        match parse {
            Parse::Complete(request) => EofOutcome::Complete(request),
            Parse::Error(err) => EofOutcome::Error(err),
            Parse::Partial => match &self.state {
                ParserState::Body { .. } => EofOutcome::Drop,
                _ => EofOutcome::Closed,
            },
        }
    }

    fn fail(&mut self, err: ParseError) -> Parse {
        self.state = ParserState::Failed(err.clone());
        Parse::Error(err)
    }

    fn compact(&mut self) {
        if self.pos > 0 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }

    /// Takes the next header-section line out of the buffer, including its
    /// terminating `\n`.  At EOF an unterminated tail is flushed as a
    /// line.  Returns `Ok(None)` when more bytes are needed (or, at EOF,
    /// when nothing is pending).
    fn next_line(&mut self, at_eof: bool) -> Result<Option<std::ops::Range<usize>>, ParseError> {
        let start = self.pos;
        let avail = &self.buf[start..];
        match avail.iter().position(|&b| b == b'\n') {
            Some(i) => {
                // The cap counts bytes *before* the newline, matching the
                // old byte-at-a-time reader exactly.
                if i > MAX_HEADER_LINE {
                    return Err(ParseError::TooLarge);
                }
                self.pos = start + i + 1;
                Ok(Some(start..start + i + 1))
            }
            None => {
                if avail.len() > MAX_HEADER_LINE {
                    return Err(ParseError::TooLarge);
                }
                if at_eof && !avail.is_empty() {
                    self.pos = self.buf.len();
                    Ok(Some(start..self.buf.len()))
                } else {
                    Ok(None)
                }
            }
        }
    }

    fn advance(&mut self, at_eof: bool) -> Parse {
        loop {
            let state = std::mem::replace(&mut self.state, ParserState::Head { request: None });
            match state {
                ParserState::Failed(err) => {
                    self.state = ParserState::Failed(err.clone());
                    return Parse::Error(err);
                }
                ParserState::Head { request } => {
                    let range = match self.next_line(at_eof) {
                        Ok(Some(range)) => range,
                        Ok(None) => {
                            if at_eof && request.is_some() {
                                return self
                                    .fail(ParseError::Malformed("eof inside headers".into()));
                            }
                            self.state = ParserState::Head { request };
                            return Parse::Partial;
                        }
                        Err(err) => return self.fail(err),
                    };
                    let Ok(line) = std::str::from_utf8(&self.buf[range]) else {
                        return self.fail(ParseError::Malformed("non-UTF-8 header bytes".into()));
                    };
                    match request {
                        None => match parse_request_line(line) {
                            Ok(request) => {
                                self.state = ParserState::Head {
                                    request: Some(request),
                                };
                            }
                            Err(err) => return self.fail(err),
                        },
                        Some(mut request) => {
                            let trimmed = line.trim_end_matches(['\r', '\n']);
                            if trimmed.is_empty() {
                                // End of headers: body bookkeeping.
                                match body_length(&request) {
                                    Ok(0) => {
                                        self.state = ParserState::Head { request: None };
                                        return Parse::Complete(request);
                                    }
                                    Ok(needed) => {
                                        request.body.reserve(needed.min(64 * 1024));
                                        self.state = ParserState::Body { request, needed };
                                    }
                                    Err(err) => return self.fail(err),
                                }
                            } else {
                                if request.headers.len() >= MAX_HEADERS {
                                    return self.fail(ParseError::TooLarge);
                                }
                                let Some((name, value)) = trimmed.split_once(':') else {
                                    return self.fail(ParseError::Malformed(format!(
                                        "bad header: {trimmed:?}"
                                    )));
                                };
                                request.headers.push((
                                    name.trim().to_ascii_lowercase(),
                                    value.trim().to_string(),
                                ));
                                self.state = ParserState::Head {
                                    request: Some(request),
                                };
                            }
                        }
                    }
                }
                ParserState::Body {
                    mut request,
                    mut needed,
                } => {
                    let take = needed.min(self.buf.len() - self.pos);
                    request
                        .body
                        .extend_from_slice(&self.buf[self.pos..self.pos + take]);
                    self.pos += take;
                    needed -= take;
                    if needed == 0 {
                        self.state = ParserState::Head { request: None };
                        return Parse::Complete(request);
                    }
                    self.state = ParserState::Body { request, needed };
                    return Parse::Partial;
                }
            }
        }
    }
}

fn parse_request_line(line: &str) -> Result<Request, ParseError> {
    let mut parts = line.split_whitespace();
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(ParseError::Malformed(format!("bad request line: {line:?}")));
    };
    if !version.starts_with("HTTP/") {
        return Err(ParseError::Malformed(format!("bad version: {version:?}")));
    }
    let path = target.split('?').next().unwrap_or(target).to_string();
    Ok(Request {
        method: method.to_ascii_uppercase(),
        path,
        version: version.to_string(),
        headers: Vec::new(),
        body: Vec::new(),
    })
}

/// Validates the body-framing headers once the header section ends.
fn body_length(request: &Request) -> Result<usize, ParseError> {
    // No chunked-body support: treating an unread chunked body as "length
    // 0" would let its payload be parsed as the *next* request on this
    // keep-alive connection (request smuggling) — reject instead.
    if request.header("transfer-encoding").is_some() {
        return Err(ParseError::Malformed(
            "transfer-encoding is not supported".into(),
        ));
    }
    let content_length = match request.header("content-length") {
        None => 0,
        Some(value) => match value.parse::<usize>() {
            Ok(n) => n,
            Err(_) => {
                return Err(ParseError::Malformed(format!(
                    "bad content-length: {value:?}"
                )))
            }
        },
    };
    if content_length > MAX_BODY {
        return Err(ParseError::TooLarge);
    }
    Ok(content_length)
}

/// Why reading a request stopped (the blocking path's view of the parser).
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete request.
    Request(Request),
    /// The peer closed the connection cleanly between requests.
    Closed,
    /// The bytes on the wire are not HTTP (connection must be dropped).
    Malformed(String),
    /// The request exceeds a size limit (respond 413, then drop).
    TooLarge,
    /// An I/O error or read timeout.  The error itself is carried for
    /// `Debug` rendering in tests; the server treats every I/O failure the
    /// same way (drop the connection).
    Io(#[allow(dead_code)] io::Error),
}

/// Reads one request from the stream by pumping `parser`.  The parser must
/// persist across calls on a keep-alive connection — it carries pipelined
/// leftovers from the previous read.
pub fn read_request(reader: &mut impl Read, parser: &mut RequestParser) -> ReadOutcome {
    let mut chunk = [0u8; 8192];
    loop {
        // Drain already-buffered bytes (pipelining) before touching the
        // socket again.
        match parser.feed(&[]) {
            Parse::Complete(request) => return ReadOutcome::Request(request),
            Parse::Error(err) => return error_outcome(err),
            Parse::Partial => {}
        }
        match reader.read(&mut chunk) {
            Ok(0) => {
                return match parser.eof() {
                    EofOutcome::Closed => ReadOutcome::Closed,
                    EofOutcome::Complete(request) => ReadOutcome::Request(request),
                    EofOutcome::Error(err) => error_outcome(err),
                    EofOutcome::Drop => ReadOutcome::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "eof inside request body",
                    )),
                };
            }
            Ok(n) => match parser.feed(&chunk[..n]) {
                Parse::Complete(request) => return ReadOutcome::Request(request),
                Parse::Error(err) => return error_outcome(err),
                Parse::Partial => {}
            },
            Err(err) if err.kind() == io::ErrorKind::Interrupted => {}
            Err(err) => return ReadOutcome::Io(err),
        }
    }
}

fn error_outcome(err: ParseError) -> ReadOutcome {
    match err {
        ParseError::Malformed(message) => ReadOutcome::Malformed(message),
        ParseError::TooLarge => ReadOutcome::TooLarge,
    }
}

/// Encodes one response into a single byte buffer.  **Both** I/O modes
/// serialize through this function, so `--io threads` and `--io epoll`
/// responses are byte-identical by construction.
#[must_use]
pub fn encode_response(
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &str,
    keep_alive: bool,
) -> Vec<u8> {
    let reason = reason_phrase(status);
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let mut response = format!(
        "HTTP/1.1 {status} {reason}\r\n\
         Content-Type: {content_type}\r\n\
         Content-Length: {}\r\n\
         Connection: {connection}\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        response.push_str(name);
        response.push_str(": ");
        response.push_str(value);
        response.push_str("\r\n");
    }
    response.push_str("\r\n");
    response.push_str(body);
    response.into_bytes()
}

/// Writes one `application/json` response.
///
/// Header and body go out in a single `write_all` — two small writes on a
/// socket without `TCP_NODELAY` interact with Nagle + delayed ACK into
/// ~40 ms stalls, which would dwarf a cache-hit grading time.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> io::Result<()> {
    write_response_with(stream, status, "application/json", &[], body, keep_alive)
}

/// [`write_response`] with an explicit content type and extra headers —
/// for `/metrics` (Prometheus text) and the `X-Afg-Trace-Id` grade
/// header.  Same single-`write_all` discipline.
pub fn write_response_with(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &str,
    keep_alive: bool,
) -> io::Result<()> {
    stream.write_all(&encode_response(
        status,
        content_type,
        extra_headers,
        body,
        keep_alive,
    ))?;
    stream.flush()
}

fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Feeds raw bytes to `read_request` through an in-memory reader — the
    /// same code path a blocking socket takes (including the EOF).
    fn parse_raw(raw: &[u8]) -> ReadOutcome {
        let mut parser = RequestParser::new();
        read_request(&mut io::Cursor::new(raw.to_vec()), &mut parser)
    }

    #[test]
    fn parses_a_post_with_body() {
        let outcome = parse_raw(
            b"POST /problems/x/grade?verbose=1 HTTP/1.1\r\n\
              Host: localhost\r\n\
              Content-Length: 4\r\n\
              \r\n\
              {\"a\"",
        );
        let ReadOutcome::Request(request) = outcome else {
            panic!("expected request, got {outcome:?}");
        };
        assert_eq!(request.method, "POST");
        assert_eq!(request.path, "/problems/x/grade");
        assert_eq!(request.body, b"{\"a\"");
        assert_eq!(request.header("host"), Some("localhost"));
        assert!(request.keep_alive());
    }

    #[test]
    fn connection_close_and_http10_disable_keep_alive() {
        let outcome = parse_raw(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n");
        let ReadOutcome::Request(request) = outcome else {
            panic!("{outcome:?}")
        };
        assert!(!request.keep_alive());
        let outcome = parse_raw(b"GET /healthz HTTP/1.0\r\n\r\n");
        let ReadOutcome::Request(request) = outcome else {
            panic!("{outcome:?}")
        };
        assert!(!request.keep_alive());
    }

    #[test]
    fn clean_eof_reports_closed_and_garbage_reports_malformed() {
        assert!(matches!(parse_raw(b""), ReadOutcome::Closed));
        assert!(matches!(
            parse_raw(b"nonsense\r\n\r\n"),
            ReadOutcome::Malformed(_)
        ));
        assert!(matches!(
            parse_raw(b"GET / HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            ReadOutcome::Malformed(_)
        ));
    }

    #[test]
    fn oversized_bodies_are_rejected_without_allocation() {
        let outcome = parse_raw(b"POST / HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n");
        assert!(matches!(outcome, ReadOutcome::TooLarge));
    }

    #[test]
    fn oversized_header_lines_are_rejected() {
        let mut raw = b"GET /".to_vec();
        raw.extend(std::iter::repeat_n(b'a', MAX_HEADER_LINE + 8));
        raw.extend_from_slice(b" HTTP/1.1\r\n\r\n");
        assert!(matches!(parse_raw(&raw), ReadOutcome::TooLarge));
    }

    #[test]
    fn chunked_bodies_are_rejected_not_smuggled() {
        // Without this rejection the chunk lines would be parsed as a
        // second request on the keep-alive connection.
        let outcome = parse_raw(
            b"POST /problems HTTP/1.1\r\n\
              Transfer-Encoding: chunked\r\n\
              \r\n\
              5\r\nhello\r\n0\r\n\r\n",
        );
        assert!(matches!(outcome, ReadOutcome::Malformed(_)), "{outcome:?}");
    }

    #[test]
    fn eof_inside_headers_is_malformed_not_silent() {
        let outcome = parse_raw(b"GET /healthz HTTP/1.1\r\nHost: x\r\n");
        assert!(matches!(outcome, ReadOutcome::Malformed(_)), "{outcome:?}");
    }

    #[test]
    fn parser_errors_are_sticky() {
        let mut parser = RequestParser::new();
        assert!(matches!(
            parser.feed(b"bogus\r\n\r\n"),
            Parse::Error(ParseError::Malformed(_))
        ));
        assert!(matches!(
            parser.feed(b"GET / HTTP/1.1\r\n\r\n"),
            Parse::Error(ParseError::Malformed(_))
        ));
    }
}
