//! Branch-edge coverage map for the in-tree fuzzer (`afg-fuzz`).
//!
//! The attacker-facing decoders (`afg-parser`, `afg-json`, `afg-eml`) and
//! the interpreter sprinkle [`cov_hit!`] at their decision points.  Each
//! call site gets a stable compile-time *site id* (an FNV-1a hash of
//! `file!()`/`line!()`), and consecutive sites on one thread form a
//! *branch edge* `prev → cur` that is bucketed into a fixed-size global
//! map, AFL-style: `index = ((prev >> 1) ^ cur) % MAP_SIZE`.  The fuzzer
//! keeps any input that lights an edge bucket no earlier input lit.
//!
//! Everything is behind the `enabled` cargo feature.  Without it (the
//! default for every production build) [`hit`] is an empty `#[inline]`
//! function and the map does not exist, so the hot grading path is
//! untouched — `ENABLED` is a `const` precisely so a test can assert the
//! configuration at compile time (see `tests/cov_off.rs` at the workspace
//! root and the release-build check in CI).

#[cfg(feature = "enabled")]
use std::sync::atomic::{AtomicU32, Ordering};

/// Whether coverage recording is compiled in.
pub const ENABLED: bool = cfg!(feature = "enabled");

/// Number of edge buckets in the global map.  16k buckets keeps collision
/// rates negligible for the few hundred instrumented sites while the whole
/// map still fits in L1/L2 during a fuzzing run.
pub const MAP_SIZE: usize = 1 << 14;

/// Compile-time FNV-1a hash of a call site, used by [`cov_hit!`] so that
/// site ids are stable across runs and builds of the same source.
#[must_use]
pub const fn site_id(file: &str, line: u32) -> u32 {
    let mut hash: u32 = 0x811C_9DC5;
    let bytes = file.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        hash ^= bytes[i] as u32;
        hash = hash.wrapping_mul(0x0100_0193);
        i += 1;
    }
    let mut l = line;
    while l > 0 {
        hash ^= l & 0xFF;
        hash = hash.wrapping_mul(0x0100_0193);
        l >>= 8;
    }
    hash
}

/// Records a coverage hit for the call site.  Expands to a no-op function
/// call when the `enabled` feature is off.
#[macro_export]
macro_rules! cov_hit {
    () => {{
        const SITE: u32 = $crate::site_id(file!(), line!());
        $crate::hit(SITE);
    }};
}

#[cfg(feature = "enabled")]
mod imp {
    use super::*;

    pub(super) static MAP: [AtomicU32; MAP_SIZE] = {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU32 = AtomicU32::new(0);
        [ZERO; MAP_SIZE]
    };

    thread_local! {
        pub(super) static PREV: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
    }
}

/// Records one hit of `site`, combining it with the previous site on this
/// thread into a branch edge.
#[inline(always)]
pub fn hit(site: u32) {
    #[cfg(feature = "enabled")]
    {
        let prev = imp::PREV.with(|p| p.replace(site));
        let index = (((prev >> 1) ^ site) as usize) & (MAP_SIZE - 1);
        imp::MAP[index].fetch_add(1, Ordering::Relaxed);
    }
    #[cfg(not(feature = "enabled"))]
    let _ = site;
}

/// Zeroes the whole edge map and this thread's edge chain.  The fuzzer
/// calls this before every target execution.
pub fn reset() {
    #[cfg(feature = "enabled")]
    {
        for bucket in &imp::MAP {
            bucket.store(0, Ordering::Relaxed);
        }
        imp::PREV.with(|p| p.set(0));
    }
}

/// The non-zero edge buckets as `(index, count)` pairs, sorted by index.
/// Empty when recording is compiled out.
#[must_use]
pub fn snapshot() -> Vec<(u32, u32)> {
    #[cfg(feature = "enabled")]
    {
        let mut edges = Vec::new();
        for (index, bucket) in imp::MAP.iter().enumerate() {
            let count = bucket.load(Ordering::Relaxed);
            if count > 0 {
                edges.push((index as u32, count));
            }
        }
        edges
    }
    #[cfg(not(feature = "enabled"))]
    Vec::new()
}

/// AFL-style count bucketing: collapse an edge hit count into one of eight
/// coarse classes so "loop ran 100 vs 101 times" is not novelty but
/// "loop ran 1 vs 3 vs 50 times" is.
#[must_use]
pub fn count_class(count: u32) -> u8 {
    match count {
        0 => 0,
        1 => 1,
        2 => 2,
        3 => 3,
        4..=7 => 4,
        8..=15 => 5,
        16..=127 => 6,
        _ => 7,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_ids_are_stable_and_distinct() {
        let a = site_id("crates/parser/src/parser.rs", 100);
        let b = site_id("crates/parser/src/parser.rs", 101);
        let c = site_id("crates/json/src/parse.rs", 100);
        assert_eq!(a, site_id("crates/parser/src/parser.rs", 100));
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn count_classes_are_monotone() {
        let classes: Vec<u8> = [0u32, 1, 2, 3, 4, 7, 8, 15, 16, 127, 128, 100_000]
            .iter()
            .map(|&c| count_class(c))
            .collect();
        let mut sorted = classes.clone();
        sorted.sort_unstable();
        assert_eq!(classes, sorted);
        assert_eq!(count_class(0), 0);
        assert_eq!(count_class(u32::MAX), 7);
    }

    // The zero-overhead contract: in a default build the hooks are inert.
    #[cfg(not(feature = "enabled"))]
    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn disabled_build_records_nothing() {
        assert!(!ENABLED);
        reset();
        cov_hit!();
        cov_hit!();
        assert!(snapshot().is_empty());
    }

    #[cfg(feature = "enabled")]
    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn enabled_build_records_edges() {
        assert!(ENABLED);
        reset();
        assert!(snapshot().is_empty());
        cov_hit!();
        cov_hit!();
        cov_hit!();
        let edges = snapshot();
        assert!(!edges.is_empty());
        let total: u32 = edges.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 3);
        reset();
        assert!(snapshot().is_empty());
    }
}
