//! Built-in functions and methods of the MPY runtime.
//!
//! These mirror the Python builtins the paper's benchmark problems rely on
//! (`len`, `range`, `abs`, `int`, `str`, `list`, `tuple`, `sum`, `min`,
//! `max`, `sorted`) and the list/str/dict methods that appear in student
//! submissions (`append`, `pop`, `insert`, `index`, `remove`, `extend`,
//! `count`, `reverse`, `sort`, `replace`, `lower`, `upper`, `find`,
//! `startswith`, `keys`, `values`, `get`).

use crate::error::RuntimeError;
use crate::value::Value;

/// Result of trying a builtin: `None` means "no builtin with that name",
/// letting the interpreter fall back to user-defined functions.
pub type BuiltinResult = Option<Result<Value, RuntimeError>>;

/// Calls a builtin free function, if `name` names one.
pub fn call_builtin(name: &str, args: &[Value]) -> BuiltinResult {
    let result = match name {
        "len" => builtin_len(args),
        "range" => builtin_range(args),
        "abs" => builtin_abs(args),
        "int" => builtin_int(args),
        "str" => single(args, "str").map(|v| Value::Str(v.display_str())),
        "bool" => single(args, "bool").map(|v| Value::Bool(v.is_truthy())),
        "list" => builtin_list(args),
        "tuple" => builtin_tuple(args),
        "sum" => builtin_sum(args),
        "min" => builtin_min_max(args, true),
        "max" => builtin_min_max(args, false),
        "sorted" => builtin_sorted(args),
        "float" => Err(RuntimeError::Unsupported(
            "floating point values are outside the MPY subset".to_string(),
        )),
        _ => return None,
    };
    Some(result)
}

fn single<'a>(args: &'a [Value], name: &str) -> Result<&'a Value, RuntimeError> {
    if args.len() != 1 {
        return Err(RuntimeError::Type(format!(
            "{name}() takes exactly one argument ({} given)",
            args.len()
        )));
    }
    Ok(&args[0])
}

fn builtin_len(args: &[Value]) -> Result<Value, RuntimeError> {
    match single(args, "len")? {
        Value::Str(s) => Ok(Value::Int(s.chars().count() as i64)),
        Value::List(items) | Value::Tuple(items) => Ok(Value::Int(items.len() as i64)),
        Value::Dict(items) => Ok(Value::Int(items.len() as i64)),
        other => Err(RuntimeError::Type(format!(
            "object of type '{}' has no len()",
            other.type_name()
        ))),
    }
}

fn builtin_range(args: &[Value]) -> Result<Value, RuntimeError> {
    let as_int = |v: &Value| {
        v.as_int().ok_or_else(|| {
            RuntimeError::Type(format!(
                "range() integer argument expected, got {}",
                v.type_name()
            ))
        })
    };
    let (start, stop, step) = match args.len() {
        1 => (0, as_int(&args[0])?, 1),
        2 => (as_int(&args[0])?, as_int(&args[1])?, 1),
        3 => (as_int(&args[0])?, as_int(&args[1])?, as_int(&args[2])?),
        n => {
            return Err(RuntimeError::Type(format!(
                "range expected at most 3 arguments, got {n}"
            )))
        }
    };
    if step == 0 {
        return Err(RuntimeError::Value(
            "range() arg 3 must not be zero".to_string(),
        ));
    }
    let mut items = Vec::new();
    let mut i = start;
    // The bound guards against student-sized mistakes like range(0, 10**9).
    const MAX_RANGE: usize = 100_000;
    while (step > 0 && i < stop) || (step < 0 && i > stop) {
        items.push(Value::Int(i));
        if items.len() > MAX_RANGE {
            return Err(RuntimeError::FuelExhausted);
        }
        i += step;
    }
    Ok(Value::List(items))
}

fn builtin_abs(args: &[Value]) -> Result<Value, RuntimeError> {
    match single(args, "abs")?.as_int() {
        Some(v) => Ok(Value::Int(v.checked_abs().ok_or(RuntimeError::Overflow)?)),
        None => Err(RuntimeError::Type("bad operand type for abs()".to_string())),
    }
}

fn builtin_int(args: &[Value]) -> Result<Value, RuntimeError> {
    match single(args, "int")? {
        Value::Int(v) => Ok(Value::Int(*v)),
        Value::Bool(b) => Ok(Value::Int(i64::from(*b))),
        Value::Str(s) => s
            .trim()
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|_| RuntimeError::Value(format!("invalid literal for int(): '{s}'"))),
        other => Err(RuntimeError::Type(format!(
            "int() argument must be a string or a number, not '{}'",
            other.type_name()
        ))),
    }
}

fn to_items(value: &Value) -> Result<Vec<Value>, RuntimeError> {
    match value {
        Value::List(items) | Value::Tuple(items) => Ok(items.clone()),
        Value::Str(s) => Ok(s.chars().map(|c| Value::Str(c.to_string())).collect()),
        Value::Dict(items) => Ok(items.iter().map(|(k, _)| k.clone()).collect()),
        other => Err(RuntimeError::Type(format!(
            "'{}' object is not iterable",
            other.type_name()
        ))),
    }
}

fn builtin_list(args: &[Value]) -> Result<Value, RuntimeError> {
    if args.is_empty() {
        return Ok(Value::List(vec![]));
    }
    Ok(Value::List(to_items(single(args, "list")?)?))
}

fn builtin_tuple(args: &[Value]) -> Result<Value, RuntimeError> {
    if args.is_empty() {
        return Ok(Value::Tuple(vec![]));
    }
    Ok(Value::Tuple(to_items(single(args, "tuple")?)?))
}

fn builtin_sum(args: &[Value]) -> Result<Value, RuntimeError> {
    let items = to_items(single(args, "sum")?)?;
    let mut total: i64 = 0;
    for item in items {
        let v = item
            .as_int()
            .ok_or_else(|| RuntimeError::Type("unsupported operand type(s) for +".to_string()))?;
        total = total.checked_add(v).ok_or(RuntimeError::Overflow)?;
    }
    Ok(Value::Int(total))
}

fn builtin_min_max(args: &[Value], want_min: bool) -> Result<Value, RuntimeError> {
    let items = if args.len() == 1 {
        to_items(&args[0])?
    } else {
        args.to_vec()
    };
    if items.is_empty() {
        return Err(RuntimeError::Value(
            "min()/max() of an empty sequence".to_string(),
        ));
    }
    let mut best = items[0].clone();
    for item in &items[1..] {
        let ord = item
            .py_cmp(&best)
            .ok_or_else(|| RuntimeError::Type("values are not comparable".to_string()))?;
        let replace = if want_min { ord.is_lt() } else { ord.is_gt() };
        if replace {
            best = item.clone();
        }
    }
    Ok(best)
}

fn builtin_sorted(args: &[Value]) -> Result<Value, RuntimeError> {
    let mut items = to_items(single(args, "sorted")?)?;
    sort_values(&mut items)?;
    Ok(Value::List(items))
}

fn sort_values(items: &mut [Value]) -> Result<(), RuntimeError> {
    let mut error = false;
    items.sort_by(|a, b| {
        a.py_cmp(b).unwrap_or_else(|| {
            error = true;
            std::cmp::Ordering::Equal
        })
    });
    if error {
        return Err(RuntimeError::Type("values are not comparable".to_string()));
    }
    Ok(())
}

/// Calls a method on a receiver value.
///
/// Returns the method's result plus a flag indicating whether the receiver
/// was mutated in place (so the interpreter knows to write it back to its
/// variable).
pub fn call_method(
    recv: &mut Value,
    method: &str,
    args: &[Value],
) -> Result<(Value, bool), RuntimeError> {
    match recv {
        Value::List(items) => list_method(items, method, args),
        Value::Str(s) => str_method(s, method, args).map(|v| (v, false)),
        Value::Dict(entries) => dict_method(entries, method, args),
        Value::Tuple(items) => match method {
            "index" => {
                let target = args.first().ok_or_else(|| {
                    RuntimeError::Type("index() takes exactly one argument".to_string())
                })?;
                match items.iter().position(|v| v.py_eq(target)) {
                    Some(i) => Ok((Value::Int(i as i64), false)),
                    None => Err(RuntimeError::Value(
                        "tuple.index(x): x not in tuple".to_string(),
                    )),
                }
            }
            "count" => {
                let target = args.first().ok_or_else(|| {
                    RuntimeError::Type("count() takes exactly one argument".to_string())
                })?;
                let n = items.iter().filter(|v| v.py_eq(target)).count();
                Ok((Value::Int(n as i64), false))
            }
            _ => Err(RuntimeError::Type(format!(
                "'tuple' object has no attribute '{method}'"
            ))),
        },
        other => Err(RuntimeError::Type(format!(
            "'{}' object has no attribute '{}'",
            other.type_name(),
            method
        ))),
    }
}

fn list_method(
    items: &mut Vec<Value>,
    method: &str,
    args: &[Value],
) -> Result<(Value, bool), RuntimeError> {
    match method {
        "append" => {
            let value = args.first().ok_or_else(|| {
                RuntimeError::Type("append() takes exactly one argument".to_string())
            })?;
            items.push(value.clone());
            Ok((Value::None, true))
        }
        "extend" => {
            let value = args.first().ok_or_else(|| {
                RuntimeError::Type("extend() takes exactly one argument".to_string())
            })?;
            items.extend(to_items(value)?);
            Ok((Value::None, true))
        }
        "insert" => {
            if args.len() != 2 {
                return Err(RuntimeError::Type(
                    "insert() takes exactly 2 arguments".to_string(),
                ));
            }
            let idx = args[0].as_int().ok_or_else(|| {
                RuntimeError::Type("insert() index must be an integer".to_string())
            })?;
            // Python clamps insert positions.
            let pos = if idx < 0 {
                (items.len() as i64 + idx).max(0) as usize
            } else {
                (idx as usize).min(items.len())
            };
            items.insert(pos, args[1].clone());
            Ok((Value::None, true))
        }
        "pop" => {
            if items.is_empty() {
                return Err(RuntimeError::Index("pop from empty list".to_string()));
            }
            let idx = match args.first() {
                None => items.len() as i64 - 1,
                Some(v) => v.as_int().ok_or_else(|| {
                    RuntimeError::Type("pop() index must be an integer".to_string())
                })?,
            };
            let pos = normalise_index(idx, items.len())
                .ok_or_else(|| RuntimeError::Index("pop index out of range".to_string()))?;
            Ok((items.remove(pos), true))
        }
        "remove" => {
            let target = args.first().ok_or_else(|| {
                RuntimeError::Type("remove() takes exactly one argument".to_string())
            })?;
            match items.iter().position(|v| v.py_eq(target)) {
                Some(pos) => {
                    items.remove(pos);
                    Ok((Value::None, true))
                }
                None => Err(RuntimeError::Value(
                    "list.remove(x): x not in list".to_string(),
                )),
            }
        }
        "index" => {
            let target = args.first().ok_or_else(|| {
                RuntimeError::Type("index() takes exactly one argument".to_string())
            })?;
            match items.iter().position(|v| v.py_eq(target)) {
                Some(pos) => Ok((Value::Int(pos as i64), false)),
                None => Err(RuntimeError::Value(
                    "list.index(x): x not in list".to_string(),
                )),
            }
        }
        "count" => {
            let target = args.first().ok_or_else(|| {
                RuntimeError::Type("count() takes exactly one argument".to_string())
            })?;
            let n = items.iter().filter(|v| v.py_eq(target)).count();
            Ok((Value::Int(n as i64), false))
        }
        "reverse" => {
            items.reverse();
            Ok((Value::None, true))
        }
        "sort" => {
            sort_values(items)?;
            Ok((Value::None, true))
        }
        _ => Err(RuntimeError::Type(format!(
            "'list' object has no attribute '{method}'"
        ))),
    }
}

fn str_method(s: &str, method: &str, args: &[Value]) -> Result<Value, RuntimeError> {
    let str_arg = |i: usize| -> Result<String, RuntimeError> {
        match args.get(i) {
            Some(Value::Str(v)) => Ok(v.clone()),
            Some(other) => Err(RuntimeError::Type(format!(
                "expected a string argument, got {}",
                other.type_name()
            ))),
            None => Err(RuntimeError::Type("missing string argument".to_string())),
        }
    };
    match method {
        "replace" => {
            let old = str_arg(0)?;
            let new = str_arg(1)?;
            if old.is_empty() {
                return Err(RuntimeError::Value(
                    "replace() with empty pattern".to_string(),
                ));
            }
            Ok(Value::Str(s.replace(&old, &new)))
        }
        "lower" => Ok(Value::Str(s.to_lowercase())),
        "upper" => Ok(Value::Str(s.to_uppercase())),
        "strip" => Ok(Value::Str(s.trim().to_string())),
        "find" => {
            let needle = str_arg(0)?;
            Ok(Value::Int(match s.find(&needle) {
                Some(byte_pos) => s[..byte_pos].chars().count() as i64,
                None => -1,
            }))
        }
        "count" => {
            let needle = str_arg(0)?;
            if needle.is_empty() {
                return Ok(Value::Int(s.chars().count() as i64 + 1));
            }
            Ok(Value::Int(s.matches(&needle).count() as i64))
        }
        "startswith" => Ok(Value::Bool(s.starts_with(&str_arg(0)?))),
        "endswith" => Ok(Value::Bool(s.ends_with(&str_arg(0)?))),
        "split" => {
            let parts: Vec<Value> = if args.is_empty() {
                s.split_whitespace()
                    .map(|p| Value::Str(p.to_string()))
                    .collect()
            } else {
                s.split(&str_arg(0)?)
                    .map(|p| Value::Str(p.to_string()))
                    .collect()
            };
            Ok(Value::List(parts))
        }
        "join" => {
            let items = to_items(args.first().ok_or_else(|| {
                RuntimeError::Type("join() takes exactly one argument".to_string())
            })?)?;
            let mut parts = Vec::new();
            for item in items {
                match item {
                    Value::Str(part) => parts.push(part),
                    other => {
                        return Err(RuntimeError::Type(format!(
                            "sequence item: expected string, {} found",
                            other.type_name()
                        )))
                    }
                }
            }
            Ok(Value::Str(parts.join(s)))
        }
        "isdigit" => Ok(Value::Bool(
            !s.is_empty() && s.chars().all(|c| c.is_ascii_digit()),
        )),
        _ => Err(RuntimeError::Type(format!(
            "'str' object has no attribute '{method}'"
        ))),
    }
}

fn dict_method(
    entries: &[(Value, Value)],
    method: &str,
    args: &[Value],
) -> Result<(Value, bool), RuntimeError> {
    match method {
        "keys" => Ok((
            Value::List(entries.iter().map(|(k, _)| k.clone()).collect()),
            false,
        )),
        "values" => Ok((
            Value::List(entries.iter().map(|(_, v)| v.clone()).collect()),
            false,
        )),
        "items" => Ok((
            Value::List(
                entries
                    .iter()
                    .map(|(k, v)| Value::Tuple(vec![k.clone(), v.clone()]))
                    .collect(),
            ),
            false,
        )),
        "get" => {
            let key = args.first().ok_or_else(|| {
                RuntimeError::Type("get() takes at least one argument".to_string())
            })?;
            let default = args.get(1).cloned().unwrap_or(Value::None);
            let found = entries
                .iter()
                .find(|(k, _)| k.py_eq(key))
                .map(|(_, v)| v.clone());
            Ok((found.unwrap_or(default), false))
        }
        "has_key" => {
            let key = args.first().ok_or_else(|| {
                RuntimeError::Type("has_key() takes exactly one argument".to_string())
            })?;
            Ok((
                Value::Bool(entries.iter().any(|(k, _)| k.py_eq(key))),
                false,
            ))
        }
        _ => Err(RuntimeError::Type(format!(
            "'dict' object has no attribute '{method}'"
        ))),
    }
}

/// Converts a (possibly negative) Python index into a vector position.
pub fn normalise_index(index: i64, len: usize) -> Option<usize> {
    let len = len as i64;
    let adjusted = if index < 0 { index + len } else { index };
    if adjusted < 0 || adjusted >= len {
        None
    } else {
        Some(adjusted as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok(result: BuiltinResult) -> Value {
        result.expect("builtin exists").expect("builtin succeeds")
    }

    #[test]
    fn len_on_sequences_and_strings() {
        assert_eq!(
            ok(call_builtin("len", &[Value::int_list([1, 2, 3])])),
            Value::Int(3)
        );
        assert_eq!(
            ok(call_builtin("len", &[Value::Str("abc".into())])),
            Value::Int(3)
        );
        assert!(call_builtin("len", &[Value::Int(3)]).unwrap().is_err());
    }

    #[test]
    fn range_matches_python() {
        assert_eq!(
            ok(call_builtin("range", &[Value::Int(3)])),
            Value::int_list([0, 1, 2])
        );
        assert_eq!(
            ok(call_builtin("range", &[Value::Int(1), Value::Int(4)])),
            Value::int_list([1, 2, 3])
        );
        assert_eq!(
            ok(call_builtin(
                "range",
                &[Value::Int(5), Value::Int(0), Value::Int(-2)]
            )),
            Value::int_list([5, 3, 1])
        );
        assert_eq!(
            ok(call_builtin("range", &[Value::Int(0)])),
            Value::List(vec![])
        );
        assert!(
            call_builtin("range", &[Value::Int(1), Value::Int(2), Value::Int(0)])
                .unwrap()
                .is_err()
        );
    }

    #[test]
    fn conversions() {
        assert_eq!(
            ok(call_builtin("int", &[Value::Str(" 7 ".into())])),
            Value::Int(7)
        );
        assert_eq!(
            ok(call_builtin("str", &[Value::Int(7)])),
            Value::Str("7".into())
        );
        assert_eq!(
            ok(call_builtin("list", &[Value::Str("ab".into())])),
            Value::List(vec![Value::Str("a".into()), Value::Str("b".into())])
        );
        assert_eq!(
            ok(call_builtin("tuple", &[Value::int_list([1])])),
            Value::Tuple(vec![Value::Int(1)])
        );
        assert_eq!(ok(call_builtin("list", &[])), Value::List(vec![]));
    }

    #[test]
    fn aggregation_builtins() {
        assert_eq!(
            ok(call_builtin("sum", &[Value::int_list([1, 2, 3])])),
            Value::Int(6)
        );
        assert_eq!(
            ok(call_builtin("max", &[Value::int_list([1, 5, 3])])),
            Value::Int(5)
        );
        assert_eq!(
            ok(call_builtin("min", &[Value::Int(4), Value::Int(2)])),
            Value::Int(2)
        );
        assert_eq!(
            ok(call_builtin("sorted", &[Value::int_list([3, 1, 2])])),
            Value::int_list([1, 2, 3])
        );
        assert!(call_builtin("max", &[Value::List(vec![])])
            .unwrap()
            .is_err());
    }

    #[test]
    fn unknown_names_are_not_builtins() {
        assert!(call_builtin("computeDeriv", &[]).is_none());
    }

    #[test]
    fn float_is_rejected_as_unsupported() {
        let err = call_builtin("float", &[Value::Int(1)])
            .unwrap()
            .unwrap_err();
        assert_eq!(err.kind(), "UnsupportedFeature");
    }

    #[test]
    fn list_methods_mutate_in_place() {
        let mut v = Value::int_list([1, 2, 3]);
        let (ret, mutated) = call_method(&mut v, "append", &[Value::Int(4)]).unwrap();
        assert_eq!(ret, Value::None);
        assert!(mutated);
        assert_eq!(v, Value::int_list([1, 2, 3, 4]));

        let (popped, _) = call_method(&mut v, "pop", &[Value::Int(1)]).unwrap();
        assert_eq!(popped, Value::Int(2));
        assert_eq!(v, Value::int_list([1, 3, 4]));

        let (idx, mutated) = call_method(&mut v, "index", &[Value::Int(3)]).unwrap();
        assert_eq!(idx, Value::Int(1));
        assert!(!mutated);

        call_method(&mut v, "insert", &[Value::Int(0), Value::Int(9)]).unwrap();
        assert_eq!(v, Value::int_list([9, 1, 3, 4]));

        call_method(&mut v, "sort", &[]).unwrap();
        assert_eq!(v, Value::int_list([1, 3, 4, 9]));
    }

    #[test]
    fn list_index_of_missing_element_is_value_error() {
        let mut v = Value::int_list([1, 2]);
        let err = call_method(&mut v, "index", &[Value::Int(9)]).unwrap_err();
        assert_eq!(err.kind(), "ValueError");
    }

    #[test]
    fn str_methods() {
        let mut s = Value::Str("hangman".into());
        let (replaced, mutated) = call_method(
            &mut s,
            "replace",
            &[Value::Str("a".into()), Value::Str("_".into())],
        )
        .unwrap();
        assert_eq!(replaced, Value::Str("h_ngm_n".into()));
        assert!(!mutated);
        let (found, _) = call_method(&mut s, "find", &[Value::Str("gma".into())]).unwrap();
        assert_eq!(found, Value::Int(3));
        let (missing, _) = call_method(&mut s, "find", &[Value::Str("zz".into())]).unwrap();
        assert_eq!(missing, Value::Int(-1));
    }

    #[test]
    fn dict_methods() {
        let mut d = Value::Dict(vec![(Value::Int(1), Value::Str("a".into()))]);
        let (keys, _) = call_method(&mut d, "keys", &[]).unwrap();
        assert_eq!(keys, Value::int_list([1]));
        let (got, _) = call_method(&mut d, "get", &[Value::Int(2), Value::Int(0)]).unwrap();
        assert_eq!(got, Value::Int(0));
    }

    #[test]
    fn negative_index_normalisation() {
        assert_eq!(normalise_index(-1, 3), Some(2));
        assert_eq!(normalise_index(0, 3), Some(0));
        assert_eq!(normalise_index(3, 3), None);
        assert_eq!(normalise_index(-4, 3), None);
        assert_eq!(normalise_index(0, 0), None);
    }
}
