//! JSON renderings of the public report types (the `ToJson`/`FromJson`
//! layer used by `afg-service` responses and the `--json` output of the
//! experiment binaries).
//!
//! Conventions: durations serialize as fractional-millisecond `*_ms`
//! numbers; a [`GradeOutcome`] is an object tagged by its `"outcome"` field;
//! counters stay integers so they round-trip exactly.

use afg_json::{FromJson, Json, JsonError, ToJson};

use crate::batch::{BatchItem, BatchReport, WorkerStats};
use crate::cache::CacheStats;
use crate::cluster::ClusterStats;
use crate::feedback::{Correction, Feedback, FeedbackLevel};
use crate::grader::GradeOutcome;

impl ToJson for Correction {
    fn to_json(&self) -> Json {
        Json::object([
            ("line", Json::Int(i64::from(self.line))),
            ("rule", Json::str(&self.rule)),
            ("original", Json::str(&self.original)),
            ("replacement", Json::str(&self.replacement)),
            ("message", Json::str(&self.message)),
        ])
    }
}

impl FromJson for Correction {
    fn from_json(json: &Json) -> Result<Correction, JsonError> {
        let field = |name: &str| {
            json.get(name)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| JsonError::missing_field("correction", name))
        };
        let line = json
            .get("line")
            .and_then(Json::as_i64)
            .and_then(|v| u32::try_from(v).ok())
            .ok_or_else(|| JsonError::missing_field("correction", "line"))?;
        Ok(Correction {
            line,
            rule: field("rule")?,
            original: field("original")?,
            replacement: field("replacement")?,
            message: field("message")?,
        })
    }
}

impl ToJson for Feedback {
    fn to_json(&self) -> Json {
        Json::object([
            ("cost", self.cost.to_json()),
            ("corrections", self.corrections.to_json()),
            ("rendered", Json::str(self.render(FeedbackLevel::full()))),
            ("elapsed_ms", self.elapsed.to_json()),
            (
                "stats",
                Json::object([
                    (
                        "candidates_checked",
                        self.stats.candidates_checked.to_json(),
                    ),
                    ("cegis_iterations", self.stats.cegis_iterations.to_json()),
                    ("counterexamples", self.stats.counterexamples.to_json()),
                    ("sat_conflicts", self.stats.sat_conflicts.to_json()),
                    ("sat_propagations", self.stats.sat_propagations.to_json()),
                    ("sat_learnts", self.stats.sat_learnts.to_json()),
                    ("restarts", self.stats.restarts.to_json()),
                    ("sweeps", self.stats.sweeps.to_json()),
                    ("sweep_inputs", self.stats.sweep_inputs.to_json()),
                    ("sweep_compiled", Json::Bool(self.stats.sweep_compiled)),
                    ("sweep_cache_hits", self.stats.sweep_cache_hits.to_json()),
                    ("sweep_cache_nodes", self.stats.sweep_cache_nodes.to_json()),
                    ("strategy", Json::str(self.stats.strategy)),
                    ("elapsed_ms", self.stats.elapsed.to_json()),
                ]),
            ),
        ])
    }
}

impl ToJson for GradeOutcome {
    fn to_json(&self) -> Json {
        match self {
            GradeOutcome::SyntaxError(err) => Json::object([
                ("outcome", Json::str("syntax_error")),
                ("error", Json::str(err.to_string())),
            ]),
            GradeOutcome::Correct => Json::object([("outcome", Json::str("correct"))]),
            GradeOutcome::Feedback(feedback) => Json::object([
                ("outcome", Json::str("feedback")),
                ("feedback", feedback.to_json()),
            ]),
            GradeOutcome::CannotFix => Json::object([("outcome", Json::str("cannot_fix"))]),
            GradeOutcome::Timeout => Json::object([("outcome", Json::str("timeout"))]),
        }
    }
}

impl ToJson for WorkerStats {
    fn to_json(&self) -> Json {
        Json::object([
            ("graded", self.graded.to_json()),
            ("busy_ms", self.busy.to_json()),
            ("syntax_errors", self.syntax_errors.to_json()),
            ("correct", self.correct.to_json()),
            ("fixed", self.fixed.to_json()),
            ("cannot_fix", self.cannot_fix.to_json()),
            ("timeouts", self.timeouts.to_json()),
            ("cache_hits", self.cache_hits.to_json()),
            ("cache_misses", self.cache_misses.to_json()),
            ("transfer_attempts", self.transfer_attempts.to_json()),
            ("transfer_hits", self.transfer_hits.to_json()),
            ("sweeps", self.sweeps.to_json()),
            ("sweep_inputs", self.sweep_inputs.to_json()),
            ("sweep_compiled", Json::Bool(self.sweep_compiled)),
        ])
    }
}

impl FromJson for WorkerStats {
    fn from_json(json: &Json) -> Result<WorkerStats, JsonError> {
        let count = |name: &str| {
            json.get(name)
                .and_then(Json::as_i64)
                .and_then(|v| usize::try_from(v).ok())
                .ok_or_else(|| JsonError::missing_field("worker stats", name))
        };
        let busy_ms = json
            .get("busy_ms")
            .and_then(Json::as_f64)
            .ok_or_else(|| JsonError::missing_field("worker stats", "busy_ms"))?;
        Ok(WorkerStats {
            graded: count("graded")?,
            busy: std::time::Duration::from_secs_f64(busy_ms.max(0.0) / 1e3),
            syntax_errors: count("syntax_errors")?,
            correct: count("correct")?,
            fixed: count("fixed")?,
            cannot_fix: count("cannot_fix")?,
            timeouts: count("timeouts")?,
            cache_hits: count("cache_hits")?,
            cache_misses: count("cache_misses")?,
            // Absent in pre-clustering documents: read as 0, not an error.
            transfer_attempts: count("transfer_attempts").unwrap_or(0),
            transfer_hits: count("transfer_hits").unwrap_or(0),
            // Likewise absent before compiled verification sweeps.
            sweeps: count("sweeps").unwrap_or(0) as u64,
            sweep_inputs: count("sweep_inputs").unwrap_or(0) as u64,
            sweep_compiled: json
                .get("sweep_compiled")
                .and_then(Json::as_bool)
                .unwrap_or(false),
        })
    }
}

impl ToJson for BatchItem {
    fn to_json(&self) -> Json {
        // The outcome's own fields are inlined so a batch item is one flat
        // object with `worker`/`elapsed_ms` appended.
        let mut pairs: Vec<(String, Json)> = match self.outcome.to_json() {
            Json::Object(pairs) => pairs,
            other => vec![("outcome".to_string(), other)],
        };
        pairs.push(("elapsed_ms".to_string(), self.elapsed.to_json()));
        pairs.push(("worker".to_string(), self.worker.to_json()));
        let cache = match self.cache_hit {
            Some(true) => "hit",
            Some(false) => "miss",
            None => "off",
        };
        pairs.push(("cache".to_string(), Json::str(cache)));
        let transfer = match self.transfer {
            Some(true) => "hit",
            Some(false) => "miss",
            None => "none",
        };
        pairs.push(("transfer".to_string(), Json::str(transfer)));
        Json::Object(pairs)
    }
}

impl ToJson for BatchReport {
    fn to_json(&self) -> Json {
        Json::object([
            ("items", self.items.to_json()),
            ("totals", self.totals().to_json()),
            ("worker_stats", self.worker_stats.to_json()),
            ("wall_ms", self.wall_time.to_json()),
            ("busy_ms", self.busy_time().to_json()),
        ])
    }
}

impl ToJson for CacheStats {
    fn to_json(&self) -> Json {
        Json::object([
            ("hits", self.hits.to_json()),
            ("misses", self.misses.to_json()),
            ("hit_rate", self.hit_rate().to_json()),
            ("entries", self.entries.to_json()),
            ("syntax_entries", self.syntax_entries.to_json()),
        ])
    }
}

impl ToJson for ClusterStats {
    fn to_json(&self) -> Json {
        Json::object([
            ("clusters", self.clusters.to_json()),
            ("members", self.members.to_json()),
            ("largest", self.largest.to_json()),
            ("repairs", self.repairs.to_json()),
            ("transfer_attempts", self.transfer_attempts.to_json()),
            ("transfer_hits", self.transfer_hits.to_json()),
            ("transfer_hit_rate", self.hit_rate().to_json()),
            ("conflicts_saved", self.conflicts_saved.to_json()),
            ("killer_observations", self.killer_observations.to_json()),
        ])
    }
}

impl FromJson for ClusterStats {
    fn from_json(json: &Json) -> Result<ClusterStats, JsonError> {
        let count = |name: &str| {
            json.get(name)
                .and_then(Json::as_i64)
                .and_then(|v| u64::try_from(v).ok())
                .ok_or_else(|| JsonError::missing_field("cluster stats", name))
        };
        Ok(ClusterStats {
            clusters: count("clusters")? as usize,
            members: count("members")?,
            largest: count("largest")?,
            repairs: count("repairs")? as usize,
            transfer_attempts: count("transfer_attempts")?,
            transfer_hits: count("transfer_hits")?,
            conflicts_saved: count("conflicts_saved")?,
            // Absent before killer-input learning: read as 0.
            killer_observations: count("killer_observations").unwrap_or(0),
        })
    }
}

impl FromJson for CacheStats {
    fn from_json(json: &Json) -> Result<CacheStats, JsonError> {
        let count = |name: &str| {
            json.get(name)
                .and_then(Json::as_i64)
                .and_then(|v| u64::try_from(v).ok())
                .ok_or_else(|| JsonError::missing_field("cache stats", name))
        };
        Ok(CacheStats {
            hits: count("hits")?,
            misses: count("misses")?,
            entries: count("entries")? as usize,
            syntax_entries: count("syntax_entries")? as usize,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afg_json::parse_json;
    use std::time::Duration;

    fn correction() -> Correction {
        Correction {
            line: 5,
            rule: "RANR".into(),
            original: "range(0, len(poly))".into(),
            replacement: "range(0 + 1, len(poly))".into(),
            message: "In the expression range(0, len(poly)) in line 5, increment 0 by 1".into(),
        }
    }

    #[test]
    fn corrections_round_trip() {
        let original = correction();
        let doc = parse_json(&original.to_json().to_string()).unwrap();
        assert_eq!(Correction::from_json(&doc).unwrap(), original);
        assert!(Correction::from_json(&Json::Null).is_err());
        let mut missing = original.to_json();
        if let Json::Object(pairs) = &mut missing {
            pairs.retain(|(k, _)| k != "rule");
        }
        let err = Correction::from_json(&missing).unwrap_err();
        assert!(err.to_string().contains("'rule'"), "{err}");
    }

    #[test]
    fn outcomes_are_tagged_objects() {
        assert_eq!(
            GradeOutcome::Correct.to_json().to_string(),
            r#"{"outcome":"correct"}"#
        );
        assert_eq!(
            GradeOutcome::Timeout.to_json().to_string(),
            r#"{"outcome":"timeout"}"#
        );
        let feedback = Feedback {
            corrections: vec![correction()],
            cost: 1,
            elapsed: Duration::from_millis(250),
            stats: Default::default(),
        };
        let doc = GradeOutcome::Feedback(feedback.clone()).to_json();
        assert_eq!(doc.get("outcome").and_then(Json::as_str), Some("feedback"));
        let inner = doc.get("feedback").unwrap();
        assert_eq!(inner.get("cost").and_then(Json::as_i64), Some(1));
        assert_eq!(
            inner.get("rendered").and_then(Json::as_str),
            Some(feedback.render(FeedbackLevel::full()).as_str())
        );
        assert_eq!(
            inner
                .get("corrections")
                .and_then(Json::as_array)
                .map(<[Json]>::len),
            Some(1)
        );
    }

    #[test]
    fn worker_stats_round_trip() {
        let stats = WorkerStats {
            graded: 10,
            busy: Duration::from_millis(1500),
            syntax_errors: 1,
            correct: 4,
            fixed: 3,
            cannot_fix: 1,
            timeouts: 1,
            cache_hits: 6,
            cache_misses: 4,
            transfer_attempts: 3,
            transfer_hits: 2,
            sweeps: 17,
            sweep_inputs: 420,
            sweep_compiled: true,
        };
        let doc = parse_json(&stats.to_json().to_string()).unwrap();
        assert_eq!(WorkerStats::from_json(&doc).unwrap(), stats);

        // Pre-clustering documents lack the transfer counters; they read
        // back as zero instead of erroring.
        let mut legacy = stats.to_json();
        if let Json::Object(pairs) = &mut legacy {
            pairs.retain(|(k, _)| !k.starts_with("transfer"));
        }
        let parsed = WorkerStats::from_json(&legacy).unwrap();
        assert_eq!(parsed.transfer_attempts, 0);
        assert_eq!(parsed.transfer_hits, 0);
    }

    #[test]
    fn cluster_stats_round_trip() {
        let stats = ClusterStats {
            clusters: 4,
            members: 40,
            largest: 21,
            repairs: 3,
            transfer_attempts: 30,
            transfer_hits: 24,
            conflicts_saved: 1234,
            killer_observations: 12,
        };
        let doc = stats.to_json();
        assert_eq!(
            doc.get("transfer_hit_rate").and_then(Json::as_f64),
            Some(0.8)
        );
        let parsed = parse_json(&doc.to_string()).unwrap();
        assert_eq!(ClusterStats::from_json(&parsed).unwrap(), stats);
    }

    #[test]
    fn cache_stats_round_trip_and_expose_hit_rate() {
        let stats = CacheStats {
            hits: 30,
            misses: 10,
            entries: 7,
            syntax_entries: 2,
        };
        let doc = stats.to_json();
        assert_eq!(doc.get("hit_rate").and_then(Json::as_f64), Some(0.75));
        let parsed = parse_json(&doc.to_string()).unwrap();
        assert_eq!(CacheStats::from_json(&parsed).unwrap(), stats);
    }
}
