//! The request handlers behind the router: problem registration, single
//! grading, and batch grading.

use std::time::{Duration, Instant};

use afg_core::{
    Autograder, BatchGrader, ClusterIndex, FingerprintCache, GradeOutcome, GraderConfig,
};
use afg_eml::parse_error_model;
use afg_json::{parse_json, Json, ToJson};
use afg_obs::Trace;

use crate::http::Request;
use crate::registry::{OutcomeCounters, ProblemEntry, Registry};
use crate::router::{error_json, Reply};
use crate::server::ServiceState;

/// Most workers a single batch request may ask for — a remote client must
/// not be able to make the daemon spawn an arbitrary number of OS threads.
const MAX_BATCH_WORKERS: usize = 64;

/// Stable outcome label for the `afg_grade_outcomes_total` counter and
/// the root span's `outcome` attribute.
fn outcome_label(outcome: &GradeOutcome) -> &'static str {
    match outcome {
        GradeOutcome::SyntaxError(_) => "syntax_error",
        GradeOutcome::Correct => "correct",
        GradeOutcome::Feedback(_) => "fixed",
        GradeOutcome::CannotFix => "cannot_fix",
        GradeOutcome::Timeout => "timeout",
    }
}

fn parse_body(request: &Request) -> Result<Json, (u16, Json)> {
    let text =
        std::str::from_utf8(&request.body).map_err(|_| (400, error_json("body is not UTF-8")))?;
    parse_json(text).map_err(|err| (400, error_json(&err.to_string())))
}

/// Applies the shared search-budget override fields of `body` to
/// `synthesis` (`"max_cost"`, `"max_candidates"`, `"time_budget_ms"`).
fn apply_budget_overrides(body: &Json, synthesis: &mut afg_core::SynthesisConfig) {
    if let Some(max_cost) = body.get("max_cost").and_then(Json::as_i64) {
        synthesis.max_cost = max_cost.max(0) as usize;
    }
    if let Some(max_candidates) = body.get("max_candidates").and_then(Json::as_i64) {
        synthesis.max_candidates = max_candidates.max(0) as usize;
    }
    if let Some(budget_ms) = body.get("time_budget_ms").and_then(Json::as_f64) {
        synthesis.time_budget = Duration::from_secs_f64(budget_ms.max(0.0) / 1e3);
    }
}

/// `POST /problems` — body:
/// `{"problem": "compDeriv"}` registers a built-in benchmark problem, or
/// `{"id", "entry", "reference", "model"}` registers instructor-supplied
/// MPY reference source plus an EML error-model text.  Optional fields:
/// `"cache": bool` (default true), `"clustering": bool` (default true;
/// skeleton-cluster repair transfer, effective only with the cache),
/// `"max_cost"`, `"max_candidates"`, `"time_budget_ms"` (search budget
/// overrides),
/// `"backend": "cegis" | "enum" | "portfolio"` (search engine),
/// `"sweep": "compiled" | "tree"` (verification back end: bytecode VM,
/// default, or the tree-walking interpreter), and
/// `"escalation": [{"label"?, "rules"?, "backend"?, "max_cost"?,
/// "max_candidates"?, "time_budget_ms"?}, ...]` — an escalation ladder
/// graded cheapest tier first (`"rules": n` truncates the error model to
/// its first `n` rules for that tier; omitted budget fields inherit the
/// problem-level budget).
pub(crate) fn handle_register(request: &Request, registry: &Registry) -> (u16, Json) {
    let body = match parse_body(request) {
        Ok(body) => body,
        Err(response) => return response,
    };

    let mut config = GraderConfig::fast();
    apply_budget_overrides(&body, &mut config.synthesis);
    // Per-problem verification back end: "compiled" (default) sweeps the
    // input deck on the bytecode VM, "tree" opts this problem out and
    // walks the AST — an escape hatch should a submission shape trip the
    // compiler.  Outcomes are identical either way.
    if let Some(sweep_name) = body.get("sweep").and_then(Json::as_str) {
        match afg_core::SweepMode::parse(sweep_name) {
            Some(sweep) => config.equivalence.sweep = sweep,
            None => {
                return (
                    422,
                    error_json(&format!(
                        "unknown sweep mode '{sweep_name}' (expected tree or compiled)"
                    )),
                );
            }
        }
    }
    if let Some(backend_name) = body.get("backend").and_then(Json::as_str) {
        match afg_core::Backend::parse(backend_name) {
            Some(backend) => config.backend = backend,
            None => {
                return (
                    422,
                    error_json(&format!(
                        "unknown backend '{backend_name}' (expected cegis, enum or portfolio)"
                    )),
                );
            }
        }
    }
    if let Some(tiers) = body.get("escalation") {
        let Some(tiers) = tiers.as_array() else {
            return (400, error_json("'escalation' must be an array of tiers"));
        };
        for (index, tier) in tiers.iter().enumerate() {
            if !matches!(tier, Json::Object(_)) {
                return (
                    400,
                    error_json(&format!("escalation[{index}] must be an object")),
                );
            }
            let mut synthesis = config.synthesis.clone();
            apply_budget_overrides(tier, &mut synthesis);
            let backend = match tier.get("backend").and_then(Json::as_str) {
                Some(name) => match afg_core::Backend::parse(name) {
                    Some(backend) => Some(backend),
                    None => {
                        return (
                            422,
                            error_json(&format!("escalation[{index}]: unknown backend '{name}'")),
                        );
                    }
                },
                None => None,
            };
            let model_rules = tier
                .get("rules")
                .and_then(Json::as_i64)
                .map(|rules| rules.max(0) as usize);
            let label = tier
                .get("label")
                .and_then(Json::as_str)
                .map(str::to_string)
                .unwrap_or_else(|| format!("tier-{index}"));
            config.escalation.tiers.push(afg_core::EscalationTier {
                label,
                model_rules,
                synthesis,
                backend,
            });
        }
    }
    let use_cache = body.get("cache").and_then(Json::as_bool).unwrap_or(true);
    // Cluster transfer rides on the cache-miss path, so it is only
    // meaningful when the cache is on.
    let use_clustering = use_cache
        && body
            .get("clustering")
            .and_then(Json::as_bool)
            .unwrap_or(true);

    let built = if let Some(problem_id) = body.get("problem").and_then(Json::as_str) {
        let Some(problem) = afg_corpus::problems::problem(problem_id) else {
            return (
                404,
                error_json(&format!("unknown built-in problem '{problem_id}'")),
            );
        };
        let id = body
            .get("id")
            .and_then(Json::as_str)
            .unwrap_or(problem.id)
            .to_string();
        Autograder::new(
            problem.reference,
            problem.entry,
            problem.model.clone(),
            config,
        )
        .map(|grader| (id, grader))
    } else {
        let field = |name: &str| {
            body.get(name)
                .and_then(Json::as_str)
                .ok_or_else(|| format!("missing string field '{name}'"))
        };
        let (id, entry, reference, model_text) = match (
            field("id"),
            field("entry"),
            field("reference"),
            field("model"),
        ) {
            (Ok(id), Ok(entry), Ok(reference), Ok(model)) => (id, entry, reference, model),
            (id, entry, reference, model) => {
                let message = [id.err(), entry.err(), reference.err(), model.err()]
                    .into_iter()
                    .flatten()
                    .collect::<Vec<_>>()
                    .join("; ");
                return (400, error_json(&message));
            }
        };
        let model = match parse_error_model(id, model_text) {
            Ok(model) => model,
            Err(err) => return (422, error_json(&format!("error model: {err}"))),
        };
        Autograder::new(reference, entry, model, config).map(|grader| (id.to_string(), grader))
    };

    match built {
        Ok((id, grader)) => {
            let response = Json::object([
                ("id", Json::str(&id)),
                ("entry", Json::str(grader.entry())),
                ("cache", Json::Bool(use_cache)),
                ("clustering", Json::Bool(use_clustering)),
                ("backend", Json::str(grader.config().backend.name())),
                ("sweep", Json::str(grader.config().equivalence.sweep.name())),
                (
                    "escalation_tiers",
                    grader.config().escalation.tiers.len().to_json(),
                ),
            ]);
            registry.insert(ProblemEntry {
                id,
                grader,
                cache: use_cache.then(FingerprintCache::new),
                clusters: use_clustering.then(ClusterIndex::new),
                counters: OutcomeCounters::default(),
            });
            (201, response)
        }
        Err(err) => (422, error_json(&err.to_string())),
    }
}

/// `POST /problems/{id}/grade` — body `{"source": "..."}`.
pub(crate) fn handle_grade(request: &Request, state: &ServiceState, id: &str) -> Reply {
    let Some(entry) = state.registry.get(id) else {
        return Reply::json(404, error_json(&format!("no problem '{id}'")));
    };
    let body = match parse_body(request) {
        Ok(body) => body,
        Err((status, body)) => return Reply::json(status, body),
    };
    let Some(source) = body.get("source").and_then(Json::as_str) else {
        return Reply::json(400, error_json("missing string field 'source'"));
    };

    // One trace per request (when tracing is on): installed for the
    // duration of grading so every pipeline stage span lands in it.
    let trace = state.tracing.then(Trace::new);
    let start = Instant::now();
    let (outcome, cache_state, transfer_state) = {
        let _guard = trace.as_ref().map(|trace| trace.install());
        let mut root = afg_obs::span("grade");
        let (outcome, cache_state, transfer_state) = match &entry.cache {
            Some(cache) => {
                let (outcome, disposition) =
                    entry
                        .grader
                        .grade_source_clustered(source, cache, entry.clusters.as_ref());
                (
                    outcome,
                    if disposition.cache_hit { "hit" } else { "miss" },
                    match disposition.transfer {
                        Some(true) => "hit",
                        Some(false) => "miss",
                        None => "none",
                    },
                )
            }
            None => (entry.grader.grade_source(source), "off", "none"),
        };
        root.attr("problem", id);
        root.attr("cache", cache_state);
        root.attr("transfer", transfer_state);
        root.attr("outcome", outcome_label(&outcome));
        (outcome, cache_state, transfer_state)
    };
    let elapsed = start.elapsed();
    entry.counters.record(&outcome, cache_state == "hit");
    afg_obs::counter!("afg_grades_total", "Grade requests served").inc();
    afg_obs::histogram!(
        "afg_grade_seconds",
        "End-to-end grade request latency",
        1e-6
    )
    .record_duration(elapsed);
    afg_obs::global()
        .counter(
            "afg_grade_outcomes_total",
            "Grade requests served, by outcome",
            &[("outcome", outcome_label(&outcome))],
        )
        .inc();

    let mut headers = Vec::new();
    if let Some(trace) = trace {
        if state
            .slow_grade
            .is_some_and(|threshold| elapsed >= threshold)
        {
            eprintln!(
                "[afg-serve] slow grade problem={id} trace={} elapsed={:.1}ms\n{}",
                trace.id(),
                elapsed.as_secs_f64() * 1e3,
                trace.render_tree()
            );
        }
        headers.push(("X-Afg-Trace-Id", trace.id().to_string()));
        state.traces.push(trace);
    }

    let mut pairs = match outcome.to_json() {
        Json::Object(pairs) => pairs,
        other => vec![("outcome".to_string(), other)],
    };
    pairs.push(("cache".to_string(), Json::str(cache_state)));
    pairs.push(("transfer".to_string(), Json::str(transfer_state)));
    pairs.push(("elapsed_ms".to_string(), elapsed.to_json()));
    Reply {
        status: 200,
        content_type: "application/json",
        headers,
        body: Json::Object(pairs).to_string(),
    }
}

/// `POST /problems/{id}/grade/batch` — body
/// `{"sources": ["...", ...], "workers": N?}`.
pub(crate) fn handle_batch(request: &Request, state: &ServiceState, id: &str) -> Reply {
    let Some(entry) = state.registry.get(id) else {
        return Reply::json(404, error_json(&format!("no problem '{id}'")));
    };
    let body = match parse_body(request) {
        Ok(body) => body,
        Err((status, body)) => return Reply::json(status, body),
    };
    let Some(items) = body.get("sources").and_then(Json::as_array) else {
        return Reply::json(400, error_json("missing array field 'sources'"));
    };
    let mut sources = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        match item.as_str() {
            Some(source) => sources.push(source),
            None => {
                return Reply::json(400, error_json(&format!("sources[{i}] is not a string")));
            }
        }
    }
    let engine = match body.get("workers").and_then(Json::as_i64) {
        Some(workers) if workers > 0 => BatchGrader::new((workers as usize).min(MAX_BATCH_WORKERS)),
        _ => BatchGrader::default(),
    };

    let trace = state.tracing.then(Trace::new);
    let report = {
        let _guard = trace.as_ref().map(|trace| trace.install());
        let mut root = afg_obs::span("grade_batch");
        root.attr("problem", id);
        root.attr("submissions", sources.len().to_string());
        engine.grade_sources_clustered(
            &entry.grader,
            &sources,
            entry.cache.as_ref(),
            entry.clusters.as_ref(),
        )
    };
    for item in &report.items {
        entry
            .counters
            .record(&item.outcome, item.cache_hit == Some(true));
    }
    afg_obs::counter!("afg_batches_total", "Batch grade requests served").inc();
    afg_obs::counter!(
        "afg_batch_submissions_total",
        "Submissions graded via batch requests"
    )
    .add(report.items.len() as u64);

    let mut headers = Vec::new();
    if let Some(trace) = trace {
        headers.push(("X-Afg-Trace-Id", trace.id().to_string()));
        state.traces.push(trace);
    }
    Reply {
        status: 200,
        content_type: "application/json",
        headers,
        body: report.to_json().to_string(),
    }
}
