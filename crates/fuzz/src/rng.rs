//! SplitMix64 — the same tiny deterministic generator the corpus crate
//! uses for mutation seeding.  The fuzzer must be reproducible from a
//! single `--seed`, so no entropy source other than this stream exists
//! anywhere in `afg-fuzz`.

/// Deterministic 64-bit PRNG (Steele, Lea & Flood's SplitMix64).
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    #[must_use]
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound` must be non-zero).
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }

    pub fn byte(&mut self) -> u8 {
        (self.next_u64() & 0xFF) as u8
    }

    /// True with probability `num / den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.next_u64() % den < num
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = SplitMix64::new(7);
        for bound in 1..50 {
            for _ in 0..20 {
                assert!(rng.below(bound) < bound);
            }
        }
    }
}
