//! Instructor-declared MPY types.
//!
//! MPY (like Python) is dynamically typed, but the paper requires the
//! instructor to declare the types of the graded function's arguments and
//! return value by appending a suffix to the parameter name
//! (`poly_list_int`, `secretWord_str`, …).  These declared types drive the
//! bounded input enumeration used for equivalence checking, mirroring the
//! role of the `MultiType` driver functions in the paper's SKETCH encoding.

use std::fmt;

/// A declared MPY type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum MpyType {
    /// Bounded integer (the paper uses 4-bit integers by default).
    Int,
    /// Boolean.
    Bool,
    /// String over a small alphabet.
    Str,
    /// Homogeneous list of the element type.
    List(Box<MpyType>),
    /// Homogeneous tuple of the element type.
    Tuple(Box<MpyType>),
    /// Dictionary from `Int` keys to the value type (only what the
    /// benchmarks need).
    Dict(Box<MpyType>),
    /// Unknown/unconstrained type; enumerated as a small mix of ints and
    /// short lists.
    Dynamic,
}

impl MpyType {
    /// Shorthand for `List(Int)`, the most common benchmark input type.
    pub fn list_int() -> MpyType {
        MpyType::List(Box::new(MpyType::Int))
    }

    /// Shorthand for `Tuple(Int)`.
    pub fn tuple_int() -> MpyType {
        MpyType::Tuple(Box::new(MpyType::Int))
    }

    /// Shorthand for `List(Str)`.
    pub fn list_str() -> MpyType {
        MpyType::List(Box::new(MpyType::Str))
    }

    /// Parses a parameter-name type suffix in the paper's convention.
    ///
    /// `"poly_list_int"` ⇒ `(base "poly", Some(List(Int)))`;
    /// a name without a recognised suffix returns `(name, None)`.
    ///
    /// Recognised suffixes (longest match first): `_list_int`, `_list_str`,
    /// `_tuple_int`, `_dict_int`, `_int`, `_bool`, `_str`.
    pub fn parse_suffix(name: &str) -> (String, Option<MpyType>) {
        type MakeType = fn() -> MpyType;
        const SUFFIXES: &[(&str, MakeType)] = &[
            ("_list_int", MpyType::list_int as MakeType),
            ("_list_str", MpyType::list_str),
            ("_tuple_int", MpyType::tuple_int),
            ("_dict_int", || MpyType::Dict(Box::new(MpyType::Int))),
            ("_int", || MpyType::Int),
            ("_bool", || MpyType::Bool),
            ("_str", || MpyType::Str),
        ];
        for (suffix, make) in SUFFIXES {
            if let Some(base) = name.strip_suffix(suffix) {
                if !base.is_empty() {
                    return (base.to_string(), Some(make()));
                }
            }
        }
        (name.to_string(), None)
    }

    /// Whether this type describes a sequence (list, tuple or string).
    pub fn is_sequence(&self) -> bool {
        matches!(self, MpyType::List(_) | MpyType::Tuple(_) | MpyType::Str)
    }
}

impl fmt::Display for MpyType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MpyType::Int => write!(f, "int"),
            MpyType::Bool => write!(f, "bool"),
            MpyType::Str => write!(f, "str"),
            MpyType::List(t) => write!(f, "list[{t}]"),
            MpyType::Tuple(t) => write!(f, "tuple[{t}]"),
            MpyType::Dict(t) => write!(f, "dict[int, {t}]"),
            MpyType::Dynamic => write!(f, "dynamic"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_style_suffixes() {
        assert_eq!(
            MpyType::parse_suffix("poly_list_int"),
            ("poly".to_string(), Some(MpyType::list_int()))
        );
        assert_eq!(
            MpyType::parse_suffix("n_int"),
            ("n".to_string(), Some(MpyType::Int))
        );
        assert_eq!(
            MpyType::parse_suffix("secretWord_str"),
            ("secretWord".to_string(), Some(MpyType::Str))
        );
        assert_eq!(
            MpyType::parse_suffix("lettersGuessed_list_str"),
            ("lettersGuessed".to_string(), Some(MpyType::list_str()))
        );
    }

    #[test]
    fn names_without_suffix_are_untouched() {
        assert_eq!(MpyType::parse_suffix("poly"), ("poly".to_string(), None));
        // A bare suffix must not produce an empty base name.
        assert_eq!(MpyType::parse_suffix("_int"), ("_int".to_string(), None));
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(MpyType::list_int().to_string(), "list[int]");
        assert_eq!(
            MpyType::Dict(Box::new(MpyType::Str)).to_string(),
            "dict[int, str]"
        );
    }

    #[test]
    fn sequence_classification() {
        assert!(MpyType::Str.is_sequence());
        assert!(MpyType::list_int().is_sequence());
        assert!(!MpyType::Int.is_sequence());
    }
}
