//! Constraint-based synthesis of minimal corrections (paper §4).
//!
//! Given the M̃PY choice program produced by the error-model transformation
//! and an equivalence oracle over the reference implementation, this crate
//! searches for the *cheapest* selection of corrections that makes the
//! student submission behaviourally equivalent to the reference on all
//! inputs of a bounded size.
//!
//! Two back ends are provided:
//!
//! * [`CegisSolver`] — the paper's approach: choice selectors are encoded as
//!   boolean variables in a SAT solver (`afg-sat`), candidates are proposed
//!   by the solver, checked against accumulated counterexamples, verified by
//!   bounded-exhaustive interpretation, and the CEGISMIN refinement
//!   `totalCost < best` drives the search to a minimum (Algorithm 1).
//! * [`EnumerativeSolver`] — a branch-and-bound baseline that explores
//!   candidates in order of increasing cost, used for ablation benchmarks
//!   and as an independent correctness check.
//!
//! # Example
//!
//! ```
//! use afg_eml::{apply_error_model, library};
//! use afg_interp::{EquivalenceConfig, EquivalenceOracle};
//! use afg_synth::{CegisSolver, SynthesisConfig};
//!
//! let reference = afg_parser::parse_program(
//!     "def double(x_int):\n    return x_int * 2\n",
//! )?;
//! let student = afg_parser::parse_program(
//!     "def double(x):\n    return x * 3\n",
//! )?;
//! // A one-rule model: integer constants may be off by one.
//! let model = afg_eml::ErrorModel::new("demo").with_rule(library::const_tweak());
//! let choices = apply_error_model(&student, Some("double"), &model)?;
//! let oracle = EquivalenceOracle::from_reference(
//!     &reference,
//!     EquivalenceConfig { entry: Some("double".into()), ..EquivalenceConfig::default() },
//! );
//! let outcome = CegisSolver::new().synthesize(&choices, &oracle, &SynthesisConfig::fast());
//! assert_eq!(outcome.solution().map(|s| s.cost), Some(1));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod cegis;
mod config;
mod encode;
mod enumerate;

pub use cegis::CegisSolver;
pub use config::{Solution, SynthesisConfig, SynthesisOutcome, SynthesisStats};
pub use encode::ChoiceEncoding;
pub use enumerate::EnumerativeSolver;

/// Which synthesis back end to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// SAT-backed CEGIS with CEGISMIN minimisation (the paper's approach).
    #[default]
    Cegis,
    /// Cost-ordered enumerative branch-and-bound (ablation baseline).
    Enumerative,
}

impl Backend {
    /// Runs the selected back end.
    pub fn synthesize(
        self,
        program: &afg_eml::ChoiceProgram,
        oracle: &afg_interp::EquivalenceOracle,
        config: &SynthesisConfig,
    ) -> SynthesisOutcome {
        match self {
            Backend::Cegis => CegisSolver::new().synthesize(program, oracle, config),
            Backend::Enumerative => EnumerativeSolver::new().synthesize(program, oracle, config),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_default_is_cegis() {
        assert_eq!(Backend::default(), Backend::Cegis);
    }
}
