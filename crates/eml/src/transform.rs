//! The `T_E` transformation: applying an error model to a student program
//! (paper §3.3).
//!
//! Given an [`ErrorModel`] and a student submission, [`apply_error_model`]
//! produces a [`ChoiceProgram`]: the M̃PY program containing every candidate
//! correction the model allows, with option 0 of every choice being the
//! original, unmodified fragment.  The transformation is deterministic and —
//! for well-formed models (Definition 1/2) — guaranteed to terminate, which
//! is checked up front.

use std::error::Error;
use std::fmt;

use afg_ast::ops::CmpOp;
use afg_ast::pretty;
use afg_ast::visit::func_scope_vars;
use afg_ast::{Expr, Program, Stmt, StmtKind, Target};

use crate::choice::{
    concretize_expr, CExpr, CFuncDef, CStmt, CStmtKind, ChoiceAssignment, ChoiceId, ChoiceInfo,
    ChoiceProgram, OpChoice,
};
use crate::rules::{match_expr, Bindings, CmpTemplate, ErrorModel, Rule, RuleKind, Template};

/// Errors produced while applying an error model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransformError {
    /// The model violates the well-formedness conditions of Definition 1/2.
    NotWellFormed,
    /// The student program defines no function to grade.
    NoEntryFunction,
}

impl fmt::Display for TransformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransformError::NotWellFormed => write!(f, "error model is not well-formed"),
            TransformError::NoEntryFunction => write!(f, "student program defines no function"),
        }
    }
}

impl Error for TransformError {}

/// Applies an error model to a student submission, producing the M̃PY
/// choice program over the graded entry function.
///
/// # Errors
///
/// Returns [`TransformError::NotWellFormed`] if the model fails the paper's
/// well-formedness check and [`TransformError::NoEntryFunction`] if the
/// submission contains no function definition.
pub fn apply_error_model(
    student: &Program,
    entry: Option<&str>,
    model: &ErrorModel,
) -> Result<ChoiceProgram, TransformError> {
    if !model.is_well_formed() {
        return Err(TransformError::NotWellFormed);
    }
    let func = student
        .entry(entry)
        .ok_or(TransformError::NoEntryFunction)?;
    let other_funcs = student
        .funcs
        .iter()
        .filter(|f| !std::ptr::eq(*f, func))
        .cloned()
        .collect();

    let mut ctx = Ctx {
        model,
        scope_vars: func_scope_vars(func),
        next_id: 0,
        choices: Vec::new(),
        depth: 0,
    };

    let mut body = transform_block(&func.body, &mut ctx);

    // Statement-insertion rules attach one optional block at the top of the
    // function ("add the base case", Figure 2(e)).
    let insert_rules: Vec<&Rule> = model
        .rules
        .iter()
        .filter(|r| matches!(r.kind, RuleKind::InsertTop { .. }))
        .collect();
    for rule in insert_rules.into_iter().rev() {
        if let RuleKind::InsertTop { stmts } = &rule.kind {
            let inserted: Vec<CStmt> = stmts.iter().map(plain_stmt).collect();
            let rendered: String = stmts
                .iter()
                .map(|s| pretty::stmt_to_string(s, 0).trim_end().to_string())
                .collect::<Vec<_>>()
                .join("; ");
            let id = ctx.fresh();
            ctx.choices.push(ChoiceInfo {
                id,
                line: func.line,
                rule: rule.name.clone(),
                original: "(nothing inserted)".to_string(),
                options: vec!["(nothing inserted)".to_string(), rendered],
                message: rule.message.clone(),
            });
            body.insert(
                0,
                CStmt {
                    line: func.line,
                    kind: CStmtKind::ChoiceBlock(id, vec![vec![], inserted]),
                },
            );
        }
    }

    Ok(ChoiceProgram {
        func: CFuncDef {
            name: func.name.clone(),
            params: func.params.clone(),
            body,
            line: func.line,
        },
        other_funcs,
        choices: ctx.choices,
    })
}

struct Ctx<'a> {
    model: &'a ErrorModel,
    scope_vars: Vec<String>,
    next_id: u32,
    choices: Vec<ChoiceInfo>,
    depth: u32,
}

impl Ctx<'_> {
    fn fresh(&mut self) -> ChoiceId {
        let id = ChoiceId(self.next_id);
        self.next_id += 1;
        id
    }
}

fn plain_stmt(stmt: &Stmt) -> CStmt {
    let kind = match &stmt.kind {
        StmtKind::Assign(t, e) => CStmtKind::Assign(t.clone(), CExpr::plain(e.clone())),
        StmtKind::AugAssign(t, op, e) => {
            CStmtKind::AugAssign(t.clone(), *op, CExpr::plain(e.clone()))
        }
        StmtKind::ExprStmt(e) => CStmtKind::ExprStmt(CExpr::plain(e.clone())),
        StmtKind::If(c, a, b) => CStmtKind::If(
            CExpr::plain(c.clone()),
            a.iter().map(plain_stmt).collect(),
            b.iter().map(plain_stmt).collect(),
        ),
        StmtKind::While(c, b) => {
            CStmtKind::While(CExpr::plain(c.clone()), b.iter().map(plain_stmt).collect())
        }
        StmtKind::For(v, it, b) => CStmtKind::For(
            v.clone(),
            CExpr::plain(it.clone()),
            b.iter().map(plain_stmt).collect(),
        ),
        StmtKind::Return(e) => CStmtKind::Return(e.as_ref().map(|e| CExpr::plain(e.clone()))),
        StmtKind::Print(args) => {
            CStmtKind::Print(args.iter().map(|e| CExpr::plain(e.clone())).collect())
        }
        StmtKind::Pass => CStmtKind::Pass,
        StmtKind::Break => CStmtKind::Break,
        StmtKind::Continue => CStmtKind::Continue,
    };
    CStmt {
        line: stmt.line,
        kind,
    }
}

fn transform_block(stmts: &[Stmt], ctx: &mut Ctx<'_>) -> Vec<CStmt> {
    stmts.iter().map(|s| transform_stmt(s, ctx)).collect()
}

fn transform_stmt(stmt: &Stmt, ctx: &mut Ctx<'_>) -> CStmt {
    let line = stmt.line;
    let kind = match &stmt.kind {
        StmtKind::Assign(target, value) => {
            // INITR-style rules fire only on `v = <int constant>`.
            let init_applies = matches!((target, value), (Target::Var(_), Expr::Int(_)));
            if init_applies {
                let init_rules: Vec<&Rule> = ctx
                    .model
                    .rules
                    .iter()
                    .filter(|r| matches!(r.kind, RuleKind::Init { .. }))
                    .collect();
                if !init_rules.is_empty() {
                    let mut bindings = Bindings::default();
                    if let Target::Var(name) = target {
                        bindings.insert("v", Expr::var(name.clone()));
                    }
                    bindings.insert("n", value.clone());
                    let mut branches = Vec::new();
                    let mut rule_names = Vec::new();
                    let mut message = None;
                    for rule in init_rules {
                        if let RuleKind::Init { alternatives } = &rule.kind {
                            branches.extend(instantiate_alternatives(
                                alternatives,
                                &bindings,
                                value,
                                line,
                                rule,
                                ctx,
                            ));
                            rule_names.push(rule.name.clone());
                            message = message.or_else(|| rule.message.clone());
                        }
                    }
                    let value_choice = make_choice(
                        CExpr::plain(value.clone()),
                        branches,
                        value,
                        line,
                        &rule_names.join("+"),
                        message,
                        ctx,
                    );
                    return CStmt {
                        line,
                        kind: CStmtKind::Assign(target.clone(), value_choice),
                    };
                }
            }
            CStmtKind::Assign(target.clone(), transform_expr(value, line, ctx))
        }
        StmtKind::AugAssign(target, op, value) => {
            CStmtKind::AugAssign(target.clone(), *op, transform_expr(value, line, ctx))
        }
        StmtKind::ExprStmt(expr) => CStmtKind::ExprStmt(transform_expr(expr, line, ctx)),
        StmtKind::If(cond, then_body, else_body) => CStmtKind::If(
            transform_expr(cond, line, ctx),
            transform_block(then_body, ctx),
            transform_block(else_body, ctx),
        ),
        StmtKind::While(cond, body) => {
            CStmtKind::While(transform_expr(cond, line, ctx), transform_block(body, ctx))
        }
        StmtKind::For(var, iter, body) => CStmtKind::For(
            var.clone(),
            transform_expr(iter, line, ctx),
            transform_block(body, ctx),
        ),
        StmtKind::Return(Some(expr)) => {
            let return_rules: Vec<&Rule> = ctx
                .model
                .rules
                .iter()
                .filter(|r| matches!(r.kind, RuleKind::Return { .. }))
                .collect();
            let default = transform_expr(expr, line, ctx);
            if return_rules.is_empty() {
                CStmtKind::Return(Some(default))
            } else {
                let mut bindings = Bindings::default();
                bindings.insert("a", expr.clone());
                let mut branches = Vec::new();
                let mut rule_names = Vec::new();
                let mut message = None;
                for rule in return_rules {
                    if let RuleKind::Return { alternatives } = &rule.kind {
                        branches.extend(instantiate_alternatives(
                            alternatives,
                            &bindings,
                            expr,
                            line,
                            rule,
                            ctx,
                        ));
                        rule_names.push(rule.name.clone());
                        message = message.or_else(|| rule.message.clone());
                    }
                }
                let choice = make_choice(
                    default,
                    branches,
                    expr,
                    line,
                    &rule_names.join("+"),
                    message,
                    ctx,
                );
                CStmtKind::Return(Some(choice))
            }
        }
        StmtKind::Return(None) => CStmtKind::Return(None),
        StmtKind::Print(args) => {
            let transformed: Vec<CExpr> =
                args.iter().map(|e| transform_expr(e, line, ctx)).collect();
            let drop_rule = ctx
                .model
                .rules
                .iter()
                .find(|r| matches!(r.kind, RuleKind::DropPrint));
            if let Some(rule) = drop_rule {
                let id = ctx.fresh();
                let rendered = format!(
                    "print({})",
                    args.iter()
                        .map(pretty::expr_to_string)
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                ctx.choices.push(ChoiceInfo {
                    id,
                    line,
                    rule: rule.name.clone(),
                    original: rendered.clone(),
                    options: vec![rendered, "(statement removed)".to_string()],
                    message: rule.message.clone(),
                });
                let kept = CStmt {
                    line,
                    kind: CStmtKind::Print(transformed),
                };
                return CStmt {
                    line,
                    kind: CStmtKind::ChoiceBlock(id, vec![vec![kept], vec![]]),
                };
            }
            CStmtKind::Print(transformed)
        }
        StmtKind::Pass => CStmtKind::Pass,
        StmtKind::Break => CStmtKind::Break,
        StmtKind::Continue => CStmtKind::Continue,
    };
    CStmt { line, kind }
}

/// The recursive expression transformation (the paper's `T_E`):
/// the default option recurses into sub-terms, and every matching
/// expression rule contributes its alternatives.
fn transform_expr(expr: &Expr, line: u32, ctx: &mut Ctx<'_>) -> CExpr {
    // Well-formed models terminate; the depth guard protects against
    // pathological hand-built models in release builds.
    if ctx.depth > 64 {
        return CExpr::plain(expr.clone());
    }
    ctx.depth += 1;
    let default = transform_children(expr, line, ctx);

    let mut branches = Vec::new();
    let mut rule_names = Vec::new();
    let mut message = None;
    let expr_rules: Vec<Rule> = ctx
        .model
        .rules
        .iter()
        .filter(|r| matches!(r.kind, RuleKind::Expr { .. }))
        .cloned()
        .collect();
    for rule in &expr_rules {
        if let RuleKind::Expr {
            pattern,
            alternatives,
        } = &rule.kind
        {
            if let Some(bindings) = match_expr(pattern, expr) {
                branches.extend(instantiate_alternatives(
                    alternatives,
                    &bindings,
                    expr,
                    line,
                    rule,
                    ctx,
                ));
                rule_names.push(rule.name.clone());
                message = message.or_else(|| rule.message.clone());
            }
        }
    }
    let result = make_choice(
        default,
        branches,
        expr,
        line,
        &rule_names.join("+"),
        message,
        ctx,
    );
    ctx.depth -= 1;
    result
}

/// Structural recursion used for the zero-cost default option.
fn transform_children(expr: &Expr, line: u32, ctx: &mut Ctx<'_>) -> CExpr {
    match expr {
        Expr::Int(_) | Expr::Bool(_) | Expr::Str(_) | Expr::None | Expr::Var(_) => {
            CExpr::plain(expr.clone())
        }
        Expr::List(items) => {
            CExpr::List(items.iter().map(|e| transform_expr(e, line, ctx)).collect())
        }
        Expr::Tuple(items) => {
            CExpr::Tuple(items.iter().map(|e| transform_expr(e, line, ctx)).collect())
        }
        Expr::Dict(_) => CExpr::plain(expr.clone()),
        Expr::Index(base, index) => CExpr::Index(
            Box::new(transform_expr(base, line, ctx)),
            Box::new(transform_expr(index, line, ctx)),
        ),
        Expr::Slice(base, lower, upper) => CExpr::Slice(
            Box::new(transform_expr(base, line, ctx)),
            lower
                .as_ref()
                .map(|l| Box::new(transform_expr(l, line, ctx))),
            upper
                .as_ref()
                .map(|u| Box::new(transform_expr(u, line, ctx))),
        ),
        Expr::BinOp(op, left, right) => CExpr::BinOp(
            OpChoice::Fixed(*op),
            Box::new(transform_expr(left, line, ctx)),
            Box::new(transform_expr(right, line, ctx)),
        ),
        Expr::UnaryOp(op, operand) => {
            CExpr::UnaryOp(*op, Box::new(transform_expr(operand, line, ctx)))
        }
        Expr::Compare(op, left, right) => CExpr::Compare(
            OpChoice::Fixed(*op),
            Box::new(transform_expr(left, line, ctx)),
            Box::new(transform_expr(right, line, ctx)),
        ),
        Expr::BoolExpr(op, left, right) => CExpr::BoolExpr(
            *op,
            Box::new(transform_expr(left, line, ctx)),
            Box::new(transform_expr(right, line, ctx)),
        ),
        Expr::Call(name, args) => CExpr::Call(
            name.clone(),
            args.iter().map(|e| transform_expr(e, line, ctx)).collect(),
        ),
        Expr::MethodCall(recv, name, args) => CExpr::MethodCall(
            Box::new(transform_expr(recv, line, ctx)),
            name.clone(),
            args.iter().map(|e| transform_expr(e, line, ctx)).collect(),
        ),
        Expr::IfExpr(a, b, c) => CExpr::IfExpr(
            Box::new(transform_expr(a, line, ctx)),
            Box::new(transform_expr(b, line, ctx)),
            Box::new(transform_expr(c, line, ctx)),
        ),
    }
}

/// Instantiates a rule's alternative templates, expanding top-level `?a`
/// templates into one alternative per in-scope variable.
fn instantiate_alternatives(
    alternatives: &[Template],
    bindings: &Bindings,
    original: &Expr,
    line: u32,
    rule: &Rule,
    ctx: &mut Ctx<'_>,
) -> Vec<CExpr> {
    let mut out = Vec::new();
    for alt in alternatives {
        match alt {
            Template::AnyScopeVar => {
                for var in ctx.scope_vars.clone() {
                    let candidate = Expr::var(var);
                    if &candidate != original {
                        out.push(CExpr::plain(candidate));
                    }
                }
            }
            _ => out.push(instantiate(alt, bindings, original, line, rule, ctx)),
        }
    }
    out
}

fn instantiate(
    template: &Template,
    bindings: &Bindings,
    original: &Expr,
    line: u32,
    rule: &Rule,
    ctx: &mut Ctx<'_>,
) -> CExpr {
    match template {
        Template::Meta(name) => CExpr::plain(bindings.expr(name).cloned().unwrap_or(Expr::None)),
        Template::MetaPrime(name) => match bindings.expr(name) {
            Some(bound) => transform_expr(&bound.clone(), line, ctx),
            None => CExpr::plain(Expr::None),
        },
        Template::Original => CExpr::plain(original.clone()),
        Template::AnyScopeVar => {
            // Nested occurrence: a choice over every in-scope variable, the
            // first one acting as the default.
            let options: Vec<CExpr> = ctx
                .scope_vars
                .clone()
                .into_iter()
                .map(|v| CExpr::plain(Expr::var(v)))
                .collect();
            if options.is_empty() {
                return CExpr::plain(original.clone());
            }
            let rendered: Vec<String> = options
                .iter()
                .map(|o| {
                    pretty::expr_to_string(&concretize_expr(
                        o,
                        &ChoiceAssignment::default_choices(),
                    ))
                })
                .collect();
            let id = ctx.fresh();
            ctx.choices.push(ChoiceInfo {
                id,
                line,
                rule: rule.name.clone(),
                original: rendered[0].clone(),
                options: rendered,
                message: rule.message.clone(),
            });
            CExpr::Choice(id, options)
        }
        Template::SetOf(metavar, items) => {
            let default_expr = bindings.expr(metavar).cloned().unwrap_or(Expr::None);
            let mut options = vec![CExpr::plain(default_expr.clone())];
            for item in items {
                match item {
                    Template::AnyScopeVar => {
                        for var in ctx.scope_vars.clone() {
                            let candidate = Expr::var(var);
                            if candidate != default_expr {
                                options.push(CExpr::plain(candidate));
                            }
                        }
                    }
                    _ => options.push(instantiate(item, bindings, original, line, rule, ctx)),
                }
            }
            // Drop duplicates of the default produced by instantiation.
            let default_rendered = pretty::expr_to_string(&default_expr);
            let mut seen = vec![default_rendered.clone()];
            let mut unique = vec![options[0].clone()];
            for option in options.into_iter().skip(1) {
                let rendered = pretty::expr_to_string(&concretize_expr(
                    &option,
                    &ChoiceAssignment::default_choices(),
                ));
                if !seen.contains(&rendered) {
                    seen.push(rendered);
                    unique.push(option);
                }
            }
            if unique.len() == 1 {
                return unique.pop().expect("default option present");
            }
            let id = ctx.fresh();
            ctx.choices.push(ChoiceInfo {
                id,
                line,
                rule: rule.name.clone(),
                original: seen[0].clone(),
                options: seen,
                message: rule.message.clone(),
            });
            CExpr::Choice(id, unique)
        }
        Template::Int(v) => CExpr::plain(Expr::Int(*v)),
        Template::Bool(b) => CExpr::plain(Expr::Bool(*b)),
        Template::Str(s) => CExpr::plain(Expr::Str(s.clone())),
        Template::Var(name) => CExpr::plain(Expr::var(name.clone())),
        Template::List(items) => CExpr::List(
            items
                .iter()
                .map(|t| instantiate(t, bindings, original, line, rule, ctx))
                .collect(),
        ),
        Template::Index(base, index) => CExpr::Index(
            Box::new(instantiate(base, bindings, original, line, rule, ctx)),
            Box::new(instantiate(index, bindings, original, line, rule, ctx)),
        ),
        Template::Slice(base, lower, upper) => CExpr::Slice(
            Box::new(instantiate(base, bindings, original, line, rule, ctx)),
            lower
                .as_ref()
                .map(|l| Box::new(instantiate(l, bindings, original, line, rule, ctx))),
            upper
                .as_ref()
                .map(|u| Box::new(instantiate(u, bindings, original, line, rule, ctx))),
        ),
        Template::BinOp(op, left, right) => CExpr::BinOp(
            OpChoice::Fixed(*op),
            Box::new(instantiate(left, bindings, original, line, rule, ctx)),
            Box::new(instantiate(right, bindings, original, line, rule, ctx)),
        ),
        Template::Compare(op_template, left, right) => {
            let original_op = bindings.cmp_op.unwrap_or(CmpOp::Eq);
            let op = match op_template {
                CmpTemplate::Fixed(op) => OpChoice::Fixed(*op),
                CmpTemplate::Original => OpChoice::Fixed(original_op),
                CmpTemplate::AnyRelational => {
                    let mut ops = vec![original_op];
                    for &candidate in CmpOp::relational() {
                        if candidate != original_op {
                            ops.push(candidate);
                        }
                    }
                    let id = ctx.fresh();
                    ctx.choices.push(ChoiceInfo {
                        id,
                        line,
                        rule: rule.name.clone(),
                        original: original_op.symbol().to_string(),
                        options: ops.iter().map(|o| o.symbol().to_string()).collect(),
                        message: rule.message.clone(),
                    });
                    OpChoice::Choice(id, ops)
                }
            };
            CExpr::Compare(
                op,
                Box::new(instantiate(left, bindings, original, line, rule, ctx)),
                Box::new(instantiate(right, bindings, original, line, rule, ctx)),
            )
        }
        Template::Call(name, args) => CExpr::Call(
            name.clone(),
            args.iter()
                .map(|t| instantiate(t, bindings, original, line, rule, ctx))
                .collect(),
        ),
        Template::MethodCall(recv, name, args) => CExpr::MethodCall(
            Box::new(instantiate(recv, bindings, original, line, rule, ctx)),
            name.clone(),
            args.iter()
                .map(|t| instantiate(t, bindings, original, line, rule, ctx))
                .collect(),
        ),
        Template::IfExpr(a, b, c) => CExpr::IfExpr(
            Box::new(instantiate(a, bindings, original, line, rule, ctx)),
            Box::new(instantiate(b, bindings, original, line, rule, ctx)),
            Box::new(instantiate(c, bindings, original, line, rule, ctx)),
        ),
    }
}

/// Combines the default option with the branches contributed by matching
/// rules.  When a single branch already contains the original as its nested
/// default (an "in-place" rewrite such as `RANR`), the branch replaces the
/// node directly and no extra choice is introduced.
fn make_choice(
    default: CExpr,
    branches: Vec<CExpr>,
    original: &Expr,
    line: u32,
    rule_names: &str,
    message: Option<String>,
    ctx: &mut Ctx<'_>,
) -> CExpr {
    if branches.is_empty() {
        return default;
    }
    let default_assignment = ChoiceAssignment::default_choices();
    if branches.len() == 1 {
        let branch_default = concretize_expr(&branches[0], &default_assignment);
        if &branch_default == original {
            return branches.into_iter().next().expect("one branch");
        }
    }
    let mut options = vec![default];
    options.extend(branches);
    let rendered: Vec<String> = options
        .iter()
        .map(|o| pretty::expr_to_string(&concretize_expr(o, &default_assignment)))
        .collect();
    let id = ctx.fresh();
    ctx.choices.push(ChoiceInfo {
        id,
        line,
        rule: rule_names.to_string(),
        original: rendered[0].clone(),
        options: rendered,
        message,
    });
    CExpr::Choice(id, options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library;
    use crate::rules::Pattern;
    use afg_parser::parse_program;

    /// Figure 2(a): the student submission used throughout Section 2.
    const STUDENT_2A: &str = "\
def computeDeriv(poly):
    deriv = []
    zero = 0
    if (len(poly) == 1):
        return deriv
    for e in range(0, len(poly)):
        if (poly[e] == 0):
            zero += 1
        else:
            deriv.append(poly[e]*e)
    return deriv
";

    #[test]
    fn simple_model_induces_the_32_candidates_of_section_2() {
        // The simplified three-rule model of §2.1:
        //   return a        -> return [0]
        //   range(a1, a2)   -> range(a1 + 1, a2)
        //   a0 == a1        -> False
        let student = parse_program(STUDENT_2A).unwrap();
        let model = library::section_2_1_model();
        let cp = apply_error_model(&student, Some("computeDeriv"), &model).unwrap();
        // Two returns, one range call, two == comparisons -> 2*2*2*2*2 = 32.
        assert_eq!(cp.candidate_space_size(), 32.0);
        // The default assignment reproduces the original program.
        let original = cp.original_program();
        let printed = pretty::program_to_string(&original);
        assert!(printed.contains("range(0, len(poly))"));
        assert!(printed.contains("return deriv"));
    }

    #[test]
    fn default_concretisation_is_behaviour_preserving() {
        let student = parse_program(STUDENT_2A).unwrap();
        let model = library::compute_deriv_model();
        let cp = apply_error_model(&student, Some("computeDeriv"), &model).unwrap();
        let original = cp.original_program();
        // Same statement structure as the input program.
        assert_eq!(original.funcs[0].body.len(), student.funcs[0].body.len());
        assert_eq!(original.funcs[0].name, "computeDeriv");
    }

    #[test]
    fn fixing_figure_2a_is_expressible_with_three_corrections() {
        let student = parse_program(STUDENT_2A).unwrap();
        let model = library::section_2_1_model();
        let cp = apply_error_model(&student, Some("computeDeriv"), &model).unwrap();

        // Find the three choices the paper's feedback (Figure 2(d)) selects:
        //   line 5: return deriv      -> return [0]
        //   line 7: poly[e] == 0      -> False
        //   line 6: range(0, ...)     -> range(0 + 1, ...)
        let mut assignment = ChoiceAssignment::default_choices();
        for info in &cp.choices {
            if info.line == 5 && info.options.iter().any(|o| o == "[0]") {
                let idx = info.options.iter().position(|o| o == "[0]").unwrap();
                assignment.select(info.id, idx);
            }
            if info.line == 7 && info.options.iter().any(|o| o == "False") {
                let idx = info.options.iter().position(|o| o == "False").unwrap();
                assignment.select(info.id, idx);
            }
            if info.line == 6 && info.options.iter().any(|o| o.contains("0 + 1")) {
                let idx = info
                    .options
                    .iter()
                    .position(|o| o.contains("0 + 1"))
                    .unwrap();
                assignment.select(info.id, idx);
            }
        }
        assert_eq!(assignment.cost(), 3, "choices: {:#?}", cp.choices);
        let fixed = cp.concretize(&assignment);
        let printed = pretty::program_to_string(&fixed);
        assert!(printed.contains("return [0]"));
        assert!(printed.contains("if False:"));
        assert!(printed.contains("range(0 + 1, len(poly))"));
    }

    #[test]
    fn insert_top_rule_adds_an_optional_base_case() {
        let student =
            parse_program("def computeDeriv(poly):\n    deriv = []\n    return deriv\n").unwrap();
        let base_case =
            afg_parser::parse_program("def g(poly):\n    if len(poly) == 1:\n        return [0]\n")
                .unwrap();
        let rule = Rule::insert_top("BASE", base_case.funcs[0].body.clone())
            .with_message("add the base case at the top to return [0] for len(poly)=1".to_string());
        let model = ErrorModel::new("insert").with_rule(rule);
        let cp = apply_error_model(&student, None, &model).unwrap();
        assert_eq!(cp.num_choices(), 1);

        let inserted = cp.concretize(&ChoiceAssignment::from_pairs([(cp.choices[0].id, 1)]));
        let printed = pretty::program_to_string(&inserted);
        assert!(printed.contains("if len(poly) == 1:"));
        // The default keeps the program unchanged.
        let printed_default = pretty::program_to_string(&cp.original_program());
        assert!(!printed_default.contains("if len(poly) == 1:"));
    }

    #[test]
    fn drop_print_rule_makes_prints_optional() {
        let student = parse_program("def f(x):\n    print('debug', x)\n    return x\n").unwrap();
        let model = ErrorModel::new("prints").with_rule(Rule::drop_print("DROPPRINT"));
        let cp = apply_error_model(&student, None, &model).unwrap();
        assert_eq!(cp.num_choices(), 1);
        let without = cp.concretize(&ChoiceAssignment::from_pairs([(cp.choices[0].id, 1)]));
        assert_eq!(without.funcs[0].body.len(), 1);
        assert_eq!(cp.original_program().funcs[0].body.len(), 2);
    }

    #[test]
    fn ill_formed_models_are_rejected() {
        let student = parse_program("def f(x):\n    return x\n").unwrap();
        let bad_rule = Rule::expr(
            "BAD",
            Pattern::meta("a"),
            vec![Template::BinOp(
                afg_ast::ops::BinOp::Add,
                Box::new(Template::MetaPrime("a".into())),
                Box::new(Template::Int(1)),
            )],
        );
        let model = ErrorModel::new("bad").with_rule(bad_rule);
        assert_eq!(
            apply_error_model(&student, None, &model),
            Err(TransformError::NotWellFormed)
        );
    }

    #[test]
    fn programs_without_functions_are_rejected() {
        let student = parse_program("x = 1\n").unwrap();
        let model = ErrorModel::new("empty");
        assert_eq!(
            apply_error_model(&student, None, &model),
            Err(TransformError::NoEntryFunction)
        );
    }

    #[test]
    fn scope_variable_alternatives_exclude_the_original() {
        // INDR's ?a alternative should propose other variables, not v[a] itself.
        let student = parse_program("def f(xs, i, j):\n    return xs[i]\n").unwrap();
        let rule = Rule::expr(
            "INDR",
            Pattern::Index(
                Box::new(Pattern::AnyVar("v".into())),
                Box::new(Pattern::meta("a")),
            ),
            vec![Template::Index(
                Box::new(Template::meta("v")),
                Box::new(Template::SetOf(
                    "a".into(),
                    vec![
                        Template::meta_plus("a", 1),
                        Template::meta_plus("a", -1),
                        Template::AnyScopeVar,
                    ],
                )),
            )],
        );
        let model = ErrorModel::new("ind").with_rule(rule);
        let cp = apply_error_model(&student, None, &model).unwrap();
        assert_eq!(
            cp.num_choices(),
            1,
            "in-place rule should add exactly one choice"
        );
        let info = &cp.choices[0];
        assert!(info.options.contains(&"i + 1".to_string()));
        assert!(info.options.contains(&"j".to_string()));
        assert!(info.options.contains(&"xs".to_string()));
        // The default (index 0) is the original index expression.
        assert_eq!(info.options[0], "i");
    }
}
